"""PageTable nodes and virtual-address arithmetic."""

import pytest

from repro.errors import InvalidArgumentError, KernelBug
from repro.paging import (
    LEVEL_PGD,
    LEVEL_PMD,
    LEVEL_PTE,
    LEVEL_PUD,
    LEVEL_SPAN,
    PMD_REGION_SIZE,
    TABLE_SPAN,
    PageTable,
    level_base,
    make_entry,
    page_align_down,
    page_align_up,
    page_number,
    page_offset,
    table_index,
)


class TestAddressArithmetic:
    def test_level_spans(self):
        assert LEVEL_SPAN[LEVEL_PTE] == 4096
        assert LEVEL_SPAN[LEVEL_PMD] == 2 * 1024 * 1024
        assert LEVEL_SPAN[LEVEL_PUD] == 1 << 30
        assert LEVEL_SPAN[LEVEL_PGD] == 1 << 39
        assert PMD_REGION_SIZE == LEVEL_SPAN[LEVEL_PMD]
        for level in (LEVEL_PTE, LEVEL_PMD, LEVEL_PUD, LEVEL_PGD):
            assert TABLE_SPAN[level] == LEVEL_SPAN[level] * 512

    def test_table_index_decomposition(self):
        vaddr = (3 << 39) | (7 << 30) | (12 << 21) | (400 << 12) | 123
        assert table_index(vaddr, LEVEL_PGD) == 3
        assert table_index(vaddr, LEVEL_PUD) == 7
        assert table_index(vaddr, LEVEL_PMD) == 12
        assert table_index(vaddr, LEVEL_PTE) == 400

    def test_level_base(self):
        vaddr = 5 * PMD_REGION_SIZE + 12345
        assert level_base(vaddr, LEVEL_PMD) == 5 * PMD_REGION_SIZE
        assert level_base(vaddr, LEVEL_PTE) == page_align_down(vaddr)

    def test_page_helpers(self):
        assert page_number(8192 + 5) == 2
        assert page_offset(8192 + 5) == 5
        assert page_align_down(8193) == 8192
        assert page_align_up(8193) == 12288
        assert page_align_up(8192) == 8192


class TestPageTable:
    def test_fresh_table_empty(self):
        table = PageTable(LEVEL_PTE, pfn=1)
        assert table.is_empty()
        assert table.present_count() == 0
        assert len(table.entries) == 512

    def test_set_get_clear(self):
        table = PageTable(LEVEL_PTE, pfn=1)
        table.set(100, make_entry(55))
        assert table.is_present(100)
        assert table.child_pfn(100) == 55
        table.clear(100)
        assert not table.is_present(100)

    def test_child_pfn_of_absent_entry_is_bug(self):
        table = PageTable(LEVEL_PMD, pfn=1)
        with pytest.raises(KernelBug):
            table.child_pfn(0)

    def test_present_indices(self):
        table = PageTable(LEVEL_PTE, pfn=1)
        for index in (1, 50, 511):
            table.set(index, make_entry(index))
        assert table.present_indices().tolist() == [1, 50, 511]
        assert table.present_count() == 3

    def test_copy_entries_from(self):
        src = PageTable(LEVEL_PTE, pfn=1)
        src.set(9, make_entry(99))
        dst = PageTable(LEVEL_PTE, pfn=2)
        dst.copy_entries_from(src)
        assert dst.child_pfn(9) == 99
        # Independent arrays after the copy.
        src.clear(9)
        assert dst.is_present(9)

    def test_invalid_level(self):
        with pytest.raises(InvalidArgumentError):
            PageTable(0, pfn=1)
        with pytest.raises(InvalidArgumentError):
            PageTable(5, pfn=1)
