"""mmap / munmap / mprotect syscall semantics."""

import pytest

from repro import (
    MAP_ANONYMOUS,
    MAP_FIXED,
    MAP_POPULATE,
    MAP_PRIVATE,
    MIB,
    PROT_READ,
    PROT_WRITE,
    SegmentationFault,
)
from repro.errors import InvalidArgumentError

RW = PROT_READ | PROT_WRITE


class TestMmap:
    def test_basic_mapping(self, proc):
        addr = proc.mmap(1 * MIB)
        assert addr % 4096 == 0
        proc.write(addr, b"data")
        assert proc.read(addr, 4) == b"data"

    def test_length_rounded_to_pages(self, proc):
        addr = proc.mmap(100)
        proc.write(addr + 4000, b"end of page ok")
        with pytest.raises(SegmentationFault):
            proc.read(addr + 4096, 1)

    def test_zero_length_rejected(self, proc):
        with pytest.raises(InvalidArgumentError):
            proc.mmap(0)

    def test_mappings_do_not_overlap(self, proc):
        a = proc.mmap(1 * MIB)
        b = proc.mmap(1 * MIB)
        assert b >= a + 1 * MIB or a >= b + 1 * MIB

    def test_map_fixed_replaces(self, proc):
        addr = proc.mmap(1 * MIB)
        proc.write(addr, b"old contents")
        new_addr = proc.mmap(1 * MIB, addr=addr,
                             flags=MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED)
        assert new_addr == addr
        # A fresh mapping reads zero.
        assert proc.read(addr, 12) == bytes(12)

    def test_map_populate_prefaults(self, proc, machine):
        before = machine.stats.demand_zero_faults
        proc.mmap(1 * MIB, flags=MAP_PRIVATE | MAP_ANONYMOUS | MAP_POPULATE)
        assert machine.stats.demand_zero_faults - before == 256

    def test_fresh_anonymous_memory_reads_zero(self, proc):
        addr = proc.mmap(64 * 1024)
        assert proc.read(addr + 12345, 16) == bytes(16)

    def test_unmapped_access_segfaults(self, proc):
        addr = proc.mmap(1 * MIB)
        with pytest.raises(SegmentationFault):
            proc.read(addr - 4096, 1)
        with pytest.raises(SegmentationFault):
            proc.write(addr + 2 * MIB, b"x")


class TestMunmap:
    def test_unmap_whole(self, proc):
        addr = proc.mmap(1 * MIB)
        proc.write(addr, b"x")
        proc.munmap(addr, 1 * MIB)
        with pytest.raises(SegmentationFault):
            proc.read(addr, 1)

    def test_unmap_releases_frames(self, proc, machine):
        addr = proc.mmap(1 * MIB)
        proc.touch_range(addr, 1 * MIB, write=True)
        live_before = machine.live_data_frames()
        proc.munmap(addr, 1 * MIB)
        assert machine.live_data_frames() < live_before - 200

    def test_partial_unmap_splits(self, proc):
        addr = proc.mmap(1 * MIB)
        proc.write(addr, b"head")
        proc.write(addr + 1 * MIB - 4096, b"tail")
        proc.munmap(addr + 256 * 1024, 512 * 1024)
        assert proc.read(addr, 4) == b"head"
        assert proc.read(addr + 1 * MIB - 4096, 4) == b"tail"
        with pytest.raises(SegmentationFault):
            proc.read(addr + 300 * 1024, 1)

    def test_unmap_spanning_multiple_vmas(self, proc):
        a = proc.mmap(1 * MIB)
        b = proc.mmap(1 * MIB)
        low, high = min(a, b), max(a, b)
        if high == low + 1 * MIB:  # adjacent: unmap across both
            proc.munmap(low + 512 * 1024, 1 * MIB)
            with pytest.raises(SegmentationFault):
                proc.read(low + 600 * 1024, 1)
            proc.read(low, 1)
            proc.read(high + 1 * MIB - 4096, 1)

    def test_unmap_unmapped_is_noop(self, proc):
        proc.munmap(0x700000000000, 4096)

    def test_unmap_misaligned_rejected(self, proc):
        addr = proc.mmap(1 * MIB)
        with pytest.raises(InvalidArgumentError):
            proc.munmap(addr + 1, 4096)


class TestMprotect:
    def test_remove_write_blocks_stores(self, proc):
        addr = proc.mmap(64 * 1024)
        proc.write(addr, b"before")
        proc.mprotect(addr, 64 * 1024, PROT_READ)
        assert proc.read(addr, 6) == b"before"
        with pytest.raises(SegmentationFault):
            proc.write(addr, b"after")

    def test_restore_write(self, proc):
        addr = proc.mmap(64 * 1024)
        proc.write(addr, b"v1")
        proc.mprotect(addr, 64 * 1024, PROT_READ)
        proc.mprotect(addr, 64 * 1024, RW)
        proc.write(addr, b"v2")
        assert proc.read(addr, 2) == b"v2"

    def test_partial_mprotect_splits_vma(self, proc):
        addr = proc.mmap(64 * 1024)
        proc.mprotect(addr + 16 * 1024, 16 * 1024, PROT_READ)
        proc.write(addr, b"ok")                      # head still writable
        proc.write(addr + 48 * 1024, b"ok")          # tail still writable
        with pytest.raises(SegmentationFault):
            proc.write(addr + 20 * 1024, b"no")

    def test_prot_none_blocks_reads(self, proc):
        addr = proc.mmap(64 * 1024)
        proc.mprotect(addr, 64 * 1024, 0)
        with pytest.raises(SegmentationFault):
            proc.read(addr, 1)

    def test_mprotect_unmapped_rejected(self, proc):
        with pytest.raises(InvalidArgumentError):
            proc.mprotect(0x700000000000, 4096, PROT_READ)
