"""Classic fork: full tree duplication, COW protection, refcounts."""

import pytest

from repro import MIB
from repro.paging import is_writable
from conftest import make_filled_region


class TestForkSemantics:
    def test_child_sees_parent_data(self, proc):
        addr, probes = make_filled_region(proc)
        child = proc.fork()
        for i, offset in enumerate(probes):
            assert child.read(addr + offset, 3) == b"\xabQ" + bytes([i])

    def test_write_isolation_both_directions(self, proc):
        addr, _ = make_filled_region(proc)
        child = proc.fork()
        proc.write(addr, b"PARENT")
        child.write(addr + 4096, b"CHILD")
        assert child.read(addr, 6) != b"PARENT"
        assert proc.read(addr + 4096, 5) != b"CHILD"

    def test_fork_tree_three_generations(self, proc):
        addr, _ = make_filled_region(proc, size=1 * MIB)
        proc.write(addr, b"gen0")
        child = proc.fork()
        grandchild = child.fork()
        child.write(addr, b"gen1")
        grandchild.write(addr, b"gen2")
        assert proc.read(addr, 4) == b"gen0"
        assert child.read(addr, 4) == b"gen1"
        assert grandchild.read(addr, 4) == b"gen2"

    def test_child_gets_own_tables(self, proc, machine):
        addr, _ = make_filled_region(proc)
        tables_before = machine.kernel.live_tables
        child = proc.fork()
        # Classic fork duplicates leaf tables (plus uppers + PGD).
        assert machine.kernel.live_tables > tables_before
        assert child.mm.nr_pte_tables == proc.mm.nr_pte_tables

    def test_page_refcounts_incremented(self, proc, machine):
        addr = proc.mmap(64 * 1024)
        proc.write(addr, b"x")
        leaf = proc.mm.get_pte_table(addr)
        pfn = leaf.child_pfn((addr >> 12) & 511)
        assert machine.pages.get_ref(pfn) == 1
        proc.fork()
        assert machine.pages.get_ref(pfn) == 2

    def test_parent_entries_write_protected(self, proc):
        addr = proc.mmap(64 * 1024)
        proc.write(addr, b"x")
        leaf = proc.mm.get_pte_table(addr)
        index = (addr >> 12) & 511
        assert is_writable(leaf.entries[index])
        proc.fork()
        assert not is_writable(leaf.entries[index]), \
            "fork must write-protect the parent's COW entries"

    def test_rss_inherited(self, proc):
        addr, _ = make_filled_region(proc, size=1 * MIB)
        child = proc.fork()
        assert child.rss_bytes == proc.rss_bytes

    def test_fork_copies_all_vmas(self, proc):
        a = proc.mmap(64 * 1024)
        b = proc.mmap(128 * 1024)
        proc.write(a, b"A")
        proc.write(b, b"B")
        child = proc.fork()
        assert child.read(a, 1) == b"A"
        assert child.read(b, 1) == b"B"
        assert len(child.mm.vmas) == len(proc.mm.vmas)

    def test_odfork_default_reroutes_fork(self, proc, machine):
        addr, _ = make_filled_region(proc)
        proc.set_odfork_default(True)
        child = proc.fork()
        assert machine.stats.odforks == 1
        assert machine.stats.forks == 0
        assert child.task.odfork_default  # inherited

    def test_fork_latency_recorded(self, proc):
        make_filled_region(proc, size=4 * MIB)
        proc.fork()
        assert proc.last_fork_ns > 0


class TestForkCost:
    def test_cost_scales_with_mapped_memory(self, big_machine):
        p = big_machine.spawn_process("scaling")
        small = p.mmap(32 * MIB)
        p.touch_range(small, 32 * MIB, write=True)
        p.fork()
        t_small = p.last_fork_ns
        big = p.mmap(512 * MIB)
        p.touch_range(big, 512 * MIB, write=True)
        p.fork()
        t_big = p.last_fork_ns
        # The marginal cost of the extra 512 MiB (~2.5 ms at the
        # calibrated 5.05 ms/GB) dwarfs the fixed cost.
        assert t_big - t_small > 2_000_000

    def test_untouched_memory_is_cheap(self, big_machine):
        """fork copies tables for *present* pages only."""
        p = big_machine.spawn_process("sparse")
        p.mmap(1024 * MIB)  # mapped but never touched
        p.fork()
        sparse_ns = p.last_fork_ns
        q = big_machine.spawn_process("dense")
        addr = q.mmap(1024 * MIB)
        q.touch_range(addr, 1024 * MIB, write=True)
        q.fork()
        dense_ns = q.last_fork_ns
        assert dense_ns > sparse_ns * 3
