"""End-to-end fleet campaigns: conservation, the headline, tracing, faults."""

import pytest

from repro.cluster import Fleet, FleetConfig, run_fleet
from repro.cluster.coordinator import EPOCH_LOCK
from repro.errors import InvalidArgumentError
from repro.trace import points
from repro.trace.export import to_chrome_trace
from repro.trace.tracer import Tracer
from repro.verify.fleet import check_fleet


def tiny(**overrides):
    """A sub-second fleet campaign for unit tests."""
    base = dict(replicas=3, data_mb=16, n_requests=4000, rate_rps=1e6,
                wave_interval_ms=1.0, n_waves=2, seed=77)
    base.update(overrides)
    return FleetConfig(**base)


@pytest.fixture(autouse=True)
def _detached():
    points.detach()
    yield
    points.detach()


class TestConservation:
    def test_unbounded_campaign_conserves(self):
        result = run_fleet(tiny(strategy="simultaneous", use_odfork=False))
        assert result.conserved()
        assert result.generated == 4000
        assert result.dropped == 0
        assert result.coordinator_stats["waves_completed"] == 2

    def test_queue_limit_drops_stay_accounted(self):
        result = run_fleet(tiny(strategy="simultaneous", use_odfork=False,
                                queue_limit=4))
        # Classic-fork blocks pile up multi-us arrivals behind a ~ms fork;
        # a tight queue limit must convert the excess into counted drops.
        assert result.dropped > 0
        assert result.conserved()

    def test_per_replica_split_sums_to_total(self):
        result = run_fleet(tiny())
        split = result.aggregator.completed_by_replica()
        assert sum(split) == result.completed
        assert all(n > 0 for n in split)      # hash striping covers all


class TestHeadline:
    def test_staggered_odfork_beats_simultaneous_classic_p999(self):
        worst = run_fleet(tiny(strategy="simultaneous", use_odfork=False))
        best = run_fleet(tiny(strategy="staggered", use_odfork=True))
        p_worst = worst.percentiles_ms((99.9,))[99.9]
        p_best = best.percentiles_ms((99.9,))[99.9]
        assert p_best < p_worst
        # The gap is the fork block itself: well over 2x at these sizes.
        assert p_worst / p_best > 2

    def test_odfork_blocks_shorter_than_classic(self):
        classic = run_fleet(tiny(strategy="simultaneous", use_odfork=False))
        odf = run_fleet(tiny(strategy="simultaneous", use_odfork=True))
        assert max(odf.fork_blocks_ns) < min(classic.fork_blocks_ns)


class TestStrategies:
    def test_staggered_serializes_epochs_fifo(self):
        fleet = Fleet(tiny(strategy="staggered", stagger_k=1))
        try:
            fleet.run()
        finally:
            fleet.shutdown()
        order = fleet.dlm.grant_order(EPOCH_LOCK)
        # 2 waves x 3 replicas at k=1: six sub-waves, granted in order.
        assert order == ["wave0.0", "wave0.1", "wave0.2",
                         "wave1.0", "wave1.1", "wave1.2"]
        assert fleet.dlm.holder(EPOCH_LOCK) is None

    def test_drain_reroutes_and_conserves(self):
        result = run_fleet(tiny(strategy="drain", use_odfork=False,
                                n_requests=8000))
        assert result.gateway_stats["rerouted"] > 0
        assert result.conserved()
        assert result.dropped == 0            # rerouted, never dropped

    def test_fleet_runs_once(self):
        fleet = Fleet(tiny())
        try:
            fleet.run()
            with pytest.raises(InvalidArgumentError):
                fleet.run()
        finally:
            fleet.shutdown()


class TestTracing:
    def test_fleet_tracepoints_emitted(self):
        tracer = Tracer()
        points.attach(tracer)
        fleet = Fleet(tiny(strategy="staggered", n_requests=2000))
        try:
            fleet.run()
        finally:
            fleet.shutdown()
            points.detach()
        names = {e.name for e in tracer.drain()}
        for expected in ("gateway.enqueue", "gateway.dispatch", "nic.tx",
                         "nic.rx", "dlm.acquire", "dlm.release",
                         "snap.wave_start", "snap.wave_end"):
            assert expected in names, f"missing {expected}"

    def test_perfetto_tracks_per_replica(self):
        tracer = Tracer()
        points.attach(tracer)
        fleet = Fleet(tiny(n_requests=1500))
        try:
            fleet.run()
            process_names = fleet.trace_process_names()
        finally:
            fleet.shutdown()
            points.detach()
        assert set(process_names.values()) == {
            "gateway", "replica0", "replica1", "replica2"}
        doc = to_chrome_trace(tracer.drain(), label="fleet",
                              process_names=process_names)
        meta = {e["args"]["name"] for e in doc["traceEvents"]
                if e.get("ph") == "M"}
        assert "fleet:gateway" in meta
        assert "fleet:replica2" in meta

    def test_untraced_run_unaffected(self):
        traced = None
        tracer = Tracer()
        points.attach(tracer)
        try:
            traced = run_fleet(tiny(n_requests=1500))
        finally:
            points.detach()
        plain = run_fleet(tiny(n_requests=1500))
        assert (traced.percentiles_ms((99,))[99]
                == plain.percentiles_ms((99,))[99])


class TestFaultInjection:
    def test_gateway_overflow_failpoint_conserves(self):
        fleet = Fleet(tiny(n_requests=2000))
        fleet.failpoints.arm("gateway.queue_overflow", 100)
        try:
            result = fleet.run()
        finally:
            fleet.shutdown()
        assert result.dropped == 1
        assert result.conserved()

    def test_dlm_timeout_skips_epoch_cleanly(self):
        fleet = Fleet(tiny(strategy="staggered", n_requests=2000))
        fleet.failpoints.arm("dlm.acquire_timeout", 1)
        try:
            result = fleet.run()
        finally:
            fleet.shutdown()
        assert result.coordinator_stats["subwaves_skipped"] == 1
        assert result.conserved()
        assert fleet.dlm.holder(EPOCH_LOCK) is None

    def test_nic_drop_delays_but_delivers(self):
        armed = Fleet(tiny(n_requests=2000))
        armed.failpoints.arm("nic.tx_drop", 50)
        try:
            result = armed.run()
        finally:
            armed.shutdown()
        assert result.conserved()
        assert result.completed == result.generated    # nothing lost

    def test_verify_fleet_leg_clean(self):
        findings, meta = check_fleet(seed=5, max_hits_per_site=1)
        assert findings == []
        assert meta["runs"] == 4          # baseline + one hit per site
        assert meta["sites"]["gateway.queue_overflow"] > 0
