"""Software MMU: translation, hierarchical attributes, A/D bits."""

import pytest

from repro.paging import (
    BIT_RW,
    LEVEL_PGD,
    LEVEL_PMD,
    LEVEL_PTE,
    LEVEL_PUD,
    FAULT_NOT_PRESENT,
    FAULT_WRITE_PROTECTED,
    MMUFault,
    PageTable,
    Walker,
    is_accessed,
    is_dirty,
    make_entry,
    table_index,
)


def build_tree(vaddr, leaf_pfn, pmd_writable=True, pte_writable=True,
               huge=False):
    """A minimal 4-level tree mapping one address; returns (pgd, tables)."""
    tables = {}

    def register(table):
        tables[table.pfn] = table
        return table

    next_pfn = [100]

    def fresh(level):
        next_pfn[0] += 1
        return register(PageTable(level, next_pfn[0]))

    pgd = register(PageTable(LEVEL_PGD, 100))
    pud = fresh(LEVEL_PUD)
    pmd = fresh(LEVEL_PMD)
    pgd.set(table_index(vaddr, LEVEL_PGD), make_entry(pud.pfn))
    pud.set(table_index(vaddr, LEVEL_PUD), make_entry(pmd.pfn))
    if huge:
        pmd.set(table_index(vaddr, LEVEL_PMD),
                make_entry(leaf_pfn, writable=pmd_writable, huge=True))
        return pgd, tables, pmd, None
    pte = fresh(LEVEL_PTE)
    pmd.set(table_index(vaddr, LEVEL_PMD),
            make_entry(pte.pfn, writable=pmd_writable))
    pte.set(table_index(vaddr, LEVEL_PTE),
            make_entry(leaf_pfn, writable=pte_writable))
    return pgd, tables, pmd, pte


VADDR = (5 << 30) | (3 << 21) | (17 << 12) | 0x123


class TestTranslation:
    def test_simple_translation(self):
        pgd, tables, _, _ = build_tree(VADDR, leaf_pfn=777)
        walker = Walker(tables.__getitem__)
        tr = walker.translate(pgd, VADDR, is_write=False)
        assert tr.pfn == 777
        assert tr.writable
        assert not tr.huge
        assert tr.leaf_level == LEVEL_PTE

    def test_not_present_faults(self):
        pgd, tables, _, pte = build_tree(VADDR, leaf_pfn=777)
        pte.clear(table_index(VADDR, LEVEL_PTE))
        walker = Walker(tables.__getitem__)
        with pytest.raises(MMUFault) as excinfo:
            walker.translate(pgd, VADDR, is_write=False)
        assert excinfo.value.reason == FAULT_NOT_PRESENT
        assert excinfo.value.level == LEVEL_PTE

    def test_missing_upper_level_faults(self):
        pgd, tables, _, _ = build_tree(VADDR, leaf_pfn=777)
        walker = Walker(tables.__getitem__)
        other = VADDR + (1 << 39)
        with pytest.raises(MMUFault) as excinfo:
            walker.translate(pgd, other, is_write=False)
        assert excinfo.value.level == LEVEL_PGD

    def test_write_to_readonly_pte_faults(self):
        pgd, tables, _, _ = build_tree(VADDR, leaf_pfn=1, pte_writable=False)
        walker = Walker(tables.__getitem__)
        with pytest.raises(MMUFault) as excinfo:
            walker.translate(pgd, VADDR, is_write=True)
        assert excinfo.value.reason == FAULT_WRITE_PROTECTED

    def test_hierarchical_attribute_override(self):
        """The On-demand-fork mechanism: PMD RW=0 blocks writes even when
        the PTE says writable."""
        pgd, tables, _, _ = build_tree(VADDR, leaf_pfn=1,
                                       pmd_writable=False, pte_writable=True)
        walker = Walker(tables.__getitem__)
        # Reads translate fine ("fast read" in Figure 6).
        tr = walker.translate(pgd, VADDR, is_write=False)
        assert tr.pfn == 1
        assert not tr.writable
        # Writes fault at the leaf despite PTE RW=1.
        with pytest.raises(MMUFault) as excinfo:
            walker.translate(pgd, VADDR, is_write=True)
        assert excinfo.value.reason == FAULT_WRITE_PROTECTED

    def test_huge_translation(self):
        head = 4096  # 2 MiB aligned pfn
        pgd, tables, _, _ = build_tree(VADDR, leaf_pfn=head, huge=True)
        walker = Walker(tables.__getitem__)
        tr = walker.translate(pgd, VADDR, is_write=True)
        assert tr.huge
        assert tr.leaf_level == LEVEL_PMD
        # Sub-page offset within the compound page.
        assert tr.pfn == head + ((VADDR >> 12) & 511)


class TestAccessedDirtyBits:
    def test_accessed_set_along_walk(self):
        pgd, tables, pmd, pte = build_tree(VADDR, leaf_pfn=9)
        walker = Walker(tables.__getitem__)
        walker.translate(pgd, VADDR, is_write=False)
        assert is_accessed(pgd.entries[table_index(VADDR, LEVEL_PGD)])
        assert is_accessed(pmd.entries[table_index(VADDR, LEVEL_PMD)])
        assert is_accessed(pte.entries[table_index(VADDR, LEVEL_PTE)])

    def test_dirty_set_only_on_write(self):
        pgd, tables, _, pte = build_tree(VADDR, leaf_pfn=9)
        walker = Walker(tables.__getitem__)
        walker.translate(pgd, VADDR, is_write=False)
        index = table_index(VADDR, LEVEL_PTE)
        assert not is_dirty(pte.entries[index])
        walker.translate(pgd, VADDR, is_write=True)
        assert is_dirty(pte.entries[index])

    def test_dirty_never_set_through_protected_pmd(self):
        """§3.2: the D bit cannot appear while the table is shared, because
        the PMD override turns every write into a fault."""
        pgd, tables, _, pte = build_tree(VADDR, leaf_pfn=9,
                                         pmd_writable=False)
        walker = Walker(tables.__getitem__)
        with pytest.raises(MMUFault):
            walker.translate(pgd, VADDR, is_write=True)
        assert not is_dirty(pte.entries[table_index(VADDR, LEVEL_PTE)])

    def test_probe_has_no_side_effects(self):
        pgd, tables, _, pte = build_tree(VADDR, leaf_pfn=9)
        walker = Walker(tables.__getitem__)
        tr = walker.probe(pgd, VADDR)
        assert tr.pfn == 9
        assert not is_accessed(pte.entries[table_index(VADDR, LEVEL_PTE)])
        assert walker.probe(pgd, VADDR + (1 << 39)) is None
