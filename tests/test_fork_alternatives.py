"""vfork / clone(CLONE_VM) / execve / posix_spawn (paper §6.1)."""

import pytest

from repro import MIB, Machine, SegmentationFault
from repro.errors import InvalidArgumentError, ProcessError


@pytest.fixture
def binary(machine):
    b = machine.kernel.fs.create("/bin/app", size=48 * 1024)
    b.set_initial_contents(b"\x7fELF app image")
    return b


def parented(machine, size=8 * MIB):
    p = machine.spawn_process("parent")
    addr = p.mmap(size)
    # Probe away from low addresses so fresh images never alias it.
    p.write(addr + size // 2, b"parent data")
    return p, addr + size // 2


class TestVfork:
    def test_parent_suspended_until_child_exits(self, machine):
        p, probe = parented(machine)
        child = p.vfork()
        with pytest.raises(ProcessError, match="vfork"):
            p.read(probe, 1)
        with pytest.raises(ProcessError, match="vfork"):
            p.fork()
        child.exit()
        p.wait()
        assert p.read(probe, 11) == b"parent data"

    def test_child_shares_memory_no_cow(self, machine):
        p, probe = parented(machine)
        child = p.vfork()
        assert child.read(probe, 11) == b"parent data"
        child.write(probe, b"overwritten")   # no COW: hits parent memory
        child.exit()
        p.wait()
        assert p.read(probe, 11) == b"overwritten"

    def test_exec_resumes_parent(self, machine, binary):
        p, probe = parented(machine)
        child = p.vfork()
        child.execve(binary)
        # Parent runs again, its memory intact.
        assert p.read(probe, 11) == b"parent data"
        # Child now has its own image; parent's probe address is not
        # necessarily mapped there.
        child.exit()
        p.wait()

    def test_no_page_tables_copied(self, machine):
        p, _ = parented(machine, size=64 * MIB)
        tables_before = machine.kernel.live_tables
        child = p.vfork()
        # Only the child's (immediately freed) fresh PGD came and went.
        assert machine.kernel.live_tables == tables_before
        child.exit()
        p.wait()


class TestCloneVM:
    def test_bidirectional_visibility(self, machine):
        p, probe = parented(machine)
        t = p.clone_vm()
        t.write(probe, b"thread edit")
        assert p.read(probe, 11) == b"thread edit"
        p.write(probe, b"parent edit")
        assert t.read(probe, 11) == b"parent edit"
        t.exit()
        p.wait()

    def test_parent_keeps_running(self, machine):
        p, probe = parented(machine)
        t = p.clone_vm()
        assert p.read(probe, 11) == b"parent data"  # not suspended
        t.exit()
        p.wait()

    def test_mm_survives_borrower_exit(self, machine):
        p, probe = parented(machine)
        t = p.clone_vm()
        t.write(probe, b"before exit")
        t.exit()
        p.wait()
        assert p.read(probe, 11) == b"before exit"

    def test_mm_survives_owner_exit(self, machine):
        p, probe = parented(machine)
        t = p.clone_vm()
        p.exit()
        machine.init_process.wait()
        assert t.read(probe, 11) == b"parent data"
        t.exit()
        machine.init_process.wait()
        machine.check_frame_invariants()

    def test_mappings_shared_too(self, machine):
        p, _ = parented(machine)
        t = p.clone_vm()
        addr = t.mmap(1 * MIB)
        t.write(addr, b"thread-mapped")
        assert p.read(addr, 13) == b"thread-mapped"
        t.exit()
        p.wait()


class TestExecve:
    def test_old_image_replaced(self, machine, binary):
        p, probe = parented(machine)
        text, stack = p.execve(binary)
        assert p.read(text, 4) == b"\x7fELF"
        p.write(stack, b"on the stack")
        with pytest.raises(SegmentationFault):
            p.read(probe, 1)

    def test_exec_charges_startup_cost(self, machine, binary):
        p, _ = parented(machine)
        t0 = machine.now_ns
        p.execve(binary)
        assert machine.now_ns - t0 > 400_000  # the cost fork servers avoid

    def test_empty_binary_rejected(self, machine):
        empty = machine.kernel.fs.create("/bin/empty", size=0)
        p, _ = parented(machine)
        with pytest.raises(InvalidArgumentError):
            p.execve(empty)

    def test_no_leaks_across_exec(self, machine, binary):
        machine.init_process
        baseline = machine.live_data_frames()
        p = machine.spawn_process("exec-leak")
        addr = p.mmap(8 * MIB)
        p.touch_range(addr, 8 * MIB, write=True)
        p.execve(binary)
        p.exit()
        machine.init_process.wait()
        # Only clean page-cache pages (the binary) may remain.
        residue = machine.live_data_frames() - baseline
        assert residue <= len(machine.kernel.page_cache)
        machine.check_frame_invariants()


class TestPosixSpawn:
    def test_child_starts_fresh(self, machine, binary):
        p, probe = parented(machine)
        child = p.posix_spawn(binary)
        with pytest.raises(SegmentationFault):
            child.read(probe, 1)
        child.exit()
        p.wait()

    def test_parent_unaffected(self, machine, binary):
        p, probe = parented(machine)
        child = p.posix_spawn(binary)
        assert p.read(probe, 11) == b"parent data"
        child.exit()
        p.wait()

    def test_spawn_cost_independent_of_parent_size(self, machine, binary):
        small = machine.spawn_process("small")
        small.mmap(1 * MIB)
        small.touch_range(small.mm.vmas.find(small.mapped_bytes and
                                             next(iter(small.mm.vmas)).start).start,
                          1 * MIB, write=True)
        watch = machine.stopwatch()
        c1 = small.posix_spawn(binary)
        small_ns = watch.elapsed_ns
        c1.exit(); small.wait()

        big = machine.spawn_process("big")
        addr = big.mmap(64 * MIB)
        big.touch_range(addr, 64 * MIB, write=True)
        watch = machine.stopwatch()
        c2 = big.posix_spawn(binary)
        big_ns = watch.elapsed_ns
        c2.exit(); big.wait()
        # No page-table copying: cost does not scale with the parent.
        assert big_ns == pytest.approx(small_ns, rel=0.05)
