"""VMA semantics and the sorted VMA list."""

import pytest

from repro.errors import InvalidArgumentError
from repro.kernel import (
    MAP_ANONYMOUS,
    MAP_HUGETLB,
    MAP_PRIVATE,
    MAP_SHARED,
    PROT_READ,
    PROT_WRITE,
    VMA,
    VMAList,
)
from repro.kernel.filesystem import SimFile

MIB = 1 << 20
RW = PROT_READ | PROT_WRITE
ANON_PRIV = MAP_PRIVATE | MAP_ANONYMOUS


def make_vma(start, end, prot=RW, flags=ANON_PRIV, **kwargs):
    return VMA(start=start, end=end, prot=prot, flags=flags, **kwargs)


class TestVMA:
    def test_classification(self):
        vma = make_vma(0x10000, 0x20000)
        assert vma.is_private and not vma.is_shared
        assert vma.is_anonymous and not vma.is_file_backed
        assert vma.needs_cow
        assert vma.n_pages == 16

    def test_read_only_never_cows(self):
        vma = make_vma(0x10000, 0x20000, prot=PROT_READ)
        assert not vma.needs_cow

    def test_shared_never_cows(self):
        f = SimFile("x", 0x10000)
        vma = make_vma(0x10000, 0x20000, flags=MAP_SHARED, file=f)
        assert not vma.needs_cow
        assert vma.is_file_backed

    def test_alignment_enforced(self):
        with pytest.raises(InvalidArgumentError):
            make_vma(0x10001, 0x20000)
        with pytest.raises(InvalidArgumentError):
            make_vma(0, 2 * MIB - 4096, flags=ANON_PRIV | MAP_HUGETLB)

    def test_hugetlb_alignment(self):
        vma = make_vma(0, 4 * MIB, flags=ANON_PRIV | MAP_HUGETLB)
        assert vma.is_hugetlb

    def test_empty_rejected(self):
        with pytest.raises(InvalidArgumentError):
            make_vma(0x10000, 0x10000)

    def test_share_private_exclusive(self):
        with pytest.raises(InvalidArgumentError):
            VMA(start=0, end=4096, prot=RW,
                flags=MAP_PRIVATE | MAP_SHARED | MAP_ANONYMOUS)
        with pytest.raises(InvalidArgumentError):
            VMA(start=0, end=4096, prot=RW, flags=MAP_ANONYMOUS)

    def test_file_offset_of(self):
        f = SimFile("x", 1 * MIB)
        vma = make_vma(0x100000, 0x180000, flags=MAP_SHARED, file=f,
                       file_offset=0x3000)
        assert vma.file_offset_of(0x100000) == 0x3000
        assert vma.file_offset_of(0x104000) == 0x7000

    def test_clone_reranged(self):
        f = SimFile("x", 1 * MIB)
        vma = make_vma(0x100000, 0x180000, flags=MAP_SHARED, file=f)
        right = vma.clone(start=0x140000)
        assert right.start == 0x140000
        assert right.file_offset == 0x40000
        assert right.prot == vma.prot


class TestVMAList:
    def test_insert_sorted(self):
        vl = VMAList()
        b = make_vma(0x20000, 0x30000)
        a = make_vma(0x10000, 0x20000)
        vl.insert(b)
        vl.insert(a)
        assert [v.start for v in vl] == [0x10000, 0x20000]

    def test_overlap_rejected(self):
        vl = VMAList()
        vl.insert(make_vma(0x10000, 0x30000))
        with pytest.raises(InvalidArgumentError):
            vl.insert(make_vma(0x20000, 0x40000))
        with pytest.raises(InvalidArgumentError):
            vl.insert(make_vma(0x0000, 0x11000))

    def test_find(self):
        vl = VMAList()
        vma = make_vma(0x10000, 0x20000)
        vl.insert(vma)
        assert vl.find(0x10000) is vma
        assert vl.find(0x1ffff) is vma
        assert vl.find(0x20000) is None
        assert vl.find(0x0) is None

    def test_overlapping(self):
        vl = VMAList()
        a = make_vma(0x10000, 0x20000)
        b = make_vma(0x30000, 0x40000)
        vl.insert(a)
        vl.insert(b)
        assert vl.overlapping(0x15000, 0x35000) == [a, b]
        assert vl.overlapping(0x20000, 0x30000) == []
        assert vl.any_overlap(0x1f000, 0x21000)
        assert not vl.any_overlap(0x20000, 0x30000)

    def test_remove(self):
        vl = VMAList()
        vma = make_vma(0x10000, 0x20000)
        vl.insert(vma)
        vl.remove(vma)
        assert len(vl) == 0
        with pytest.raises(InvalidArgumentError):
            vl.remove(vma)

    def test_find_gap_first_fit(self):
        vl = VMAList()
        vl.insert(make_vma(0x10000, 0x20000))
        vl.insert(make_vma(0x30000, 0x40000))
        gap = vl.find_gap(0x10000, floor=0x10000, ceiling=0x100000)
        assert gap == 0x20000
        big = vl.find_gap(0x20000, floor=0x10000, ceiling=0x100000)
        assert big == 0x40000

    def test_find_gap_alignment(self):
        vl = VMAList()
        vl.insert(make_vma(0x10000, 0x21000))
        gap = vl.find_gap(0x10000, floor=0x10000, ceiling=0x1000000,
                          align=0x10000)
        assert gap == 0x30000

    def test_find_gap_exhausted(self):
        vl = VMAList()
        assert vl.find_gap(0x2000, floor=0, ceiling=0x1000) is None

    def test_total_mapped(self):
        vl = VMAList()
        vl.insert(make_vma(0x10000, 0x20000))
        vl.insert(make_vma(0x30000, 0x50000))
        assert vl.total_mapped_bytes() == 0x30000
