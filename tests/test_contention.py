"""Contention plumbing: groups, trackers, nesting."""

import pytest

from repro import GIB, MIB, Machine
from repro.errors import InvalidArgumentError
from repro.timing import (
    ConcurrencyTracker,
    CostModel,
    CostParams,
    SimClock,
    contention_group,
)


class TestContentionGroup:
    def test_sets_and_restores(self):
        model = CostModel(clock=SimClock(), params=CostParams())
        with contention_group(model, 3):
            assert model.contention_level == 3
        assert model.contention_level == 1

    def test_restores_on_exception(self):
        model = CostModel(clock=SimClock(), params=CostParams())
        with pytest.raises(RuntimeError):
            with contention_group(model, 5):
                raise RuntimeError("boom")
        assert model.contention_level == 1

    def test_invalid_count(self):
        model = CostModel(clock=SimClock(), params=CostParams())
        with pytest.raises(InvalidArgumentError):
            with contention_group(model, 0):
                pass


class TestConcurrencyTracker:
    def test_overlapping_forks_compose(self):
        model = CostModel(clock=SimClock(), params=CostParams())
        tracker = ConcurrencyTracker(model)
        with tracker.forking():
            assert model.contention_level == 1
            with tracker.forking():
                assert model.contention_level == 2
                with tracker.forking():
                    assert model.contention_level == 3
                assert model.contention_level == 2
        assert tracker.active == 0
        assert model.contention_level == 1

    def test_charges_scale_inside_group(self):
        alone = CostModel(clock=SimClock(), params=CostParams())
        alone.charge_copy_pte_entries(10_000)
        crowded = CostModel(clock=SimClock(), params=CostParams())
        tracker = ConcurrencyTracker(crowded)
        with tracker.forking(), tracker.forking(), tracker.forking():
            crowded.charge_copy_pte_entries(10_000)
        assert crowded.clock.now_ns > alone.clock.now_ns * 2


class TestEndToEndContention:
    def test_fork_latency_monotone_in_contenders(self):
        latencies = []
        for k in (1, 2, 4):
            machine = Machine(phys_mb=1024)
            p = machine.spawn_process("contender")
            addr = p.mmap(256 * MIB)
            p.touch_range(addr, 256 * MIB, write=True)
            with machine.concurrency(k):
                p.fork()
            latencies.append(p.last_fork_ns)
        assert latencies[0] < latencies[1] < latencies[2]

    def test_odfork_nearly_contention_immune(self):
        """odfork skips the contended leaf loop: the paper's scalability
        claim."""
        results = {}
        for k in (1, 4):
            machine = Machine(phys_mb=1024)
            p = machine.spawn_process("odf")
            addr = p.mmap(256 * MIB)
            p.touch_range(addr, 256 * MIB, write=True)
            with machine.concurrency(k):
                p.odfork()
            results[k] = p.last_fork_ns
        assert results[4] < results[1] * 1.2
