"""KASAN-style frame sanitizer: poisoning, quarantine, UAF/double-free.

The dynamic half of the sancheck layer (ISSUE 4).  A machine built with
``sanitize="kasan"`` routes every buddy free through a quarantine:
freed frames are poisoned (0xFB) and held back from reallocation, so a
use-after-free or double free inside the window is caught at the exact
access instead of surfacing later as silent corruption.
"""

from __future__ import annotations

import pytest

from repro import MIB, Machine
from repro.errors import ConfigurationError, KasanError
from repro.sancheck.kasan import POISON_BYTE, QUARANTINE_DEPTH
from repro.verify.audit import audit_machine
from conftest import make_filled_region


@pytest.fixture
def kmachine():
    return Machine(phys_mb=64, sanitize="kasan")


def detach(machine):
    """Drop the sanitizer hooks (after flush) so audits see real state."""
    machine.kasan.flush()
    machine.allocator.sanitizer = None
    machine.phys.sanitizer = None


class TestWiring:
    def test_sanitize_kasan_attaches_state(self, kmachine):
        assert kmachine.kasan is not None
        assert kmachine.allocator.sanitizer is kmachine.kasan
        assert kmachine.phys.sanitizer is kmachine.kasan
        assert kmachine.kcsan is None

    def test_sanitize_off_by_default(self):
        machine = Machine(phys_mb=64)
        assert machine.kasan is None
        assert machine.allocator.sanitizer is None

    def test_unknown_sanitizer_rejected(self):
        with pytest.raises(ConfigurationError):
            Machine(phys_mb=64, sanitize="valgrind")


class TestDoubleFree:
    def test_double_free_caught(self, kmachine):
        pfn = int(kmachine.allocator.alloc(0))
        kmachine.allocator.free(pfn, 0)
        with pytest.raises(KasanError, match="double free"):
            kmachine.allocator.free(pfn, 0)
        assert kmachine.kasan.reports

    def test_invalid_free_of_never_allocated_frame(self, kmachine):
        free_head = int(kmachine.allocator.alloc(0))
        kmachine.allocator.free(free_head, 0)
        kmachine.kasan.flush()
        with pytest.raises(KasanError, match="free"):
            kmachine.allocator.free(free_head, 0)


class TestUseAfterFree:
    def test_read_after_free_caught(self, kmachine):
        pfn = int(kmachine.allocator.alloc(0))
        kmachine.phys.write(pfn, 0, b"live data")
        kmachine.allocator.free(pfn, 0)
        with pytest.raises(KasanError, match="use-after-free"):
            kmachine.phys.read(pfn, 0, 4)

    def test_write_after_free_caught(self, kmachine):
        pfn = int(kmachine.allocator.alloc(0))
        kmachine.allocator.free(pfn, 0)
        with pytest.raises(KasanError, match="use-after-free"):
            kmachine.phys.write(pfn, 0, b"dangling store")

    def test_freed_frame_is_poisoned(self, kmachine):
        pfn = int(kmachine.allocator.alloc(0))
        kmachine.phys.write(pfn, 0, b"secret")
        kmachine.allocator.free(pfn, 0)
        # Peek below the access checker: the data bytes were overwritten
        # with the poison pattern the moment the frame entered quarantine.
        kmachine.phys.sanitizer = None
        assert kmachine.phys.read(pfn, 0, 6) == bytes([POISON_BYTE]) * 6

    def test_dangling_pointer_after_munmap(self, kmachine):
        """The seeded-defect shape: kernel code caching a pfn across a
        free.  munmap releases the frame; a later access through the
        stale pfn must trip the sanitizer, not read recycled data."""
        p = kmachine.spawn_process("p")
        addr = p.mmap(1 * MIB)
        p.write(addr, b"user bytes")
        pfn = int(kmachine.kernel.walker.translate(p.mm.pgd, addr, True).pfn)
        p.munmap(addr, 1 * MIB)
        with pytest.raises(KasanError, match="use-after-free"):
            kmachine.phys.read(pfn, 0, 10)


class TestQuarantine:
    def test_quarantine_delays_reuse(self, kmachine):
        pfn = int(kmachine.allocator.alloc(0))
        kmachine.allocator.free(pfn, 0)
        assert pfn in kmachine.kasan.poisoned
        assert len(kmachine.kasan.quarantine) == 1

    def test_eviction_past_depth_really_frees(self, kmachine):
        pfns = [int(kmachine.allocator.alloc(0))
                for _ in range(QUARANTINE_DEPTH + 4)]
        for pfn in pfns:
            kmachine.allocator.free(pfn, 0)
        assert len(kmachine.kasan.quarantine) == QUARANTINE_DEPTH
        # The oldest entries were evicted: unpoisoned, zeroed, reusable.
        for pfn in pfns[:4]:
            assert pfn not in kmachine.kasan.poisoned
        assert kmachine.kasan.frees_intercepted == len(pfns)

    def test_flush_drains_everything(self, kmachine):
        baseline = kmachine.used_frames()
        pfns = [int(kmachine.allocator.alloc(0)) for _ in range(8)]
        for pfn in pfns:
            kmachine.allocator.free(pfn, 0)
        kmachine.kasan.flush()
        assert len(kmachine.kasan.quarantine) == 0
        assert not kmachine.kasan.poisoned
        assert kmachine.used_frames() == baseline

    def test_multi_frame_order_poisons_every_frame(self, kmachine):
        head = int(kmachine.allocator.alloc(2))
        kmachine.allocator.free(head, 2)
        for frame in range(head, head + 4):
            with pytest.raises(KasanError):
                kmachine.phys.read(frame, 0, 1)


class TestCleanWorkload:
    def test_fork_exit_workload_is_kasan_clean(self, kmachine):
        """A correct fork/COW/odfork/exit cycle never touches quarantined
        frames — the sanitizer stays silent end to end."""
        p = kmachine.spawn_process("p")
        addr, probes = make_filled_region(p, size=4 * MIB)
        child = p.fork()
        child.write(addr, b"cow in child")
        odf = p.odfork()
        assert odf.read(addr + probes[0], 2) == p.read(addr + probes[0], 2)
        odf.write(addr + probes[1], b"table cow")
        child.exit()
        odf.exit()
        p.exit()
        assert kmachine.kasan.reports == []
        detach(kmachine)
        audit_machine(kmachine)
