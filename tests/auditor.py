"""Exhaustive kernel-state cross-checks used by the property tests.

``audit_machine`` recomputes every reference count from first principles —
walking each live address space's paging tree and the page cache — and
compares against the kernel's incremental accounting.  Any drift (the bug
class that makes real kernels corrupt memory) fails loudly.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.mem.page import PG_FILE, PG_PAGETABLE
from repro.paging import entry_pfn, is_huge, is_present
from repro.paging.table import LEVEL_PMD, LEVEL_PTE


def audit_machine(machine):
    """Recompute and verify all refcounts and table registrations."""
    kernel = machine.kernel
    pages = machine.pages

    expected_pt_refs = defaultdict(int)     # leaf table pfn -> #PMD refs
    expected_page_refs = defaultdict(int)   # data page pfn -> #table refs
    seen_leaf_tables = {}

    live_mms = [t.mm for t in kernel.tasks.values() if not t.mm.dead]
    for mm in live_mms:
        for pud_index in mm.pgd.present_indices().tolist():
            pud = mm.resolve(mm.pgd.child_pfn(pud_index))
            for pmd_index in pud.present_indices().tolist():
                pmd = mm.resolve(pud.child_pfn(pmd_index))
                entries = pmd.entries
                for slot in pmd.present_indices().tolist():
                    entry = entries[slot]
                    if is_huge(entry):
                        expected_page_refs[int(entry_pfn(entry))] += 1
                        continue
                    leaf_pfn = int(entry_pfn(entry))
                    expected_pt_refs[leaf_pfn] += 1
                    seen_leaf_tables[leaf_pfn] = mm.resolve(leaf_pfn)

    # Each leaf table *object* owns one reference per present data page.
    for leaf in seen_leaf_tables.values():
        for slot in leaf.present_indices().tolist():
            expected_page_refs[int(entry_pfn(leaf.entries[slot]))] += 1

    # The page cache holds one reference per cached page.
    for pfn in kernel.page_cache._cache.values():
        expected_page_refs[pfn] += 1

    # Live in-place snapshots hold one reference per saved present page.
    from repro.paging import present_mask
    for snapshot in kernel.live_snapshots:
        for saved in snapshot.saved.values():
            for pfn in entry_pfn(saved[present_mask(saved)]).tolist():
                expected_page_refs[int(pfn)] += 1

    errors = []
    for leaf_pfn, count in expected_pt_refs.items():
        actual = pages.pt_ref(leaf_pfn)
        if actual != count:
            errors.append(
                f"leaf table {leaf_pfn}: pt_refcount {actual}, "
                f"{count} PMD references found"
            )
    for pfn, count in expected_page_refs.items():
        actual = pages.get_ref(pfn)
        if actual != count:
            errors.append(
                f"page {pfn}: refcount {actual}, {count} references found"
            )

    # No data page should have a refcount without a referent (leak), and
    # table frames must be registered.
    live = np.nonzero(pages.refcount > 0)[0]
    for pfn in live.tolist():
        if pfn == 0:
            continue  # reserved frame
        if pages.has_flags(pfn, PG_PAGETABLE):
            if pfn not in kernel._tables:
                errors.append(f"table frame {pfn} not registered")
            continue
        if pages.flags[pfn] & np.uint16(0x10):  # PG_COMPOUND_TAIL
            continue
        if pfn not in expected_page_refs:
            errors.append(f"page {pfn} live (ref={pages.get_ref(pfn)}) "
                          f"but unreachable: leak")

    pages.check_no_negative()
    machine.allocator.check_consistency()
    if errors:
        raise AssertionError("kernel audit failed:\n  " + "\n  ".join(errors[:12]))
