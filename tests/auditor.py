"""Compatibility shim: the auditor now lives in :mod:`repro.verify.audit`.

Kept so older test modules (and muscle memory) can keep importing
``from auditor import audit_machine``.
"""

from repro.verify.audit import audit_machine  # noqa: F401
