"""Paging-entry encodings: bit layout, helpers, array operations."""

import numpy as np

from repro.paging import (
    BIT_ACCESSED,
    BIT_DIRTY,
    BIT_PRESENT,
    BIT_PS,
    BIT_RW,
    BIT_USER,
    clear_bits,
    entry_pfn,
    is_accessed,
    is_dirty,
    is_huge,
    is_present,
    is_writable,
    make_entry,
    present_mask,
    set_bits,
    writable_mask,
)


class TestScalarEntries:
    def test_roundtrip_pfn(self):
        for pfn in (0, 1, 12345, (1 << 30) - 1):
            entry = make_entry(pfn)
            assert entry_pfn(entry) == pfn

    def test_default_bits(self):
        entry = make_entry(7)
        assert is_present(entry)
        assert is_writable(entry)
        assert not is_huge(entry)
        assert not is_dirty(entry)
        assert not is_accessed(entry)

    def test_explicit_bits(self):
        entry = make_entry(7, writable=False, huge=True, accessed=True,
                           dirty=True)
        assert not is_writable(entry)
        assert is_huge(entry)
        assert is_accessed(entry)
        assert is_dirty(entry)

    def test_set_clear_bits(self):
        entry = make_entry(3, writable=False)
        entry = set_bits(entry, BIT_RW | BIT_DIRTY)
        assert is_writable(entry) and is_dirty(entry)
        entry = clear_bits(entry, BIT_RW)
        assert not is_writable(entry)
        assert is_dirty(entry)
        assert entry_pfn(entry) == 3

    def test_bit_values_match_x86(self):
        assert BIT_PRESENT == 1
        assert BIT_RW == 2
        assert BIT_USER == 4
        assert BIT_ACCESSED == 32
        assert BIT_DIRTY == 64
        assert BIT_PS == 128


class TestArrayOps:
    def test_present_mask(self):
        entries = np.zeros(8, dtype=np.uint64)
        entries[2] = make_entry(10)
        entries[5] = make_entry(11, present=False)
        mask = present_mask(entries)
        assert mask.tolist() == [False, False, True, False, False,
                                 False, False, False]

    def test_writable_mask(self):
        entries = np.asarray([make_entry(1), make_entry(2, writable=False)],
                             dtype=np.uint64)
        assert writable_mask(entries).tolist() == [True, False]

    def test_vectorised_pfn_extraction(self):
        entries = np.asarray([make_entry(p) for p in (5, 9, 1000)],
                             dtype=np.uint64)
        assert entry_pfn(entries).tolist() == [5, 9, 1000]

    def test_vectorised_rw_clear(self):
        entries = np.asarray([make_entry(p) for p in range(4)],
                             dtype=np.uint64)
        entries &= np.uint64(~BIT_RW)
        assert not writable_mask(entries).any()
        assert present_mask(entries).all()
        assert entry_pfn(entries).tolist() == [0, 1, 2, 3]
