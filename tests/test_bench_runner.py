"""The experiment plumbing: ExperimentResult and the CLI entry point."""

import pytest

from repro.bench.runner import ExperimentResult, print_result
from repro.bench.__main__ import EXPERIMENTS, main


@pytest.fixture
def result():
    return ExperimentResult(
        exp_id="figX",
        title="Example",
        headers=["name", "value", "paper"],
        rows=[["alpha", 1.5, 2.0], ["beta", 3.0, 3.1]],
        notes="demo",
    )


class TestExperimentResult:
    def test_render_contains_everything(self, result):
        text = result.render()
        assert "[figX] Example" in text
        assert "alpha" in text and "beta" in text
        assert "note: demo" in text

    def test_column(self, result):
        assert result.column("value") == [1.5, 3.0]
        with pytest.raises(ValueError):
            result.column("missing")

    def test_row_map(self, result):
        rows = result.row_map("name")
        assert rows["alpha"][1] == 1.5

    def test_print_result_returns_result(self, result, capsys):
        assert print_result(result) is result
        assert "figX" in capsys.readouterr().out


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out.split()
        assert "fig7" in out and "table4" in out
        # Every paper table/figure is runnable from the CLI.
        for exp_id in ("fig2", "fig3", "fig4", "fig8", "fig9", "fig10",
                       "table1", "table2", "table3", "table5", "table6_7"):
            assert exp_id in out

    def test_unknown_id_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_runs_one_experiment(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "compound_head" in out
        assert "regenerated" in out

    def test_registry_complete(self):
        # 13 paper experiments + fig2-concurrent + fig7-numa +
        # 3 ablations + 6 extensions + the fleet sweep + the faas farm.
        assert len(EXPERIMENTS) == 26
