"""Interprocedural summary precision.

The headline regression: PR 6 added fleet-layer modules whose function
names collide with kernel ones (the old name-set heuristic then marked
the fleet twins OOM-fallible, demanding failpoint sites in code that
never allocates frames).  Fallibility is now a *key*-level fact computed
over the layer-filtered call graph: the kernel twin is fallible, the
same-named fleet twin is not.
"""

from pathlib import Path

from repro.sancheck.model import harvest
from repro.sancheck.summaries import Summaries, build_summaries, layer


def _tree(tmp_path, modules):
    src_root = tmp_path / "src"
    paths = []
    for rel, text in modules.items():
        path = src_root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        paths.append(path)
    return harvest(sorted(paths), src_root)


def _key(files, module, name):
    sf = next(s for s in files if s.module == module)
    return next(f for f in sf.functions if f.qualname == name).key


class TestFleetKernelCollision:
    MODULES = {
        "repro/kernel/frames.py": (
            "def grab_frame(kernel):\n"
            "    return kernel.allocator.alloc()\n"
            "\n"
            "def copy_tree(kernel):\n"
            "    return grab_frame(kernel)\n"),
        "repro/cluster/pool.py": (
            "def grab_frame(pool):\n"
            "    return pool.free_list.pop()\n"
            "\n"
            "def serve(pool):\n"
            "    return grab_frame(pool)\n"),
    }

    def test_fallibility_is_per_key_not_per_name(self, tmp_path):
        files = _tree(tmp_path, self.MODULES)
        summaries = Summaries(files)
        kernel_grab = _key(files, "repro.kernel.frames", "grab_frame")
        fleet_grab = _key(files, "repro.cluster.pool", "grab_frame")
        assert kernel_grab in summaries.fallible_keys
        assert fleet_grab not in summaries.fallible_keys

    def test_kernel_caller_inherits_fleet_caller_does_not(self, tmp_path):
        files = _tree(tmp_path, self.MODULES)
        summaries = Summaries(files)
        assert _key(files, "repro.kernel.frames",
                    "copy_tree") in summaries.fallible_keys
        assert _key(files, "repro.cluster.pool",
                    "serve") not in summaries.fallible_keys

    def test_kernel_caller_never_resolves_into_the_fleet(self, tmp_path):
        # Even when only the fleet defines the name, a layer-0 caller
        # resolves to nothing — the kernel never calls up.
        files = _tree(tmp_path, {
            "repro/kernel/core.py": (
                "def dispatch(kernel):\n"
                "    return route_request(kernel)\n"),
            "repro/cluster/gateway.py": (
                "def route_request(gw):\n"
                "    return gw.pick_replica()\n"),
        })
        summaries = Summaries(files)
        caller = summaries.graph.functions[
            _key(files, "repro.kernel.core", "dispatch")]
        assert summaries.graph.callees(caller) == []


class TestLayerClassification:
    def test_kernelish_prefixes_are_layer_zero(self):
        for module in ("repro.kernel.fork", "repro.paging.table",
                       "repro.smp", "repro.numa.topology",
                       "repro.trace.points"):
            assert layer(module) == 0, module

    def test_fleet_is_layer_one(self):
        assert layer("repro.cluster.gateway") == 1
        assert layer("repro.cluster") == 1

    def test_fixture_modules_are_layer_zero(self):
        # Stem-named fixture files (no repro. prefix) act as kernel code
        # so the bad/good twins exercise the kernel rules.
        assert layer("bad_clockcharge") == 0


class TestRepoSummaries:
    def test_repo_fallible_set_spans_layers_correctly(self):
        from repro.sancheck.checker import repo_files

        paths, src_root = repo_files()
        summaries = build_summaries(harvest(paths, src_root))
        fallible_modules = {key.split(":")[0]
                            for key in summaries.fallible_keys}
        assert any(m.startswith("repro.kernel") for m in fallible_modules)
        assert not any(m.startswith("repro.cluster")
                       for m in fallible_modules)
