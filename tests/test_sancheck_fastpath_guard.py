"""Guard-the-guard: deleting any single conjunct from ``fast_path_ok``
must turn the repo's fastpath-soundness run red.

Each test copies ``src/repro`` to a scratch tree, rewrites ``fastpath.py``
with one clause of the guard's ``and``-chain removed, and reruns the
``fastpath-sound`` rule over the copy.  If any of these ever passes
clean, the rule has a blind spot exactly where the paper's correctness
argument lives (the fast path engaging on a machine whose slow path
consults a feature the guard no longer tests).
"""

import ast
import shutil
from pathlib import Path

import pytest

from repro.sancheck.checker import check_repo, repo_src_root

FASTPATH = Path(repo_src_root()) / "repro" / "kernel" / "fastpath.py"


def _guard_clauses():
    tree = ast.parse(FASTPATH.read_text())
    func = next(n for n in tree.body
                if isinstance(n, ast.FunctionDef) and n.name == "fast_path_ok")
    ret = next(n for n in func.body if isinstance(n, ast.Return))
    assert isinstance(ret.value, ast.BoolOp) and isinstance(
        ret.value.op, ast.And), "fast_path_ok is no longer an and-chain"
    return [ast.unparse(v) for v in ret.value.values]


CLAUSES = _guard_clauses()


def _without_clause(index):
    """fastpath.py source with conjunct ``index`` dropped from the guard."""
    tree = ast.parse(FASTPATH.read_text())
    func = next(n for n in tree.body
                if isinstance(n, ast.FunctionDef) and n.name == "fast_path_ok")
    ret = next(n for n in func.body if isinstance(n, ast.Return))
    del ret.value.values[index]
    if len(ret.value.values) == 1:
        ret.value = ret.value.values[0]
    return ast.unparse(tree) + "\n"


@pytest.fixture(scope="module")
def scratch_src(tmp_path_factory):
    root = tmp_path_factory.mktemp("guard") / "src"
    shutil.copytree(Path(repo_src_root()) / "repro", root / "repro")
    return root


def _fastpath_violations(scratch_src):
    return [v for v in check_repo(src_root=scratch_src,
                                  rules=frozenset({"fastpath-sound"}))
            if v.rule == "fastpath-sound"]


def test_guard_has_the_expected_shape():
    assert len(CLAUSES) >= 8
    joined = " ".join(CLAUSES)
    for feature in ("fastpath", "points.enabled", "smp", "san",
                    "sanitizer", "failpoints", "numa"):
        assert feature in joined


def test_unmodified_copy_is_clean(scratch_src):
    (scratch_src / "repro" / "kernel" / "fastpath.py").write_text(
        FASTPATH.read_text())
    assert _fastpath_violations(scratch_src) == []


@pytest.mark.parametrize("index", range(len(CLAUSES)),
                         ids=[c.replace(" ", "_") for c in CLAUSES])
def test_deleting_any_clause_turns_the_run_red(scratch_src, index):
    (scratch_src / "repro" / "kernel" / "fastpath.py").write_text(
        _without_clause(index))
    violations = _fastpath_violations(scratch_src)
    assert violations, (
        f"dropping guard clause {CLAUSES[index]!r} went undetected")
    assert all(v.func == "fast_path_ok" for v in violations)
