"""Cluster building blocks: striper, DLM, NIC model, fleet aggregator."""

import pytest

from repro.cluster import (ConsistentHashStriper, Dlm, FleetAggregator, Nic,
                           RoundRobinStriper, make_striper)
from repro.cluster.net import RX, TX
from repro.errors import InvalidArgumentError
from repro.kernel.failpoints import FailPoints
from repro.smp.locks import LockOrderError


class TestStripers:
    def test_hash_same_seed_same_assignment(self):
        a = ConsistentHashStriper(8, seed=42)
        b = ConsistentHashStriper(8, seed=42)
        keys = range(5000)
        assert [a.route(k) for k in keys] == [b.route(k) for k in keys]

    def test_hash_different_seed_differs(self):
        a = ConsistentHashStriper(8, seed=42)
        b = ConsistentHashStriper(8, seed=43)
        keys = range(5000)
        assert [a.route(k) for k in keys] != [b.route(k) for k in keys]

    def test_hash_covers_all_replicas(self):
        striper = ConsistentHashStriper(8, seed=1)
        hit = {striper.route(k) for k in range(20_000)}
        assert hit == set(range(8))

    def test_hash_bounded_remap_on_removal(self):
        # Consistent hashing's defining property: removing one replica
        # remaps only the arc it owned, not the whole keyspace.  Vnode
        # positions depend on (seed, replica, vnode) alone, so the
        # 7-replica ring is the 8-replica ring minus replica 7's arc.
        full = ConsistentHashStriper(8, seed=7)
        fewer = ConsistentHashStriper(7, seed=7)
        keys = range(20_000)
        before = [full.route(k) for k in keys]
        after = [fewer.route(k) for k in keys]
        changed = sum(1 for x, y in zip(before, after) if x != y)
        owned = sum(1 for owner in before if owner == 7)
        assert changed == owned            # only the lost replica's keys
        assert 0 < owned < len(before) / 4  # ~1/8 of the keyspace

    def test_hash_successor_skips_unavailable(self):
        striper = ConsistentHashStriper(4, seed=0)
        target = striper.successor(1, skip=(striper.successor(1),))
        assert target not in (1, striper.successor(1))
        # Everyone down: nowhere to fail over.
        assert striper.successor(1, skip=(0, 1, 2, 3)) == 1

    def test_rr_rotates_and_resets(self):
        striper = RoundRobinStriper(3)
        assert [striper.route(k) for k in range(7)] == [0, 1, 2, 0, 1, 2, 0]
        striper.reset()
        assert striper.route(99) == 0

    def test_rr_successor(self):
        striper = RoundRobinStriper(4)
        assert striper.successor(1) == 2
        assert striper.successor(1, skip=(2, 3)) == 0

    def test_factory(self):
        assert make_striper("rr", 2).policy == "rr"
        assert make_striper("hash", 2).policy == "hash"
        with pytest.raises(InvalidArgumentError):
            make_striper("random", 2)


class TestDlm:
    def test_uncontended_grant_costs_one_rtt(self):
        dlm = Dlm(acquire_rtt_us=20.0)
        assert dlm.acquire("epoch", "a", 1000) == 1000 + 20_000

    def test_fifo_chaining(self):
        dlm = Dlm(acquire_rtt_us=10.0)
        g1 = dlm.acquire("epoch", "a", 0)
        dlm.release("epoch", "a", g1 + 500)
        g2 = dlm.acquire("epoch", "b", 100)      # requested while a held it
        assert g2 == g1 + 500 + 10_000
        dlm.release("epoch", "b", g2)
        assert dlm.grant_order("epoch") == ["a", "b"]
        assert dlm.stats()["queued_grants"] == 1

    def test_recursive_acquire_raises(self):
        dlm = Dlm()
        dlm.acquire("epoch", "a", 0)
        with pytest.raises(LockOrderError):
            dlm.acquire("epoch", "a", 100)

    def test_ordering_discipline(self):
        dlm = Dlm()
        dlm.acquire("b-lock", "a", 0)
        with pytest.raises(LockOrderError):
            dlm.acquire("a-lock", "a", 100)      # descending order
        dlm.acquire("c-lock", "a", 100)          # ascending is fine

    def test_release_requires_holder(self):
        dlm = Dlm()
        with pytest.raises(LockOrderError):
            dlm.release("epoch", "nobody", 0)

    def test_timeout_failpoint_leaves_lock_untouched(self):
        fp = FailPoints()
        dlm = Dlm(failpoints=fp)
        fp.arm("dlm.acquire_timeout", 1)
        assert dlm.acquire("epoch", "a", 0) is None
        assert dlm.timeouts == 1
        assert dlm.holder("epoch") is None
        # The next acquire (failpoint spent) succeeds normally.
        assert dlm.acquire("epoch", "b", 0) is not None


class TestNic:
    def test_occupancy_scales_with_bytes_and_gbps(self):
        nic = Nic("n", gbps=10.0)
        assert nic.occupancy_ns(1250) == 1000     # 10 kb at 10 Gb/s = 1 us
        assert Nic("f", gbps=40.0).occupancy_ns(1250) == 250

    def test_queue_delay_behind_earlier_transfer(self):
        nic = Nic("n", gbps=10.0)
        first = nic.transfer(TX, 12_500, 0)       # occupies until 10 us
        assert first == 10_000
        second = nic.transfer(TX, 1250, 5_000)    # arrives mid-occupancy
        assert second == 5_000 + 1_000            # 5 us queue + 1 us wire
        assert nic.stats(TX)["queue_delay_ns"] == 5_000

    def test_full_duplex_directions_independent(self):
        nic = Nic("n", gbps=10.0)
        nic.transfer(TX, 12_500, 0)
        assert nic.transfer(RX, 1250, 0) == 1000  # rx sees no tx queue

    def test_load_warning_above_threshold(self):
        nic = Nic("n", gbps=1.0, warn_queue_us=10.0)
        nic.transfer(TX, 12_500, 0)               # occupies 100 us
        nic.transfer(TX, 125, 0)                  # queues 100 us > 10 us
        assert nic.stats(TX)["load_warnings"] == 1

    def test_tx_drop_failpoint_charges_retransmit(self):
        fp = FailPoints()
        nic = Nic("n", gbps=10.0, failpoints=fp, retransmit_us=50.0)
        fp.arm("nic.tx_drop", 1)
        assert nic.transfer(TX, 1250, 0) == 1000 + 50_000
        assert nic.stats(TX)["retransmits"] == 1
        assert nic.stats(TX)["messages"] == 1     # delivered, not dropped

    def test_rejects_bad_sizes(self):
        with pytest.raises(InvalidArgumentError):
            Nic("n", gbps=0)
        with pytest.raises(InvalidArgumentError):
            Nic("n").transfer(TX, 0, 0)


class TestFleetAggregator:
    def test_merged_percentiles_across_replicas(self):
        agg = FleetAggregator(2)
        for v in range(1, 51):
            agg.add(0, v)
        for v in range(51, 101):
            agg.add(1, v)
        pct = agg.percentiles((50, 99, 99.9))
        assert pct[50] == 50
        assert pct[99] == 99
        assert pct[99.9] == 100

    def test_p999_small_sample_is_max(self):
        # Nearest-rank on 10 samples: the 99.9th percentile is the max —
        # pinned so tiny smoke runs stay well-defined.
        agg = FleetAggregator(1)
        for v in (5, 1, 9, 3, 7, 2, 8, 4, 6, 1000):
            agg.add(0, v)
        assert agg.percentiles((99.9,))[99.9] == 1000

    def test_per_replica_split_sums(self):
        agg = FleetAggregator(3)
        agg.add(0, 10)
        agg.add(0, 20)
        agg.add(2, 30)
        agg.drop()
        assert agg.completed == 3
        assert agg.completed_by_replica() == [2, 0, 1]
        assert agg.dropped == 1
        assert agg.replica_percentiles(1) == {}

    def test_empty_percentiles(self):
        assert FleetAggregator(2).percentiles() == {}
