"""Page-fault handler paths: demand zero, COW, reuse, spurious."""

import pytest

from repro import MIB, PROT_READ, PROT_WRITE, SegmentationFault

RW = PROT_READ | PROT_WRITE


class TestDemandPaging:
    def test_first_touch_allocates(self, proc, machine):
        addr = proc.mmap(64 * 1024)
        assert proc.rss_bytes == 0
        proc.write(addr, b"x")
        assert proc.rss_bytes == 4096
        assert machine.stats.demand_zero_faults == 1

    def test_read_fault_allocates_zeroed(self, proc, machine):
        addr = proc.mmap(64 * 1024)
        assert proc.read(addr + 8192, 8) == bytes(8)
        assert machine.stats.demand_zero_faults == 1

    def test_one_fault_per_page(self, proc, machine):
        addr = proc.mmap(64 * 1024)
        proc.write(addr, b"a")
        proc.write(addr + 100, b"b")
        proc.write(addr + 4000, b"c")
        assert machine.stats.demand_zero_faults == 1
        proc.write(addr + 4096, b"d")
        assert machine.stats.demand_zero_faults == 2


class TestCopyOnWrite:
    def test_cow_after_fork_isolates(self, proc, machine):
        addr = proc.mmap(64 * 1024)
        proc.write(addr, b"parent")
        child = proc.fork()
        child.write(addr, b"child!")
        assert proc.read(addr, 6) == b"parent"
        assert child.read(addr, 6) == b"child!"
        assert machine.stats.cow_faults >= 1

    def test_cow_reuse_after_child_exit(self, proc, machine):
        """Once the child dies, the parent's write reuses the page."""
        addr = proc.mmap(64 * 1024)
        proc.write(addr, b"data")
        child = proc.fork()
        child.exit()
        proc.wait()
        before_copies = machine.stats.cow_faults
        proc.write(addr, b"more")
        assert machine.stats.cow_reuse >= 1
        assert machine.stats.cow_faults == before_copies

    def test_both_sides_cow_once(self, proc, machine):
        addr = proc.mmap(64 * 1024)
        proc.write(addr, b"origin")
        child = proc.fork()
        proc.write(addr, b"parent")   # parent COWs
        child.write(addr, b"child!")  # child reuses (rc back to 1) or COWs
        assert proc.read(addr, 6) == b"parent"
        assert child.read(addr, 6) == b"child!"

    def test_read_does_not_cow(self, proc, machine):
        addr = proc.mmap(64 * 1024)
        proc.write(addr, b"data")
        child = proc.fork()
        before = machine.stats.cow_faults
        assert child.read(addr, 4) == b"data"
        assert proc.read(addr, 4) == b"data"
        assert machine.stats.cow_faults == before


class TestSharedMemory:
    def test_shared_anon_visible_across_fork(self, proc):
        addr = proc.mmap_shared(64 * 1024)
        proc.write(addr, b"pre-fork")
        child = proc.fork()
        assert child.read(addr, 8) == b"pre-fork"
        child.write(addr, b"by child")
        assert proc.read(addr, 8) == b"by child"
        proc.write(addr + 100, b"by parent")
        assert child.read(addr + 100, 9) == b"by parent"

    def test_shared_anon_after_odfork(self, proc):
        addr = proc.mmap_shared(64 * 1024)
        proc.write(addr, b"original")
        child = proc.odfork()
        child.write(addr, b"odchild!")
        assert proc.read(addr, 8) == b"odchild!"


class TestSegfaults:
    def test_write_to_readonly(self, proc):
        addr = proc.mmap(64 * 1024, prot=PROT_READ)
        with pytest.raises(SegmentationFault) as excinfo:
            proc.write(addr, b"x")
        assert excinfo.value.is_write

    def test_unmapped_address(self, proc):
        with pytest.raises(SegmentationFault):
            proc.read(0x600000000000, 1)

    def test_fault_stats_counted(self, proc, machine):
        addr = proc.mmap(64 * 1024)
        proc.write(addr, b"x")
        assert machine.stats.page_faults >= 1
