"""COW overlay containers used by forked application state."""

import pytest

from repro.apps import CowDict, CowSet, SlotArena


class TestCowDict:
    def test_read_through(self):
        base = {"a": 1, "b": 2}
        overlay = CowDict.overlay(base)
        assert overlay["a"] == 1
        assert overlay.get("b") == 2
        assert "a" in overlay

    def test_write_does_not_touch_base(self):
        base = {"a": 1}
        overlay = CowDict.overlay(base)
        overlay["a"] = 99
        overlay["new"] = 5
        assert base == {"a": 1}
        assert overlay["a"] == 99
        assert overlay["new"] == 5

    def test_delete_masks_base_key(self):
        base = {"a": 1}
        overlay = CowDict.overlay(base)
        del overlay["a"]
        assert "a" not in overlay
        assert overlay.get("a") is None
        with pytest.raises(KeyError):
            _ = overlay["a"]
        assert base["a"] == 1

    def test_delete_missing_raises(self):
        overlay = CowDict.overlay({})
        with pytest.raises(KeyError):
            del overlay["ghost"]

    def test_iteration_merges(self):
        base = {"a": 1, "b": 2}
        overlay = CowDict.overlay(base)
        overlay["c"] = 3
        del overlay["a"]
        assert sorted(overlay.keys()) == ["b", "c"]
        assert dict(overlay.items()) == {"b": 2, "c": 3}
        assert len(overlay) == 2

    def test_nested_overlays(self):
        base = {"x": 0}
        gen1 = CowDict.overlay(base)
        gen1["x"] = 1
        gen2 = CowDict.overlay(gen1)
        gen2["x"] = 2
        assert base["x"] == 0
        assert gen1["x"] == 1
        assert gen2["x"] == 2

    def test_setdefault_and_pop(self):
        overlay = CowDict.overlay({"a": 1})
        assert overlay.setdefault("a", 9) == 1
        assert overlay.setdefault("b", 9) == 9
        assert overlay.pop("a") == 1
        assert "a" not in overlay
        assert overlay.pop("ghost", "dflt") == "dflt"
        with pytest.raises(KeyError):
            overlay.pop("ghost")


class TestCowSet:
    def test_membership_through_base(self):
        base = {1, 2}
        overlay = CowSet.overlay(base)
        assert 1 in overlay
        overlay.add(3)
        overlay.discard(1)
        assert 3 in overlay and 1 not in overlay
        assert base == {1, 2}

    def test_re_add_after_remove(self):
        overlay = CowSet.overlay({1})
        overlay.discard(1)
        overlay.add(1)
        assert 1 in overlay

    def test_remove_missing_raises(self):
        overlay = CowSet.overlay(set())
        with pytest.raises(KeyError):
            overlay.remove(7)

    def test_iteration_and_len(self):
        overlay = CowSet.overlay({1, 2, 3})
        overlay.add(4)
        overlay.discard(2)
        assert sorted(overlay) == [1, 3, 4]
        assert len(overlay) == 3

    def test_nested(self):
        base = {1}
        gen1 = CowSet.overlay(base)
        gen1.add(2)
        gen2 = CowSet.overlay(gen1)
        gen2.discard(1)
        assert 1 in gen1
        assert 1 not in gen2
        assert 2 in gen2


class TestSlotArena:
    def test_alloc_sequential_and_recycle(self):
        arena = SlotArena(base_addr=0x1000, record_size=64, n_slots=4)
        a = arena.alloc()
        b = arena.alloc()
        assert (a, b) == (0, 1)
        arena.free(a)
        assert arena.alloc() == a
        assert arena.used_slots == 2

    def test_addresses(self):
        arena = SlotArena(base_addr=0x1000, record_size=64, n_slots=4)
        assert arena.addr_of(0) == 0x1000
        assert arena.addr_of(3) == 0x1000 + 192

    def test_exhaustion(self):
        arena = SlotArena(0, 8, 2)
        arena.alloc()
        arena.alloc()
        with pytest.raises(MemoryError):
            arena.alloc()

    def test_overlay_isolated(self):
        arena = SlotArena(0, 8, 10)
        arena.alloc()
        child = arena.overlay()
        child_slot = child.alloc()
        parent_slot = arena.alloc()
        assert child_slot == parent_slot == 1  # both continue from parent state
        child.free(child_slot)
        assert arena.alloc() == 2  # parent free list unaffected
