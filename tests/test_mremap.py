"""mremap: shrink, grow in place, move — including the §3.3 COW cases."""

import pytest

from repro import MIB, SegmentationFault
from repro.errors import InvalidArgumentError
from conftest import make_filled_region


class TestShrink:
    def test_shrink_in_place(self, proc):
        addr = proc.mmap(1 * MIB)
        proc.write(addr, b"head")
        proc.write(addr + 900 * 1024, b"tail")
        new_addr = proc.mremap(addr, 1 * MIB, 512 * 1024)
        assert new_addr == addr
        assert proc.read(addr, 4) == b"head"
        with pytest.raises(SegmentationFault):
            proc.read(addr + 900 * 1024, 1)

    def test_shrink_with_shared_table_copies(self, proc, machine):
        """Shrinking inside a shared 2 MiB slot is a COW-on-unmap."""
        addr, _ = make_filled_region(proc, size=2 * MIB)
        child = proc.odfork()
        copies_before = machine.stats.table_cow_copies
        child.mremap(addr, 2 * MIB, 1 * MIB)
        assert machine.stats.table_cow_copies == copies_before + 1
        # Parent keeps the full mapping.
        assert proc.read(addr + 2 * MIB - 4096, 1) is not None


class TestGrow:
    def test_grow_in_place_when_room(self, proc):
        addr = proc.mmap(512 * 1024)
        proc.write(addr, b"data")
        new_addr = proc.mremap(addr, 512 * 1024, 1 * MIB)
        assert new_addr == addr
        assert proc.read(addr, 4) == b"data"
        proc.write(addr + 900 * 1024, b"grown")
        assert proc.read(addr + 900 * 1024, 5) == b"grown"

    def test_grow_moves_when_blocked(self, proc):
        a = proc.mmap(512 * 1024)
        proc.write(a, b"moving data")
        proc.write(a + 500 * 1024, b"near end")
        # Block in-place growth with an adjacent mapping.
        proc.mmap(64 * 1024, addr=a + 512 * 1024,
                  flags=0b100101)  # MAP_PRIVATE|MAP_ANONYMOUS|MAP_FIXED
        new_addr = proc.mremap(a, 512 * 1024, 2 * MIB)
        assert new_addr != a
        assert proc.read(new_addr, 11) == b"moving data"
        assert proc.read(new_addr + 500 * 1024, 8) == b"near end"
        with pytest.raises(SegmentationFault):
            proc.read(a, 1)

    def test_grow_no_move_rejected_when_blocked(self, proc):
        a = proc.mmap(512 * 1024)
        proc.mmap(64 * 1024, addr=a + 512 * 1024, flags=0b100101)
        with pytest.raises(InvalidArgumentError):
            proc.mremap(a, 512 * 1024, 2 * MIB, may_move=False)


class TestMove:
    def test_move_preserves_cow_relationships(self, proc, machine):
        """Moved entries keep sharing data pages with the fork child."""
        addr, _ = make_filled_region(proc, size=1 * MIB)
        proc.write(addr, b"shared page")
        child = proc.fork()
        # Force a move of the parent's mapping.
        proc.mmap(64 * 1024, addr=addr + 1 * MIB, flags=0b100101)
        new_addr = proc.mremap(addr, 1 * MIB, 4 * MIB)
        assert proc.read(new_addr, 11) == b"shared page"
        # COW still intact: parent write does not affect the child.
        proc.write(new_addr, b"parent-only")
        assert child.read(addr, 11) == b"shared page"

    def test_move_from_shared_table_copies_first(self, proc, machine):
        addr, _ = make_filled_region(proc, size=2 * MIB)
        child = proc.odfork()
        proc.mmap(64 * 1024, addr=addr + 2 * MIB, flags=0b100101)
        copies_before = machine.stats.table_cow_copies
        new_addr = proc.mremap(addr, 2 * MIB, 4 * MIB)
        assert machine.stats.table_cow_copies >= copies_before + 1
        # The child still translates through the old (shared) table.
        assert child.read(addr, 3) is not None
        assert proc.read(new_addr, 3) is not None

    def test_move_page_refcounts_stable(self, proc, machine):
        """Entry moves transfer ownership: no refcount churn."""
        addr = proc.mmap(128 * 1024)
        proc.write(addr, b"x")
        leaf = proc.mm.get_pte_table(addr)
        pfn = leaf.child_pfn((addr >> 12) & 511)
        assert machine.pages.get_ref(pfn) == 1
        proc.mmap(64 * 1024, addr=addr + 128 * 1024, flags=0b100101)
        proc.mremap(addr, 128 * 1024, 256 * 1024)
        assert machine.pages.get_ref(pfn) == 1


class TestValidation:
    def test_same_size_noop(self, proc):
        addr = proc.mmap(64 * 1024)
        assert proc.mremap(addr, 64 * 1024, 64 * 1024) == addr

    def test_bad_ranges_rejected(self, proc):
        addr = proc.mmap(64 * 1024)
        with pytest.raises(InvalidArgumentError):
            proc.mremap(addr + 4096, 64 * 1024, 128 * 1024)  # not VMA start
        with pytest.raises(InvalidArgumentError):
            proc.mremap(addr, 0, 128 * 1024)
        with pytest.raises(InvalidArgumentError):
            proc.mremap(0x700000000000, 4096, 8192)  # unmapped
