"""Property tests for the NUMA + Mitosis subsystem under random op mixes.

Each generated scenario drives a replicated two-node machine through a
random interleaving of mempolicy changes, page migrations, fork/odfork,
COW writes, remote-pinned touches, and exits — under a random
``odfork_replica_policy`` — and checks the subsystem's conservation
laws at every step:

* per-node frame conservation: every zone's ``free + used`` equals its
  span, and the replica registry stays bijective (no replica frame
  leaked or double-registered);
* COW isolation still holds (each process reads what it wrote);
* after the whole tree exits, every replica has been collapsed — frame
  and replica counts return exactly to the pre-scenario baseline, so no
  stale replica survives its primary.

``audit_machine`` runs the full invariant sweep (including the per-node
and replica audits) after the dust settles.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
import hypothesis.strategies as st

from repro import MIB, Machine
from repro.numa import (
    POLICY_BIND,
    POLICY_FIRST_TOUCH,
    POLICY_INTERLEAVE,
    REPLICA_POLICIES,
    NumaTopology,
)
from repro.verify.audit import audit_machine

REGION = 1 * MIB
PAGE = 4096
N_PAGES = REGION // PAGE
NODES = 2

OP_WRITE, OP_TOUCH_REMOTE, OP_FORK, OP_ODFORK, OP_SET_POLICY, \
    OP_MIGRATE, OP_EXIT = range(7)

op_script = st.lists(
    st.tuples(
        st.integers(0, 6),            # opcode
        st.integers(0, 5),            # process index (mod live procs)
        st.integers(0, N_PAGES - 1),  # page / node / policy selector
    ),
    min_size=1, max_size=18,
)


def check_conservation(machine):
    """Zone spans and the replica registry balance after every op."""
    allocator = machine.allocator
    for zone in allocator.zones:
        assert zone.free_frames + zone.used_frames == zone.n_frames
    mitosis = machine.kernel.mitosis
    forward = sum(len(got) for got in mitosis.replicas.values())
    assert forward == len(mitosis.replica_of)
    for primary, got in mitosis.replicas.items():
        for node, rpfn in got.items():
            assert allocator.node_of(rpfn) == node
            assert mitosis.replica_of[rpfn] == primary


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(policy=st.sampled_from(REPLICA_POLICIES), ops=op_script)
def test_random_numa_ops_conserve_frames_and_isolation(policy, ops):
    machine = Machine(
        phys_mb=128,
        numa=NumaTopology(nodes=NODES, replicate=True,
                          odfork_replica_policy=policy))
    machine.init_process   # materialise init before the baseline
    base_frames = machine.used_frames()
    base_replicas = machine.kernel.mitosis.replica_frame_count()
    kernel = machine.kernel

    root = machine.spawn_process("root")
    region = root.mmap(REGION)
    root.touch_range(region, REGION, write=True)

    procs = [root]
    parent_of = {root.pid: machine.init_process}
    shadow = {root.pid: {}}
    policies = (POLICY_FIRST_TOUCH, POLICY_INTERLEAVE, POLICY_BIND)

    for counter, (opcode, proc_index, arg) in enumerate(ops):
        proc = procs[proc_index % len(procs)]
        if opcode == OP_WRITE:
            payload = f"{proc.pid:02d}-{counter:03d}".encode()[:8]
            proc.write(region + arg * PAGE, payload)
            shadow[proc.pid][arg] = payload
        elif opcode == OP_TOUCH_REMOTE:
            with kernel.pin_to_node(arg % NODES):
                proc.touch(region + arg * PAGE, PAGE)
        elif opcode in (OP_FORK, OP_ODFORK) and len(procs) < 5:
            child = proc.odfork() if opcode == OP_ODFORK else proc.fork()
            procs.append(child)
            parent_of[child.pid] = proc
            shadow[child.pid] = dict(shadow[proc.pid])
        elif opcode == OP_SET_POLICY:
            mode = policies[arg % 3]
            node = arg % NODES if mode == POLICY_BIND else None
            kernel.sys_set_mempolicy(proc.task, mode, node)
        elif opcode == OP_MIGRATE:
            kernel.sys_migrate_pages(proc.task, arg % NODES)
        elif opcode == OP_EXIT and len(procs) > 1:
            # Only leaves exit mid-scenario, keeping the tree reapable.
            leaves = [p for p in procs
                      if not any(parent_of[q.pid] is p for q in procs)]
            victim = leaves[proc_index % len(leaves)]
            victim.exit()
            parent_of[victim.pid].wait(victim.pid)
            procs.remove(victim)
            del shadow[victim.pid]
        check_conservation(machine)

    # COW isolation survives whatever the scenario did.
    for proc in procs:
        for page, payload in shadow[proc.pid].items():
            assert proc.read(region + page * PAGE, len(payload)) == payload
    audit_machine(machine)

    # Tear the whole tree down, children before parents: every replica
    # must collapse with its primary — nothing stale, nothing leaked.
    for proc in reversed(procs):
        proc.exit()
        parent_of[proc.pid].wait(proc.pid)
    assert machine.used_frames() == base_frames
    assert kernel.mitosis.replica_frame_count() == base_replicas
    # No stale replica: every surviving primary is a live, registered
    # table (only init's address space remains).
    for primary in kernel.mitosis.replicas:
        assert primary in kernel._tables
    audit_machine(machine)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(policy=st.sampled_from(REPLICA_POLICIES),
       fail_nth=st.integers(1, 12), ops=op_script)
def test_replica_oom_mid_scenario_stays_clean(policy, fail_nth, ops):
    """An armed replica-allocation OOM anywhere in the mix leaks nothing."""
    machine = Machine(
        phys_mb=128,
        numa=NumaTopology(nodes=NODES, replicate=True,
                          odfork_replica_policy=policy))
    machine.init_process
    base_frames = machine.used_frames()
    base_replicas = machine.kernel.mitosis.replica_frame_count()
    kernel = machine.kernel
    kernel.failpoints.arm("mitosis.replica_alloc", nth=fail_nth)

    root = machine.spawn_process("root")
    region = root.mmap(REGION)
    root.touch_range(region, REGION, write=True)
    procs = [root]
    parent_of = {root.pid: machine.init_process}
    for opcode, proc_index, arg in ops:
        proc = procs[proc_index % len(procs)]
        if opcode in (OP_FORK, OP_ODFORK) and len(procs) < 4:
            child = (proc.odfork() if opcode == OP_ODFORK
                     else proc.fork())
            procs.append(child)
            parent_of[child.pid] = proc
        elif opcode == OP_WRITE:
            proc.write(region + arg * PAGE, b"x")
        else:
            proc.touch(region + arg * PAGE, PAGE)
        check_conservation(machine)
    audit_machine(machine)

    for proc in reversed(procs):
        proc.exit()
        parent_of[proc.pid].wait(proc.pid)
    assert kernel.mitosis.replica_frame_count() == base_replicas
    assert machine.used_frames() == base_frames
    audit_machine(machine)
