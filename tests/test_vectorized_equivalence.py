"""Differential equivalence: analytic fast path vs per-event reference.

Every scenario below runs twice on twin machines — one with the analytic
fast path enabled (the default), one forced per-event with
``Machine(fastpath=False)`` — and asserts a *complete* fingerprint match:
logical memory content, per-process RSS, vmstat counters, kernel stats,
and the virtual clock down to the nanosecond.  The clock assertion is the
strong one: the fast path replays the per-event charge stream through the
same noise draws, so even the jittered virtual time must agree exactly.

The per-event fingerprints are additionally frozen as golden constants.
When a scenario fails, the golden tells you which backend moved: a
fingerprint mismatch with an unchanged golden means the fast path
regressed; a changed golden means the per-event reference itself changed
and the golden needs a deliberate reseed.
"""

import hashlib

from repro import Machine
from repro.kernel.kernel import MADV_DONTNEED, MADV_HUGEPAGE

MIB = 1024 * 1024


def fingerprint(machine, procs_and_regions):
    """Digest everything the equivalence contract promises is identical."""
    h = hashlib.sha256()
    for process, regions in procs_and_regions:
        if not process.alive:
            h.update(b"dead")
            continue
        h.update(str(process.rss_bytes).encode())
        for addr, length in regions:
            h.update(process.read(addr, length))
    for key in sorted(machine.vmstat()):
        h.update(f"{key}={machine.vmstat()[key]}".encode())
    stats = machine.stats
    for name in ("forks", "odforks", "page_faults", "cow_faults",
                 "demand_zero_faults", "tables_shared"):
        h.update(f"{name}={getattr(stats, name)}".encode())
    h.update(str(machine.kernel.clock.now_ns).encode())
    h.update(str(machine.used_frames()).encode())
    return h.hexdigest()[:16]


def run_paired(scenario, golden=None, **machine_kwargs):
    prints = {}
    for label, fastpath in (("fast", True), ("per-event", False)):
        machine = Machine(fastpath=fastpath, **machine_kwargs)
        tracked = scenario(machine)
        prints[label] = fingerprint(machine, tracked)
    assert prints["fast"] == prints["per-event"], (
        f"fast path diverged from the per-event reference: {prints}")
    if golden is not None:
        assert prints["per-event"] == golden, (
            f"the per-event reference itself moved (got "
            f"{prints['per-event']!r}); reseed the golden only if the "
            f"change is deliberate")
    return prints["per-event"]


# ---------------------------------------------------------------------- #
# scenarios


def classic_fork_flow(machine):
    parent = machine.spawn_process("parent")
    addr = parent.mmap(4 * MIB)
    parent.touch_range(addr, 4 * MIB, write=True)
    parent.write(addr + 123, b"parent-before-fork")
    child = parent.fork("child")
    child.write(addr + 123, b"child-after-fork!!")
    parent.touch_range(addr, 1 * MIB, write=True)
    grandchild = child.fork("grandchild")
    grandchild.write(addr + 2 * MIB, b"gc")
    tracked = [(parent, [(addr, 4 * MIB)]), (child, [(addr, 4 * MIB)]),
               (grandchild, [(addr, 4 * MIB)])]
    child.exit()
    return tracked


def odfork_flow(machine):
    parent = machine.spawn_process("parent")
    addr = parent.mmap(6 * MIB)
    parent.touch_range(addr, 6 * MIB, write=True)
    parent.write(addr, b"shared tables ahead")
    child = parent.odfork("child")
    # Table-COW: first writes through shared tables copy one table each.
    child.write(addr + 1 * MIB, b"child table cow")
    parent.write(addr + 3 * MIB, b"parent table cow")
    sibling = parent.odfork("sibling")
    sibling.touch_range(addr, 2 * MIB, write=True)
    tracked = [(parent, [(addr, 6 * MIB)]), (child, [(addr, 6 * MIB)]),
               (sibling, [(addr, 6 * MIB)])]
    sibling.exit()
    return tracked


def fault_mix_flow(machine):
    proc = machine.spawn_process("faulty")
    a = proc.mmap(2 * MIB)
    b = proc.mmap(3 * MIB)
    proc.touch_range(a, 2 * MIB, write=False)   # demand-zero, read
    proc.touch_range(a, 1 * MIB, write=True)    # upgrade to dirty
    proc.touch_range(b, 3 * MIB, write=True)
    proc.madvise(b, 1 * MIB, MADV_DONTNEED)     # zap, then refault
    proc.touch_range(b, 1 * MIB, write=True)
    child = proc.fork("reader")
    child.touch_range(a, 2 * MIB, write=False)
    child.write(b + 5000, b"cow one page")
    return [(proc, [(a, 2 * MIB), (b, 3 * MIB)]),
            (child, [(a, 2 * MIB), (b, 3 * MIB)])]


def reclaim_flow(machine):
    # Small machine: the later allocations push past the watermark and
    # wake reclaim, swapping cold pages out; the fork fast path must
    # bail (headroom rule) and the exit fast path must bail on swap
    # entries, so this scenario exercises the engagement predicate.
    proc = machine.spawn_process("hog")
    a = proc.mmap(8 * MIB)
    proc.touch_range(a, 8 * MIB, write=True)
    b = proc.mmap(8 * MIB)
    proc.touch_range(b, 8 * MIB, write=True)
    child = proc.fork("c")
    child.touch_range(a, 1 * MIB, write=True)
    child.exit()
    proc.touch_range(a, 2 * MIB, write=False)
    return [(proc, [(a, 8 * MIB), (b, 8 * MIB)])]


def thp_flow(machine):
    proc = machine.spawn_process("huge")
    addr = proc.mmap(8 * MIB)
    proc.madvise(addr, 8 * MIB, MADV_HUGEPAGE)
    proc.touch_range(addr, 8 * MIB, write=True)
    proc.write(addr + 4096, b"huge page payload")
    child = proc.fork("child")       # huge entries copied with refcounts
    child.write(addr + 2 * MIB + 7, b"huge cow in child")
    sib = proc.odfork("sib")
    sib.touch_range(addr, 4 * MIB, write=False)
    tracked = [(proc, [(addr, 8 * MIB)]), (child, [(addr, 8 * MIB)]),
               (sib, [(addr, 8 * MIB)])]
    child.exit()
    return tracked


def numa_flow(machine):
    # With a NUMA topology the fast path must disengage entirely
    # (fast_path_ok requires kernel.numa is None); the paired machines
    # still have different `fastpath` attributes, proving the knob is
    # inert when the predicate says no.
    proc = machine.spawn_process("numa")
    addr = proc.mmap(4 * MIB)
    proc.touch_range(addr, 4 * MIB, write=True)
    child = proc.odfork("child")
    child.write(addr + MIB, b"replicated tables")
    tracked = [(proc, [(addr, 4 * MIB)]), (child, [(addr, 4 * MIB)])]
    child.exit()
    return tracked


# ---------------------------------------------------------------------- #
# golden per-event fingerprints (see module docstring for reseed policy)

GOLDEN = {
    "classic": "3222f1857e8472c6",
    "odfork": "5289d2a9052b416e",
    "fault_mix": "f299722d2beef818",
    "reclaim": "21c0383a7f9429d1",
    "thp": "6d25909a7c898384",
    "numa": "f3140b6a0f20b844",
}


class TestFastPathEquivalence:
    def test_classic_fork_flow(self):
        run_paired(classic_fork_flow, GOLDEN["classic"], phys_mb=128)

    def test_odfork_flow(self):
        run_paired(odfork_flow, GOLDEN["odfork"], phys_mb=128)

    def test_fault_mix_flow(self):
        run_paired(fault_mix_flow, GOLDEN["fault_mix"], phys_mb=128)

    def test_reclaim_flow(self):
        run_paired(reclaim_flow, GOLDEN["reclaim"], phys_mb=24, swap_mb=32)

    def test_thp_flow(self):
        run_paired(thp_flow, GOLDEN["thp"], phys_mb=128)

    def test_numa_flow(self):
        from repro.numa.topology import NumaTopology
        run_paired(numa_flow, GOLDEN["numa"], phys_mb=128,
                   numa=NumaTopology(nodes=2))


class TestEngagementPredicate:
    def test_env_var_forces_per_event(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
        machine = Machine(phys_mb=64)
        assert machine.kernel.fastpath is False

    def test_knob_defaults_on(self):
        machine = Machine(phys_mb=64)
        assert machine.kernel.fastpath is True

    def test_tracing_disengages(self):
        from repro.kernel.fastpath import fast_path_ok
        from repro.trace import points
        from repro.trace.tracer import Tracer

        machine = Machine(phys_mb=64)
        assert fast_path_ok(machine.kernel)
        prev = points.current()
        points.attach(Tracer())
        try:
            assert not fast_path_ok(machine.kernel)
        finally:
            points.detach()
            if prev is not None:
                points.attach(prev)

    def test_armed_failpoints_disengage(self):
        from repro.kernel.fastpath import fast_path_ok

        machine = Machine(phys_mb=64)
        machine.kernel.failpoints.arm("fork.copy_slot", 1)
        try:
            assert not fast_path_ok(machine.kernel)
        finally:
            machine.kernel.failpoints.disarm()
        assert fast_path_ok(machine.kernel)
