"""VM cloning (TriforceAFL model) and the prefork HTTP server."""

import pytest

from repro import MIB, Machine
from repro.apps import (
    VM_FUZZ_SEEDS,
    ForkServerFuzzer,
    GuestPanic,
    PreforkServer,
    VirtualMachine,
    WrkClient,
    clone_throughput_demo,
)
from repro.errors import InvalidArgumentError


class TestVirtualMachine:
    def test_resident_set_matches_profile(self):
        machine = Machine(phys_mb=512)
        vm = VirtualMachine(machine)
        assert vm.proc.rss_bytes == pytest.approx(188 * MIB, rel=0.02)

    def test_resident_must_cover_guest(self):
        machine = Machine(phys_mb=512)
        with pytest.raises(InvalidArgumentError):
            VirtualMachine(machine, guest_ram_mb=256, resident_mb=128)

    def test_guest_syscalls_touch_guest_ram(self):
        machine = Machine(phys_mb=512)
        vm = VirtualMachine(machine)
        child = vm.proc.odfork()
        cow_before = machine.stats.cow_faults + machine.stats.table_cow_copies
        edges = []
        vm.run_guest_syscalls(child, bytes([1, 2, 3, 4]), edges.append)
        assert edges
        assert (machine.stats.cow_faults
                + machine.stats.table_cow_copies) > cow_before

    def test_panic_path(self):
        machine = Machine(phys_mb=512)
        vm = VirtualMachine(machine)
        child = vm.proc.odfork()
        with pytest.raises(GuestPanic):
            vm.run_guest_syscalls(child, bytes([13, 0x42]), lambda e: None)

    def test_empty_input_rejected(self):
        machine = Machine(phys_mb=512)
        vm = VirtualMachine(machine)
        child = vm.proc.odfork()
        with pytest.raises(GuestPanic):
            vm.run_guest_syscalls(child, b"", lambda e: None)

    def test_clone_throughput_odfork_wins(self):
        fork_rate = clone_throughput_demo(Machine(phys_mb=512), False,
                                          n_clones=10)
        odf_rate = clone_throughput_demo(Machine(phys_mb=512), True,
                                         n_clones=10)
        assert odf_rate > fork_rate * 5

    def test_fuzzing_integration(self):
        machine = Machine(phys_mb=512)
        vm = VirtualMachine(machine)
        fuzzer = ForkServerFuzzer(vm.proc, vm.fuzz_run_input(),
                                  VM_FUZZ_SEEDS, use_odfork=True,
                                  exec_overhead_ns=0, seed=2)
        series = fuzzer.run_campaign(duration_s=0.5)
        assert fuzzer.executions > 20
        assert fuzzer.coverage.edges_covered > 10


class TestPreforkServer:
    def test_workers_spawned(self):
        machine = Machine(phys_mb=512)
        server = PreforkServer(machine, n_workers=8)
        assert len(server.workers) == 8
        assert len(server.startup_fork_ns) == 8
        assert all(w.alive for w in server.workers)

    def test_small_footprint(self):
        machine = Machine(phys_mb=512)
        server = PreforkServer(machine, n_workers=4)
        assert server.control.mapped_bytes <= 8 * MIB

    def test_startup_forks_negligible_either_way(self):
        """7 MB of VA and startup-only forking: the fork-flavour choice is
        irrelevant to the serving path (the paper's point)."""
        times = {}
        for use_odfork in (False, True):
            machine = Machine(phys_mb=512)
            server = PreforkServer(machine, n_workers=4,
                                   use_odfork=use_odfork)
            times[use_odfork] = sum(server.startup_fork_ns)
        # Per-worker classic fork is fixed-cost-bound (~1.5 ms), odfork
        # cheaper still; either way startup is milliseconds, once.
        assert times[False] < 4 * 2_500_000
        assert times[True] < times[False]

    def test_requests_round_robin(self):
        machine = Machine(phys_mb=512)
        server = PreforkServer(machine, n_workers=3)
        import numpy as np
        rng = np.random.RandomState(0)
        first = server._next_worker
        server.handle_request(rng)
        assert server._next_worker == (first + 1) % 3

    def test_wrk_session(self):
        machine = Machine(phys_mb=512)
        server = PreforkServer(machine, n_workers=4)
        client = WrkClient(server, seed=3)
        latencies = client.run_duration(0.05)
        assert len(latencies) > 100
        mean_us = latencies.mean() / 1e3
        assert 25 < mean_us < 50

    def test_shutdown(self):
        machine = Machine(phys_mb=512)
        server = PreforkServer(machine, n_workers=4)
        server.shutdown()
        assert not server.workers
        machine.check_frame_invariants()

    def test_invalid_workers(self):
        with pytest.raises(InvalidArgumentError):
            PreforkServer(Machine(phys_mb=256), n_workers=0)
