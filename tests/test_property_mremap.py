"""Property-based mremap × odfork interaction tests (hypothesis).

Random interleavings of parent mremap (move/grow/shrink), parent/child
writes, and on-demand forks over shared PTE tables — after every
operation the machine is audited from first principles and both
processes' views are checked against an independent Python model of
their memory.  This is the satellite companion to the trace fuzzer: it
drills one pairing (mremap's table moves against odfork's table sharing)
far deeper than the broad random traces do.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st  # noqa: E402

from repro.verify.audit import audit_machine  # noqa: E402

from repro import Machine  # noqa: E402

PAGE = 4096
MAX_PAGES = 16

op_strategy = st.one_of(
    st.tuples(st.just("mremap"), st.integers(1, MAX_PAGES)),
    st.tuples(st.just("parent_write"), st.integers(0, MAX_PAGES - 1),
              st.integers(0, 255)),
    st.tuples(st.just("child_write"), st.integers(0, MAX_PAGES - 1),
              st.integers(0, 255)),
    st.tuples(st.just("odfork"), st.just(0)),
)


def _expected(model, page):
    """A page never written reads as zeros."""
    return bytes([model[page]] * 8) if page in model else b"\x00" * 8


def _check_view(process, addr, pages, model):
    for page in range(pages):
        assert process.read(addr + page * PAGE, 8) == _expected(model, page)


@given(st.integers(1, MAX_PAGES),
       st.lists(op_strategy, min_size=1, max_size=12))
def test_mremap_odfork_interleaving(initial_pages, ops):
    machine = Machine(phys_mb=128)
    parent = machine.spawn_process("parent")
    addr = parent.mmap(initial_pages * PAGE)
    pages = initial_pages
    parent_model = {}

    children = []   # (process, child_addr, child_pages, child_model)

    for op in ops:
        if op[0] == "mremap":
            new_pages = op[1]
            addr = parent.mremap(addr, pages * PAGE, new_pages * PAGE)
            pages = new_pages
            # Truncation discards tail pages; growth exposes fresh zeros.
            parent_model = {p: v for p, v in parent_model.items()
                            if p < pages}
        elif op[0] == "parent_write":
            page, val = op[1] % pages, op[2]
            parent.write(addr + page * PAGE, bytes([val] * 8))
            parent_model[page] = val
        elif op[0] == "child_write" and children:
            child, c_addr, c_pages, c_model = children[-1]
            page, val = op[1] % c_pages, op[2]
            child.write(c_addr + page * PAGE, bytes([val] * 8))
            c_model[page] = val
        elif op[0] == "odfork":
            child = parent.odfork()
            # The child inherits the parent's mapping at the same address
            # and a private copy-on-write view of its contents.
            children.append((child, addr, pages, dict(parent_model)))

        audit_machine(machine)
        _check_view(parent, addr, pages, parent_model)
        for child, c_addr, c_pages, c_model in children:
            _check_view(child, c_addr, c_pages, c_model)

    for child, *_ in reversed(children):
        child.exit()
        audit_machine(machine)
    parent.exit()
    audit_machine(machine)
    assert machine.used_frames() == 1  # init's PGD only


@given(st.integers(2, MAX_PAGES), st.integers(1, MAX_PAGES),
       st.integers(0, 255))
def test_mremap_of_shared_tables_preserves_child(old_pages, new_pages, val):
    """Parent mremap right after odfork: the child's view, backed by the
    tables the parent is moving away from, must be unaffected."""
    machine = Machine(phys_mb=128)
    parent = machine.spawn_process("parent")
    addr = parent.mmap(old_pages * PAGE)
    parent.touch_range(addr, old_pages * PAGE, write=True)
    parent.write(addr, bytes([val] * 8))

    child = parent.odfork()
    new_addr = parent.mremap(addr, old_pages * PAGE, new_pages * PAGE)
    audit_machine(machine)

    assert child.read(addr, 8) == bytes([val] * 8)
    assert parent.read(new_addr, 8) == bytes([val] * 8)

    parent.write(new_addr, b"\xee" * 8)
    assert child.read(addr, 8) == bytes([val] * 8)
    audit_machine(machine)

    child.exit()
    parent.exit()
    audit_machine(machine)
