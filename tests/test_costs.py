"""Cost model: charging, attribution, contention, calibration sums."""

import pytest

from repro.analysis import Profiler
from repro.errors import ConfigurationError
from repro.timing import CostModel, CostParams, SimClock
from repro.timing import costs as C


def make_model(profiler=None, params=None):
    return CostModel(clock=SimClock(), params=params or CostParams(),
                     profiler=profiler)


class TestCostParams:
    def test_defaults_reproduce_fork_fit(self):
        """The headline calibration: 1 GB fork = 6.54 ms, 50 GB = 253.9 ms."""
        p = CostParams()
        for size_gb, expected_ms in ((1, 6.54), (50, 253.94)):
            n_tables = 512 * size_gb
            n_ptes = n_tables * 512
            total = (
                p.task_dup_fixed + p.vma_dup_each + p.fork_warmup_fixed
                + n_tables * (p.pte_table_alloc + 512 * p.pte_copy_total)
            )
            assert total / 1e6 == pytest.approx(expected_ms, rel=0.02)

    def test_defaults_reproduce_odfork_fit(self):
        p = CostParams()
        for size_gb, expected_us in ((1, 100), (50, 940)):
            n_tables = 512 * size_gb
            total = (p.task_dup_fixed + p.vma_dup_each + p.odf_fixed
                     + n_tables * p.odf_share_per_table)
            assert total / 1e3 == pytest.approx(expected_us, rel=0.05)

    def test_pte_copy_split_matches_figure3(self):
        p = CostParams()
        assert p.pte_copy_compound_head / p.pte_copy_total == pytest.approx(0.639, abs=0.01)
        assert p.pte_copy_page_ref_inc / p.pte_copy_total == pytest.approx(0.145, abs=0.01)

    def test_replace_with(self):
        p = CostParams().replace_with(fault_base=2000.0)
        assert p.fault_base == 2000.0
        assert CostParams().fault_base == 1000.0  # original untouched

    def test_replace_with_unknown_name(self):
        with pytest.raises(ConfigurationError):
            CostParams().replace_with(not_a_param=1)


class TestCharging:
    def test_charge_advances_clock(self):
        model = make_model()
        model.charge("x", 123)
        assert model.clock.now_ns == 123

    def test_charge_zero_or_negative_is_noop(self):
        model = make_model()
        model.charge("x", 0)
        model.charge("x", -5)
        assert model.clock.now_ns == 0

    def test_profiler_attribution(self):
        profiler = Profiler()
        model = make_model(profiler=profiler)
        model.charge("alpha", 100)
        model.charge("alpha", 50)
        model.charge("beta", 10)
        assert profiler.breakdown()["alpha"] == 150
        assert profiler.breakdown()["beta"] == 10

    def test_background_suspends_charging(self):
        model = make_model()
        with model.background():
            model.charge("x", 1000)
        assert model.clock.now_ns == 0
        model.charge("x", 1)
        assert model.clock.now_ns == 1

    def test_background_nests(self):
        model = make_model()
        with model.background():
            with model.background():
                model.charge("x", 10)
            model.charge("x", 10)
        model.charge("x", 7)
        assert model.clock.now_ns == 7


class TestContention:
    def test_factor_at_one_is_unity(self):
        assert make_model().contention_factor() == 1.0

    def test_factor_scales_with_level(self):
        model = make_model()
        model.contention_level = 3
        p = model.params
        assert model.contention_factor() == pytest.approx(1 + 2 * p.contention_alpha)

    def test_contention_applies_to_struct_page_parts_only(self):
        profiler = Profiler()
        model = make_model(profiler=profiler)
        model.contention_level = 2
        model.charge_copy_pte_entries(1000)
        split = profiler.breakdown()
        p = model.params
        factor = model.contention_factor()
        assert split[C.FN_COMPOUND_HEAD] == pytest.approx(
            1000 * p.pte_copy_compound_head * factor, rel=0.01)
        # READ_ONCE loads are not struct-page cachelines: unscaled.
        assert split[C.FN_READ_ONCE] == pytest.approx(
            1000 * p.pte_copy_read_once, rel=0.01)


class TestSemanticCharges:
    def test_table_cow_copy_cost_matches_table1(self):
        """Table COW of a full table ~ the Table 1 worst case minus the
        data-page work."""
        model = make_model()
        model.charge_table_cow_copy(512)
        expected = (model.params.pte_table_alloc
                    + 512 * model.params.pte_copy_total)
        assert model.clock.now_ns == pytest.approx(expected, rel=0.01)

    def test_cow_warmth_discount(self):
        cold = make_model()
        cold.charge_page_copy_4k(warm=False)
        warm = make_model()
        warm.charge_page_copy_4k(warm=True)
        assert warm.clock.now_ns < cold.clock.now_ns
        ratio = warm.clock.now_ns / cold.clock.now_ns
        assert ratio == pytest.approx(CostParams().odf_cow_warmth, rel=0.01)

    def test_memcpy_direction_asymmetry(self):
        model = make_model()
        model.charge_memcpy(1_000_000, is_write=False)
        read_ns = model.clock.now_ns
        model2 = make_model()
        model2.charge_memcpy(1_000_000, is_write=True)
        assert model2.clock.now_ns > read_ns

    def test_tlb_flush_range_scaling(self):
        small = make_model()
        small.charge_tlb_flush(1)
        large = make_model()
        large.charge_tlb_flush(1000)
        assert large.clock.now_ns > small.clock.now_ns
