"""KCSAN-style data-race sampler for the SMP scheduler.

A machine built with ``smp=N, sanitize="kcsan"`` keeps a watchpoint per
instrumented shared location (keyed by the pfn the split-PTL protocol
locks on).  Two tasks hitting the same watchpoint, at least one writing,
with no common lock serialising the pair, is a data race — raised at the
second access with both stacks' lock sets in the message.

The seeded defect: ``ops.FAULT_INJECT_SKIP_PTL`` drops the split
page-table lock from ``access_flow`` so two faulting tasks mutate one
leaf table unserialised — the bug class both this sampler and the static
``lock-context`` rule exist to catch (see test_sancheck_rules.py for the
static half).
"""

from __future__ import annotations

import pytest

from repro import MIB, Machine
from repro.errors import ConfigurationError, KcsanError
from repro.smp import ops
from repro.verify.audit import audit_machine


def kcsan_machine(n=2):
    return Machine(phys_mb=128, smp=n, sanitize="kcsan")


def racing_faulters(machine):
    """Two tasks demand-faulting distinct pages of one shared leaf table."""
    p = machine.spawn_process("p")
    buf = p.mmap(1 * MIB)
    # One touch builds the leaf table; the writers below fault into it.
    p.touch(buf, write=True)
    machine.smp.spawn("w1", ops.access_flow(machine.smp, p, buf + 4096),
                      mm=p.mm)
    machine.smp.spawn("w2", ops.access_flow(machine.smp, p, buf + 8192),
                      mm=p.mm)
    return p


class TestWiring:
    def test_kcsan_attaches_to_kernel(self):
        machine = kcsan_machine()
        assert machine.kcsan is not None
        assert machine.kernel.san is machine.kcsan

    def test_kcsan_requires_smp(self):
        with pytest.raises(ConfigurationError, match="smp"):
            Machine(phys_mb=64, sanitize="kcsan")

    def test_sanitize_all_wires_both(self):
        machine = Machine(phys_mb=64, smp=2, sanitize="all")
        assert machine.kasan is not None
        assert machine.kcsan is not None


class TestCleanRuns:
    def test_locked_faulters_race_free(self):
        machine = kcsan_machine()
        racing_faulters(machine)
        machine.smp.run()
        assert machine.kcsan.reports == []
        assert machine.kcsan.accesses >= 2
        audit_machine(machine)

    def test_fork_vs_fault_serialised_by_locks(self):
        """fork_flow (mmap write + PTL) against access_flow (mmap read +
        PTL): every conflicting pair shares a lock, so no report."""
        machine = kcsan_machine()
        p = machine.spawn_process("p")
        buf = p.mmap(2 * MIB)
        p.touch_range(buf, 2 * MIB)
        machine.smp.spawn("fork", ops.fork_flow(machine.smp, p), mm=p.mm)
        machine.smp.spawn("faulter",
                          ops.access_flow(machine.smp, p, buf + 4096),
                          mm=p.mm)
        machine.smp.run()
        assert machine.kcsan.reports == []
        audit_machine(machine)


class TestSeededRace:
    def test_skipped_ptl_race_is_caught(self, monkeypatch):
        monkeypatch.setattr(ops, "FAULT_INJECT_SKIP_PTL", True)
        machine = kcsan_machine()
        racing_faulters(machine)
        with pytest.raises(KcsanError, match="data race"):
            machine.smp.run()
        assert machine.kcsan.reports

    def test_report_names_both_tasks_and_locks(self, monkeypatch):
        monkeypatch.setattr(ops, "FAULT_INJECT_SKIP_PTL", True)
        machine = kcsan_machine()
        racing_faulters(machine)
        with pytest.raises(KcsanError) as exc:
            machine.smp.run()
        message = str(exc.value)
        assert "w1" in message and "w2" in message
        assert "no common lock" in message

    def test_same_machine_clean_with_knob_off(self):
        # The exact setup from the seeded test, knob at its default:
        # proves the race report above is the knob's doing, not noise.
        assert ops.FAULT_INJECT_SKIP_PTL is False
        machine = kcsan_machine()
        racing_faulters(machine)
        machine.smp.run()
        assert machine.kcsan.reports == []
