"""CLI contract for ``python -m repro.sancheck``: exit codes, the JSON
report schema, baseline round-trips, per-rule selection, ``--jobs`` and
``--prune-ignores``.

Everything drives :func:`repro.sancheck.__main__.main` in-process with an
explicit ``--baseline`` so the committed repo baseline is never touched.
"""

import json
from pathlib import Path

import pytest

from repro.sancheck.__main__ import main
from repro.sancheck.rules import RULES

FIXTURES = Path(__file__).parent / "fixtures" / "sancheck"


def fixture(name):
    return str(FIXTURES / name)


def empty_baseline(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("[]\n")
    return str(path)


class TestExitCodes:
    def test_clean_fixture_exits_zero(self, tmp_path, capsys):
        rc = main([fixture("good_lock.py"),
                   "--baseline", empty_baseline(tmp_path)])
        assert rc == 0
        assert "0 violation(s) [clean]" in capsys.readouterr().out

    def test_bad_fixture_exits_one(self, tmp_path, capsys):
        rc = main([fixture("bad_clockcharge.py"),
                   "--baseline", empty_baseline(tmp_path)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "clock-charge" in out
        assert "1 violation(s)" in out

    def test_stale_baseline_fails_only_under_strict(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps([
            {"rule": "tlb", "module": "nonexistent", "func": "gone",
             "reason": "entry for a violation that no longer fires"}]))
        assert main([fixture("good_lock.py"),
                     "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main([fixture("good_lock.py"), "--strict",
                     "--baseline", str(baseline)]) == 1
        assert "stale entry" in capsys.readouterr().out

    def test_malformed_baseline_entry_always_fails(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps([
            {"rule": "tlb", "module": "m", "func": "f"}]))  # no reason
        assert main([fixture("good_lock.py"),
                     "--baseline", str(baseline)]) == 1
        assert "no reason" in capsys.readouterr().out

    def test_ignore_rule_cannot_be_baselined(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps([
            {"rule": "ignore", "module": "m", "func": "f",
             "reason": "trying to launder an unjustified ignore"}]))
        assert main([fixture("good_lock.py"),
                     "--baseline", str(baseline)]) == 1
        assert "cannot be baselined" in capsys.readouterr().out


class TestBaselineRoundTrip:
    def test_write_then_apply_then_shrink(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        Path(baseline).write_text("[]\n")
        bad = fixture("bad_metrics.py")

        assert main([bad, "--write-baseline", "--baseline", baseline]) == 0
        entries = json.loads(Path(baseline).read_text())
        assert len(entries) == 1
        assert entries[0]["rule"] == "metrics"
        assert entries[0]["reason"]

        capsys.readouterr()
        assert main([bad, "--strict", "--baseline", baseline]) == 0
        assert "1 baselined" in capsys.readouterr().out

        # Once the violation is fixed the entry is stale: shrink-only.
        assert main([fixture("good_metrics.py"),
                     "--baseline", baseline]) == 0
        assert main([fixture("good_metrics.py"), "--strict",
                     "--baseline", baseline]) == 1


class TestRuleSelection:
    def test_deselected_rule_does_not_fire(self, tmp_path):
        rc = main([fixture("bad_clockcharge.py"), "--rules", "tlb",
                   "--baseline", empty_baseline(tmp_path)])
        assert rc == 0

    def test_selected_rule_fires(self, tmp_path):
        rc = main([fixture("bad_clockcharge.py"), "--rules", "clock-charge",
                   "--baseline", empty_baseline(tmp_path)])
        assert rc == 1

    def test_unknown_rule_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown rule"):
            main([fixture("good_lock.py"), "--rules", "no-such-rule",
                  "--baseline", empty_baseline(tmp_path)])


class TestJobs:
    def test_parallel_run_matches_serial(self, tmp_path, capsys):
        paths = [fixture(n) for n in
                 ("bad_clockcharge.py", "bad_metrics.py", "bad_refcount.py",
                  "good_clockcharge.py", "good_metrics.py")]
        base = empty_baseline(tmp_path)
        assert main(paths + ["--quiet", "--baseline", base]) == 1
        serial = capsys.readouterr().out
        assert main(paths + ["--quiet", "--jobs", "2",
                             "--baseline", base]) == 1
        parallel = capsys.readouterr().out
        # Same violation counts either way (drop the timing suffix).
        assert serial.split(" in ")[0] == parallel.split(" in ")[0]
        assert "3 violation(s)" in serial


class TestJsonReport:
    def test_schema_and_contents(self, tmp_path):
        report_path = tmp_path / "report.json"
        rc = main([fixture("bad_fastpath.py"), "--quiet",
                   "--json", str(report_path),
                   "--baseline", empty_baseline(tmp_path)])
        assert rc == 1
        report = json.loads(report_path.read_text())
        assert set(report) == {"violations", "baselined", "stale_baseline",
                               "counts", "rules", "elapsed_s", "ok"}
        assert report["ok"] is False
        assert report["counts"] == {"fastpath-sound": 1}
        assert report["rules"] == list(RULES)
        (violation,) = report["violations"]
        assert set(violation) == {"rule", "module", "func", "lineno",
                                  "message"}
        assert violation["func"] == "fast_path_ok"
        assert isinstance(violation["lineno"], int)

    def test_clean_report_is_ok(self, tmp_path):
        report_path = tmp_path / "report.json"
        rc = main([fixture("good_fastpath.py"), "--quiet",
                   "--rules", "fastpath-sound",
                   "--json", str(report_path),
                   "--baseline", empty_baseline(tmp_path)])
        assert rc == 0
        report = json.loads(report_path.read_text())
        assert report["ok"] is True
        assert report["violations"] == []
        assert report["rules"] == ["fastpath-sound"]


class TestPruneIgnores:
    def stale_file(self, tmp_path):
        path = tmp_path / "stale_mod.py"
        path.write_text(
            "def helper(value):\n"
            "    # sancheck: ignore[tlb] -- justified once, dead now\n"
            "    return value + 1\n")
        return path

    def test_stale_ignore_is_reported(self, tmp_path, capsys):
        path = self.stale_file(tmp_path)
        rc = main([str(path), "--baseline", empty_baseline(tmp_path)])
        assert rc == 1
        assert "stale ignore[tlb]" in capsys.readouterr().out

    def test_prune_rewrites_the_file(self, tmp_path, capsys):
        path = self.stale_file(tmp_path)
        rc = main([str(path), "--prune-ignores",
                   "--baseline", empty_baseline(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "pruned 1 stale ignore comment(s)" in out
        text = path.read_text()
        assert "sancheck" not in text
        assert "return value + 1" in text

    def test_live_ignores_survive_prune(self, tmp_path, capsys):
        # bad_ignore.py's *justified* comment suppresses a real violation;
        # prune must leave it alone.  Copy it so a bug can't mangle the
        # committed fixture.
        src = Path(fixture("good_ignore.py")).read_text()
        path = tmp_path / "good_ignore_copy.py"
        path.write_text(src)
        rc = main([str(path), "--prune-ignores",
                   "--baseline", empty_baseline(tmp_path)])
        assert rc == 0
        assert "pruned 0 stale ignore comment(s)" in capsys.readouterr().out
        assert path.read_text() == src

    def test_rule_subset_never_marks_ignores_stale(self, tmp_path):
        # Staleness is only decidable under the full rule set: a subset
        # run must not report (or prune) ignores whose rule is disabled.
        path = self.stale_file(tmp_path)
        rc = main([str(path), "--rules", "refcount,ignore",
                   "--baseline", empty_baseline(tmp_path)])
        assert rc == 0
        assert "sancheck" in path.read_text()
