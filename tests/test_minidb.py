"""MiniDB: schema, DML, constraints, fork views, synthetic bulk rows."""

import pytest

from repro import MIB, Machine
from repro.apps import Column, MiniDB, MiniDBError


@pytest.fixture
def db(machine):
    p = machine.spawn_process("dbproc")
    database = MiniDB(p, heap_mb=32)
    database.create_table("users", [
        Column("id", "int"),
        Column("name", "str", indexed=True),
        Column("age", "int"),
    ], primary_key="id")
    database.create_table("orders", [
        Column("id", "int"),
        Column("user_id", "int", references=("users", "id")),
        Column("amount", "int"),
    ], primary_key="id")
    return database


def seed_users(db, n=20):
    for i in range(n):
        db.insert("users", {"id": i, "name": f"user{i % 5}", "age": 20 + i})


class TestSchema:
    def test_duplicate_table_rejected(self, db):
        with pytest.raises(MiniDBError):
            db.create_table("users", [Column("id", "int")], primary_key="id")

    def test_bad_primary_key(self, db):
        from repro.errors import InvalidArgumentError
        with pytest.raises(InvalidArgumentError):
            db.create_table("t", [Column("a", "int")], primary_key="zzz")

    def test_record_encoding_roundtrip(self, db):
        schema = db.tables["users"].schema
        row = {"id": 42, "name": "bob", "age": -7}
        assert schema.decode(schema.encode(row)) == row

    def test_blob_columns(self, machine):
        p = machine.spawn_process("blobproc")
        database = MiniDB(p, heap_mb=8)
        database.create_table("t", [
            Column("id", "int"),
            Column("payload", "blob", size=256),
        ], primary_key="id")
        database.insert("t", {"id": 1, "payload": b"\x01\x02" * 10})
        row = database.select("t", where=("id", "=", 1))[0]
        assert row["payload"][:20] == b"\x01\x02" * 10


class TestDML:
    def test_insert_select(self, db):
        seed_users(db)
        rows = db.select("users", where=("id", "=", 7))
        assert len(rows) == 1
        assert rows[0]["age"] == 27

    def test_unique_violation(self, db):
        seed_users(db, 3)
        with pytest.raises(MiniDBError, match="UNIQUE"):
            db.insert("users", {"id": 1, "name": "dup", "age": 1})

    def test_missing_columns_rejected(self, db):
        with pytest.raises(MiniDBError, match="missing"):
            db.insert("users", {"id": 1})

    def test_select_operators(self, db):
        seed_users(db)
        assert len(db.select("users", where=("age", ">", 35))) == 4
        assert len(db.select("users", where=("age", "<", 22))) == 2
        assert len(db.select("users", where=("age", "!=", 20))) == 19

    def test_select_with_index(self, db):
        seed_users(db)
        rows = db.select("users", where=("name", "=", "user3"))
        assert {r["id"] for r in rows} == {3, 8, 13, 18}

    def test_select_limit(self, db):
        seed_users(db)
        assert len(db.select("users", limit=5)) == 5

    def test_select_unknown_column(self, db):
        with pytest.raises(MiniDBError, match="no such column"):
            db.select("users", where=("ghost", "=", 1))

    def test_delete(self, db):
        seed_users(db)
        assert db.delete("users", where=("id", "=", 3)) == 1
        assert db.select("users", where=("id", "=", 3)) == []
        assert db.count("users") == 19
        # Index updated too.
        assert 3 not in {r["id"] for r in db.select("users",
                                                    where=("name", "=", "user3"))}

    def test_update(self, db):
        seed_users(db)
        changed = db.update("users", {"age": 99}, where=("id", "=", 5))
        assert changed == 1
        assert db.select("users", where=("id", "=", 5))[0]["age"] == 99

    def test_update_reindexes(self, db):
        seed_users(db)
        db.update("users", {"name": "renamed"}, where=("id", "=", 5))
        assert db.select("users", where=("name", "=", "renamed"))[0]["id"] == 5
        assert 5 not in {r["id"] for r in db.select("users",
                                                    where=("name", "=", "user0"))}

    def test_update_pk_rejected(self, db):
        seed_users(db, 2)
        with pytest.raises(MiniDBError):
            db.update("users", {"id": 100}, where=("id", "=", 1))

    def test_foreign_key_enforced(self, db):
        seed_users(db, 5)
        db.insert("orders", {"id": 1, "user_id": 3, "amount": 10})
        with pytest.raises(MiniDBError, match="FOREIGN KEY"):
            db.insert("orders", {"id": 2, "user_id": 999, "amount": 10})

    def test_unknown_table(self, db):
        with pytest.raises(MiniDBError, match="no such table"):
            db.select("ghost_table")


class TestForkViews:
    def test_child_view_isolated(self, db, machine):
        seed_users(db)
        parent_proc = db.proc
        child = parent_proc.odfork()
        child_db = db.view_for(child)
        child_db.delete("users", where=("id", "=", 1))
        child_db.update("users", {"age": 1}, where=("id", "=", 2))
        child_db.insert("users", {"id": 500, "name": "new", "age": 5})
        # Parent unaffected.
        assert db.count("users") == 20
        assert db.select("users", where=("id", "=", 1))
        assert db.select("users", where=("id", "=", 2))[0]["age"] == 22
        assert not db.select("users", where=("id", "=", 500))
        # Child sees its own state.
        assert child_db.count("users") == 20
        assert not child_db.select("users", where=("id", "=", 1))
        assert child_db.select("users", where=("id", "=", 500))

    def test_sibling_views_independent(self, db):
        seed_users(db, 5)
        a = db.view_for(db.proc.odfork())
        b = db.view_for(db.proc.odfork())
        a.delete("users", where=("id", "=", 0))
        assert b.select("users", where=("id", "=", 0))


class TestSyntheticRows:
    @pytest.fixture
    def synth_db(self, machine):
        p = machine.spawn_process("synth")
        database = MiniDB(p, heap_mb=32, store_bytes=False)
        database.create_table("big", [
            Column("id", "int"),
            Column("value", "int"),
        ], primary_key="id")
        database.bulk_load_synthetic(
            "big", 10_000, lambda slot: {"id": slot, "value": slot * 3})
        return database

    def test_bulk_load_counts(self, synth_db):
        assert synth_db.count("big") == 10_000
        assert synth_db.rows_loaded == 10_000

    def test_pk_probe(self, synth_db):
        rows = synth_db.select("big", where=("id", "=", 777))
        assert rows == [{"id": 777, "value": 2331}]
        assert synth_db.select("big", where=("id", "=", 10_001)) == []

    def test_delete_synthetic(self, synth_db):
        assert synth_db.delete("big", where=("id", "=", 5)) == 1
        assert synth_db.select("big", where=("id", "=", 5)) == []
        assert synth_db.count("big") == 9_999
        # Deleting again is a no-op.
        assert synth_db.delete("big", where=("id", "=", 5)) == 0

    def test_update_synthetic_overrides(self, synth_db):
        synth_db.update("big", {"value": -1}, where=("id", "=", 9))
        assert synth_db.select("big", where=("id", "=", 9))[0]["value"] == -1
        assert synth_db.select("big", where=("id", "=", 10))[0]["value"] == 30

    def test_insert_beyond_synthetic(self, synth_db):
        synth_db.insert("big", {"id": 999_999, "value": 1})
        assert synth_db.select("big", where=("id", "=", 999_999))
        with pytest.raises(MiniDBError, match="UNIQUE"):
            synth_db.insert("big", {"id": 3, "value": 0})

    def test_reinsert_deleted_synthetic_pk(self, synth_db):
        synth_db.delete("big", where=("id", "=", 3))
        synth_db.insert("big", {"id": 3, "value": 42})
        rows = synth_db.select("big", where=("id", "=", 3))
        assert rows == [{"id": 3, "value": 42}]

    def test_fork_view_of_synthetic(self, synth_db):
        child = synth_db.proc.odfork()
        child_db = synth_db.view_for(child)
        child_db.delete("big", where=("id", "=", 100))
        child_db.update("big", {"value": 0}, where=("id", "=", 200))
        assert synth_db.select("big", where=("id", "=", 100))
        assert synth_db.select("big", where=("id", "=", 200))[0]["value"] == 600
        assert not child_db.select("big", where=("id", "=", 100))

    def test_bulk_load_requires_no_store_bytes(self, db):
        with pytest.raises(MiniDBError):
            db.bulk_load_synthetic("users", 10,
                                   lambda slot: {"id": slot, "name": "x",
                                                 "age": 0})

    def test_bulk_load_capacity_check(self, machine):
        p = machine.spawn_process("cap")
        database = MiniDB(p, heap_mb=1, store_bytes=False)
        database.create_table("t", [Column("id", "int"),
                                    Column("v", "blob", size=4096)],
                              primary_key="id")
        with pytest.raises(MiniDBError, match="slot region"):
            database.bulk_load_synthetic(
                "t", 10_000_000, lambda slot: {"id": slot, "v": b""})
