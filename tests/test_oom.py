"""Memory pressure: reclaim of clean page-cache pages, OOM errors."""

import pytest

from repro import MIB, Machine, OutOfMemoryError


def tiny_machine(mb=8):
    return Machine(phys_mb=mb)


class TestOOM:
    def test_exhaustion_raises_oom(self):
        machine = tiny_machine(4)
        p = machine.spawn_process("hog")
        addr = p.mmap(16 * MIB)
        with pytest.raises(OutOfMemoryError):
            p.touch_range(addr, 16 * MIB, write=True)

    def test_byte_path_oom(self):
        machine = tiny_machine(2)
        p = machine.spawn_process("hog")
        addr = p.mmap(8 * MIB)
        with pytest.raises(OutOfMemoryError):
            for offset in range(0, 8 * MIB, 4096):
                p.write(addr + offset, b"x")

    def test_reclaim_rescues_allocation(self):
        machine = tiny_machine(8)
        kernel = machine.kernel
        # Fill the page cache with clean, unmapped pages.
        f = kernel.fs.create("/cached", size=4 * MIB)
        kernel.page_cache.read(f, 0, 4 * MIB)
        assert len(kernel.page_cache) >= 1000
        p = machine.spawn_process("needy")
        addr = p.mmap(6 * MIB)
        # Needs more frames than remain free: reclaim must kick in.
        p.touch_range(addr, 6 * MIB, write=True)
        assert machine.stats.oom_reclaims >= 1
        assert len(kernel.page_cache) < 1000

    def test_dirty_cache_pages_not_reclaimed(self):
        machine = tiny_machine(8)
        kernel = machine.kernel
        f = kernel.fs.create("/dirty", size=4 * MIB)
        kernel.page_cache.write(f, 0, b"d" * (4 * MIB))
        cached_before = len(kernel.page_cache)
        freed = kernel.page_cache.reclaim_clean(10_000)
        assert freed == 0
        assert len(kernel.page_cache) == cached_before

    def test_mapped_cache_pages_not_reclaimed(self):
        machine = tiny_machine(16)
        kernel = machine.kernel
        f = kernel.fs.create("/mapped", size=1 * MIB)
        p = machine.spawn_process("mapper")
        addr = p.mmap_shared(1 * MIB, file=f)
        p.touch_range(addr, 1 * MIB, write=False)
        freed = kernel.page_cache.reclaim_clean(10_000)
        assert freed == 0

    def test_fork_succeeds_under_moderate_pressure(self):
        machine = tiny_machine(24)
        p = machine.spawn_process("parent")
        addr = p.mmap(8 * MIB)
        p.touch_range(addr, 8 * MIB, write=True)
        child = p.odfork()   # shares tables: near-zero frame cost
        assert child.read(addr, 1) is not None

    def test_bulk_retry_failure_raises_oom(self):
        # Regression: the bulk-allocation retry after a *partial* reclaim
        # used to let the allocator's internal OutOfFramesError escape
        # unwrapped.  Callers must always see OutOfMemoryError itself.
        machine = tiny_machine(4)
        kernel = machine.kernel
        f = kernel.fs.create("/some-cache", size=256 * 1024)
        kernel.page_cache.read(f, 0, 256 * 1024)  # reclaimable, but not enough
        p = machine.spawn_process("hog")
        addr = p.mmap(16 * MIB)
        with pytest.raises(OutOfMemoryError) as exc:
            p.touch_range(addr, 16 * MIB, write=True)
        assert type(exc.value) is OutOfMemoryError
        assert machine.stats.oom_reclaims >= 1  # the partial reclaim happened

    def test_direct_reclaim_rescues_bulk_allocation(self):
        # With swap available, anonymous pages are evictable too: the same
        # overcommit that OOMs above now succeeds via direct reclaim.
        machine = Machine(phys_mb=8, swap_mb=32)
        p = machine.spawn_process("hog")
        addr = p.mmap(16 * MIB)
        p.touch_range(addr, 16 * MIB, write=True)
        assert machine.stats.pswpout > 0

    def test_oom_does_not_corrupt_state(self):
        machine = tiny_machine(4)
        p = machine.spawn_process("hog")
        addr = p.mmap(16 * MIB)
        with pytest.raises(OutOfMemoryError):
            p.touch_range(addr, 16 * MIB, write=True)
        machine.check_frame_invariants()
        # The process can still exit cleanly.
        p.exit()
        machine.init_process.wait()
        machine.check_frame_invariants()
