"""The public Process/Machine facade."""

import pytest

from repro import GIB, MIB, Machine
from repro.errors import ConfigurationError
from repro.timing import CostParams


class TestMachine:
    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            Machine(phys_mb=0)

    def test_custom_cost_params(self):
        params = CostParams().replace_with(fault_base=5_000.0)
        machine = Machine(phys_mb=128, cost_params=params)
        p = machine.spawn_process("x")
        addr = p.mmap(4096)
        t0 = machine.now_ns
        p.write(addr, b"x")
        assert machine.now_ns - t0 >= 5_000

    def test_init_process_singleton(self, machine):
        assert machine.init_process is machine.init_process
        assert machine.init_process.pid == 1

    def test_spawn_children_of_init(self, machine):
        a = machine.spawn_process("a")
        b = machine.spawn_process("b")
        assert a.task.parent is machine.init_process.task
        assert a.pid != b.pid

    def test_memory_report(self, machine):
        p = machine.spawn_process("r")
        addr = p.mmap(1 * MIB)
        p.touch_range(addr, 1 * MIB, write=True)
        report = machine.memory_report()
        assert report["used_frames"] >= 256
        assert report["free_frames"] > 0
        assert report["live_tables"] >= 2

    def test_concurrency_context(self, machine):
        assert machine.cost.contention_level == 1
        with machine.concurrency(4):
            assert machine.cost.contention_level == 4
        assert machine.cost.contention_level == 1

    def test_deterministic_replay(self):
        def run():
            m = Machine(phys_mb=256, noise_sigma=0.05, seed=42)
            p = m.spawn_process("replay")
            addr = p.mmap(16 * MIB)
            p.touch_range(addr, 16 * MIB, write=True)
            child = p.fork()
            child.write(addr, b"abc")
            return m.now_ns, p.last_fork_ns
        assert run() == run()


class TestProcessFacade:
    def test_status_fields(self, proc):
        addr = proc.mmap(1 * MIB, name="heap")
        proc.write(addr, b"x")
        status = proc.status()
        assert status["pid"] == proc.pid
        assert status["vm_size_bytes"] == 1 * MIB
        assert status["vm_rss_bytes"] == 4096
        assert status["state"] == "running"
        assert status["odfork_enabled"] is False

    def test_odfork_default_in_status(self, proc):
        proc.set_odfork_default(True)
        assert proc.status()["odfork_enabled"] is True

    def test_touch_counts_pages(self, proc):
        addr = proc.mmap(64 * 1024)
        assert proc.touch(addr, 1) == 1
        assert proc.touch(addr + 4090, 10) == 2  # crosses a boundary
        assert proc.touch(addr, 0) == 0

    def test_repr(self, proc):
        assert f"pid={proc.pid}" in repr(proc)

    def test_last_fork_initially_none(self, proc):
        assert proc.last_fork_ns is None

    def test_mapped_vs_rss(self, proc):
        addr = proc.mmap(2 * MIB)
        assert proc.mapped_bytes == 2 * MIB
        assert proc.rss_bytes == 0
        proc.touch_range(addr, 1 * MIB, write=True)
        assert proc.rss_bytes == 1 * MIB
