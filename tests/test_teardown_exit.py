"""Teardown: munmap with shared tables, exit, leak detection."""

import pytest

from repro import MIB, SegmentationFault
from repro.errors import ProcessError
from conftest import make_filled_region


class TestSharedTableUnmap:
    def test_whole_slot_unmap_preserves_sharers(self, proc, machine):
        """§3.3 fast path: dropping a whole 2 MiB slot only decrements the
        table refcount; other sharers keep translating."""
        addr, _ = make_filled_region(proc, size=4 * MIB)
        proc.write(addr + 2 * MIB, b"second region")
        child = proc.odfork()
        copies_before = machine.stats.table_cow_copies
        child.munmap(addr, 2 * MIB)  # whole slots, shared tables
        assert machine.stats.table_cow_copies == copies_before
        # Parent still reads its data through the (previously shared) table.
        assert proc.read(addr + 2 * MIB, 13) == b"second region"
        assert proc.read(addr, 3) is not None
        with pytest.raises(SegmentationFault):
            child.read(addr, 1)
        assert child.read(addr + 2 * MIB, 13) == b"second region"

    def test_partial_unmap_copies_table_first(self, proc, machine):
        """§3.3 slow path: a partial unmap under a shared table must COW
        the table so other sharers keep their entries."""
        addr, _ = make_filled_region(proc, size=2 * MIB)
        marker = addr + 1 * MIB
        proc.write(marker, b"must survive")
        child = proc.odfork()
        copies_before = machine.stats.table_cow_copies
        child.munmap(addr, 64 * 1024)  # partial slot
        assert machine.stats.table_cow_copies == copies_before + 1
        # Parent unaffected — including the range the child unmapped.
        assert proc.read(addr, 3) is not None
        assert proc.read(marker, 12) == b"must survive"
        # Child keeps the rest of the slot.
        assert child.read(marker, 12) == b"must survive"
        with pytest.raises(SegmentationFault):
            child.read(addr, 1)

    def test_unmap_by_parent_preserves_child(self, proc, machine):
        addr, _ = make_filled_region(proc, size=2 * MIB)
        proc.write(addr, b"inherited")
        child = proc.odfork()
        proc.munmap(addr, 2 * MIB)
        assert child.read(addr, 9) == b"inherited"
        with pytest.raises(SegmentationFault):
            proc.read(addr, 1)

    def test_pages_freed_only_when_last_table_dies(self, proc, machine):
        addr, _ = make_filled_region(proc, size=2 * MIB)
        live_full = machine.live_data_frames()
        child = proc.odfork()
        proc.munmap(addr, 2 * MIB)
        # Pages survive: the shared table still references them (§3.6).
        assert machine.live_data_frames() >= live_full - 4
        child.munmap(addr, 2 * MIB)
        # Last reference gone: the data pages are freed.
        assert machine.live_data_frames() < live_full - 200


class TestExit:
    def test_exit_releases_everything(self, machine):
        machine.init_process  # materialise init's PGD before the baseline
        baseline = machine.live_data_frames()
        p = machine.spawn_process("short-lived")
        addr, _ = make_filled_region(p, size=4 * MIB)
        p.fork_count = 0
        p.exit()
        machine.init_process.wait()
        assert machine.live_data_frames() == baseline
        machine.check_frame_invariants()

    def test_exit_fork_lineage_no_leaks(self, machine):
        machine.init_process  # materialise init's PGD before the baseline
        baseline = machine.live_data_frames()
        p = machine.spawn_process("lineage")
        addr, _ = make_filled_region(p, size=4 * MIB)
        c1 = p.fork()
        c2 = p.odfork()
        c3 = c2.odfork()
        c3.write(addr, b"deep write")
        c2.write(addr + 2 * MIB, b"mid write")
        for child in (c3, c2, c1):
            child.exit()
        c2_gone = p.wait()
        p.wait()
        p.wait()
        p.exit()
        machine.init_process.wait()
        assert machine.live_data_frames() == baseline
        assert machine.kernel.live_tables == 1  # init's PGD
        machine.check_frame_invariants()

    def test_parent_exits_before_child(self, machine):
        """Shared tables survive the creating process (§3.1: 'may survive
        beyond the creating process lifetime')."""
        p = machine.spawn_process("parent-first")
        addr, _ = make_filled_region(p, size=2 * MIB)
        p.write(addr, b"legacy data")
        child = p.odfork()
        p.exit()
        machine.init_process.wait()
        assert child.read(addr, 11) == b"legacy data"
        child.write(addr, b"still works")
        assert child.read(addr, 11) == b"still works"
        child.exit()
        machine.init_process.wait()
        machine.check_frame_invariants()

    def test_dead_process_rejects_syscalls(self, proc):
        proc.exit()
        with pytest.raises(ProcessError):
            proc.mmap(4096)
        with pytest.raises(ProcessError):
            proc.read(0, 1)

    def test_double_exit_rejected(self, proc):
        proc.exit()
        with pytest.raises(ProcessError):
            proc.exit()

    def test_wait_semantics(self, proc):
        child = proc.fork()
        assert proc.wait() is None  # child still running
        child.exit(code=42)
        pid, code = proc.wait()
        assert pid == child.pid
        assert code == 42
        with pytest.raises(ProcessError):
            proc.wait(pid=99999)

    def test_orphans_reparented_to_init(self, machine):
        p = machine.spawn_process("dies-first")
        child = p.fork()
        p.exit()
        machine.init_process.wait()
        assert child.task.parent is machine.init_process.task
        child.exit()
        assert machine.init_process.wait() is not None
