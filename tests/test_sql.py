"""The SQL front end: lexing, parsing, execution, coverage edges."""

import pytest

from repro.apps import Column, MiniDB, MiniDBError, SQLParseError, execute_sql, tokenize
from repro.apps.sql import Parser


@pytest.fixture
def db(machine):
    p = machine.spawn_process("sqlproc")
    database = MiniDB(p, heap_mb=16)
    database.create_table("t", [
        Column("id", "int"),
        Column("name", "str", indexed=True),
        Column("v", "int"),
    ], primary_key="id")
    for i in range(10):
        database.insert("t", {"id": i, "name": f"n{i}", "v": i * 10})
    return database


class TestTokenizer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT select SeLeCt")
        assert all(t.kind == "kw" and t.value == "select"
                   for t in tokens[:-1])

    def test_identifiers_and_literals(self):
        tokens = tokenize("foo 42 -7 'bar baz'")
        kinds = [(t.kind, t.value) for t in tokens[:-1]]
        assert kinds == [("ident", "foo"), ("int", 42), ("int", -7),
                         ("str", "bar baz")]

    def test_symbols(self):
        tokens = tokenize("= != < > ( ) , *")
        assert [t.value for t in tokens[:-1]] == \
            ["=", "!=", "<", ">", "(", ")", ",", "*"]

    def test_unterminated_string(self):
        with pytest.raises(SQLParseError, match="unterminated"):
            tokenize("SELECT 'oops")

    def test_bad_character(self):
        with pytest.raises(SQLParseError, match="unexpected"):
            tokenize("SELECT #")

    def test_coverage_edges_emitted(self):
        edges = []
        tokenize("SELECT * FROM t", coverage=edges.append)
        assert len(edges) > 3
        # Deterministic across calls.
        edges2 = []
        tokenize("SELECT * FROM t", coverage=edges2.append)
        assert edges == edges2


class TestParser:
    def parse(self, text):
        return Parser(tokenize(text)).parse()

    def test_select_star(self):
        stmt = self.parse("SELECT * FROM t")
        assert stmt["op"] == "select"
        assert stmt["columns"] is None
        assert stmt["where"] is None

    def test_select_columns_where_limit(self):
        stmt = self.parse("SELECT a, b FROM t WHERE x != 'y' LIMIT 3")
        assert stmt["columns"] == ["a", "b"]
        assert stmt["where"] == ("x", "!=", "y")
        assert stmt["limit"] == 3

    def test_select_count(self):
        stmt = self.parse("SELECT COUNT(*) FROM t")
        assert stmt["count"]

    def test_delete_update_insert(self):
        assert self.parse("DELETE FROM t WHERE id = 1")["op"] == "delete"
        stmt = self.parse("UPDATE t SET a = 1, b = 'x' WHERE id > 2")
        assert stmt["set"] == {"a": 1, "b": "x"}
        stmt = self.parse("INSERT INTO t (id, v) VALUES (1, 2)")
        assert stmt["row"] == {"id": 1, "v": 2}

    @pytest.mark.parametrize("bad", [
        "",                                  # nothing
        "SELECT",                            # truncated
        "SELECT * FROM",                     # missing table
        "SELECT * FROM t WHERE",             # dangling where
        "SELECT * FROM t WHERE id ~ 3",      # bad operator
        "SELECT * FROM t LIMIT 'x'",         # non-int limit
        "SELECT * FROM t garbage",           # trailing tokens
        "DROP TABLE t",                      # unsupported statement
        "UPDATE t SET",                      # empty set
        "INSERT INTO t (a, b) VALUES (1)",   # arity mismatch
        "42 is not sql",                     # doesn't start with keyword
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(SQLParseError):
            self.parse(bad)


class TestExecution:
    def test_select(self, db):
        rows = execute_sql(db, "SELECT * FROM t WHERE id = 3")
        assert rows[0]["v"] == 30

    def test_select_projection(self, db):
        rows = execute_sql(db, "SELECT name, v FROM t WHERE id = 2")
        assert rows == [{"name": "n2", "v": 20}]

    def test_select_unknown_projection_column(self, db):
        with pytest.raises(MiniDBError, match="no such column"):
            execute_sql(db, "SELECT ghost FROM t WHERE id = 2")

    def test_count(self, db):
        assert execute_sql(db, "SELECT COUNT(*) FROM t") == 10

    def test_delete(self, db):
        assert execute_sql(db, "DELETE FROM t WHERE id = 5") == 1
        assert execute_sql(db, "SELECT COUNT(*) FROM t") == 9

    def test_update(self, db):
        assert execute_sql(db, "UPDATE t SET v = 777 WHERE id = 1") == 1
        assert execute_sql(db, "SELECT * FROM t WHERE id = 1")[0]["v"] == 777

    def test_insert(self, db):
        execute_sql(db, "INSERT INTO t (id, name, v) VALUES (99, 'new', 0)")
        assert execute_sql(db, "SELECT * FROM t WHERE id = 99")

    def test_string_predicates(self, db):
        rows = execute_sql(db, "SELECT * FROM t WHERE name = 'n4'")
        assert rows[0]["id"] == 4

    def test_constraint_errors_surface(self, db):
        with pytest.raises(MiniDBError, match="UNIQUE"):
            execute_sql(db, "INSERT INTO t (id, name, v) VALUES (1, 'd', 0)")

    def test_execution_edges_reported(self, db):
        edges = []
        execute_sql(db, "SELECT * FROM t WHERE id = 1", coverage=edges.append)
        assert len(edges) > 10
        # Different statements touch different edges.
        other = []
        execute_sql(db, "DELETE FROM t WHERE id = 2", coverage=other.append)
        assert set(edges) != set(other)
