"""Memory reclaim & swap: LRU aging, kswapd, rmap unmap, swap-entry PTEs."""

import pytest

from repro.verify.audit import audit_machine
from repro import MADV_DONTNEED, MIB, Machine, OutOfMemoryError
from repro.mem.page import PAGE_SIZE
from repro.paging import (
    is_present,
    is_swap_entry,
    make_swap_entry,
    swap_entry_slot,
    swap_entry_type,
    swap_mask,
)

import numpy as np


def swap_machine(phys_mb=16, swap_mb=64, **kw):
    return Machine(phys_mb=phys_mb, swap_mb=swap_mb, **kw)


class TestSwapEntryEncoding:
    def test_roundtrip(self):
        for slot in (0, 1, 511, 4096, (1 << 30) - 1):
            entry = make_swap_entry(slot)
            assert not is_present(entry)
            assert is_swap_entry(entry)
            assert int(swap_entry_slot(entry)) == slot
            assert int(swap_entry_type(entry)) == 0

    def test_type_field(self):
        entry = make_swap_entry(7, swap_type=3)
        assert int(swap_entry_type(entry)) == 3
        assert int(swap_entry_slot(entry)) == 7

    def test_mask_vectorised(self):
        from repro.paging import make_entry
        entries = np.array(
            [make_swap_entry(9), make_entry(5, writable=True, user=True),
             np.uint64(0)], dtype=np.uint64)
        assert swap_mask(entries).tolist() == [True, False, False]

    def test_plain_entries_are_not_swap(self):
        from repro.paging import ENTRY_NONE, make_entry
        assert not is_swap_entry(ENTRY_NONE)
        assert not is_swap_entry(make_entry(42, writable=True, user=True))


class TestSwapOptIn:
    def test_default_machine_has_no_swap(self):
        machine = Machine(phys_mb=16)
        kernel = machine.kernel
        assert kernel.swap is None
        assert kernel.swap_cache is None
        assert kernel.rmap is None
        assert kernel.reclaim is None
        # The sharer registry is unconditional (the TLB shootdown engine
        # needs it even without swap); it just starts empty.
        assert kernel.pt_sharers == {}

    def test_swap_machine_wires_subsystem(self):
        machine = swap_machine()
        kernel = machine.kernel
        assert len(kernel.swap) == 64 * MIB // PAGE_SIZE
        assert kernel.reclaim.wm_min < kernel.reclaim.wm_low < kernel.reclaim.wm_high

    def test_vmstat_gauges(self):
        machine = swap_machine()
        v = machine.vmstat()
        for key in ("pswpin", "pswpout", "pgscan", "pgsteal", "kswapd_wakeups",
                    "shared_table_unmaps", "nr_free_pages", "nr_active_anon",
                    "nr_inactive_anon", "swap_total_slots", "swap_used_slots"):
            assert key in v, key


class TestOvercommit:
    def test_2x_overcommit_survives(self):
        machine = swap_machine(phys_mb=16, swap_mb=64)
        p = machine.spawn_process("hog")
        size = 32 * MIB  # 2x physical memory
        addr = p.mmap(size)
        p.touch_range(addr, size, write=True)  # must not OOM
        v = machine.vmstat()
        assert v["pswpout"] > 0
        assert v["swap_used_slots"] > 0
        audit_machine(machine)

    def test_data_survives_swap_roundtrip(self):
        machine = swap_machine(phys_mb=16, swap_mb=64)
        p = machine.spawn_process("hog")
        n = 32 * MIB // PAGE_SIZE
        addr = p.mmap(32 * MIB)
        for i in range(n):
            p.write(addr + i * PAGE_SIZE, i.to_bytes(8, "little"))
        assert machine.stats.pswpout > 0
        for i in range(n):
            assert p.read(addr + i * PAGE_SIZE, 8) == i.to_bytes(8, "little")
        assert machine.stats.pswpin > 0
        audit_machine(machine)

    def test_swap_exhaustion_still_ooms(self):
        machine = swap_machine(phys_mb=8, swap_mb=4)
        p = machine.spawn_process("hog")
        addr = p.mmap(64 * MIB)
        with pytest.raises(OutOfMemoryError):
            p.touch_range(addr, 64 * MIB, write=True)
        machine.check_frame_invariants()

    def test_kswapd_keeps_free_above_min(self):
        machine = swap_machine(phys_mb=16, swap_mb=64)
        p = machine.spawn_process("hog")
        addr = p.mmap(24 * MIB)
        p.touch_range(addr, 24 * MIB, write=True)
        v = machine.vmstat()
        assert v["kswapd_wakeups"] > 0
        assert v["nr_free_pages"] >= machine.kernel.reclaim.wm_min


class TestLRUAging:
    def test_second_chance_prefers_cold_pages(self):
        machine = swap_machine(phys_mb=64, swap_mb=64)
        kernel = machine.kernel
        p = machine.spawn_process("worker")
        hot = p.mmap(1 * MIB)
        cold = p.mmap(1 * MIB)
        p.touch_range(cold, 1 * MIB, write=True)
        p.touch_range(hot, 1 * MIB, write=True)
        # Age everything onto the inactive list, then re-reference hot:
        # the referenced bit gives hot pages a second chance.
        p.touch_range(hot, 1 * MIB, write=False)
        n = 1 * MIB // PAGE_SIZE
        freed = kernel.reclaim.shrink(n // 2, from_kswapd=False)
        assert freed > 0

        # Count swapped-out pages per region by probing the leaf entries.
        def swapped_pages(base):
            from repro.paging import entry_pfn
            from repro.paging.table import LEVEL_PTE, table_index
            count = 0
            for i in range(n):
                vaddr = base + i * PAGE_SIZE
                walked = p.mm.walk_to_pmd(vaddr, alloc=False)
                if walked is None:
                    continue
                pmd, idx = walked
                if not is_present(pmd.entries[idx]):
                    continue
                leaf = p.mm.resolve(int(entry_pfn(pmd.entries[idx])))
                if is_swap_entry(leaf.entries[table_index(vaddr, LEVEL_PTE)]):
                    count += 1
            return count

        assert swapped_pages(cold) > swapped_pages(hot)
        audit_machine(machine)

    def test_lru_empties_on_exit(self):
        machine = swap_machine()
        p = machine.spawn_process("w")
        addr = p.mmap(2 * MIB)
        p.touch_range(addr, 2 * MIB, write=True)
        r = machine.kernel.reclaim
        assert len(r.active) + len(r.inactive) > 0
        p.exit()
        assert len(r.active) + len(r.inactive) == 0
        audit_machine(machine)


class TestForkUnderPressure:
    def test_cow_isolation_through_shared_tables_and_swap(self):
        machine = swap_machine(phys_mb=64, swap_mb=64)
        p = machine.spawn_process("server")
        size = 4 * MIB
        n = size // PAGE_SIZE
        addr = p.mmap(size)
        for i in range(n):
            p.write(addr + i * PAGE_SIZE, (i * 7).to_bytes(8, "little"))
        child = p.odfork()
        # Evict the shared pages straight through the shared leaf tables.
        freed = machine.kernel.reclaim.shrink(n, from_kswapd=False)
        assert freed > 0
        assert machine.stats.shared_table_unmaps > 0
        # Child rewrites every page; parent must keep the original bytes.
        for i in range(n):
            child.write(addr + i * PAGE_SIZE, (i * 13 + 1).to_bytes(8, "little"))
        for i in range(n):
            assert p.read(addr + i * PAGE_SIZE, 8) == (i * 7).to_bytes(8, "little")
            assert child.read(addr + i * PAGE_SIZE, 8) == \
                (i * 13 + 1).to_bytes(8, "little")
        audit_machine(machine)

    def test_sharers_converge_on_swap_cache(self):
        machine = swap_machine(phys_mb=64, swap_mb=64)
        p = machine.spawn_process("server")
        addr = p.mmap(1 * MIB)
        p.touch_range(addr, 1 * MIB, write=True)
        child = p.odfork()
        n = 1 * MIB // PAGE_SIZE
        machine.kernel.reclaim.shrink(n, from_kswapd=False)
        assert machine.stats.pswpout > 0
        p.touch_range(addr, 1 * MIB, write=False)   # swap everything back in
        swapins = machine.stats.pswpin
        child.touch_range(addr, 1 * MIB, write=False)
        # The second sharer finds the frames in the swap cache: no new I/O.
        assert machine.stats.pswpin == swapins
        assert machine.stats.swap_cache_hits > 0
        audit_machine(machine)

    def test_fork_server_overcommit(self):
        # A fork-server whose total footprint (parent + divergent children)
        # exceeds physical memory must keep working.
        machine = swap_machine(phys_mb=16, swap_mb=128)
        p = machine.spawn_process("server")
        size = 8 * MIB
        addr = p.mmap(size)
        p.touch_range(addr, size, write=True)
        for round_no in range(4):
            child = p.odfork()
            child.touch_range(addr, size, write=True)  # full divergence
            child.exit()
            p.wait()
        assert machine.stats.pswpout > 0
        audit_machine(machine)


class TestSlotLifecycle:
    def test_exit_releases_slots(self):
        machine = swap_machine(phys_mb=16, swap_mb=64)
        p = machine.spawn_process("hog")
        addr = p.mmap(24 * MIB)
        p.touch_range(addr, 24 * MIB, write=True)
        assert machine.kernel.swap.used_slots > 0
        p.exit()
        assert machine.kernel.swap.used_slots == 0
        assert len(machine.kernel.swap_cache) == 0
        audit_machine(machine)

    def test_madvise_dontneed_releases_slots(self):
        machine = swap_machine(phys_mb=16, swap_mb=64)
        p = machine.spawn_process("hog")
        addr = p.mmap(24 * MIB)
        p.touch_range(addr, 24 * MIB, write=True)
        assert machine.kernel.swap.used_slots > 0
        p.madvise(addr, 24 * MIB, MADV_DONTNEED)
        assert machine.kernel.swap.used_slots == 0
        audit_machine(machine)

    def test_munmap_releases_slots(self):
        machine = swap_machine(phys_mb=16, swap_mb=64)
        p = machine.spawn_process("hog")
        addr = p.mmap(24 * MIB)
        p.touch_range(addr, 24 * MIB, write=True)
        assert machine.kernel.swap.used_slots > 0
        p.munmap(addr, 24 * MIB)
        assert machine.kernel.swap.used_slots == 0
        audit_machine(machine)

    def test_zero_page_needs_no_swap_storage(self):
        # Never-written pages store nothing on the device: eviction of a
        # zero page records the slot but keeps no bytes.
        machine = swap_machine(phys_mb=64, swap_mb=64)
        p = machine.spawn_process("z")
        addr = p.mmap(1 * MIB)
        p.touch_range(addr, 1 * MIB, write=False)
        n = 1 * MIB // PAGE_SIZE
        machine.kernel.reclaim.shrink(n, from_kswapd=False)
        dev = machine.kernel.swap
        assert dev.used_slots > 0
        assert len(dev._data) == 0
        assert p.read(addr, 8) == b"\x00" * 8
        audit_machine(machine)


class TestReclaimCostModel:
    def test_kswapd_work_is_background(self):
        machine = swap_machine(phys_mb=16, swap_mb=64)
        p = machine.spawn_process("hog")
        addr = p.mmap(20 * MIB)
        p.touch_range(addr, 20 * MIB, write=True)
        assert machine.stats.kswapd_wakeups > 0
        assert machine.stats.pswpout > 0
        if machine.stats.direct_reclaims == 0:
            # All write-out happened on the kswapd thread: none of it may
            # appear on the foreground task's clock.
            assert machine.profiler.total_ns(["swap_writepage"]) == 0
        # Faulting a swapped page back in is foreground work.
        p.touch_range(addr, 20 * MIB, write=False)
        assert machine.profiler.total_ns(["swap_readpage"]) > 0

    def test_direct_reclaim_charged_foreground(self):
        machine = swap_machine(phys_mb=8, swap_mb=64)
        p = machine.spawn_process("hog")
        addr = p.mmap(16 * MIB)
        before = machine.now_ns
        p.touch_range(addr, 16 * MIB, write=True)
        assert machine.now_ns > before
        assert machine.stats.pswpout > 0
