"""In-place snapshot/restore (the §6.1 fork-less primitive)."""

import pytest

from repro import MIB, Machine
from repro.errors import InvalidArgumentError
from conftest import make_filled_region
from repro.verify.audit import audit_machine


@pytest.fixture
def snapped(machine):
    p = machine.spawn_process("snap")
    addr, _ = make_filled_region(p, size=4 * MIB)
    p.write(addr, b"baseline")
    snapshot = p.snapshot()
    return p, addr, snapshot


class TestRoundTrips:
    def test_restore_rolls_back_writes(self, snapped):
        p, addr, snapshot = snapped
        p.write(addr, b"mutated!")
        p.write(addr + 1 * MIB, b"more damage")
        snapshot.restore()
        assert p.read(addr, 8) == b"baseline"
        assert p.read(addr + 1 * MIB, 11) == bytes(11)

    def test_restore_is_repeatable(self, snapped):
        p, addr, snapshot = snapped
        for round_number in range(6):
            p.write(addr, f"round {round_number}".encode())
            snapshot.restore()
            assert p.read(addr, 8) == b"baseline"
        assert snapshot.restores == 6

    def test_unwritten_state_costs_nothing(self, snapped, machine):
        p, addr, snapshot = snapped
        assert snapshot.restore() == 0  # nothing changed: no entries moved

    def test_new_pages_are_rolled_back(self, snapped, machine):
        p, addr, snapshot = snapped
        live_before = machine.live_data_frames()
        p.write(addr + 3 * MIB + 8192, b"fresh page")
        snapshot.restore()
        assert machine.live_data_frames() == live_before
        assert p.read(addr + 3 * MIB + 8192, 10) == bytes(10)

    def test_writes_after_snapshot_cow_not_corrupt(self, snapped, machine):
        p, addr, snapshot = snapped
        before = machine.stats.cow_faults
        p.write(addr, b"isolated")
        assert machine.stats.cow_faults > before  # saved page untouched
        assert p.read(addr, 8) == b"isolated"


class TestLifecycle:
    def test_discard_releases_references(self, machine):
        machine.init_process
        baseline = machine.live_data_frames()
        p = machine.spawn_process("snap")
        addr, _ = make_filled_region(p, size=2 * MIB)
        snapshot = p.snapshot()
        p.write(addr, b"x")
        snapshot.discard()
        p.exit()
        machine.init_process.wait()
        assert machine.live_data_frames() == baseline
        machine.check_frame_invariants()

    def test_discard_after_exit_frees_everything(self, machine):
        machine.init_process
        baseline = machine.live_data_frames()
        p = machine.spawn_process("snap")
        addr, _ = make_filled_region(p, size=2 * MIB)
        snapshot = p.snapshot()
        p.exit()
        machine.init_process.wait()
        assert machine.live_data_frames() > baseline  # snapshot holds refs
        snapshot.discard()
        assert machine.live_data_frames() == baseline

    def test_restore_after_discard_rejected(self, snapped):
        p, addr, snapshot = snapped
        snapshot.discard()
        with pytest.raises(InvalidArgumentError):
            snapshot.restore()

    def test_double_discard_is_noop(self, snapped):
        p, addr, snapshot = snapped
        snapshot.discard()
        snapshot.discard()

    def test_stats_counted(self, snapped, machine):
        p, addr, snapshot = snapped
        snapshot.restore()
        assert machine.stats.snapshots_created == 1
        assert machine.stats.snapshot_restores == 1


class TestRestrictions:
    def test_huge_mappings_rejected(self, machine):
        p = machine.spawn_process("snap-huge")
        addr = p.mmap_huge(2 * MIB)
        p.write(addr, b"x")
        with pytest.raises(InvalidArgumentError):
            p.snapshot()

    def test_shared_mm_rejected(self, machine):
        p = machine.spawn_process("snap-shared")
        addr, _ = make_filled_region(p, size=1 * MIB)
        thread = p.clone_vm()
        with pytest.raises(InvalidArgumentError):
            p.snapshot()
        thread.exit()
        p.wait()

    def test_snapshot_unshares_odfork_tables(self, machine):
        """Creating a snapshot over shared tables must copy them first."""
        p = machine.spawn_process("snap-odf")
        addr, _ = make_filled_region(p, size=2 * MIB)
        p.write(addr, b"shared base")
        child = p.odfork()
        snapshot = p.snapshot()
        assert machine.stats.table_cow_copies >= 1
        p.write(addr, b"parent edit")
        snapshot.restore()
        assert p.read(addr, 11) == b"shared base"
        assert child.read(addr, 11) == b"shared base"
        child.exit()
        p.wait()
        audit_machine(machine)


class TestFuzzResetPattern:
    def test_snapshot_reset_loop_like_fuzzer(self, machine):
        """The Xu et al. use case: N inputs, one process, full resets."""
        p = machine.spawn_process("snap-fuzz")
        addr, _ = make_filled_region(p, size=4 * MIB)
        p.write(addr + 100, b"INITIAL")
        snapshot = p.snapshot()
        for i in range(10):
            # Each 'input' scribbles somewhere different.
            p.write(addr + (i * 137 * 4096) % (4 * MIB - 4096),
                    f"input-{i}".encode())
            snapshot.restore()
        assert p.read(addr + 100, 7) == b"INITIAL"
        audit_machine(machine)
