"""Shared fixtures and hypothesis profiles for the test suite."""

from __future__ import annotations

import os

import pytest

from repro import MIB, Machine

try:
    from hypothesis import settings

    # "ci" is the default: derandomized so every run (local or CI) explores
    # the same cases — property failures reproduce instead of flaking.
    # HYPOTHESIS_PROFILE=dev restores random exploration for bug hunting.
    settings.register_profile("ci", derandomize=True, deadline=None,
                              max_examples=25)
    settings.register_profile("dev", deadline=None, max_examples=50)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
except ImportError:  # hypothesis-based tests skip themselves
    pass


@pytest.fixture
def machine():
    """A small deterministic machine (256 MiB, no noise)."""
    return Machine(phys_mb=256)


@pytest.fixture
def big_machine():
    """A machine large enough for multi-GB workloads."""
    return Machine(phys_mb=3072)


@pytest.fixture
def proc(machine):
    """A fresh top-level process on the small machine."""
    return machine.spawn_process("test-proc")


def make_filled_region(process, size=4 * MIB, pattern=b"\xabQ"):
    """Map ``size`` bytes, fill them, and write a recognisable pattern at
    a few probe offsets; returns (addr, probe_offsets)."""
    addr = process.mmap(size)
    process.touch_range(addr, size, write=True)
    probes = [0, size // 3, size // 2, size - 4096]
    for i, offset in enumerate(probes):
        process.write(addr + offset, pattern + bytes([i]))
    return addr, probes
