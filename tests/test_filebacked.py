"""File-backed mappings, the page cache, and the in-memory filesystem."""

import pytest

from repro import (
    BusError,
    MAP_PRIVATE,
    MAP_SHARED,
    MIB,
    PROT_READ,
    PROT_WRITE,
)
from repro.errors import InvalidArgumentError

RW = PROT_READ | PROT_WRITE


@pytest.fixture
def file_with_contents(machine):
    f = machine.kernel.fs.create("/data/blob", size=256 * 1024)
    f.set_initial_contents(b"file header", offset=0)
    f.set_initial_contents(b"middle of file", offset=100 * 1024)
    return f


class TestFilesystem:
    def test_create_open_unlink(self, machine):
        fs = machine.kernel.fs
        f = fs.create("/tmp/x", size=100)
        assert fs.open("/tmp/x") is f
        assert fs.exists("/tmp/x")
        fs.unlink("/tmp/x")
        assert not fs.exists("/tmp/x")
        with pytest.raises(InvalidArgumentError):
            fs.open("/tmp/x")

    def test_duplicate_create_rejected(self, machine):
        machine.kernel.fs.create("/dup", 10)
        with pytest.raises(InvalidArgumentError):
            machine.kernel.fs.create("/dup", 10)

    def test_initial_contents_and_truncate(self, machine):
        f = machine.kernel.fs.create("/t", size=0)
        f.set_initial_contents(b"0123456789", offset=4090)  # crosses a page
        assert f.size == 4100
        assert f.initial_page(0)[4090:4096] == b"012345"
        assert f.initial_page(1)[:4] == b"6789"
        f.truncate(4096)
        assert f.initial_page(1) == bytes(4096)


class TestPageCache:
    def test_read_through_cache(self, machine, file_with_contents):
        cache = machine.kernel.page_cache
        data = cache.read(file_with_contents, 0, 11)
        assert data == b"file header"
        assert cache.fills >= 1

    def test_cache_fills_once_per_page(self, machine, file_with_contents):
        cache = machine.kernel.page_cache
        cache.read(file_with_contents, 0, 10)
        fills = cache.fills
        cache.read(file_with_contents, 100, 10)
        assert cache.fills == fills

    def test_write_through_cache(self, machine, file_with_contents):
        cache = machine.kernel.page_cache
        cache.write(file_with_contents, 50, b"patched")
        assert cache.read(file_with_contents, 50, 7) == b"patched"

    def test_drop_file_frees_unmapped_pages(self, machine, file_with_contents):
        cache = machine.kernel.page_cache
        cache.read(file_with_contents, 0, 1)
        assert len(cache) >= 1
        cache.drop_file(file_with_contents)
        assert len(cache) == 0


class TestSharedFileMappings:
    def test_mmap_shared_reads_file(self, proc, machine, file_with_contents):
        addr = proc.mmap_shared(256 * 1024, file=file_with_contents)
        assert proc.read(addr, 11) == b"file header"
        assert proc.read(addr + 100 * 1024, 14) == b"middle of file"

    def test_shared_write_visible_through_cache(self, proc, machine,
                                                file_with_contents):
        addr = proc.mmap_shared(256 * 1024, file=file_with_contents)
        proc.write(addr + 4096, b"mapped write")
        cached = machine.kernel.page_cache.read(file_with_contents, 4096, 12)
        assert cached == b"mapped write"

    def test_shared_mapping_across_fork(self, proc, file_with_contents):
        addr = proc.mmap_shared(256 * 1024, file=file_with_contents)
        child = proc.fork()
        child.write(addr, b"child was here")
        assert proc.read(addr, 14) == b"child was here"

    def test_shared_mapping_across_odfork(self, proc, machine,
                                          file_with_contents):
        addr = proc.mmap_shared(256 * 1024, file=file_with_contents)
        proc.read(addr, 1)  # populate
        child = proc.odfork()
        # First write faults (PMD protected) but copies only the *table*;
        # the data page is shared, so the parent sees the write.
        child.write(addr, b"still shared")
        assert proc.read(addr, 12) == b"still shared"

    def test_file_offset_mapping(self, proc, file_with_contents):
        addr = proc.mmap_shared(4096, file=file_with_contents,
                                offset=100 * 1024 - (100 * 1024) % 4096)
        page_offset = (100 * 1024) % 4096
        assert proc.read(addr + page_offset, 14) == b"middle of file"

    def test_access_beyond_eof_raises_sigbus(self, proc, machine):
        small = machine.kernel.fs.create("/small", size=4096)
        addr = proc.mmap_shared(64 * 1024, file=small)
        proc.read(addr, 10)  # within the file: fine
        with pytest.raises(BusError):
            proc.read(addr + 8192, 1)


class TestPrivateFileMappings:
    def test_private_cow_from_file(self, proc, machine, file_with_contents):
        addr = proc.mmap(256 * 1024, flags=MAP_PRIVATE,
                         file=file_with_contents)
        assert proc.read(addr, 11) == b"file header"
        proc.write(addr, b"PRIVATE CHG")
        assert proc.read(addr, 11) == b"PRIVATE CHG"
        # The file itself is untouched.
        cached = machine.kernel.page_cache.read(file_with_contents, 0, 11)
        assert cached == b"file header"

    def test_private_file_cow_isolated_across_fork(self, proc,
                                                   file_with_contents):
        addr = proc.mmap(256 * 1024, flags=MAP_PRIVATE,
                         file=file_with_contents)
        proc.read(addr, 1)
        child = proc.fork()
        child.write(addr, b"child edit!")
        assert proc.read(addr, 11) == b"file header"

    def test_executable_mapping_model(self, proc, machine):
        """The §3.7 motivation: program text is a read-only file mapping."""
        text = machine.kernel.fs.create("/bin/app", size=64 * 1024)
        text.set_initial_contents(b"\x7fELF machine code")
        addr = proc.mmap(64 * 1024, prot=PROT_READ, flags=MAP_PRIVATE,
                         file=text, name="text")
        child = proc.odfork()
        assert child.read(addr, 4) == b"\x7fELF"
        assert proc.read(addr, 4) == b"\x7fELF"
