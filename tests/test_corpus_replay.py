"""Replay the regression corpus through the full oracle battery.

Every trace in ``tests/corpus/`` was once a failure (shrunk by ddmin) or
pins a tricky op mix; each must stay clean under the odfork-vs-classic
differential *and* the fail-point sweep.  New shrunk failures written by
``python -m repro.verify`` land here and are replayed forever.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.verify import check_trace, enumerate_failpoints, load_trace
from repro.verify.oracle import is_hard

CORPUS = Path(__file__).parent / "corpus"
TRACES = sorted(CORPUS.glob("*.json"))


def _ids(paths):
    return [p.stem for p in paths]


@pytest.mark.parametrize("path", TRACES, ids=_ids(TRACES))
def test_corpus_trace_differential_clean(path):
    trace = load_trace(path)
    findings = [f for f in check_trace(trace, include_smp=True)
                if is_hard(f)]
    assert findings == [], "\n".join(map(str, findings))


@pytest.mark.parametrize("path", TRACES, ids=_ids(TRACES))
def test_corpus_trace_failpoints_clean(path):
    trace = load_trace(path)
    findings, meta = enumerate_failpoints(trace, max_hits_per_site=2)
    assert findings == [], "\n".join(map(str, findings))
    assert meta["runs"] > 0


def test_corpus_is_not_empty():
    assert len(TRACES) >= 3
