"""NUMA memory subsystem: topology, zones, policies, migration, costs.

Covers the non-replication half of the NUMA model (MECHANISM.md §15):
validated :class:`NumaTopology` configuration, the per-node buddy zones
behind :class:`NumaAllocator` with zonelist fallback, the three
mempolicies, ``migrate_pages``, distance-weighted access charging, and
the ``numa.node_alloc`` failpoint's clean-OOM contract.  Replication
lives in test_mitosis.py.
"""

from __future__ import annotations

import pytest

from repro import MIB, Machine, OutOfMemoryError
from repro.errors import ConfigurationError, InvalidArgumentError
from repro.mem.buddy import MAX_ORDER, OutOfFramesError
from repro.mem.page import PAGE_SIZE
from repro.numa import (
    POLICY_BIND,
    POLICY_FIRST_TOUCH,
    POLICY_INTERLEAVE,
    MemPolicy,
    NumaAllocator,
    NumaTopology,
)
from repro.verify.audit import audit_machine


def numa_machine(nodes=2, phys_mb=128, **topo):
    return Machine(phys_mb=phys_mb, numa=NumaTopology(nodes=nodes, **topo))


def node_used(machine):
    return list(machine.allocator.node_used_frames())


# --------------------------------------------------------------------- #
# Topology validation


class TestTopology:
    def test_needs_at_least_one_node(self):
        with pytest.raises(ConfigurationError):
            NumaTopology(nodes=0)

    def test_distance_matrix_must_be_square(self):
        with pytest.raises(ConfigurationError):
            NumaTopology(nodes=2, distance=[[10, 20]])

    def test_distance_matrix_must_be_symmetric(self):
        with pytest.raises(ConfigurationError):
            NumaTopology(nodes=2, distance=[[10, 20], [30, 10]])

    def test_remote_distance_below_local_rejected(self):
        with pytest.raises(ConfigurationError):
            NumaTopology(nodes=2, distance=[[10, 5], [5, 10]])

    def test_bind_cannot_be_the_default_policy(self):
        with pytest.raises(ConfigurationError):
            NumaTopology(nodes=2, default_policy=POLICY_BIND)

    def test_unknown_replica_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            NumaTopology(nodes=2, replicate=True,
                         odfork_replica_policy="share-some")

    def test_factor_is_zero_local_one_at_double_distance(self):
        topo = NumaTopology(nodes=2)
        assert topo.factor(0, 0) == 0.0
        assert topo.factor(0, 1) == 1.0

    def test_fallback_order_is_nearest_first(self):
        # Node 1 is distance 15 from node 0; node 2 is 30.
        topo = NumaTopology(nodes=3, distance=[[10, 15, 30],
                                               [15, 10, 30],
                                               [30, 30, 10]])
        assert topo.fallback[0] == [0, 1, 2]
        assert topo.fallback[2] == [2, 0, 1]


# --------------------------------------------------------------------- #
# Per-node zones


class TestZones:
    def test_zones_partition_the_frame_range(self):
        allocator = NumaAllocator(4096, NumaTopology(nodes=3))
        spans = sum(zone.n_frames for zone in allocator.zones)
        assert spans == allocator.n_frames
        for node, base in enumerate(allocator.bases):
            assert allocator.node_of(base) == node
            top = base + allocator.zones[node].n_frames - 1
            assert allocator.node_of(top) == node

    def test_zone_below_one_buddy_block_rejected(self):
        with pytest.raises(ConfigurationError):
            NumaAllocator((1 << MAX_ORDER), NumaTopology(nodes=2))

    def test_alloc_prefers_the_requested_node(self):
        allocator = NumaAllocator(2048, NumaTopology(nodes=2))
        pfn = allocator.alloc(0, node=1)
        assert allocator.node_of(pfn) == 1
        assert allocator.numa_hit == 1
        assert allocator.numa_fallback == 0

    def test_exhausted_node_falls_back_by_distance(self):
        allocator = NumaAllocator(2048, NumaTopology(nodes=2))
        while allocator.zones[0].free_frames:
            allocator.alloc(0, node=0)
        pfn = allocator.alloc(0, node=0)
        assert allocator.node_of(pfn) == 1
        assert allocator.numa_fallback == 1

    def test_strict_alloc_refuses_to_spill(self):
        allocator = NumaAllocator(2048, NumaTopology(nodes=2))
        while allocator.zones[0].free_frames:
            allocator.alloc(0, node=0)
        with pytest.raises(OutOfFramesError):
            allocator.alloc(0, node=0, strict=True)

    def test_bulk_interleave_stripes_across_nodes(self):
        allocator = NumaAllocator(2048, NumaTopology(nodes=2))
        pfns = allocator.alloc_bulk(64, interleave=True)
        nodes = allocator.node_of_bulk(pfns)
        assert (nodes == 0).sum() == 32
        assert (nodes == 1).sum() == 32


# --------------------------------------------------------------------- #
# Machine-level placement policies


class TestPolicies:
    def test_first_touch_places_on_the_faulting_node(self):
        machine = numa_machine()
        p = machine.spawn_process("ft")
        buf = p.mmap(2 * MIB)
        before = node_used(machine)
        with machine.kernel.pin_to_node(1):
            p.touch_range(buf, 2 * MIB, write=True)
        grew = [b - a for a, b in zip(before, node_used(machine))]
        # Data frames land on node 1; only stray table frames may not.
        assert grew[1] > 2 * MIB // PAGE_SIZE // 2
        assert grew[1] > 4 * grew[0]

    def test_bind_policy_places_strictly(self):
        machine = numa_machine()
        p = machine.spawn_process("bind")
        machine.kernel.sys_set_mempolicy(p.task, POLICY_BIND, node=1)
        buf = p.mmap(1 * MIB)
        before = node_used(machine)
        p.touch_range(buf, 1 * MIB, write=True)
        grew = [b - a for a, b in zip(before, node_used(machine))]
        assert grew[1] >= 1 * MIB // PAGE_SIZE

    def test_interleave_policy_spreads_single_faults(self):
        machine = numa_machine()
        p = machine.spawn_process("il")
        machine.kernel.sys_set_mempolicy(p.task, POLICY_INTERLEAVE)
        buf = p.mmap(1 * MIB)
        before = node_used(machine)
        for i in range(0, 1 * MIB, PAGE_SIZE):
            p.touch(buf + i, write=True)
        grew = [b - a for a, b in zip(before, node_used(machine))]
        pages = 1 * MIB // PAGE_SIZE
        assert abs(grew[0] - grew[1]) <= pages // 4

    def test_set_mempolicy_validates_the_node(self):
        machine = numa_machine()
        p = machine.spawn_process("p")
        with pytest.raises(InvalidArgumentError):
            machine.kernel.sys_set_mempolicy(p.task, POLICY_BIND, node=2)

    def test_set_mempolicy_needs_a_numa_machine(self):
        machine = Machine(phys_mb=64)
        p = machine.spawn_process("p")
        with pytest.raises(InvalidArgumentError):
            machine.kernel.sys_set_mempolicy(p.task, POLICY_INTERLEAVE)

    def test_mempolicy_is_inherited_but_not_shared_across_fork(self):
        machine = numa_machine()
        p = machine.spawn_process("p")
        machine.kernel.sys_set_mempolicy(p.task, POLICY_INTERLEAVE)
        child = p.fork()
        assert child.mm.mempolicy.mode == POLICY_INTERLEAVE
        assert child.mm.mempolicy is not p.mm.mempolicy

    def test_mempolicy_rejects_bind_without_node(self):
        with pytest.raises(ConfigurationError):
            MemPolicy(POLICY_BIND)

    def test_default_policy_first_touch_means_no_policy_object(self):
        machine = numa_machine()
        p = machine.spawn_process("p")
        assert machine.numa.default_policy == POLICY_FIRST_TOUCH
        assert p.mm.mempolicy is None


# --------------------------------------------------------------------- #
# migrate_pages


class TestMigratePages:
    def test_moves_private_pages_and_preserves_content(self):
        machine = numa_machine()
        p = machine.spawn_process("mig")
        buf = p.mmap(1 * MIB)
        with machine.kernel.pin_to_node(0):
            p.touch_range(buf, 1 * MIB, write=True)
        p.write(buf + 123, b"migrate-me")
        moved = machine.kernel.sys_migrate_pages(p.task, 1)
        assert moved >= 1 * MIB // PAGE_SIZE
        assert machine.kernel.stats.pages_migrated >= moved
        assert p.read(buf + 123, 10) == b"migrate-me"
        audit_machine(machine)

    def test_skips_pages_shared_with_a_fork_child(self):
        machine = numa_machine()
        p = machine.spawn_process("mig")
        buf = p.mmap(1 * MIB)
        with machine.kernel.pin_to_node(0):
            p.touch_range(buf, 1 * MIB, write=True)
        child = p.fork()   # COW-shares every frame
        assert machine.kernel.sys_migrate_pages(p.task, 1) == 0
        child.exit()
        p.wait()
        audit_machine(machine)

    def test_validates_the_target_node(self):
        machine = numa_machine()
        p = machine.spawn_process("p")
        with pytest.raises(InvalidArgumentError):
            machine.kernel.sys_migrate_pages(p.task, 9)


# --------------------------------------------------------------------- #
# Distance-weighted access costs


class TestDistanceCharging:
    def _cold_pass(self, machine, p, buf, pages, node):
        machine.kernel.active_tlb(p.mm).flush_all()
        with machine.kernel.pin_to_node(node):
            start = machine.clock.now_ns
            for i in range(pages):
                p.touch(buf + i * PAGE_SIZE, PAGE_SIZE)
            return machine.clock.now_ns - start

    def test_remote_access_costs_more_than_local(self):
        machine = numa_machine()
        p = machine.spawn_process("cost")
        buf = p.mmap(1 * MIB)
        with machine.kernel.pin_to_node(0):
            p.touch_range(buf, 1 * MIB, write=True)
        pages = 1 * MIB // PAGE_SIZE
        local = self._cold_pass(machine, p, buf, pages, 0)
        remote = self._cold_pass(machine, p, buf, pages, 1)
        assert remote > local
        assert machine.kernel.stats.numa_remote_accesses >= pages

    def test_flat_machine_charges_no_numa_penalty(self):
        machine = Machine(phys_mb=64)
        p = machine.spawn_process("flat")
        buf = p.mmap(1 * MIB)
        p.touch_range(buf, 1 * MIB, write=True)
        assert machine.kernel.stats.numa_remote_accesses == 0


# --------------------------------------------------------------------- #
# Metrics and the vCPU home-node wiring


class TestIntegration:
    def test_numa_metrics_namespace(self):
        machine = numa_machine()
        snap = machine.metrics.snapshot()
        assert snap["numa.nodes"] == 2
        assert "numa.node0_used" in snap and "numa.node1_free" in snap

    def test_flat_machine_has_empty_numa_namespace(self):
        snap = Machine(phys_mb=64).metrics.snapshot()
        assert not any(k.startswith("numa.") for k in snap)

    def test_pin_to_node_validates_range(self):
        machine = numa_machine()
        with pytest.raises(InvalidArgumentError):
            with machine.kernel.pin_to_node(5):
                pass

    def test_current_node_is_zero_without_numa(self):
        machine = Machine(phys_mb=64)
        assert machine.kernel.current_node() == 0


# --------------------------------------------------------------------- #
# numa.node_alloc failpoint: per-node allocation failure surfaces cleanly


class TestNodeAllocFailpoint:
    def test_armed_fault_surfaces_clean_oom(self):
        machine = numa_machine()
        p = machine.spawn_process("fp")
        buf = p.mmap(1 * MIB)
        # Build the table chain first so the armed fault fails only the
        # data-frame allocation (empty tables legitimately stay behind).
        p.touch(buf + PAGE_SIZE, write=True)
        frames_before = machine.used_frames()
        machine.kernel.failpoints.arm("numa.node_alloc", nth=1)
        with pytest.raises(OutOfMemoryError):
            p.touch(buf, write=True)
        assert machine.used_frames() == frames_before
        audit_machine(machine)
        # Armed shots are one-time: the retry faults the page in fine.
        p.touch(buf, write=True)
        audit_machine(machine)

    def test_armed_migrate_stops_but_keeps_progress(self):
        machine = numa_machine()
        p = machine.spawn_process("fp-mig")
        buf = p.mmap(64 * PAGE_SIZE)
        with machine.kernel.pin_to_node(0):
            p.touch_range(buf, 64 * PAGE_SIZE, write=True)
        # Fail the 4th target-node allocation: three pages moved, then
        # the sweep stops rather than unwinding or corrupting.
        machine.kernel.failpoints.arm("numa.node_alloc", nth=4)
        moved = machine.kernel.sys_migrate_pages(p.task, 1)
        assert moved == 3
        audit_machine(machine)
        # A second sweep finishes the job.
        assert machine.kernel.sys_migrate_pages(p.task, 1) == 64 - 3
        audit_machine(machine)
