"""2 MiB huge-page mappings: demand fill, COW, fork interactions."""

import pytest

from repro import MIB
from repro.errors import InvalidArgumentError
from repro.mem import HUGE_PAGE_SIZE
from repro.paging import is_huge, is_writable


class TestHugeMappings:
    def test_basic_huge_mapping(self, machine):
        p = machine.spawn_process("huge")
        addr = p.mmap_huge(4 * MIB)
        assert addr % HUGE_PAGE_SIZE == 0
        p.write(addr + 12345, b"in a huge page")
        assert p.read(addr + 12345, 14) == b"in a huge page"

    def test_pmd_entry_is_huge(self, machine):
        p = machine.spawn_process("huge")
        addr = p.mmap_huge(2 * MIB)
        p.write(addr, b"x")
        pmd_table, index = p.mm.walk_to_pmd(addr)
        assert is_huge(pmd_table.entries[index])

    def test_rss_counts_full_huge_page(self, machine):
        p = machine.spawn_process("huge")
        addr = p.mmap_huge(4 * MIB)
        p.write(addr, b"x")  # one touch faults the whole 2 MiB
        assert p.rss_bytes == HUGE_PAGE_SIZE

    def test_huge_cow_after_fork(self, machine):
        p = machine.spawn_process("huge")
        addr = p.mmap_huge(2 * MIB)
        p.write(addr, b"parent data")
        child = p.fork()
        assert child.read(addr, 11) == b"parent data"
        child.write(addr, b"child data!")
        assert p.read(addr, 11) == b"parent data"
        assert child.read(addr, 11) == b"child data!"

    def test_huge_cow_charges_bulk_copy(self, machine):
        """Table 1: a huge COW fault copies 2 MiB — far slower than 4 KiB."""
        p = machine.spawn_process("huge")
        addr = p.mmap_huge(2 * MIB)
        p.write(addr, b"x")
        child = p.fork()
        watch = machine.stopwatch()
        child.write(addr, b"y")
        huge_fault_ns = watch.elapsed_ns
        assert huge_fault_ns > 150_000  # ~198 us in the paper

    def test_huge_reuse_when_exclusive(self, machine):
        p = machine.spawn_process("huge")
        addr = p.mmap_huge(2 * MIB)
        p.write(addr, b"v1")
        child = p.fork()
        child.exit()
        p.wait()
        reuse_before = machine.stats.cow_reuse
        p.write(addr, b"v2")
        assert machine.stats.cow_reuse == reuse_before + 1

    def test_huge_unmap_granularity(self, machine):
        p = machine.spawn_process("huge")
        addr = p.mmap_huge(4 * MIB)
        with pytest.raises(InvalidArgumentError):
            p.munmap(addr, 1 * MIB)
        p.munmap(addr, 2 * MIB)  # whole huge page: fine

    def test_huge_unmap_frees_compound(self, machine):
        p = machine.spawn_process("huge")
        addr = p.mmap_huge(2 * MIB)
        p.write(addr, b"x")
        live = machine.live_data_frames()
        p.munmap(addr, 2 * MIB)
        assert machine.live_data_frames() <= live - 1  # head carries the span

    def test_odfork_handles_huge_entries_eagerly(self, machine):
        """The paper's implementation supports 4 KiB pages; huge entries
        take the classic eager-COW path under odfork by default."""
        p = machine.spawn_process("huge")
        addr = p.mmap_huge(2 * MIB)
        p.write(addr, b"hp data")
        child = p.odfork()
        head_ref_holder = machine.pages
        assert child.read(addr, 7) == b"hp data"
        child.write(addr, b"hp edit")
        assert p.read(addr, 7) == b"hp data"

    def test_mixed_huge_and_regular(self, machine):
        p = machine.spawn_process("mixed")
        small = p.mmap(1 * MIB)
        huge = p.mmap_huge(2 * MIB)
        p.write(small, b"small")
        p.write(huge, b"huge!")
        child = p.odfork()
        assert child.read(small, 5) == b"small"
        assert child.read(huge, 5) == b"huge!"
        child.write(small, b"csmal")
        child.write(huge, b"chuge")
        assert p.read(small, 5) == b"small"
        assert p.read(huge, 5) == b"huge!"

    def test_populate_huge(self, machine):
        p = machine.spawn_process("huge")
        addr = p.mmap_huge(8 * MIB, populate=True)
        assert p.rss_bytes == 8 * MIB
        assert machine.stats.huge_faults == 4
