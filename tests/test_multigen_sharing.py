"""Multi-generation sharing and the both-copies write-protection rule.

DESIGN.md §3 documents the subtle case: when process A copies a shared
table, a later sole owner B must not silently regain write access to pages
that are still COW-shared with A's copy.  These tests pin that protocol
down across deep fork lineages and mixed fork flavours.
"""

import pytest

from repro import MIB
from conftest import make_filled_region


class TestSoleOwnerSafety:
    def test_survivor_cannot_corrupt_copier(self, proc, machine):
        """The DESIGN.md §3 scenario, end to end."""
        addr, _ = make_filled_region(proc, size=2 * MIB)
        proc.write(addr, b"original")
        child = proc.odfork()
        # Child writes elsewhere in the region: copies the table.  The
        # page at `addr` is still physically shared between both.
        child.write(addr + 64 * 1024, b"child's own write")
        assert machine.pages.pt_ref(proc.mm.get_pte_table(addr).pfn) == 1
        # Parent (now sole owner of the old table) writes the shared page:
        # this MUST COW, not write in place.
        proc.write(addr, b"parent v2")
        assert child.read(addr, 8) == b"original"
        assert proc.read(addr, 9) == b"parent v2"

    def test_survivor_write_to_own_cowed_page(self, proc, machine):
        addr, _ = make_filled_region(proc, size=2 * MIB)
        child = proc.odfork()
        child.write(addr, b"childpage")     # table copy + page COW in child
        proc.write(addr, b"parentpge")      # sole-owner flip + page reuse
        assert machine.stats.cow_reuse >= 1
        assert child.read(addr, 9) == b"childpage"
        assert proc.read(addr, 9) == b"parentpge"


class TestDeepLineages:
    def test_chain_of_odforks(self, proc):
        addr, _ = make_filled_region(proc, size=2 * MIB)
        proc.write(addr, b"gen0")
        processes = [proc]
        for generation in range(1, 5):
            child = processes[-1].odfork()
            processes.append(child)
        # Everyone reads the ancestral data.
        for p in processes:
            assert p.read(addr, 4) == b"gen0"
        # Each generation writes its own value at a distinct offset.
        for i, p in enumerate(processes):
            p.write(addr + 4096 * (i + 1), f"gn{i:02d}".encode())
        for i, p in enumerate(processes):
            assert p.read(addr + 4096 * (i + 1), 4) == f"gn{i:02d}".encode()
            # And nobody sees anyone else's private write.
            other = (i + 1) % len(processes)
            assert p.read(addr + 4096 * (other + 1), 4) in (
                f"gn{other:02d}".encode(), bytes(4)
            )

    def test_mixed_fork_flavours(self, proc, machine):
        """classic fork of a process holding shared tables."""
        addr, _ = make_filled_region(proc, size=2 * MIB)
        proc.write(addr, b"root")
        od_child = proc.odfork()
        # Classic fork from the odfork child: tables are shared, so the
        # classic copy must produce correctly protected child entries.
        classic_grandchild = od_child.fork()
        assert classic_grandchild.read(addr, 4) == b"root"
        classic_grandchild.write(addr, b"gcw!")
        assert od_child.read(addr, 4) == b"root"
        assert proc.read(addr, 4) == b"root"
        od_child.write(addr, b"odcw")
        assert proc.read(addr, 4) == b"root"
        assert classic_grandchild.read(addr, 4) == b"gcw!"

    def test_odfork_of_classic_child(self, proc):
        addr, _ = make_filled_region(proc, size=2 * MIB)
        proc.write(addr, b"base")
        classic_child = proc.fork()
        od_grandchild = classic_child.odfork()
        od_grandchild.write(addr, b"leaf")
        assert classic_child.read(addr, 4) == b"base"
        assert proc.read(addr, 4) == b"base"
        assert od_grandchild.read(addr, 4) == b"leaf"

    def test_sibling_isolation(self, proc):
        addr, _ = make_filled_region(proc, size=2 * MIB)
        proc.write(addr, b"parent data")
        siblings = [proc.odfork() for _ in range(3)]
        for i, sibling in enumerate(siblings):
            sibling.write(addr, f"sibling-{i}".encode())
        for i, sibling in enumerate(siblings):
            assert sibling.read(addr, 9) == f"sibling-{i}".encode()
        assert proc.read(addr, 11) == b"parent data"

    def test_refcount_accounting_across_generations(self, proc, machine):
        addr, _ = make_filled_region(proc, size=2 * MIB)
        leaf = proc.mm.get_pte_table(addr)
        a = proc.odfork()
        b = a.odfork()
        c = b.odfork()
        assert machine.pages.pt_ref(leaf.pfn) == 4
        b.write(addr, b"x")   # b copies
        assert machine.pages.pt_ref(leaf.pfn) == 3
        for p in (c, b, a):
            p.exit()
        b_parent_waits = a  # reap in lineage order
        # c was b's child; reparenting applies after exits.
        machine.check_frame_invariants()
