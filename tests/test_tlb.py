"""TLB model: hits, permission upgrades, flushes, eviction."""

from repro.paging import TLB


class TestLookupInsert:
    def test_miss_then_hit(self):
        tlb = TLB()
        assert tlb.lookup(0x1000, is_write=False) is None
        tlb.insert(0x1000, pfn=7, writable=True)
        hit = tlb.lookup(0x1234, is_write=False)  # same page
        assert hit.pfn == 7
        assert tlb.stats.hits == 1
        assert tlb.stats.misses == 1

    def test_write_through_readonly_entry_misses(self):
        tlb = TLB()
        tlb.insert(0x1000, pfn=7, writable=False)
        assert tlb.lookup(0x1000, is_write=False) is not None
        assert tlb.lookup(0x1000, is_write=True) is None

    def test_reinsert_upgrades(self):
        tlb = TLB()
        tlb.insert(0x1000, pfn=7, writable=False)
        tlb.insert(0x1000, pfn=7, writable=True)
        assert tlb.lookup(0x1000, is_write=True).pfn == 7
        assert len(tlb) == 1


class TestFlushes:
    def test_flush_all(self):
        tlb = TLB()
        for page in range(10):
            tlb.insert(page * 4096, pfn=page, writable=True)
        tlb.flush_all()
        assert len(tlb) == 0
        assert tlb.stats.flushes_full == 1

    def test_flush_range(self):
        tlb = TLB()
        for page in range(10):
            tlb.insert(page * 4096, pfn=page, writable=True)
        tlb.flush_range(2 * 4096, 5 * 4096)
        assert tlb.lookup(1 * 4096, False) is not None
        assert tlb.lookup(2 * 4096, False) is None
        assert tlb.lookup(4 * 4096, False) is None
        assert tlb.lookup(5 * 4096, False) is not None

    def test_flush_range_larger_than_cache(self):
        tlb = TLB()
        tlb.insert(0x5000, pfn=5, writable=True)
        tlb.flush_range(0, 1 << 30)
        assert len(tlb) == 0

    def test_flush_empty_range(self):
        tlb = TLB()
        tlb.insert(0x5000, pfn=5, writable=True)
        tlb.flush_range(0x9000, 0x9000)
        assert len(tlb) == 1

    def test_flush_page(self):
        tlb = TLB()
        tlb.insert(0x5000, pfn=5, writable=True)
        tlb.flush_page(0x5123)
        assert tlb.lookup(0x5000, False) is None


class TestCapacity:
    def test_fifo_eviction(self):
        tlb = TLB(capacity=4)
        for page in range(6):
            tlb.insert(page * 4096, pfn=page, writable=True)
        assert len(tlb) == 4
        assert tlb.stats.evictions == 2
        # Oldest entries evicted first.
        assert tlb.lookup(0, False) is None
        assert tlb.lookup(5 * 4096, False) is not None

    def test_hit_rate(self):
        tlb = TLB()
        tlb.insert(0, pfn=0, writable=True)
        tlb.lookup(0, False)
        tlb.lookup(4096, False)
        assert tlb.stats.hit_rate() == 0.5
