"""Property-based buddy-allocator testing: no frame ever double-owned."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
import hypothesis.strategies as st

from repro.mem import BuddyAllocator, OutOfFramesError

N_FRAMES = 1 << 11


class BuddyMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.buddy = BuddyAllocator(N_FRAMES)
        self.singles = []
        self.blocks = []

    @rule(n=st.integers(1, 128))
    def alloc_bulk(self, n):
        if self.buddy.free_frames < n:
            return
        pfns = self.buddy.alloc_bulk(n)
        assert len(np.unique(pfns)) == n
        self.singles.extend(pfns.tolist())

    @rule(data=st.data())
    def free_bulk_some(self, data):
        if not self.singles:
            return
        k = data.draw(st.integers(1, len(self.singles)))
        indices = data.draw(
            st.lists(st.integers(0, len(self.singles) - 1), min_size=k,
                     max_size=k, unique=True))
        chunk = [self.singles[i] for i in indices]
        for i in sorted(indices, reverse=True):
            self.singles.pop(i)
        self.buddy.free_bulk(np.asarray(chunk, dtype=np.int64))

    @rule(order=st.integers(0, 6))
    def alloc_block(self, order):
        try:
            pfn = self.buddy.alloc(order)
        except OutOfFramesError:
            return
        assert pfn % (1 << order) == 0
        self.blocks.append((pfn, order))

    @rule(data=st.data())
    def free_block(self, data):
        if not self.blocks:
            return
        index = data.draw(st.integers(0, len(self.blocks) - 1))
        pfn, order = self.blocks.pop(index)
        self.buddy.free(pfn, order)

    @rule(index=st.integers(0, 10_000))
    def free_single(self, index):
        if not self.singles:
            return
        pfn = self.singles.pop(index % len(self.singles))
        self.buddy.free(pfn)

    @invariant()
    def ownership_is_exclusive(self):
        if not hasattr(self, "buddy"):
            return
        self.buddy.check_consistency()
        allocated = len(self.singles) + sum(1 << o for _, o in self.blocks)
        assert self.buddy.free_frames == N_FRAMES - allocated


TestBuddyProperties = BuddyMachine.TestCase
TestBuddyProperties.settings = settings(
    max_examples=40,
    stateful_step_count=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
