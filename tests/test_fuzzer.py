"""The fork-server fuzzer: coverage map, mutation, campaign loop."""

import pytest

from repro import MIB, Machine
from repro.apps import CoverageMap, ForkServerFuzzer, Mutator
from repro.apps.sqlite_workload import (
    SQL_DICTIONARY,
    SQL_SEEDS,
    load_fuzz_database,
    run_sql_in_child,
)
from repro.errors import InvalidArgumentError


class TestCoverageMap:
    def test_new_coverage_detected_once(self):
        cov = CoverageMap()
        cov.hit(100)
        cov.hit(200)
        assert cov.merge_and_check_new()
        cov.reset_trace()
        cov.hit(100)
        cov.hit(200)
        assert not cov.merge_and_check_new()

    def test_hit_count_buckets(self):
        """Different hit counts of the same edge are new coverage (AFL's
        bucketing)."""
        cov = CoverageMap()
        cov.hit(7)
        assert cov.merge_and_check_new()
        cov.reset_trace()
        for _ in range(10):
            cov.hit(7)
        # 10 hits lands in a different bucket than 1 hit... but prev_edge
        # chaining makes self-loops: at least it must not crash and the
        # virgin map only grows.
        covered_before = cov.edges_covered
        cov.merge_and_check_new()
        assert cov.edges_covered >= covered_before

    def test_edge_chaining_order_sensitive(self):
        a = CoverageMap()
        a.hit(1)
        a.hit(2)
        a.merge_and_check_new()
        b = CoverageMap()
        b.hit(2)
        b.hit(1)
        b.merge_and_check_new()
        assert (a.virgin != b.virgin).any(), "edge = prev ^ cur must be ordered"

    def test_saturation(self):
        cov = CoverageMap()
        for _ in range(300):
            cov.hit(5)
            cov._prev = 0  # force the same slot
        assert cov.trace.max() == 0xFF


class TestMutator:
    def test_deterministic(self):
        a = Mutator(dictionary=["tok"], seed=3)
        b = Mutator(dictionary=["tok"], seed=3)
        data = b"SELECT * FROM t"
        assert [a.mutate(data) for _ in range(10)] == \
               [b.mutate(data) for _ in range(10)]

    def test_output_bounded(self):
        m = Mutator(seed=1)
        out = m.mutate(b"x" * 5000)
        assert len(out) <= 4096

    def test_mutates_something(self):
        m = Mutator(dictionary=["WHERE"], seed=2)
        data = b"SELECT * FROM t WHERE id = 1"
        outputs = {m.mutate(data) for _ in range(20)}
        assert len(outputs) > 5
        assert any(out != data for out in outputs)

    def test_empty_input_grows(self):
        m = Mutator(seed=4)
        assert isinstance(m.mutate(b""), bytes)


class TestForkServerFuzzer:
    @pytest.fixture
    def small_target(self):
        machine = Machine(phys_mb=512)
        target = machine.spawn_process("target")
        db = load_fuzz_database(target, data_mb=32)
        return machine, target, db

    def test_needs_seeds(self, small_target):
        machine, target, db = small_target
        with pytest.raises(InvalidArgumentError):
            ForkServerFuzzer(target, run_sql_in_child(db), seeds=[])

    def test_run_one_reaps_child(self, small_target):
        machine, target, db = small_target
        fuzzer = ForkServerFuzzer(target, run_sql_in_child(db), SQL_SEEDS,
                                  use_odfork=True)
        fuzzer.run_one(b"SELECT * FROM users WHERE id = 1")
        assert fuzzer.executions == 1
        assert not target.task.children

    def test_malformed_input_is_normal_execution(self, small_target):
        machine, target, db = small_target
        fuzzer = ForkServerFuzzer(target, run_sql_in_child(db), SQL_SEEDS,
                                  use_odfork=True)
        fuzzer.run_one(b"\x00\xff garbage \x00")
        assert fuzzer.crashes == 0
        assert fuzzer.executions == 1

    def test_campaign_finds_coverage(self, small_target):
        machine, target, db = small_target
        fuzzer = ForkServerFuzzer(target, run_sql_in_child(db), SQL_SEEDS,
                                  dictionary=SQL_DICTIONARY, use_odfork=True,
                                  seed=5, exec_overhead_ns=50_000)
        series = fuzzer.run_campaign(duration_s=0.05)
        assert fuzzer.executions > 10
        assert fuzzer.coverage.edges_covered > 20
        assert len(fuzzer.queue) > len(SQL_SEEDS)
        assert series.count == fuzzer.executions

    def test_odfork_faster_than_fork(self, small_target):
        machine, target, db = small_target
        results = {}
        for use_odfork in (False, True):
            fuzzer = ForkServerFuzzer(target, run_sql_in_child(db), SQL_SEEDS,
                                      use_odfork=use_odfork, seed=6,
                                      exec_overhead_ns=0, hang_probability=0)
            watch = machine.stopwatch()
            for _ in range(5):
                fuzzer.run_one(b"SELECT * FROM users WHERE id = 2")
            results[use_odfork] = watch.elapsed_ns
        assert results[True] < results[False] / 2

    def test_child_mutations_do_not_leak(self, small_target):
        machine, target, db = small_target
        fuzzer = ForkServerFuzzer(target, run_sql_in_child(db), SQL_SEEDS,
                                  use_odfork=True)
        before = db.count("users")
        fuzzer.run_one(b"DELETE FROM users WHERE id = 1")
        fuzzer.run_one(b"INSERT INTO users (id, name, age, bio) "
                       b"VALUES (123456789, 'x', 1, 'b')")
        assert db.count("users") == before
