"""Virtual clock and stopwatch behaviour."""

import pytest

from repro.errors import InvalidArgumentError
from repro.timing import NSEC_PER_MSEC, NSEC_PER_SEC, NSEC_PER_USEC, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ns == 0

    def test_custom_start(self):
        assert SimClock(start_ns=42).now_ns == 42

    def test_negative_start_rejected(self):
        with pytest.raises(InvalidArgumentError):
            SimClock(start_ns=-1)

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(100)
        clock.advance(250)
        assert clock.now_ns == 350

    def test_advance_rounds_fractions(self):
        clock = SimClock()
        clock.advance(10.6)
        assert clock.now_ns == 11

    def test_advance_negative_rejected(self):
        clock = SimClock()
        with pytest.raises(InvalidArgumentError):
            clock.advance(-1)

    def test_advance_to_future(self):
        clock = SimClock()
        clock.advance_to(1000)
        assert clock.now_ns == 1000

    def test_advance_to_past_is_noop(self):
        clock = SimClock(start_ns=500)
        clock.advance_to(100)
        assert clock.now_ns == 500

    def test_unit_conversions(self):
        clock = SimClock()
        clock.advance(2_500_000_000)
        assert clock.now_us == 2_500_000_000 / NSEC_PER_USEC
        assert clock.now_ms == 2_500_000_000 / NSEC_PER_MSEC
        assert clock.now_s == 2_500_000_000 / NSEC_PER_SEC


class TestStopwatch:
    def test_measures_elapsed(self):
        clock = SimClock()
        watch = clock.stopwatch()
        clock.advance(12_345)
        assert watch.elapsed_ns == 12_345
        assert watch.elapsed_us == 12.345

    def test_restart(self):
        clock = SimClock()
        watch = clock.stopwatch()
        clock.advance(1000)
        watch.restart()
        clock.advance(500)
        assert watch.elapsed_ns == 500

    def test_elapsed_units(self):
        clock = SimClock()
        watch = clock.stopwatch()
        clock.advance(3 * NSEC_PER_SEC)
        assert watch.elapsed_ms == 3000.0
        assert watch.elapsed_s == 3.0
