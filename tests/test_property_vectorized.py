"""Property tests for the packed-entry layout and the vectorised fast path.

Four families, each pinning one layer of the vectorisation stack:

* random PTE bit patterns round-trip through :class:`EntryStore`
  (scatter/gather/row_view) without loss and without cross-row bleed;
* the vectorised entry predicates agree with their scalar counterparts
  on arbitrary bit patterns;
* random copy/protect/scan slice ranges produce the same entries a
  byte-wise Python loop produces (the off-by-one trap the bulk paths
  must never fall into);
* :meth:`CostModel.charge_many` is clock- and profiler-identical to the
  per-event ``charge`` loop it replaces, across random event sequences
  including zero-cost events (which must not consume noise draws), and
  the buddy allocator's analytic contiguous free is state-identical to
  its generic pairing loop.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
import hypothesis.strategies as st

from repro import Machine
from repro.mem.buddy import MAX_ORDER, BuddyAllocator, _member_mask
from repro.paging.entries import (
    BIT_ACCESSED,
    BIT_DIRTY,
    BIT_PRESENT,
    BIT_RW,
    entry_pfn,
    is_present,
    is_writable,
    present_mask,
    writable_mask,
)
from repro.paging.store import CHUNK_ROWS, EntryStore
from repro.timing.costs import (
    FN_COMPOUND_HEAD,
    FN_COPY_ONE_PTE,
    FN_HUGE_COPY,
    FN_PAGE_REF_INC,
    FN_PTE_ALLOC,
    FN_READ_ONCE,
    FN_TABLE_FREE,
    FN_TABLE_UNSHARE_DEC,
    FN_VM_NORMAL_PAGE,
    FN_ZAP_PTE,
)

ALL_FN_NAMES = [
    FN_PTE_ALLOC, FN_COMPOUND_HEAD, FN_PAGE_REF_INC, FN_READ_ONCE,
    FN_VM_NORMAL_PAGE, FN_COPY_ONE_PTE, FN_HUGE_COPY, FN_ZAP_PTE,
    FN_TABLE_UNSHARE_DEC, FN_TABLE_FREE,
]

entries_arrays = st.lists(
    st.integers(0, 2**64 - 1), min_size=1, max_size=512
).map(lambda xs: np.array(xs, dtype=np.uint64))

full_tables = st.lists(
    st.integers(0, 2**64 - 1), min_size=512, max_size=512
).map(lambda xs: np.array(xs, dtype=np.uint64))


class TestEntryStoreRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(tables=st.lists(full_tables, min_size=1, max_size=6),
           data=st.data())
    def test_scatter_gather_round_trip(self, tables, data):
        store = EntryStore()
        rows = [store.acquire() for _ in tables]
        matrix = np.stack(tables)
        store.scatter(np.array(rows), matrix)
        got = store.gather(np.array(rows))
        assert np.array_equal(got, matrix)
        # row views see the same bits the bulk path wrote…
        for row, table in zip(rows, tables):
            assert np.array_equal(store.row_view(row), table)
        # …and releasing one row never bleeds into its neighbours.
        victim = data.draw(st.integers(0, len(rows) - 1))
        store.release(rows[victim])
        assert not store.row_view(rows[victim]).any()
        for i, row in enumerate(rows):
            if i != victim:
                assert np.array_equal(store.row_view(row), tables[i])

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(1, 40))
    def test_recycled_rows_come_back_zeroed(self, n):
        store = EntryStore()
        rows = [store.acquire() for _ in range(n)]
        for row in rows:
            store.row_view(row)[:] = np.uint64(0xDEAD)
            store.release(row)
        again = [store.acquire() for _ in range(n)]
        for row in again:
            assert not store.row_view(row).any()

    def test_chunk_growth_keeps_views_alive(self):
        store = EntryStore()
        first = store.acquire()
        view = store.row_view(first)
        view[0] = np.uint64(41)
        for _ in range(CHUNK_ROWS + 5):   # force a second chunk
            store.acquire()
        view[0] += np.uint64(1)
        assert int(store.row_view(first)[0]) == 42


class TestVectorizedPredicates:
    @settings(max_examples=60, deadline=None)
    @given(arr=entries_arrays)
    def test_masks_match_scalar_predicates(self, arr):
        assert present_mask(arr).tolist() == [bool(is_present(e)) for e in arr]
        assert writable_mask(arr).tolist() == [
            bool(is_writable(e)) for e in arr]
        pfns = entry_pfn(arr)
        for i, e in enumerate(arr):
            assert int(pfns[i]) == int(entry_pfn(e))


class TestSliceRangeEquivalence:
    """Vectorised slice ops vs the byte-wise loop, on random [lo, hi)."""

    @settings(max_examples=60, deadline=None)
    @given(table=full_tables, bounds=st.tuples(st.integers(0, 512),
                                               st.integers(0, 512)))
    def test_protect_slice_matches_loop(self, table, bounds):
        lo, hi = min(bounds), max(bounds)
        vec = table.copy()
        vec[lo:hi] &= np.uint64(~BIT_RW)
        ref = table.copy()
        for i in range(lo, hi):
            ref[i] = ref[i] & np.uint64(~BIT_RW)
        assert np.array_equal(vec, ref)

    @settings(max_examples=60, deadline=None)
    @given(table=full_tables, bounds=st.tuples(st.integers(0, 512),
                                               st.integers(0, 512)))
    def test_accessed_dirty_slice_matches_loop(self, table, bounds):
        lo, hi = min(bounds), max(bounds)
        bits = BIT_ACCESSED | BIT_DIRTY
        vec = table.copy()
        sub = vec[lo:hi]
        sub[present_mask(sub)] |= bits
        ref = table.copy()
        for i in range(lo, hi):
            if is_present(ref[i]):
                ref[i] = ref[i] | bits
        assert np.array_equal(vec, ref)

    @settings(max_examples=60, deadline=None)
    @given(table=full_tables, bounds=st.tuples(st.integers(0, 512),
                                               st.integers(0, 512)))
    def test_present_scan_matches_loop(self, table, bounds):
        lo, hi = min(bounds), max(bounds)
        sub = table[lo:hi]
        vec_count = int(np.count_nonzero(present_mask(sub)))
        vec_pfns = entry_pfn(sub[present_mask(sub)]).tolist()
        ref_pfns = [int(entry_pfn(e)) for e in table[lo:hi] if is_present(e)]
        assert vec_count == len(ref_pfns)
        assert vec_pfns == ref_pfns


events = st.lists(
    st.tuples(st.integers(0, len(ALL_FN_NAMES) - 1),
              st.one_of(st.just(0.0),
                        st.floats(0.0, 5e4, allow_nan=False))),
    min_size=1, max_size=200,
)


class TestChargeManyEquivalence:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seq=events, split=st.integers(1, 5))
    def test_charge_many_matches_per_event_loop(self, seq, split):
        m_loop = Machine(phys_mb=64)
        m_bulk = Machine(phys_mb=64)
        cost_loop = m_loop.kernel.cost
        cost_bulk = m_bulk.kernel.cost
        for fn_id, ns in seq:
            cost_loop.charge(ALL_FN_NAMES[fn_id], ns)
        # The bulk side splits the sequence into a few charge_many calls
        # to also cross the noise buffer's refill boundaries differently.
        chunks = np.array_split(np.arange(len(seq)), split)
        for chunk in chunks:
            if len(chunk) == 0:
                continue
            ids = [seq[i][0] for i in chunk]
            ns = [seq[i][1] for i in chunk]
            cost_bulk.charge_many(ids, ns, ALL_FN_NAMES)
        assert (m_loop.kernel.clock.now_ns
                == m_bulk.kernel.clock.now_ns)
        prof_loop = cost_loop.profiler
        prof_bulk = cost_bulk.profiler
        if prof_loop is not None and prof_bulk is not None:
            assert prof_loop._totals == prof_bulk._totals


class TestContiguousFreeEquivalence:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(n=st.sampled_from([64, 257, 1024, 2048]), data=st.data())
    def test_analytic_free_matches_pairing_loop(self, n, data):
        a_ref = BuddyAllocator(n)
        a_fast = BuddyAllocator(n)
        k = data.draw(st.integers(1, n - 1))
        p_ref = a_ref.alloc_bulk(k)
        p_fast = a_fast.alloc_bulk(k)
        assert np.array_equal(p_ref, p_fast)
        lo = data.draw(st.integers(0, k - 1))
        hi = data.draw(st.integers(lo + 1, k))
        run = np.sort(p_ref)[lo:hi]
        if int(run[-1]) - int(run[0]) != run.size - 1:
            return  # allocation wasn't contiguous here; nothing to compare
        self._generic_free(a_ref, run)
        a_fast.free_bulk(run)
        assert self._snap(a_ref) == self._snap(a_fast)
        a_ref.check_consistency()
        a_fast.check_consistency()

    @staticmethod
    def _snap(a):
        return (a.free_frames, [list(l) for l in a._free_lists],
                a._free_order.tolist(), a._free_stamp.tolist(),
                a._stamp_counter, a._alloc_order.tolist())

    @staticmethod
    def _generic_free(a, pfns):
        """The pre-analytic pairing loop, verbatim, as the reference."""
        heads = np.sort(np.asarray(pfns, dtype=np.int64))
        a._alloc_order[heads] = -1
        order = 0
        while order < MAX_ORDER and heads.size > 1:
            step = 1 << order
            aligned = heads[heads % (2 * step) == 0]
            if aligned.size == 0:
                break
            partners = aligned + step
            merged = aligned[_member_mask(heads, partners)]
            if merged.size == 0:
                break
            consumed = (_member_mask(merged, heads)
                        | _member_mask(merged + step, heads))
            for h in heads[~consumed].tolist():
                a._insert_free(h, order)
            heads = merged
            order += 1
        for h in heads.tolist():
            a._insert_free(h, order)
