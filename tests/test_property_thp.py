"""Property tests interleaving khugepaged with fork lineages.

THP collapse and split interact with every COW mechanism in the kernel;
these scenarios randomly interleave promotion passes with forks, writes,
and unmaps, asserting data integrity and clean audits throughout.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
import hypothesis.strategies as st

from repro import MIB, Machine
from repro.kernel.kernel import MADV_HUGEPAGE
from repro.verify.audit import audit_machine

REGION = 4 * MIB
PAGE = 4096
N_PAGES = REGION // PAGE

ops = st.lists(
    st.tuples(
        st.sampled_from(["write_parent", "write_child", "scan", "fork",
                         "odfork", "exit_child", "unmap_piece"]),
        st.integers(0, N_PAGES - 1),
    ),
    min_size=3, max_size=20,
)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much])
@given(script=ops)
def test_thp_interleaved_with_lineages(script):
    machine = Machine(phys_mb=256)
    parent = machine.spawn_process("root")
    region = parent.mmap(REGION)
    parent.touch_range(region, REGION, write=True)
    parent.madvise(region, REGION, MADV_HUGEPAGE)

    shadow_parent = {}
    shadow_child = None
    child = None
    unmapped = set()
    counter = 0

    for op, page in script:
        counter += 1
        payload = f"{counter:08d}".encode()
        addr = region + page * PAGE
        if op == "write_parent":
            if page in unmapped:
                continue
            parent.write(addr, payload)
            shadow_parent[page] = payload
        elif op == "write_child" and child is not None:
            if page in unmapped:
                continue  # the hole was inherited: a write would SIGSEGV
            child.write(addr, payload)
            shadow_child[page] = payload
        elif op == "scan":
            machine.run_khugepaged(parent)
            if child is not None:
                machine.run_khugepaged(child)
        elif op in ("fork", "odfork") and child is None:
            child = parent.odfork() if op == "odfork" else parent.fork()
            shadow_child = dict(shadow_parent)
        elif op == "exit_child" and child is not None:
            child.exit()
            parent.wait()
            child = None
            shadow_child = None
        elif op == "unmap_piece" and child is None and page not in unmapped:
            parent.munmap(addr, PAGE)
            unmapped.add(page)
            shadow_parent.pop(page, None)

        # Continuous integrity: every shadowed byte reads back.
        for probe, expected in list(shadow_parent.items())[:4]:
            assert parent.read(region + probe * PAGE, 8) == expected
        if child is not None:
            for probe, expected in list(shadow_child.items())[:4]:
                assert child.read(region + probe * PAGE, 8) == expected

    for page, expected in shadow_parent.items():
        assert parent.read(region + page * PAGE, 8) == expected
    if child is not None:
        for page, expected in shadow_child.items():
            assert child.read(region + page * PAGE, 8) == expected
        child.exit()
        parent.wait()
    audit_machine(machine)
    parent.exit()
    machine.init_process.wait()
    audit_machine(machine)
