"""Transparent Huge Pages (khugepaged) and madvise."""

import pytest

from repro import MIB, Machine, SegmentationFault, PROT_READ
from repro.errors import InvalidArgumentError
from repro.kernel.kernel import MADV_DONTNEED, MADV_HUGEPAGE, MADV_NOHUGEPAGE
from repro.paging import is_huge


def thp_ready_process(machine, size=8 * MIB):
    p = machine.spawn_process("thp")
    addr = p.mmap(size)
    p.touch_range(addr, size, write=True)
    p.madvise(addr, size, MADV_HUGEPAGE)
    return p, addr


class TestMadvise:
    def test_dontneed_zaps_but_keeps_mapping(self, proc, machine):
        addr = proc.mmap(1 * MIB)
        proc.write(addr, b"data")
        live = machine.live_data_frames()
        proc.madvise(addr, 1 * MIB, MADV_DONTNEED)
        assert machine.live_data_frames() < live
        # Mapping survives: next access demand-zeroes.
        assert proc.read(addr, 4) == bytes(4)

    def test_dontneed_fuzzer_reset_pattern(self, proc, machine):
        """The CCS'17-style reset: DONTNEED instead of re-fork."""
        addr = proc.mmap(1 * MIB)
        proc.write(addr, b"state from run 1")
        proc.madvise(addr, 1 * MIB, MADV_DONTNEED)
        proc.write(addr, b"state from run 2")
        assert proc.read(addr, 16) == b"state from run 2"

    def test_hugepage_advice_sets_flags(self, proc):
        addr = proc.mmap(4 * MIB)
        proc.madvise(addr, 4 * MIB, MADV_HUGEPAGE)
        vma = proc.mm.vmas.find(addr)
        assert vma.thp_enabled
        proc.madvise(addr, 4 * MIB, MADV_NOHUGEPAGE)
        vma = proc.mm.vmas.find(addr)
        assert vma.thp_disabled and not vma.thp_enabled

    def test_partial_advice_splits_vma(self, proc):
        addr = proc.mmap(4 * MIB)
        proc.madvise(addr, 2 * MIB, MADV_HUGEPAGE)
        assert proc.mm.vmas.find(addr).thp_enabled
        assert not proc.mm.vmas.find(addr + 2 * MIB).thp_enabled

    def test_invalid_arguments(self, proc):
        addr = proc.mmap(1 * MIB)
        with pytest.raises(InvalidArgumentError):
            proc.madvise(addr, 1 * MIB, 999)
        with pytest.raises(InvalidArgumentError):
            proc.madvise(0x700000000000, 4096, MADV_DONTNEED)


class TestKhugepaged:
    def test_promotion_preserves_data(self, machine):
        p, addr = thp_ready_process(machine)
        p.write(addr + 3 * MIB + 123, b"precious bytes")
        promoted = machine.run_khugepaged(p)
        assert promoted == 4  # 8 MiB fully populated
        assert machine.stats.thp_collapses == 4
        assert p.read(addr + 3 * MIB + 123, 14) == b"precious bytes"
        # The PMD entries are now huge.
        pmd_table, index = p.mm.walk_to_pmd(addr)
        assert is_huge(pmd_table.entries[index])

    def test_promotion_requires_advice_under_madvise_policy(self, machine):
        p = machine.spawn_process("no-advice")
        addr = p.mmap(4 * MIB)
        p.touch_range(addr, 4 * MIB, write=True)
        assert machine.run_khugepaged(p) == 0

    def test_always_policy_needs_no_advice(self, machine):
        p = machine.spawn_process("always")
        addr = p.mmap(4 * MIB)
        p.touch_range(addr, 4 * MIB, write=True)
        assert machine.run_khugepaged(p, policy="always") == 2

    def test_partial_regions_not_promoted(self, machine):
        p = machine.spawn_process("sparse")
        addr = p.mmap(4 * MIB)
        p.write(addr, b"only one page present")
        p.madvise(addr, 4 * MIB, MADV_HUGEPAGE)
        assert machine.run_khugepaged(p) == 0

    def test_shared_tables_never_promoted(self, machine):
        """Collapse would edit entries other processes rely on."""
        p, addr = thp_ready_process(machine)
        child = p.odfork()
        assert machine.run_khugepaged(p) == 0
        child.exit()
        p.wait()

    def test_cow_shared_pages_not_promoted(self, machine):
        p, addr = thp_ready_process(machine)
        child = p.fork()  # pages now COW-shared, tables dedicated
        assert machine.run_khugepaged(p) == 0
        child.exit()
        p.wait()

    def test_promotion_makes_fork_fast(self, machine):
        """§2.3: huge pages cut fork cost ~50x (fewer entries to copy)."""
        p, addr = thp_ready_process(machine, size=16 * MIB)
        c = p.fork()
        before_ns = p.last_fork_ns
        c.exit(); p.wait()
        machine.run_khugepaged(p)
        c = p.fork()
        after_ns = p.last_fork_ns
        c.exit(); p.wait()
        assert after_ns < before_ns / 2

    def test_promotion_charges_pause_time(self, machine):
        """The §2.3 complaint: promotion is a real background pause."""
        p, addr = thp_ready_process(machine)
        t0 = machine.now_ns
        machine.run_khugepaged(p)
        pause = machine.now_ns - t0
        assert pause > 4 * 150_000  # >= a 2 MiB copy per promoted region

    def test_max_promotions_cap(self, machine):
        p, addr = thp_ready_process(machine)
        assert machine.run_khugepaged(p, max_promotions=2) == 2


class TestTHPLifecycle:
    def test_cow_after_promotion(self, machine):
        p, addr = thp_ready_process(machine, size=2 * MIB)
        p.write(addr, b"origin")
        machine.run_khugepaged(p)
        child = p.fork()
        child.write(addr, b"child!")
        assert p.read(addr, 6) == b"origin"
        assert child.read(addr, 6) == b"child!"
        assert machine.stats.huge_cow_faults >= 1
        child.exit(); p.wait()

    def test_partial_unmap_splits(self, machine):
        p, addr = thp_ready_process(machine, size=2 * MIB)
        p.write(addr + 1 * MIB, b"kept half")
        machine.run_khugepaged(p)
        p.munmap(addr, 1 * MIB)
        assert machine.stats.thp_splits == 1
        assert p.read(addr + 1 * MIB, 9) == b"kept half"
        with pytest.raises(SegmentationFault):
            p.read(addr, 1)

    def test_partial_mprotect_splits(self, machine):
        p, addr = thp_ready_process(machine, size=2 * MIB)
        p.write(addr + 1 * MIB, b"writable half")
        machine.run_khugepaged(p)
        p.mprotect(addr, 1 * MIB, PROT_READ)
        assert machine.stats.thp_splits == 1
        with pytest.raises(SegmentationFault):
            p.write(addr, b"x")
        p.write(addr + 1 * MIB, b"still writable")

    def test_bulk_access_through_promoted_region(self, machine):
        p, addr = thp_ready_process(machine, size=4 * MIB)
        machine.run_khugepaged(p)
        events = p.touch_range(addr, 4 * MIB, write=True)
        assert events["huge_cow"] == 0  # exclusive: no copies needed
        child = p.odfork()
        events = p.touch_range(addr, 4 * MIB, write=True)
        assert events["huge_cow"] == 2
        child.exit(); p.wait()

    def test_exit_with_promoted_regions(self, machine):
        machine.init_process
        baseline = machine.live_data_frames()
        p, addr = thp_ready_process(machine)
        machine.run_khugepaged(p)
        p.exit()
        machine.init_process.wait()
        assert machine.live_data_frames() == baseline
        machine.check_frame_invariants()
