"""Serverless farm tests: template lifecycle, invoker accounting, tracing.

The contract under test (MECHANISM.md §18): a warm template serves N
cold invocations without its own footprint drifting, snapshot-reset
rolls warm dirt back to the pristine image, teardown leaves zero stale
tables, and the invoker's open-loop accounting conserves every arrival
— under both fork flavours, armed fail-points, and admission drops.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.machine import Machine
from repro.errors import InvalidArgumentError, OutOfMemoryError
from repro.faas import (DEFAULT_IMAGES, FarmConfig, FunctionImage,
                        ImageRegistry, Invoker, place_images, run_farm)
from repro.trace import points
from repro.trace.tracer import Tracer
from repro.verify.audit import audit_machine

SMALL = FunctionImage("small", code_mb=2, heap_mb=8, read_kb=64,
                      write_kb=16)
HUGE = FunctionImage("huge", code_mb=2, heap_mb=8, read_kb=64,
                     write_kb=0, huge=True)


def small_farm(**overrides):
    defaults = dict(images=(SMALL,), rate_rps=40_000.0, n_requests=200,
                    keepalive_ms=1.0, seed=7)
    defaults.update(overrides)
    return FarmConfig(**defaults)


def machine_with(image, phys_mb=128):
    machine = Machine(phys_mb=phys_mb, seed=3)
    registry = ImageRegistry(machine, seed=3)
    template = registry.register(image)
    return machine, registry, template


class TestFunctionImage:
    def test_rejects_empty_footprint(self):
        with pytest.raises(InvalidArgumentError):
            FunctionImage("x", code_mb=0, heap_mb=8)

    def test_rejects_negative_working_set(self):
        with pytest.raises(InvalidArgumentError):
            FunctionImage("x", read_kb=-1)

    def test_config_validation(self):
        with pytest.raises(InvalidArgumentError):
            FarmConfig(images=())
        with pytest.raises(InvalidArgumentError):
            FarmConfig(warm_ratio=1.5)
        with pytest.raises(InvalidArgumentError):
            FarmConfig(nodes=0)
        with pytest.raises(InvalidArgumentError):
            FarmConfig(reset_every=0)

    def test_placement_is_deterministic_and_total(self):
        placement = place_images(DEFAULT_IMAGES, nodes=3, seed=5)
        again = place_images(DEFAULT_IMAGES, nodes=3, seed=5)
        assert placement == again
        assert set(placement) == {i.name for i in DEFAULT_IMAGES}
        assert all(0 <= node < 3 for node in placement.values())

    def test_phys_sizing_honours_buddy_granule(self):
        for n_images in (1, 2, 3, 5):
            config = FarmConfig(images=DEFAULT_IMAGES[:1] * 1
                                if n_images == 1 else tuple(
                                    dataclasses.replace(SMALL, name=f"i{k}")
                                    for k in range(n_images)))
            assert config.node_phys_mb() % 4 == 0


class TestTemplateLifecycle:
    def test_cold_reuse_conserves_template_footprint(self):
        """N cold invocations + reaps: template RSS and machine frames
        return to the post-deploy baseline every cycle."""
        machine, registry, template = machine_with(SMALL)
        rss0 = template.proc.rss_bytes
        frames0 = machine.used_frames()
        for _ in range(8):
            child, fork_ns = template.invoke_cold(odfork=True)
            assert fork_ns > 0
            template.schedule_reap(child, deadline_ns=0)
            assert template.live_instances == 1
            template.reap_due(machine.clock.now_ns)
            assert template.live_instances == 0
            assert template.proc.rss_bytes == rss0
            assert machine.used_frames() == frames0
        assert template.cold_starts == 8
        audit_machine(machine)
        registry.teardown()

    def test_warm_reset_restores_pristine_frames(self):
        machine, registry, template = machine_with(SMALL)
        frames0 = machine.used_frames()
        for _ in range(4):
            template.invoke_warm()
        # Warm invocations COW against the pristine snapshot: dirt
        # accumulates until the reset rolls it back.
        assert machine.used_frames() > frames0
        restored = template.reset()
        assert restored > 0
        assert machine.used_frames() == frames0
        assert template.warm_since_reset == 0
        audit_machine(machine)
        registry.teardown()

    def test_teardown_leaves_zero_stale_tables(self):
        machine = Machine(phys_mb=128, seed=3)
        probe = machine.spawn_process("probe")
        probe.exit()
        machine.init_process.wait(probe.pid)
        frames0 = machine.used_frames()
        registry = ImageRegistry(machine, seed=3)
        template = registry.register(SMALL)
        children = [template.invoke_cold(odfork=True)[0] for _ in range(3)]
        for child in children:
            template.schedule_reap(child, deadline_ns=0)
        registry.teardown()
        assert machine.used_frames() == frames0
        assert len(registry) == 0
        audit_machine(machine)

    def test_huge_image_serves_cold_only(self):
        machine, registry, template = machine_with(HUGE)
        assert template.pristine is None
        with pytest.raises(InvalidArgumentError):
            template.invoke_warm()
        child, _ = template.invoke_cold(odfork=True)
        template.schedule_reap(child, deadline_ns=0)
        assert template.reset() == 0
        registry.teardown()
        audit_machine(machine)

    def test_duplicate_image_rejected(self):
        machine, registry, _ = machine_with(SMALL)
        with pytest.raises(InvalidArgumentError):
            registry.register(SMALL)
        registry.teardown()


class TestInvokerAccounting:
    def test_headline_odfork_beats_classic_fork(self):
        import numpy as np
        p99 = {}
        for use_odfork in (False, True):
            result = run_farm(small_farm(use_odfork=use_odfork))
            assert result.conserved()
            assert result.failed == 0
            p99[use_odfork] = np.percentile(result.cold_start_ns, 99)
        assert p99[True] < p99[False]

    def test_flavours_agree_on_accounting_over_one_schedule(self):
        results = {f: run_farm(small_farm(use_odfork=f))
                   for f in (False, True)}
        for field_name in ("generated", "dropped", "failed",
                           "warm_served", "resets", "completed"):
            assert (getattr(results[False], field_name)
                    == getattr(results[True], field_name)), field_name

    def test_queue_limit_drops_are_counted(self):
        result = run_farm(small_farm(queue_limit=2, rate_rps=200_000.0,
                                     use_odfork=False))
        assert result.dropped > 0
        assert result.conserved()

    def test_density_sampled_at_peak(self):
        result = run_farm(small_farm())
        assert result.density_fn_per_gb > 0
        assert result.peak_instances >= 1
        assert result.peak_used_gb > 0

    def test_multi_node_placement_spreads_templates(self):
        config = FarmConfig(images=DEFAULT_IMAGES, nodes=2,
                            rate_rps=40_000.0, n_requests=150, seed=7)
        invoker = Invoker(config)
        try:
            invoker.deploy()
            assert len(invoker.machines) == 2
            per_node = [len(r) for r in invoker.registries]
            assert sum(per_node) == len(DEFAULT_IMAGES)
            placement = invoker.placement
            for image in DEFAULT_IMAGES:
                node = placement[image.name]
                assert image.name in invoker.registries[node].templates
            result = invoker.run()
            assert result.conserved()
            for machine in invoker.machines:
                audit_machine(machine)
        finally:
            invoker.shutdown()
        assert invoker.live_instances() == 0


class TestFailpoints:
    def test_armed_invoke_fork_is_absorbed(self):
        config = small_farm()
        invoker = Invoker(config)
        try:
            invoker.deploy()
            for fp in invoker.failpoints():
                fp.arm("faas.invoke_fork", nth=3)
            result = invoker.run()
            assert result.failed == 1
            assert result.conserved()
            for machine in invoker.machines:
                audit_machine(machine)
        finally:
            invoker.shutdown()

    def test_armed_queue_overflow_drops_one(self):
        config = small_farm()
        invoker = Invoker(config)
        try:
            invoker.deploy()
            for fp in invoker.failpoints():
                fp.arm("faas.queue_overflow", nth=5)
            result = invoker.run()
            assert result.dropped == 1
            assert result.conserved()
        finally:
            invoker.shutdown()

    def test_armed_template_alloc_aborts_deploy_cleanly(self):
        config = small_farm()
        invoker = Invoker(config)
        frames0 = [m.used_frames() for m in invoker.machines]
        for fp in invoker.failpoints():
            fp.arm("faas.template_alloc", nth=1)
        with pytest.raises(OutOfMemoryError):
            invoker.deploy()
        for fp in invoker.failpoints():
            fp.disarm()
        invoker.shutdown()
        for machine, frames in zip(invoker.machines, frames0):
            assert machine.used_frames() == frames
            audit_machine(machine)


class TestTracing:
    def test_farm_tracepoints_emitted(self):
        tracer = Tracer()
        points.attach(tracer)
        try:
            result = run_farm(small_farm(n_requests=120, reset_every=8))
            assert result.conserved()
        finally:
            points.detach()
        names = {e.name for e in tracer.drain()}
        for expected in ("faas.template_spawn", "faas.cold_start",
                         "faas.invoke", "faas.warm_reset",
                         "faas.teardown"):
            assert expected in names, f"missing {expected}"

    def test_untraced_run_unaffected(self):
        baseline = run_farm(small_farm(n_requests=120))
        tracer = Tracer()
        points.attach(tracer)
        try:
            traced = run_farm(small_farm(n_requests=120))
        finally:
            points.detach()
        assert traced.completed == baseline.completed
        assert traced.latencies_ns.tolist() == \
            baseline.latencies_ns.tolist()
        assert traced.cold_start_ns.tolist() == \
            baseline.cold_start_ns.tolist()


class TestCLI:
    def test_smoke_cli_headline_and_report(self, tmp_path):
        from repro.faas.__main__ import main
        report = tmp_path / "faas.json"
        code = main(["--smoke", "--requests", "200", "--json",
                     str(report)])
        assert code == 0
        import json
        doc = json.loads(report.read_text())
        assert doc["headline_ok"] is True
        flavors = {r["flavor"] for r in doc["results"]}
        assert flavors == {"fork", "odfork"}

    def test_verify_faas_leg_is_clean(self):
        from repro.verify.faas import check_faas
        findings, meta = check_faas(seed=3, max_hits_per_site=1)
        assert findings == []
        assert meta["runs"] >= 4
        assert meta["sites"]["faas.invoke_fork"] > 0
