"""SMP subsystem: scheduler, lock layer, IPIs, and the explorer.

Covers the lock-order/deadlock checker, FIFO handoff semantics, the
per-vCPU TLBs, emergent contention, scalar-vs-vectorised odfork
equivalence, and the acceptance sweep: >= 200 distinct schedules of the
race suite with zero auditor or lock-order violations.
"""

import pytest

from repro import GIB, MIB, Machine
from repro.errors import ConfigurationError, KernelBug
from repro.smp import (
    Acquire,
    DeadlockError,
    FairPolicy,
    LockOrderError,
    MODE_READ,
    MODE_WRITE,
    Preempt,
    QuiescenceError,
    RandomPolicy,
    Release,
)
from repro.smp import ops
from repro.smp.explore import (
    check_race_suite,
    enumerate_schedules,
    explore_random,
    make_race_suite,
    replay,
)
from repro.verify.audit import audit_machine


def smp_machine(n=2, phys_mb=256, **kw):
    return Machine(phys_mb=phys_mb, smp=n, **kw)


class TestWiring:
    def test_machine_smp_attaches_scheduler(self):
        machine = smp_machine(3)
        assert machine.smp is not None
        assert machine.kernel.smp is machine.smp
        assert len(machine.smp.vcpus) == 3

    def test_smp_none_is_off(self):
        machine = Machine(phys_mb=64)
        assert machine.smp is None
        assert machine.kernel.smp is None

    def test_smp_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            Machine(phys_mb=64, smp=-1)


class TestLockSemantics:
    def test_writer_excludes_readers_fifo(self):
        machine = smp_machine(2)
        sched = machine.smp
        order = []

        def reader(tag):
            lock = sched.mmap_lock("mm")
            yield Acquire(lock, MODE_READ)
            order.append(tag)
            yield Preempt("in-cs")
            yield Release(lock)

        def writer():
            lock = sched.mmap_lock("mm")
            yield Acquire(lock, MODE_WRITE)
            order.append("w")
            yield Release(lock)

        # r1 gets the lock; w queues; r2 queues BEHIND the writer even
        # though it is compatible with r1 (writer-fairness, like rwsem).
        sched.spawn("r1", reader("r1"))
        sched.spawn("w", writer())
        sched.spawn("r2", reader("r2"))

        class FirstSpawned:
            def pick(self, sched_, ready):
                return sorted(ready, key=lambda t: t.tid)[0]

        sched.run(policy=FirstSpawned())
        assert order == ["r1", "w", "r2"]
        sched.assert_quiescent()

    def test_contended_acquire_charges_wait_time(self):
        machine = smp_machine(2)
        sched = machine.smp

        def holder():
            lock = sched.mmap_lock("mm")
            yield Acquire(lock, MODE_WRITE)
            yield Preempt("holding")          # let the waiter hit the queue
            machine.cost.charge_syscall()     # do some work while holding
            machine.cost.charge_fork_fixed(4)
            yield Release(lock)

        def waiter():
            lock = sched.mmap_lock("mm")
            yield Acquire(lock, MODE_WRITE)
            yield Release(lock)

        sched.spawn("holder", holder(), vcpu=0)
        sched.spawn("waiter", waiter(), vcpu=1)
        sched.run(policy=FairPolicy())
        assert sched.lock_waits == 1
        assert sched.lock_wait_ns > 0

    def test_pt_locks_must_ascend(self):
        machine = smp_machine(2)
        sched = machine.smp

        def bad():
            yield Acquire(sched.pt_lock(20))
            yield Acquire(sched.pt_lock(10))   # descending: AB-BA risk

        sched.spawn("bad", bad())
        with pytest.raises(LockOrderError):
            sched.run()

    def test_mmap_after_pt_is_inversion(self):
        machine = smp_machine(2)
        sched = machine.smp

        def bad():
            yield Acquire(sched.pt_lock(10))
            yield Acquire(sched.mmap_lock("mm"), MODE_READ)

        sched.spawn("bad", bad())
        with pytest.raises(LockOrderError):
            sched.run()

    def test_preempt_while_holding_spinlock(self):
        machine = smp_machine(2)
        sched = machine.smp

        def bad():
            yield Acquire(sched.pt_lock(10))
            yield Preempt("illegal")

        sched.spawn("bad", bad())
        with pytest.raises(LockOrderError):
            sched.run()

    def test_finishing_with_held_lock(self):
        machine = smp_machine(2)
        sched = machine.smp

        def bad():
            yield Acquire(sched.mmap_lock("mm"), MODE_WRITE)

        sched.spawn("bad", bad())
        with pytest.raises(LockOrderError):
            sched.run()

    def test_abba_deadlock_detected(self):
        machine = smp_machine(2)
        sched = machine.smp
        a, b = sched.mmap_lock("mm-a"), sched.mmap_lock("mm-b")

        def t1():
            yield Acquire(a, MODE_WRITE)
            yield Preempt()
            yield Acquire(b, MODE_WRITE)
            yield Release(b)
            yield Release(a)

        def t2():
            yield Acquire(b, MODE_WRITE)
            yield Preempt()
            yield Acquire(a, MODE_WRITE)
            yield Release(a)
            yield Release(b)

        sched.spawn("t1", t1())
        sched.spawn("t2", t2())

        class Alternate:
            def pick(self, sched_, ready):
                ready = sorted(ready, key=lambda t: t.tid)
                return ready[sched_.steps % len(ready)]

        with pytest.raises(DeadlockError):
            sched.run(policy=Alternate())

    def test_quiescence_error_reports_leftovers(self):
        machine = smp_machine(2)
        sched = machine.smp
        lock = sched.pt_lock(7)
        lock.owner = object()          # simulate a leaked lock
        with pytest.raises(QuiescenceError):
            sched.assert_quiescent()


class TestSmpFlows:
    def test_fork_flow_matches_syscall_child(self):
        smp = smp_machine(2, phys_mb=128)
        plain = Machine(phys_mb=128)
        results = {}
        for machine in (smp, plain):
            p = machine.spawn_process("p")
            buf = p.mmap(4 * MIB)
            p.touch_range(buf, 4 * MIB)
            p.write(buf, b"hello-fork")
            if machine.smp:
                task = machine.smp.spawn(
                    "fork", ops.fork_flow(machine.smp, p), mm=p.mm)
                machine.smp.run()
                child = task.result["child"]
            else:
                child = p.fork()
            results[machine] = (p, child, buf)

        for p, child, buf in results.values():
            assert child.read(buf, 10) == b"hello-fork"
            assert child.mm.rss_anon_pages == p.mm.rss_anon_pages
        smp_child = results[smp][1]
        plain_child = results[plain][1]
        assert smp_child.mm.rss_anon_pages == plain_child.mm.rss_anon_pages
        assert smp.stats.forks == plain.stats.forks == 1

    def test_odfork_flow_matches_vectorised(self):
        """The scalar SMP share path and the vectorised syscall must agree
        on shared-table counts, RSS, and COW semantics."""
        smp = smp_machine(2, phys_mb=128)
        plain = Machine(phys_mb=128)
        children = {}
        for machine in (smp, plain):
            p = machine.spawn_process("p")
            buf = p.mmap(4 * MIB)
            p.touch_range(buf, 4 * MIB)
            p.write(buf, b"odf-parent")
            if machine.smp:
                task = machine.smp.spawn(
                    "odf", ops.fork_flow(machine.smp, p, use_odf=True),
                    mm=p.mm)
                machine.smp.run()
                child = task.result["child"]
            else:
                child = p.odfork()
            children[machine] = (p, child, buf)

        smp_p, smp_c, smp_buf = children[smp]
        pl_p, pl_c, pl_buf = children[plain]
        assert smp.stats.tables_shared == plain.stats.tables_shared == 2
        assert smp_c.mm.rss_anon_pages == pl_c.mm.rss_anon_pages
        assert smp_c.mm.nr_pte_tables == pl_c.mm.nr_pte_tables
        # COW works identically: the child keeps its view after a parent
        # write (table-COW on the shared table).
        smp_p.write(smp_buf, b"changed!!!")
        pl_p.write(pl_buf, b"changed!!!")
        assert smp_c.read(smp_buf, 10) == b"odf-parent"
        assert pl_c.read(pl_buf, 10) == b"odf-parent"
        audit_machine(smp)
        audit_machine(plain)

    def test_concurrent_classic_forks_contend(self):
        """Two interleaved classic forks each run slower than a solo one —
        contention emerges from the copy-phase count, no alpha knob.
        (256 MiB buffers so the leaf loop dominates the fixed costs.)"""
        size = 256 * MIB
        solo_machine = smp_machine(1, phys_mb=1024)
        p = solo_machine.spawn_process("solo")
        buf = p.mmap(size)
        p.touch_range(buf, size)
        t = solo_machine.smp.spawn("fork", ops.fork_flow(solo_machine.smp, p),
                                   mm=p.mm)
        solo_machine.smp.run()
        solo_ns = t.result["elapsed_ns"]

        machine = smp_machine(2, phys_mb=1024)
        tasks = []
        for i in range(2):
            q = machine.spawn_process(f"c{i}")
            qbuf = q.mmap(size)
            q.touch_range(qbuf, size)
            tasks.append(machine.smp.spawn(
                f"fork{i}", ops.fork_flow(machine.smp, q), mm=q.mm))
        machine.smp.run()
        for task in tasks:
            assert task.result["elapsed_ns"] > 1.5 * solo_ns

    def test_odfork_flow_stays_out_of_copy_phase(self):
        """Odfork never enters the struct-page copy phase: two concurrent
        odforks cost the same per-fork as one (the paper's scalability)."""
        solo_machine = smp_machine(1, phys_mb=192)
        p = solo_machine.spawn_process("solo")
        buf = p.mmap(16 * MIB)
        p.touch_range(buf, 16 * MIB)
        t = solo_machine.smp.spawn(
            "odf", ops.fork_flow(solo_machine.smp, p, use_odf=True), mm=p.mm)
        solo_machine.smp.run()
        solo_ns = t.result["elapsed_ns"]

        machine = smp_machine(2, phys_mb=192)
        tasks = []
        for i in range(2):
            q = machine.spawn_process(f"c{i}")
            qbuf = q.mmap(16 * MIB)
            q.touch_range(qbuf, 16 * MIB)
            tasks.append(machine.smp.spawn(
                f"odf{i}", ops.fork_flow(machine.smp, q, use_odf=True),
                mm=q.mm))
        machine.smp.run()
        for task in tasks:
            assert task.result["elapsed_ns"] == pytest.approx(solo_ns, rel=0.10)

    def test_per_vcpu_tlbs_are_private(self):
        machine = smp_machine(2, phys_mb=128)
        sched = machine.smp
        p = machine.spawn_process("p")
        buf = p.mmap(1 * MIB)
        p.touch_range(buf, 1 * MIB)
        sched.spawn("warm0", ops.access_flow(sched, p, buf, 4096), vcpu=0)
        sched.run()
        assert len(sched.vcpus[0].tlb) > 0
        assert sched.vcpus[0].tlb_mm is p.mm
        assert sched.vcpus[1].tlb_mm is None


class TestExplorerAcceptance:
    def test_race_suite_200_distinct_schedules_zero_violations(self):
        """The ISSUE's acceptance bar: >= 200 distinct schedules of the
        fork/odfork/COW/kswapd race suite, each passing the lock-order
        checker, quiescence, and the semantic invariants."""
        report = explore_random(make_race_suite, n_schedules=210, seed=7,
                                check=check_race_suite)
        assert report.n_runs == 210
        assert report.n_distinct >= 200
        # The suite actually contends: schedules hit lock queues and IPIs.
        assert report.lock_waits > 0
        assert report.ipis > 0

    def test_systematic_enumeration_runs_clean(self):
        report = enumerate_schedules(make_race_suite, limit=25,
                                     check=check_race_suite)
        assert report.n_runs == 25
        assert report.n_distinct > 1

    def test_replay_reproduces_a_schedule(self):
        sched, trace = replay(make_race_suite, (1, 0, 2, 1, 3),
                              check=check_race_suite)
        sched2, trace2 = replay(make_race_suite, (1, 0, 2, 1, 3),
                                check=check_race_suite)
        assert trace == trace2
        assert sched.steps == sched2.steps

    def test_race_suite_passes_full_state_audit(self):
        def check(sched):
            check_race_suite(sched)
            audit_machine(sched.machine)
        report = explore_random(make_race_suite, n_schedules=10, seed=11,
                                check=check)
        assert report.n_runs == 10
