"""Analysis helpers: stats, profiler, tables, time series."""

import pytest

from repro.analysis import (
    Profiler,
    ThroughputSeries,
    latency_percentiles,
    mean,
    percentile,
    reduction_pct,
    render_series,
    render_table,
    stddev,
    summary,
)
from repro.errors import InvalidArgumentError


class TestStats:
    def test_mean_and_stddev(self):
        assert mean([1, 2, 3]) == 2
        assert stddev([2, 2, 2]) == 0
        assert stddev([1, 3]) == 1

    def test_empty_rejected(self):
        for fn in (mean, stddev, summary):
            with pytest.raises(InvalidArgumentError):
                fn([])

    def test_percentile_nearest_rank(self):
        data = list(range(1, 101))
        assert percentile(data, 50) == 50
        assert percentile(data, 99) == 99
        assert percentile(data, 100) == 100
        assert percentile(data, 0) == 1

    def test_percentile_bounds(self):
        with pytest.raises(InvalidArgumentError):
            percentile([1], 101)

    def test_latency_percentiles_table4_shape(self):
        data = [1.0] * 9990 + [100.0] * 10
        pct = latency_percentiles(data)
        assert pct[50] == 1.0
        assert pct[99.9] == 1.0
        assert pct[99.99] == 100.0

    def test_summary_fields(self):
        s = summary([5, 1, 3])
        assert s["n"] == 3
        assert s["min"] == 1
        assert s["max"] == 5
        assert s["p50"] == 3

    def test_reduction_pct(self):
        assert reduction_pct(10, 1) == 90
        assert reduction_pct(10, 10) == 0
        with pytest.raises(InvalidArgumentError):
            reduction_pct(0, 1)


class TestProfiler:
    def test_accumulation_and_percentages(self):
        p = Profiler()
        p.add("a", 75)
        p.add("b", 25)
        assert p.total_ns() == 100
        assert p.percentages()["a"] == 75.0

    def test_selected_names(self):
        p = Profiler()
        p.add("a", 10)
        p.add("b", 30)
        p.add("c", 60)
        assert p.total_ns(["a", "b"]) == 40
        pct = p.percentages(["a", "b"])
        assert pct["a"] == 25.0
        assert pct["b"] == 75.0

    def test_top(self):
        p = Profiler()
        for name, ns in (("x", 5), ("y", 50), ("z", 20)):
            p.add(name, ns)
        assert [name for name, _ in p.top(2)] == ["y", "z"]

    def test_paused(self):
        p = Profiler()
        with p.paused():
            p.add("hidden", 100)
        p.add("seen", 1)
        assert p.breakdown() == {"seen": 1}

    def test_reset_and_window(self):
        p = Profiler()
        p.add("a", 10)
        with p.window():
            p.add("b", 5)
        assert p.breakdown() == {"b": 5}

    def test_empty_percentages(self):
        p = Profiler()
        assert p.percentages(["nothing"]) == {"nothing": 0.0}


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(["name", "value"],
                            [["alpha", 1.5], ["b", 123.456]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_render_series(self):
        text = render_series("curve", [1, 2], [10.0, 20.0],
                             x_label="x", y_label="y")
        assert "curve" in text
        assert "10.00" in text

    def test_float_formatting(self):
        text = render_table(["v"], [[0.00012345], [1234.5], [0]])
        assert "0.0001" in text
        assert "1234.5" in text


class TestThroughputSeries:
    def test_average_rate(self):
        series = ThroughputSeries(bucket_seconds=1.0)
        for i in range(11):
            series.record(i * 100_000_000)  # 10 events/s over 1 s
        assert series.average_rate() == pytest.approx(10.0)

    def test_buckets(self):
        series = ThroughputSeries(bucket_seconds=1.0)
        for ns in (0, 100, 200, 1_500_000_000):
            series.record(ns)
        times, rates = series.buckets()
        assert len(times) == 2
        assert rates[0] == 3.0
        assert rates[1] == 1.0

    def test_empty_series(self):
        series = ThroughputSeries()
        assert series.buckets() == ([], [])
        assert series.average_rate() == 0.0

    def test_invalid_bucket(self):
        with pytest.raises(InvalidArgumentError):
            ThroughputSeries(bucket_seconds=0)


class TestAsciiChart:
    def test_renders_extremes(self):
        from repro.analysis import render_ascii_chart
        text = render_ascii_chart([0, 1, 2, 3], [10.0, 20.0, 15.0, 30.0],
                                  title="demo")
        assert "demo" in text
        assert "30.00" in text and "10.00" in text
        assert text.count("*") == 4

    def test_flat_series(self):
        from repro.analysis import render_ascii_chart
        text = render_ascii_chart([0, 1, 2], [5.0, 5.0, 5.0])
        assert "*" in text

    def test_empty_series(self):
        from repro.analysis import render_ascii_chart
        assert render_ascii_chart([], []) == "(no data)"

    def test_buckets_complete_drops_partial(self):
        from repro.analysis import ThroughputSeries
        series = ThroughputSeries(bucket_seconds=1.0)
        for ns in (0, 100, 200, 1_100_000_000, 2_050_000_000):
            series.record(ns)
        times, rates = series.buckets_complete()
        full_times, full_rates = series.buckets()
        assert len(times) == len(full_times) - 1
