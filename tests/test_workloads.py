"""Workload generators: fork benchmark, access mixes, patterns."""

import numpy as np
import pytest

from repro import GIB, MIB, Machine
from repro.analysis import mean
from repro.errors import InvalidArgumentError
from repro.workloads import (
    PatternGenerator,
    VARIANT_FORK,
    VARIANT_FORK_HUGE,
    VARIANT_ODFORK,
    chunk_plan,
    fork_latency_for_size,
    measure_fork_once,
    run_access_mix_point,
    touch_pages,
)


class TestForkBench:
    def test_measure_fork_once_cleans_up(self, machine):
        p = machine.spawn_process("fb")
        addr = p.mmap(8 * MIB)
        p.touch_range(addr, 8 * MIB, write=True)
        elapsed = measure_fork_once(p, VARIANT_FORK)
        assert elapsed > 0
        assert not p.task.children

    def test_variants_ordering_at_small_scale(self):
        machine = Machine(phys_mb=512)
        times = {}
        for variant in (VARIANT_FORK, VARIANT_FORK_HUGE, VARIANT_ODFORK):
            samples = fork_latency_for_size(machine, 128 * MIB, variant,
                                            repeats=3)
            times[variant] = mean(samples)
        assert times[VARIANT_ODFORK] < times[VARIANT_FORK_HUGE]
        assert times[VARIANT_FORK_HUGE] < times[VARIANT_FORK]

    def test_unknown_variant_rejected(self, machine):
        with pytest.raises(InvalidArgumentError):
            fork_latency_for_size(machine, 1 * MIB, "vfork")

    def test_concurrency_raises_latency(self):
        machine = Machine(phys_mb=512)
        alone = mean(fork_latency_for_size(machine, 64 * MIB, VARIANT_FORK,
                                           repeats=2))
        machine2 = Machine(phys_mb=512)
        crowded = mean(fork_latency_for_size(machine2, 64 * MIB, VARIANT_FORK,
                                             repeats=2, concurrency=4))
        assert crowded > alone


class TestChunkPlan:
    def test_pure_mixes(self):
        assert all(chunk_plan(10, 1.0))
        assert not any(chunk_plan(10, 0.0))

    def test_proportion_respected(self):
        plan = chunk_plan(100, 0.75)
        assert sum(plan) == 75

    def test_interleaving_spread(self):
        plan = chunk_plan(8, 0.5)
        # No long runs: reads spread through the sequence.
        assert plan == [False, True, False, True, False, True, False, True]

    def test_invalid_fraction(self):
        with pytest.raises(InvalidArgumentError):
            chunk_plan(10, 1.5)


class TestAccessMix:
    def test_odfork_wins_at_zero_access(self):
        t_fork = run_access_mix_point(64 * MIB, fraction=0.0,
                                      read_fraction=1.0, variant=VARIANT_FORK)
        t_odf = run_access_mix_point(64 * MIB, fraction=0.0,
                                     read_fraction=1.0, variant=VARIANT_ODFORK)
        assert t_odf < t_fork / 5

    def test_reads_cheaper_than_writes_under_odfork(self):
        t_read = run_access_mix_point(64 * MIB, fraction=1.0,
                                      read_fraction=1.0,
                                      variant=VARIANT_ODFORK)
        t_write = run_access_mix_point(64 * MIB, fraction=1.0,
                                       read_fraction=0.0,
                                       variant=VARIANT_ODFORK)
        assert t_write > t_read


class TestPatterns:
    def test_sequential_wraps(self):
        gen = PatternGenerator(16 * 4096, seed=0)
        pages = gen.sequential(20)
        assert pages.tolist() == [i % 16 for i in range(20)]

    def test_uniform_in_range(self):
        gen = PatternGenerator(1 * MIB, seed=1)
        pages = gen.uniform(1000)
        assert pages.min() >= 0
        assert pages.max() < gen.n_pages

    def test_zipfian_skewed(self):
        gen = PatternGenerator(4 * MIB, seed=2)
        pages = gen.zipfian(5000, skew=1.2)
        assert len(pages) == 5000
        assert pages.max() < gen.n_pages
        # Strong skew: the most popular page dominates.
        counts = np.bincount(pages)
        assert counts.max() > len(pages) * 0.2

    def test_hot_cold_split(self):
        gen = PatternGenerator(4 * MIB, seed=3)
        pages = gen.hot_cold(5000, hot_fraction=0.1, hot_probability=0.9)
        hot_limit = int(gen.n_pages * 0.1)
        hot_share = np.mean(pages < hot_limit)
        assert 0.85 < hot_share < 0.95

    def test_deterministic_by_seed(self):
        a = PatternGenerator(1 * MIB, seed=9).uniform(100)
        b = PatternGenerator(1 * MIB, seed=9).uniform(100)
        assert (a == b).all()

    def test_touch_pages_faults(self, proc, machine):
        addr = proc.mmap(1 * MIB)
        gen = PatternGenerator(1 * MIB, seed=4)
        touch_pages(proc, addr, gen.sequential(10), write=True)
        assert machine.stats.demand_zero_faults == 10

    def test_invalid_parameters(self):
        with pytest.raises(InvalidArgumentError):
            PatternGenerator(100, seed=0)
        gen = PatternGenerator(1 * MIB, seed=0)
        with pytest.raises(InvalidArgumentError):
            gen.zipfian(10, skew=0.9)
        with pytest.raises(InvalidArgumentError):
            gen.hot_cold(10, hot_fraction=0)
