"""Property tests for the serverless farm under burst + reclaim pressure.

Random farm shapes — burst rate, warm ratio, admission bound, fork
flavour — run on machines sized small enough (with swap) that cold-start
COW traffic routinely pushes through reclaim.  After every campaign the
farm's open-loop accounting must conserve every arrival, each node must
pass the full kernel audit, and teardown must return every node to its
pre-deploy frame count: no invocation mix may leak an instance, a
snapshot, or a stale page table.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
import hypothesis.strategies as st

from repro.faas import FarmConfig, FunctionImage, Invoker
from repro.verify.audit import audit_machine

#: Small images so a 64 MiB node is genuine overcommit once a burst of
#: instances COWs against the templates.
IMAGES = (
    FunctionImage("svc", code_mb=2, heap_mb=8, read_kb=64, write_kb=16),
    FunctionImage("fn", code_mb=2, heap_mb=4, read_kb=32, write_kb=8),
    FunctionImage("scan", code_mb=2, heap_mb=8, read_kb=128, write_kb=0,
                  huge=True),
)

farm_shapes = st.fixed_dictionaries({
    "use_odfork": st.booleans(),
    "rate_rps": st.sampled_from([20_000.0, 60_000.0, 150_000.0]),
    "n_requests": st.integers(30, 120),
    "warm_ratio": st.sampled_from([0.0, 0.25, 0.6]),
    "reset_every": st.sampled_from([2, 8]),
    "queue_limit": st.sampled_from([None, 4, 32]),
    "keepalive_ms": st.sampled_from([0.0, 1.0, 4.0]),
    "phys_mb": st.sampled_from([64, 96]),
    "swap_mb": st.sampled_from([32, 64]),
    "seed": st.integers(0, 2**16),
})


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(shape=farm_shapes)
def test_random_farm_conserves_and_tears_down_clean(shape):
    config = FarmConfig(images=IMAGES, **shape)
    invoker = Invoker(config)
    baseline = []
    for machine in invoker.machines:
        probe = machine.spawn_process("probe")
        probe.exit()
        machine.init_process.wait(probe.pid)
        baseline.append(machine.used_frames())
    try:
        result = invoker.run()
        # Open-loop conservation: every arrival is accounted for.
        assert result.conserved(), (
            f"generated={result.generated} completed={result.completed} "
            f"dropped={result.dropped} failed={result.failed}")
        # Cold starts that survived produced latency samples.
        assert len(result.cold_start_ns) == result.completed \
            - result.warm_served
        for machine in invoker.machines:
            audit_machine(machine)
    finally:
        invoker.shutdown()
    assert invoker.live_instances() == 0
    for machine, frames in zip(invoker.machines, baseline):
        assert machine.used_frames() == frames, \
            "stale frames survived farm teardown"
        audit_machine(machine)
