"""Equivalence of the bulk fast path and the byte-accurate slow path.

`access_range` must leave the address space in the same state a sweep of
individual accesses would: same present pages, same COW events, same
refcounts, same shared-table copies.  These tests run both paths on twin
machines and diff the observable state.
"""

import numpy as np
import pytest

from repro import MIB, Machine
from repro.paging import entry_pfn, present_mask, writable_mask


def twin_machines():
    return Machine(phys_mb=256), Machine(phys_mb=256)


def leaf_state(process, addr, n_pages):
    """(present, writable) masks over the first ``n_pages`` of a region."""
    present = []
    writable = []
    for page in range(n_pages):
        leaf = process.mm.get_pte_table(addr + page * 4096)
        if leaf is None:
            present.append(False)
            writable.append(False)
            continue
        index = ((addr + page * 4096) >> 12) & 511
        entry = leaf.entries[index]
        present.append(bool(present_mask(np.asarray([entry]))[0]))
        writable.append(bool(writable_mask(np.asarray([entry]))[0]))
    return present, writable


class TestDemandZeroEquivalence:
    def test_fill_matches_bytewise(self):
        bulk_m, byte_m = twin_machines()
        size = 256 * 1024
        bulk_p = bulk_m.spawn_process("bulk")
        byte_p = byte_m.spawn_process("byte")
        bulk_addr = bulk_p.mmap(size)
        byte_addr = byte_p.mmap(size)

        bulk_p.touch_range(bulk_addr, size, write=True)
        for offset in range(0, size, 4096):
            byte_p.write(byte_addr + offset, b"z")

        assert bulk_p.rss_bytes == byte_p.rss_bytes
        assert bulk_m.stats.demand_zero_faults == byte_m.stats.demand_zero_faults
        b_present, b_writable = leaf_state(bulk_p, bulk_addr, 64)
        y_present, y_writable = leaf_state(byte_p, byte_addr, 64)
        assert b_present == y_present
        assert b_writable == y_writable


class TestCowEquivalence:
    @pytest.mark.parametrize("use_odfork", [False, True])
    def test_post_fork_write_sweep(self, use_odfork):
        bulk_m, byte_m = twin_machines()
        size = 4 * MIB
        results = {}
        for label, machine in (("bulk", bulk_m), ("byte", byte_m)):
            p = machine.spawn_process(label)
            addr = p.mmap(size)
            p.touch_range(addr, size, write=True)
            child = p.odfork() if use_odfork else p.fork()
            sweep = 1 * MIB
            if label == "bulk":
                p.touch_range(addr, sweep, write=True)
            else:
                for offset in range(0, sweep, 4096):
                    p.write(addr + offset, b"w")
            results[label] = {
                "cow": machine.stats.cow_faults + machine.stats.cow_reuse,
                "table_copies": machine.stats.table_cow_copies,
                "unshares": machine.stats.table_unshares,
                "rss": p.rss_bytes,
                "state": leaf_state(p, addr, 32),
            }
        assert results["bulk"]["cow"] == results["byte"]["cow"]
        assert results["bulk"]["table_copies"] == results["byte"]["table_copies"]
        assert results["bulk"]["rss"] == results["byte"]["rss"]
        assert results["bulk"]["state"] == results["byte"]["state"]

    def test_read_sweep_after_odfork_no_events(self):
        bulk_m, byte_m = twin_machines()
        size = 2 * MIB
        for label, machine in (("bulk", bulk_m), ("byte", byte_m)):
            p = machine.spawn_process(label)
            addr = p.mmap(size)
            p.touch_range(addr, size, write=True)
            p.odfork()
            before = machine.stats.page_faults
            if label == "bulk":
                p.touch_range(addr, size, write=False)
            else:
                for offset in range(0, size, 4096):
                    p.read(addr + offset, 1)
            assert machine.stats.page_faults == before
            assert machine.stats.table_cow_copies == 0


class TestTimingEquivalence:
    def test_bulk_charges_comparable_time(self):
        """The fast path must charge approximately what the slow path does
        (same events, same constants) — within the memcpy-batching noise."""
        bulk_m, byte_m = twin_machines()
        size = 1 * MIB
        times = {}
        for label, machine in (("bulk", bulk_m), ("byte", byte_m)):
            p = machine.spawn_process(label)
            addr = p.mmap(size)
            watch = machine.stopwatch()
            if label == "bulk":
                p.touch_range(addr, size, write=True)
            else:
                for offset in range(0, size, 4096):
                    p.touch(addr + offset, 4096, write=True)
            times[label] = watch.elapsed_ns
        assert times["bulk"] == pytest.approx(times["byte"], rel=0.25)
