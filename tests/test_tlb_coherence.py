"""TLB coherence: permission downgrades must invalidate cached translations.

The simulator's TLB actually serves translations on the byte path, so a
missing shootdown would produce *wrong data*, exactly as on hardware.
These tests force each downgrade path (fork, odfork, mprotect, peer table
copy, munmap) and verify both the cache state and the observable values.
"""

import pytest

from repro import MIB, PROT_READ, SegmentationFault
from conftest import make_filled_region


def warm_tlb(proc, addr, n_pages=8, write=True):
    """Load writable translations for the first ``n_pages`` of a region."""
    for page in range(n_pages):
        proc.touch(addr + page * 4096, 1, write=write)
    return proc.mm.tlb


class TestForkShootdowns:
    def test_fork_flushes_parent_tlb(self, proc):
        addr, _ = make_filled_region(proc)
        tlb = warm_tlb(proc, addr)
        assert len(tlb) > 0
        proc.fork()
        assert len(tlb) == 0, "stale writable entries would break COW"

    def test_odfork_flushes_parent_tlb(self, proc):
        addr, _ = make_filled_region(proc)
        tlb = warm_tlb(proc, addr)
        proc.odfork()
        assert len(tlb) == 0

    def test_cow_correct_after_fork_with_warm_tlb(self, proc):
        """End to end: a hot TLB before fork cannot leak writes."""
        addr, _ = make_filled_region(proc)
        proc.write(addr, b"original")
        warm_tlb(proc, addr)
        child = proc.fork()
        proc.write(addr, b"parent!!")  # must COW despite prior hot entry
        assert child.read(addr, 8) == b"original"


class TestMprotectShootdowns:
    def test_mprotect_invalidates_writable_entries(self, proc):
        addr = proc.mmap(64 * 1024)
        tlb = warm_tlb(proc, addr, n_pages=4)
        proc.mprotect(addr, 64 * 1024, PROT_READ)
        for page in range(4):
            assert tlb.lookup(addr + page * 4096, is_write=True) is None
        with pytest.raises(SegmentationFault):
            proc.write(addr, b"x")


class TestUnmapShootdowns:
    def test_munmap_invalidates_range(self, proc):
        addr = proc.mmap(64 * 1024)
        tlb = warm_tlb(proc, addr, n_pages=4)
        proc.munmap(addr, 64 * 1024)
        for page in range(4):
            assert tlb.lookup(addr + page * 4096, is_write=False) is None
        with pytest.raises(SegmentationFault):
            proc.read(addr, 1)

    def test_remap_invalidates_old_range(self, proc):
        addr = proc.mmap(128 * 1024)
        proc.write(addr, b"moving")
        tlb = warm_tlb(proc, addr, n_pages=2)
        # Block in-place growth to force a move.
        proc.mmap(64 * 1024, addr=addr + 128 * 1024, flags=0b100101)
        new_addr = proc.mremap(addr, 128 * 1024, 512 * 1024)
        assert new_addr != addr
        assert tlb.lookup(addr, is_write=False) is None


class TestTableCopyShootdowns:
    def test_own_table_copy_invalidates_slot(self, proc, machine):
        addr, _ = make_filled_region(proc, size=2 * MIB)
        child = proc.odfork()
        child_tlb = warm_tlb(child, addr, n_pages=4, write=False)
        assert len(child_tlb) > 0
        child.write(addr, b"x")  # copies the table for the child
        # The slot's cached read translations were invalidated (the data
        # did not move, but the protocol must not trust stale mappings).
        assert machine.stats.table_cow_copies == 1

    def test_values_consistent_through_tlb(self, proc):
        """Random interleaving of cached reads and faulting writes across
        a fork pair always returns coherent values."""
        addr, _ = make_filled_region(proc, size=1 * MIB)
        proc.write(addr, b"AAAA")
        child = proc.odfork()
        assert child.read(addr, 4) == b"AAAA"   # cached in child TLB
        child.write(addr, b"BBBB")
        assert child.read(addr, 4) == b"BBBB"
        assert proc.read(addr, 4) == b"AAAA"
        proc.write(addr, b"CCCC")
        assert proc.read(addr, 4) == b"CCCC"
        assert child.read(addr, 4) == b"BBBB"


class TestSmpShootdowns:
    """Multi-vCPU coherence: odfork's write-protect must interrupt every
    remote vCPU caching the parent's address space (the same-mm threads
    case — a remote CPU holding a stale *writable* entry would keep
    scribbling on frames the child now shares)."""

    def _warm_vcpu0(self, machine, proc, addr, n_pages=8):
        from repro.smp import ops
        sched = machine.smp
        sched.spawn("warm",
                    ops.access_flow(sched, proc, addr, n_pages * 4096,
                                    is_write=True),
                    vcpu=0)
        sched.run()
        return sched.vcpus[0].tlb

    def test_odfork_ipis_remote_vcpu_running_same_mm(self):
        from repro.core.machine import Machine
        from repro.smp import ops
        machine = Machine(phys_mb=256, smp=2)
        sched = machine.smp
        parent = machine.spawn_process("threaded")
        addr, _ = make_filled_region(parent)
        parent.write(addr, b"ORIGINAL")
        thread = parent.clone_vm("thread")   # same mm, as a second thread

        # vCPU 0 runs the thread and caches writable translations.
        vcpu0_tlb = self._warm_vcpu0(machine, thread, addr)
        assert len(vcpu0_tlb) > 0
        assert vcpu0_tlb.lookup(addr, is_write=True) is not None

        # vCPU 1 odforks the same mm: the PMD write-protect must IPI
        # vCPU 0 and flush its stale writable view.
        before = machine.stats.ipis_sent
        task = sched.spawn("odf", ops.fork_flow(sched, parent, use_odf=True),
                           mm=parent.mm, vcpu=1)
        sched.run()
        child = task.result["child"]
        assert machine.stats.ipis_sent > before
        assert machine.stats.tlb_shootdowns >= 1
        assert sched.vcpus[0].ipis_received >= 1
        assert vcpu0_tlb.lookup(addr, is_write=True) is None

        # And the semantics hold: a post-fork parent write COWs instead
        # of riding a stale entry, so the child keeps the old bytes.
        sched.spawn("pwrite", ops.write_flow(sched, parent, addr, b"PARENT-2"),
                    mm=parent.mm, vcpu=0)
        sched.run()
        assert parent.read(addr, 8) == b"PARENT-2"
        assert child.read(addr, 8) == b"ORIGINAL"
        sched.assert_quiescent()

    def test_classic_fork_also_shoots_down_remote_vcpu(self):
        from repro.core.machine import Machine
        from repro.smp import ops
        machine = Machine(phys_mb=256, smp=2)
        sched = machine.smp
        parent = machine.spawn_process("threaded")
        addr, _ = make_filled_region(parent)
        thread = parent.clone_vm("thread")
        vcpu0_tlb = self._warm_vcpu0(machine, thread, addr)
        assert vcpu0_tlb.lookup(addr, is_write=True) is not None
        task = sched.spawn("fork", ops.fork_flow(sched, parent),
                           mm=parent.mm, vcpu=1)
        sched.run()
        assert sched.vcpus[0].ipis_received >= 1
        assert vcpu0_tlb.lookup(addr, is_write=True) is None

    def test_idle_vcpu_views_invalidated_without_ipi(self):
        """A stale view on a vCPU that is *not* in a run is invalidated
        lazily (CR3 reload on next use) — coherent, but no IPI charged."""
        from repro.core.machine import Machine
        machine = Machine(phys_mb=256, smp=2)
        parent = machine.spawn_process("p")
        addr, _ = make_filled_region(parent)
        vcpu0_tlb = self._warm_vcpu0(machine, parent, addr)
        assert len(vcpu0_tlb) > 0
        before = machine.stats.ipis_sent
        parent.odfork()                     # plain syscall, no run active
        assert machine.stats.ipis_sent == before
        assert vcpu0_tlb.lookup(addr, is_write=True) is None
