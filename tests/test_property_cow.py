"""Property tests for COW isolation across arbitrary fork lineages.

Each generated scenario builds a random fork tree (mixing classic fork and
on-demand-fork), writes unique payloads at random offsets in random
members, and verifies that every process reads exactly what *it* wrote (or
inherited) — the fundamental fork contract — and that refcount accounting
audits clean afterwards.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
import hypothesis.strategies as st

from repro import MIB, Machine
from repro.verify.audit import audit_machine

REGION = 2 * MIB
PAGE = 4096
N_PAGES = REGION // PAGE

fork_script = st.lists(
    st.tuples(
        st.integers(0, 3),          # parent index (mod live procs)
        st.booleans(),              # odfork?
    ),
    min_size=1, max_size=4,
)
write_script = st.lists(
    st.tuples(
        st.integers(0, 4),          # process index (mod live procs)
        st.integers(0, N_PAGES - 1),  # page
    ),
    min_size=0, max_size=24,
)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(forks=fork_script, writes=write_script, seed_page=st.integers(0, N_PAGES - 1))
def test_lineage_isolation(forks, writes, seed_page):
    machine = Machine(phys_mb=192)
    root = machine.spawn_process("root")
    region = root.mmap(REGION)
    root.touch_range(region, REGION, write=True)
    root.write(region + seed_page * PAGE, b"SEED")

    procs = [root]
    shadow = {root.pid: {seed_page: b"SEED"}}
    for parent_index, use_odf in forks:
        parent = procs[parent_index % len(procs)]
        child = parent.odfork() if use_odf else parent.fork()
        procs.append(child)
        shadow[child.pid] = dict(shadow[parent.pid])

    for counter, (proc_index, page) in enumerate(writes):
        proc = procs[proc_index % len(procs)]
        payload = f"{proc.pid:02d}-{counter:03d}".encode()[:8].ljust(8, b"_")
        proc.write(region + page * PAGE, payload)
        shadow[proc.pid][page] = payload

    for proc in procs:
        for page, expected in shadow[proc.pid].items():
            actual = proc.read(region + page * PAGE, len(expected))
            assert actual == expected, (
                f"pid {proc.pid} page {page}: got {actual!r}, "
                f"want {expected!r}"
            )
        # Pages nobody wrote stay logically zero everywhere.
        untouched = next(
            (p for p in range(N_PAGES)
             if p != seed_page and all(p not in shadow[q.pid] for q in procs)),
            None,
        )
        if untouched is not None:
            assert proc.read(region + untouched * PAGE, 4) == bytes(4)

    audit_machine(machine)

    # Tear down the whole lineage, leaves first, and re-audit.
    for proc in reversed(procs[1:]):
        proc.exit()
    for proc in procs[:-1]:
        while proc.alive and proc.wait() is not None:
            pass
    root.exit()
    machine.init_process.wait()
    audit_machine(machine)
    assert machine.kernel.live_tables == 1  # init's PGD only


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    pages=st.lists(st.integers(0, N_PAGES - 1), min_size=1, max_size=16,
                   unique=True),
    odf_first=st.booleans(),
)
def test_table_copy_counts_bounded(pages, odf_first):
    """Under odfork, table copies are bounded by distinct 2 MiB regions
    touched — never per page (the paper's once-per-region guarantee)."""
    machine = Machine(phys_mb=192)
    root = machine.spawn_process("root")
    region = root.mmap(REGION)
    root.touch_range(region, REGION, write=True)
    child = root.odfork() if odf_first else root.fork()

    writer = child if odf_first else root
    for page in pages:
        writer.write(region + page * PAGE, b"w")

    distinct_regions = len({page // 512 for page in pages})
    assert machine.stats.table_cow_copies <= distinct_regions
    if odf_first:
        assert machine.stats.table_cow_copies == distinct_regions
    audit_machine(machine)
