"""Mitosis-style page-table replication: lifecycle, policies, unwind.

The replication half of MECHANISM.md §15: per-node replica frames for
every table, the ``fanout_write`` coherence charge, walk entitlement
under each ``odfork_replica_policy``, ownership adoption at table-COW,
collapse at free/exit, and the ``mitosis.replica_alloc`` failpoint's
best-effort-unwind contract (an OOM mid-replication leaves the table
unreplicated and leaks nothing).
"""

from __future__ import annotations

import pytest

from repro import MIB, Machine
from repro.mem.page import PAGE_SIZE, PG_PAGETABLE
from repro.numa import REPLICA_POLICIES, NumaTopology
from repro.verify.audit import audit_machine


def replicated_machine(policy="share-one", nodes=2, phys_mb=128):
    return Machine(phys_mb=phys_mb,
                   numa=NumaTopology(nodes=nodes, replicate=True,
                                     odfork_replica_policy=policy))


def leaf_pfns(process):
    return {leaf.pfn for _pmd, _idx, leaf in process.mm.leaf_tables()}


def shared_leaf_pfns(process):
    kernel = process.kernel
    return {pfn for pfn in leaf_pfns(process)
            if kernel.pages.pt_ref(pfn) > 1}


# --------------------------------------------------------------------- #
# Replica lifecycle


class TestLifecycle:
    def test_fresh_tables_get_one_replica_per_remote_node(self):
        machine = replicated_machine(nodes=3)
        machine.init_process   # materialise init before the baseline
        mitosis = machine.kernel.mitosis
        base = mitosis.replica_frame_count()
        p = machine.spawn_process("r")
        buf = p.mmap(2 * MIB)
        p.touch_range(buf, 2 * MIB, write=True)
        new_tables = [pfn for pfn in mitosis.replicas
                      if mitosis.owner.get(pfn) is p.mm]
        assert new_tables
        for pfn in new_tables:
            got = mitosis.replicas[pfn]
            home = machine.allocator.node_of(pfn)
            assert set(got) == {0, 1, 2} - {home}
            for node, rpfn in got.items():
                assert machine.allocator.node_of(rpfn) == node
                assert machine.kernel.pages.has_flags(rpfn, PG_PAGETABLE)
                assert mitosis.replica_of[rpfn] == pfn
        assert mitosis.replica_frame_count() == base + 2 * len(new_tables)
        audit_machine(machine)

    def test_exit_collapses_every_replica(self):
        machine = replicated_machine()
        machine.init_process   # materialise init before the baseline
        mitosis = machine.kernel.mitosis
        base_replicas = mitosis.replica_frame_count()
        base_frames = machine.used_frames()
        p = machine.spawn_process("r")
        buf = p.mmap(2 * MIB)
        p.touch_range(buf, 2 * MIB, write=True)
        collapses_before = machine.kernel.stats.replica_collapses
        p.exit()
        machine.init_process.wait()
        assert mitosis.replica_frame_count() == base_replicas
        assert machine.used_frames() == base_frames
        assert machine.kernel.stats.replica_collapses > collapses_before
        audit_machine(machine)

    def test_fanout_write_charges_coherence(self):
        machine = replicated_machine()
        p = machine.spawn_process("r")
        buf = p.mmap(1 * MIB)
        syncs_before = machine.kernel.stats.replica_syncs
        clock_before = machine.clock.now_ns
        p.touch_range(buf, 1 * MIB, write=True)
        assert machine.kernel.stats.replica_syncs > syncs_before
        assert machine.clock.now_ns > clock_before

    def test_replication_off_means_no_mitosis_state(self):
        machine = Machine(phys_mb=64, numa=NumaTopology(nodes=2))
        assert machine.kernel.mitosis is None


# --------------------------------------------------------------------- #
# Walk entitlement under each odfork replica policy


class TestReplicaPolicies:
    def test_share_one_entitles_only_the_owner(self):
        machine = replicated_machine("share-one")
        mitosis = machine.kernel.mitosis
        p = machine.spawn_process("owner")
        buf = p.mmap(2 * MIB)
        p.touch_range(buf, 2 * MIB, write=True)
        child = p.odfork()
        shared = shared_leaf_pfns(p) & set(mitosis.replicas)
        assert shared
        for pfn in shared:
            assert mitosis.entitled(p.mm, pfn)
            assert not mitosis.entitled(child.mm, pfn)

    def test_share_all_entitles_every_sharer(self):
        machine = replicated_machine("share-all")
        mitosis = machine.kernel.mitosis
        p = machine.spawn_process("owner")
        buf = p.mmap(2 * MIB)
        p.touch_range(buf, 2 * MIB, write=True)
        child = p.odfork()
        assert child.mm.replicated
        shared = shared_leaf_pfns(p) & set(mitosis.replicas)
        assert shared
        for pfn in shared:
            assert mitosis.entitled(child.mm, pfn)

    def test_collapse_frees_replicas_at_share_time(self):
        machine = replicated_machine("collapse")
        mitosis = machine.kernel.mitosis
        p = machine.spawn_process("owner")
        buf = p.mmap(2 * MIB)
        p.touch_range(buf, 2 * MIB, write=True)
        collapses_before = machine.kernel.stats.replica_collapses
        child = p.odfork()
        assert machine.kernel.stats.replica_collapses > collapses_before
        for pfn in shared_leaf_pfns(p):
            assert pfn not in mitosis.replicas
            assert not mitosis.entitled(p.mm, pfn)
        child.exit()
        p.wait()
        audit_machine(machine)

    def test_table_cow_copy_is_rereplicated_and_owned_by_the_writer(self):
        machine = replicated_machine("share-one")
        mitosis = machine.kernel.mitosis
        p = machine.spawn_process("owner")
        buf = p.mmap(2 * MIB)
        p.touch_range(buf, 2 * MIB, write=True)
        child = p.odfork()
        before = leaf_pfns(child)
        child.write(buf, b"cow")   # table-COW: child gets a private leaf
        private = leaf_pfns(child) - before
        assert private
        for pfn in private:
            assert mitosis.owner.get(pfn) is child.mm
            assert mitosis.entitled(child.mm, pfn)
            assert not mitosis.entitled(p.mm, pfn)

    def test_owner_walks_remote_memory_cheaper_than_non_owner(self):
        # The experiment's core asymmetry, in miniature: under share-one
        # the parent owns the shared leaves' replicas, so its remote
        # walks are local while the child pays full distance cost.
        machine = replicated_machine("share-one", phys_mb=256)
        kernel = machine.kernel
        p = machine.spawn_process("owner")
        buf = p.mmap(4 * MIB)
        p.touch_range(buf, 4 * MIB, write=True)
        child = p.odfork()
        pages = 4 * MIB // PAGE_SIZE

        def cold_pass(proc):
            kernel.active_tlb(proc.mm).flush_all()
            with kernel.pin_to_node(1):
                start = machine.clock.now_ns
                for i in range(pages):
                    proc.touch(buf + i * PAGE_SIZE, PAGE_SIZE)
                return machine.clock.now_ns - start

        assert cold_pass(p) < cold_pass(child)


# --------------------------------------------------------------------- #
# mitosis.replica_alloc failpoint: best-effort unwind


class TestReplicaAllocFailpoint:
    def test_armed_oom_leaves_table_unreplicated_without_leaking(self):
        machine = replicated_machine(nodes=3)
        machine.init_process   # materialise init before the baseline
        kernel = machine.kernel
        fallbacks_before = kernel.stats.replica_fallbacks
        frames_before = machine.used_frames()
        p = machine.spawn_process("fp")
        buf = p.mmap(64 * PAGE_SIZE)
        # nth=2 fails the *second* node's replica frame on the next
        # table allocation: the first node's already-allocated replica
        # must be unwound too.
        kernel.failpoints.arm("mitosis.replica_alloc", nth=2)
        p.write(buf, b"still works")
        assert kernel.stats.replica_fallbacks > fallbacks_before
        all_tables = ({p.mm.pgd.pfn}
                      | {t.pfn for t in p.mm.upper_tables()}
                      | leaf_pfns(p))
        unreplicated = all_tables - set(kernel.mitosis.replicas)
        assert unreplicated   # at least one table skipped replication
        assert p.read(buf, 11) == b"still works"
        audit_machine(machine)
        p.exit()
        machine.init_process.wait()
        assert machine.used_frames() == frames_before
        audit_machine(machine)

    def test_unreplicated_table_walks_at_remote_cost(self):
        machine = replicated_machine()
        kernel = machine.kernel
        kernel.failpoints.arm("mitosis.replica_alloc", nth=1)
        p = machine.spawn_process("fp")
        buf = p.mmap(16 * PAGE_SIZE)
        p.touch_range(buf, 16 * PAGE_SIZE, write=True)
        remote_before = kernel.stats.numa_remote_accesses
        kernel.active_tlb(p.mm).flush_all()
        with kernel.pin_to_node(1):
            p.touch(buf, PAGE_SIZE)
        assert kernel.stats.numa_remote_accesses > remote_before

    @pytest.mark.parametrize("policy", REPLICA_POLICIES)
    def test_odfork_after_replica_oom_stays_clean(self, policy):
        machine = replicated_machine(policy)
        machine.kernel.failpoints.arm("mitosis.replica_alloc", nth=1)
        p = machine.spawn_process("fp")
        buf = p.mmap(1 * MIB)
        p.touch_range(buf, 1 * MIB, write=True)
        child = p.odfork()
        child.write(buf, b"y")
        assert p.read(buf, 1) != b"y"
        child.exit()
        p.wait()
        p.exit()
        machine.init_process.wait()
        audit_machine(machine)


# --------------------------------------------------------------------- #
# Tracepoints


class TestTracepoints:
    def test_replication_lifecycle_emits_tracepoints(self):
        from repro.trace import points
        from repro.trace.tracer import Tracer
        tracer = Tracer()
        points.attach(tracer)
        try:
            machine = replicated_machine("collapse")
            p = machine.spawn_process("tp")
            buf = p.mmap(2 * MIB)
            p.touch_range(buf, 2 * MIB, write=True)
            child = p.odfork()
            child.exit()
            p.wait()
            p.exit()
            machine.init_process.wait()
        finally:
            points.detach()
        names = {event.name for event in tracer.drain()}
        assert "mitosis.replica_alloc" in names
        assert "mitosis.replica_sync" in names
        assert "mitosis.replica_collapse" in names
