"""Figure 6 fidelity: the paper's annotated sample program, event by event.

The paper's Figure 6 walks one program fragment through every
On-demand-fork event class:

    1. buffer = mmap(...)                      # setup
    2. pid = fork()                            # on-demand-fork (§3.1)
    5. t = buffer[1000]                        # fast read (§3.4)
    6. buffer[2000] = 'y'                      # page fault (§3.4)
    7. mremap(buffer, 10000, 7000, ...)        # remap memory (§3.3)
    8. return 0                                # unmap memory (§3.3)

This test executes exactly that fragment and asserts each event produced
the paper's kernel behaviour.
"""

from repro import Machine


def test_figure6_program_fragment():
    machine = Machine(phys_mb=256)
    parent = machine.spawn_process("fig6")
    stats = machine.stats

    # 1. buffer = mmap(NULL, 10000, PROT_READ|PROT_WRITE, MAP_PRIVATE, -1, 0)
    buffer = parent.mmap(10000)
    parent.touch_range(buffer, 10000, write=True)  # back it with pages
    parent.write(buffer + 1000, b"\x42")

    # 2. pid = fork()  — rerouted to on-demand-fork (§3.1).
    parent.set_odfork_default(True)
    child = parent.fork()
    assert stats.odforks == 1
    assert stats.tables_shared == 1          # one PTE table covers 10000 B

    # 5. t = buffer[1000]  — fast read: no page fault (§3.4).
    faults_before = stats.page_faults
    assert child.read(buffer + 1000, 1) == b"\x42"
    assert stats.page_faults == faults_before

    # 6. buffer[2000] = 'y'  — page fault: table copy + data COW (§3.4).
    child.write(buffer + 2000, b"y")
    assert stats.table_cow_copies == 1
    assert parent.read(buffer + 2000, 1) != b"y"   # isolation

    # 7. mremap(buffer, 10000, 7000, ...)  — remap memory (§3.3): the
    # child shrinks its buffer; its (now dedicated) table is zapped
    # partially, the parent's mapping is untouched.
    child.mremap(buffer, 10000, 7000)
    assert child.read(buffer + 2000, 1) == b"y"
    assert parent.read(buffer + 9000, 1) is not None

    # 8. return 0  — unmap memory at exit (§3.3): the child's exit drops
    # its table references; the parent still translates fine.
    child.exit()
    parent.wait(child.pid)
    assert parent.read(buffer + 1000, 1) == b"\x42"
    parent.exit()
    machine.init_process.wait()
    machine.check_frame_invariants()
    assert machine.kernel.live_tables == 1   # only init's PGD remains
