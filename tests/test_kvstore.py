"""Redis-like store: snapshots, COW behaviour, traffic generation."""

import pytest

from repro import Machine
from repro.apps import KVStore, MemtierClient
from repro.errors import InvalidArgumentError


@pytest.fixture
def store():
    machine = Machine(phys_mb=512)
    return KVStore(machine, data_mb=64, use_odfork=False,
                   snapshot_threshold=100, snapshot_min_interval_ms=0.0)


class TestStoreBasics:
    def test_dataset_resident_after_load(self, store):
        assert store.proc.rss_bytes >= 64 * 1024 * 1024

    def test_invalid_sizes(self):
        machine = Machine(phys_mb=128)
        with pytest.raises(InvalidArgumentError):
            KVStore(machine, data_mb=0)

    def test_gets_and_sets_advance_clock(self, store):
        t0 = store.machine.now_ns
        store.handle_get(1)
        store.handle_set(2)
        assert store.machine.now_ns > t0


class TestSnapshotting:
    def test_snapshot_after_threshold(self, store):
        for i in range(100):
            store.handle_set(i)
        assert store.snapshots_taken == 1
        assert store.latest_fork_usec is not None

    def test_min_interval_gates_snapshots(self):
        machine = Machine(phys_mb=512)
        store = KVStore(machine, data_mb=64, snapshot_threshold=10,
                        snapshot_min_interval_ms=10_000.0)
        for i in range(100):
            store.handle_set(i)
        assert store.snapshots_taken == 0  # interval not yet reached

    def test_writes_during_snapshot_cow(self, store):
        machine = store.machine
        for i in range(100):
            store.handle_set(i)  # triggers one snapshot
        cow_before = machine.stats.cow_faults
        # The snapshot child is alive; every parent write must COW.
        store.handle_set(5000)
        assert machine.stats.cow_faults > cow_before
        store.reap_finished_children(force=True)

    def test_reap_after_serialize_deadline(self, store):
        for i in range(100):
            store.handle_set(i)
        assert len(store._snapshot_children) == 1
        store.machine.clock.advance(store.serialize_ns + 1)
        store.reap_finished_children()
        assert len(store._snapshot_children) == 0

    def test_odfork_snapshot_much_faster(self):
        forks = {}
        for use_odfork in (False, True):
            machine = Machine(phys_mb=512)
            s = KVStore(machine, data_mb=64, use_odfork=use_odfork,
                        snapshot_threshold=50, snapshot_min_interval_ms=0.0)
            for i in range(50):
                s.handle_set(i)
            forks[use_odfork] = s.fork_ns_samples[0]
            s.shutdown()
        assert forks[True] < forks[False] / 5

    def test_shutdown_cleans_up(self, store):
        for i in range(100):
            store.handle_set(i)
        store.shutdown()
        assert not store.proc.alive
        store.machine.check_frame_invariants()

    def test_info_fields(self, store):
        store.snapshot()
        info = store.info()
        assert info["snapshots_taken"] == 1
        assert info["keys"] == store.n_keys
        assert info["latest_fork_usec"] > 0


class TestMemtierClient:
    def test_run_returns_latencies(self, store):
        client = MemtierClient(store, connections=1, pipeline_depth=10,
                               write_ratio=0.5, seed=1)
        latencies = client.run(500)
        assert len(latencies) == 500
        assert (latencies > 0).all()

    def test_latency_reflects_outstanding_depth(self, store):
        shallow = MemtierClient(store, connections=1, pipeline_depth=5,
                                seed=2).run(300)
        deep = MemtierClient(store, connections=1, pipeline_depth=500,
                             seed=2).run(300)
        assert deep[200:].mean() > shallow[200:].mean() * 10

    def test_invalid_parameters(self, store):
        with pytest.raises(InvalidArgumentError):
            MemtierClient(store, connections=0)
        with pytest.raises(InvalidArgumentError):
            MemtierClient(store, write_ratio=2.0)

    def test_write_ratio_drives_snapshots(self, store):
        client = MemtierClient(store, connections=1, pipeline_depth=10,
                               write_ratio=1.0, seed=3)
        client.run(300)
        assert store.snapshots_taken >= 2
