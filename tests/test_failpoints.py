"""Fail-point-driven OOM unwind tests (kernel.failpoints).

Each test arms one fail-point site so a specific allocation deep inside an
operation fails, then proves the kernel surfaces a clean
``OutOfMemoryError`` and unwinds to an audit-clean machine with no leaked
frames, no half-built children, and no dangling refcounts — the paper's
robustness story for odfork depends on mid-copy failure being recoverable.
"""

from __future__ import annotations

import pytest
from repro.verify.audit import audit_machine
from conftest import make_filled_region

from repro import Machine, MIB, OutOfMemoryError
from repro.kernel.failpoints import FailPoints
from repro.paging import entry_pfn


@pytest.fixture
def swap_machine():
    """Small machine with swap so rmap/LRU paths are live."""
    return Machine(phys_mb=64, swap_mb=16)


# --------------------------------------------------------------------- #
# FailPoints mechanics


def test_failpoint_record_counts_hits(machine):
    fp = machine.kernel.failpoints
    fp.record()
    p = machine.spawn_process("p")
    make_filled_region(p, size=4 * MIB)
    p.fork()
    fp.disarm()
    assert fp.counts.get("fork.copy_slot", 0) >= 2
    assert fp.counts.get("bulkops.fill_absent", 0) >= 1


def test_failpoint_fires_exactly_once(machine):
    fp = machine.kernel.failpoints
    fp.arm("fork.copy_slot", nth=1)
    p = machine.spawn_process("p")
    make_filled_region(p, size=4 * MIB)
    with pytest.raises(OutOfMemoryError):
        p.fork()
    # Armed shots are one-time: the retry succeeds.
    child = p.fork()
    assert child.pid in machine.kernel.tasks
    audit_machine(machine)


def test_failpoint_arm_validates_nth():
    with pytest.raises(ValueError):
        FailPoints().arm("x", nth=0)


# --------------------------------------------------------------------- #
# Classic fork: mid-copy OOM unwinds the half-built child


def test_classic_fork_midcopy_oom_unwinds(machine):
    p = machine.spawn_process("p")
    addr, probes = make_filled_region(p, size=8 * MIB)
    tasks_before = set(machine.kernel.tasks)
    frames_before = machine.used_frames()

    # The region spans several PMD slots; fail the second slot's table
    # allocation so the child is torn down half-copied.
    machine.kernel.failpoints.arm("fork.copy_slot", nth=2)
    with pytest.raises(OutOfMemoryError):
        p.fork()

    assert set(machine.kernel.tasks) == tasks_before
    assert p.task.children == []
    assert machine.used_frames() == frames_before
    audit_machine(machine)
    # The parent is fully functional afterwards.
    assert p.read(addr + probes[1], 3) == b"\xabQ\x01"
    p.write(addr, b"still-writable")
    audit_machine(machine)


# --------------------------------------------------------------------- #
# odfork: mid-share and mid-table-COW OOM


def test_odfork_midshare_oom_unwinds(machine):
    p = machine.spawn_process("p")
    addr, probes = make_filled_region(p, size=8 * MIB)
    frames_before = machine.used_frames()

    machine.kernel.failpoints.arm("odfork.share_table", nth=1)
    with pytest.raises(OutOfMemoryError):
        p.odfork()

    assert p.task.children == []
    assert machine.used_frames() == frames_before
    audit_machine(machine)
    # The parent's address space is untouched by the aborted share.
    p.write(addr, b"post-abort write")
    assert p.read(addr, 4) == b"post"
    audit_machine(machine)


def test_odfork_table_cow_oom_leaves_sharing_intact(machine):
    p = machine.spawn_process("p")
    addr, _ = make_filled_region(p, size=4 * MIB)
    child = p.odfork()
    audit_machine(machine)

    # The child's first modifying fault needs a dedicated table copy
    # (§3.4); fail that allocation.
    machine.kernel.failpoints.arm("tableops.table_cow", nth=1)
    with pytest.raises(OutOfMemoryError):
        child.write(addr, b"denied")
    audit_machine(machine)

    # Sharing is untouched: both still read the original bytes, and the
    # write succeeds once memory is available again.
    assert p.read(addr, 3) == child.read(addr, 3)
    child.write(addr, b"now")
    assert child.read(addr, 3) == b"now"
    assert p.read(addr, 3) != b"now"
    audit_machine(machine)


# --------------------------------------------------------------------- #
# COW fault: the rmap pin must not outlive a failed allocation


def test_cow_fault_oom_drops_rmap_pin(swap_machine):
    machine = swap_machine
    p = machine.spawn_process("p")
    addr, _ = make_filled_region(p, size=1 * MIB)
    child = p.fork()
    # Resolve the shared frame the write would COW.
    walked = child.mm.walk_to_pmd(addr, alloc=False)
    leaf = child.mm.resolve(int(entry_pfn(walked[0].entries[walked[1]])))
    pfn = int(entry_pfn(leaf.entries[0]))
    refs_before = machine.pages.get_ref(pfn)

    machine.kernel.failpoints.arm("fault.cow_copy", nth=1)
    with pytest.raises(OutOfMemoryError):
        child.write(addr, b"x")

    assert machine.pages.get_ref(pfn) == refs_before
    audit_machine(machine)
    child.write(addr, b"y")  # retry succeeds
    audit_machine(machine)


# --------------------------------------------------------------------- #
# Snapshot creation: a mid-walk failure must discard the partial snapshot


def test_snapshot_create_oom_discards_partial_state(machine):
    p = machine.spawn_process("p")
    addr, _ = make_filled_region(p, size=8 * MIB)
    # Keep the odfork child alive: create() then has to unshare-copy the
    # shared leaf tables, which is the fallible allocation under test.
    child = p.odfork()

    machine.kernel.failpoints.arm("tableops.table_cow", nth=2)
    with pytest.raises(OutOfMemoryError):
        p.snapshot()

    assert machine.kernel.live_snapshots == []
    audit_machine(machine)

    snap = p.snapshot()  # retry works and behaves
    p.write(addr, b"scribble")
    snap.restore()
    assert p.read(addr, 3) == b"\xabQ\x00"
    snap.discard()
    child.exit()
    audit_machine(machine)


# --------------------------------------------------------------------- #
# Descriptor construction: PGD and upper-table allocations are fallible


def test_spawn_pgd_alloc_oom_leaves_no_task(machine):
    tasks_before = set(machine.kernel.tasks)
    frames_before = machine.used_frames()
    machine.kernel.failpoints.arm("mm.pgd_alloc", nth=1)
    with pytest.raises(OutOfMemoryError):
        machine.spawn_process("doomed")
    assert set(machine.kernel.tasks) == tasks_before
    assert machine.used_frames() == frames_before
    audit_machine(machine)
    # One-shot: the retry spawns normally.
    p = machine.spawn_process("survivor")
    assert p.pid in machine.kernel.tasks
    audit_machine(machine)


def test_upper_table_alloc_oom_unwinds_fault(machine):
    p = machine.spawn_process("p")
    addr = p.mmap(4 * MIB)
    # The first touch builds PUD+PMD; fail that mid-walk allocation.
    machine.kernel.failpoints.arm("mm.upper_table_alloc", nth=1)
    with pytest.raises(OutOfMemoryError):
        p.write(addr, b"x")
    audit_machine(machine)
    # The aborted walk left nothing the retry cannot reuse or rebuild.
    p.write(addr, b"retry ok")
    assert p.read(addr, 8) == b"retry ok"
    audit_machine(machine)


def test_fork_upper_table_oom_unwinds_child(machine):
    p = machine.spawn_process("p")
    addr, probes = make_filled_region(p, size=8 * MIB)
    frames_before = machine.used_frames()
    machine.kernel.failpoints.arm("fork.upper_table", nth=1)
    with pytest.raises(OutOfMemoryError):
        p.fork()
    assert p.task.children == []
    assert machine.used_frames() == frames_before
    audit_machine(machine)
    assert p.read(addr + probes[0], 2) == b"\xabQ"


def test_pagecache_fill_oom_is_retryable(machine):
    f = machine.kernel.fs.create("/data", size=64 * 1024)
    f.set_initial_contents(b"cached bytes")
    p = machine.spawn_process("p")
    from repro.kernel.vma import MAP_PRIVATE, PROT_READ
    addr = p.mmap(64 * 1024, prot=PROT_READ, flags=MAP_PRIVATE, file=f)
    machine.kernel.failpoints.arm("pagecache.fill", nth=1)
    with pytest.raises(OutOfMemoryError):
        p.read(addr, 6)
    audit_machine(machine)
    # The miss was not cached as a success: the retry fills and reads.
    assert p.read(addr, 6) == b"cached"
    audit_machine(machine)


# --------------------------------------------------------------------- #
# execve atomicity: a failed exec reports -ENOMEM, it does not kill
# the calling image (the fresh PGD is allocated before the old mm drops)


def test_execve_pgd_oom_preserves_old_image(machine):
    binary = machine.kernel.fs.create("/bin/app", size=48 * 1024)
    binary.set_initial_contents(b"\x7fELF app image")
    p = machine.spawn_process("p")
    addr = p.mmap(2 * MIB)
    p.write(addr, b"old image data")

    machine.kernel.failpoints.arm("mm.pgd_alloc", nth=1)
    with pytest.raises(OutOfMemoryError):
        p.execve(binary)

    # The caller's address space survived the failed exec intact.
    assert p.alive
    assert p.read(addr, 14) == b"old image data"
    audit_machine(machine)
    # And the retry replaces the image as usual.
    text, _stack = p.execve(binary)
    assert p.read(text, 4) == b"\x7fELF"
    audit_machine(machine)
