"""Noise model: determinism, distribution properties, jitter."""

import pytest

from repro.errors import ConfigurationError
from repro.timing import NoiseModel


class TestNoiseModel:
    def test_zero_sigma_is_identity(self):
        noise = NoiseModel(seed=1, sigma=0.0)
        assert noise.perturb(1000) == 1000

    def test_same_seed_same_draws(self):
        a = NoiseModel(seed=7, sigma=0.1)
        b = NoiseModel(seed=7, sigma=0.1)
        assert [a.perturb(100) for _ in range(50)] == \
               [b.perturb(100) for _ in range(50)]

    def test_different_seed_different_draws(self):
        a = NoiseModel(seed=7, sigma=0.1)
        b = NoiseModel(seed=8, sigma=0.1)
        assert [a.perturb(100) for _ in range(10)] != \
               [b.perturb(100) for _ in range(10)]

    def test_mean_preserving_roughly(self):
        noise = NoiseModel(seed=3, sigma=0.05)
        draws = [noise.perturb(1000) for _ in range(5000)]
        assert sum(draws) / len(draws) == pytest.approx(1000, rel=0.02)

    def test_spikes_add_positive_tail(self):
        calm = NoiseModel(seed=5, sigma=0.01)
        spiky = NoiseModel(seed=5, sigma=0.01, spike_prob=0.2, spike_scale=1.0)
        calm_max = max(calm.perturb(100) for _ in range(2000))
        spiky_max = max(spiky.perturb(100) for _ in range(2000))
        assert spiky_max > calm_max * 1.5

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            NoiseModel(sigma=-0.1)
        with pytest.raises(ConfigurationError):
            NoiseModel(spike_prob=1.5)

    def test_syscall_jitter_nonnegative(self):
        noise = NoiseModel(seed=11, sigma=0.05)
        draws = [noise.syscall_jitter() for _ in range(1000)]
        assert all(d >= 0 for d in draws)
        assert any(d > 0 for d in draws)

    def test_uniform_and_randint_helpers(self):
        noise = NoiseModel(seed=2)
        for _ in range(100):
            assert 1.0 <= noise.uniform(1.0, 2.0) < 2.0
            assert 5 <= noise.randint(5, 9) < 9
