"""Edge cases across subsystems that the focused suites do not reach."""

import numpy as np
import pytest

from repro import (
    MAP_ANONYMOUS,
    MAP_PRIVATE,
    MIB,
    Machine,
    SegmentationFault,
)
from repro.errors import InvalidArgumentError, KernelBug
from repro.mem import BuddyAllocator


class TestBuddyOddSizes:
    @pytest.mark.parametrize("n_frames", [1, 3, 7, 100, 1023, 1025])
    def test_non_power_of_two_totals(self, n_frames):
        buddy = BuddyAllocator(n_frames)
        assert buddy.free_frames == n_frames
        pfns = buddy.alloc_bulk(n_frames)
        assert len(pfns) == n_frames
        buddy.free_bulk(pfns)
        assert buddy.free_frames == n_frames
        buddy.check_consistency()


class TestAccessBoundaries:
    def test_write_spanning_many_pages(self, proc):
        addr = proc.mmap(64 * 1024)
        blob = bytes(range(256)) * 64  # 16 KiB, 4+ pages
        proc.write(addr + 2000, blob)
        assert proc.read(addr + 2000, len(blob)) == blob

    def test_write_across_vma_boundary_fails_atomically(self, proc):
        addr = proc.mmap(8192)
        with pytest.raises(SegmentationFault):
            proc.write(addr + 4096, b"x" * 8192)  # second half unmapped

    def test_touch_range_partial_page_ends(self, proc):
        addr = proc.mmap(64 * 1024)
        events = proc.touch_range(addr + 100, 5000, write=True)
        # 100..5100 spans pages 0 and 1.
        assert events["demand_zero"] == 2

    def test_zero_length_operations(self, proc):
        addr = proc.mmap(4096)
        assert proc.read(addr, 0) == b""
        proc.write(addr, b"")
        assert proc.touch(addr, 0) == 0

    def test_access_across_pmd_boundary(self, proc):
        from repro.paging.table import PMD_REGION_SIZE
        size = 2 * PMD_REGION_SIZE
        addr = proc.mmap(size)
        boundary = addr + PMD_REGION_SIZE - 3
        proc.write(boundary, b"straddles")
        assert proc.read(boundary, 9) == b"straddles"


class TestSlotSpanningSemantics:
    def test_vma_smaller_than_slot_shares_table(self, machine):
        """Multiple small VMAs land in one 2 MiB slot: one PTE table."""
        p = machine.spawn_process("small-vmas")
        a = p.mmap(64 * 1024)
        b = p.mmap(64 * 1024)
        p.write(a, b"A")
        p.write(b, b"B")
        leaf_a = p.mm.get_pte_table(a)
        leaf_b = p.mm.get_pte_table(b)
        if leaf_a is leaf_b:  # same slot (placement-dependent but typical)
            child = p.odfork()
            child.write(a, b"x")  # one table copy covers both VMAs
            assert machine.stats.table_cow_copies == 1
            assert p.read(b, 1) == b"B"

    def test_unmap_one_vma_in_shared_slot_copies(self, machine):
        p = machine.spawn_process("mixed-slot")
        a = p.mmap(64 * 1024)
        b = p.mmap(64 * 1024)
        p.write(a, b"A")
        p.write(b, b"B")
        child = p.odfork()
        child.munmap(a, 64 * 1024)  # partial slot: §3.3 slow path
        assert child.read(b, 1) == b"B"
        assert p.read(a, 1) == b"A"


class TestMachineConfig:
    def test_tiny_machine_still_works(self):
        machine = Machine(phys_mb=2)
        p = machine.spawn_process("tiny")
        addr = p.mmap(64 * 1024)
        p.write(addr, b"fits")
        assert p.read(addr, 4) == b"fits"

    def test_seeded_noise_is_reproducible_across_machines(self):
        def fork_time(seed):
            machine = Machine(phys_mb=256, noise_sigma=0.1, seed=seed)
            p = machine.spawn_process("n")
            addr = p.mmap(32 * MIB)
            p.touch_range(addr, 32 * MIB, write=True)
            p.fork()
            return p.last_fork_ns
        assert fork_time(5) == fork_time(5)
        assert fork_time(5) != fork_time(6)

    def test_cost_params_immutable(self):
        from repro.timing import CostParams
        params = CostParams()
        with pytest.raises(Exception):
            params.fault_base = 1


class TestProcfsViews:
    def test_status_of_exited_process(self, proc):
        proc.exit()
        status = proc.status()
        assert status["state"] == "zombie"
        assert status["vm_size_bytes"] == 0

    def test_vmstat_snapshot_is_copy(self, machine, proc):
        addr = proc.mmap(4096)
        proc.write(addr, b"x")
        snap = machine.stats.snapshot()
        proc.write(addr + 4096 - 8, b"y")
        assert machine.stats.snapshot()["page_faults"] == snap["page_faults"]


class TestEndurance:
    def test_everything_together(self, big_machine):
        """One long mixed scenario: all features, audited at the end."""
        from repro.kernel.kernel import MADV_DONTNEED, MADV_HUGEPAGE
        from repro.verify.audit import audit_machine
        machine = big_machine
        p = machine.spawn_process("endurance")

        heap = p.brk()
        p.brk(heap + 1 * MIB)
        p.write(heap, b"heap!")

        region = p.mmap(16 * MIB, name="main")
        p.touch_range(region, 16 * MIB, write=True)
        p.write(region + 9 * MIB, b"landmark")

        # Snapshot the parent, scribble, roll back, discard (snapshots
        # precede THP promotion: they cover 4 KiB mappings only).
        snapshot = p.snapshot()
        p.write(region + 9 * MIB, b"scribble")
        snapshot.restore()
        assert p.read(region + 9 * MIB, 8) == b"landmark"
        snapshot.discard()

        # THP promotion over part of it.
        p.madvise(region, 8 * MIB, MADV_HUGEPAGE)
        machine.run_khugepaged(p)

        # Shared memory mapped before the fork so the lineage inherits it.
        shared = p.mmap_shared(1 * MIB)
        p.write(shared, b"shared state")

        # A fork lineage mixing flavours.
        child = p.odfork()
        grandchild = child.fork()
        grandchild.write(region + 9 * MIB, b"GC write")
        assert child.read(shared, 12) == b"shared state"

        # madvise reset, mremap, mprotect.
        p.madvise(region + 12 * MIB, 1 * MIB, MADV_DONTNEED)
        assert p.read(region + 12 * MIB, 4) == bytes(4)
        small = p.mmap(256 * 1024)
        p.write(small, b"moving")
        p.mmap(64 * 1024, addr=small + 256 * 1024,
               flags=MAP_PRIVATE | MAP_ANONYMOUS | 32)
        moved = p.mremap(small, 256 * 1024, 1 * MIB)
        assert p.read(moved, 6) == b"moving"

        # Lineage isolation held throughout.
        assert grandchild.read(region + 9 * MIB, 8) == b"GC write"
        assert child.read(region + 9 * MIB, 8) == b"landmark"

        grandchild.exit()
        child.wait()
        child.exit()
        p.wait()
        audit_machine(machine)
        p.exit()
        machine.init_process.wait()
        machine.check_frame_invariants()
        assert machine.kernel.live_tables == 1
