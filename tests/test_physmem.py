"""Physical frame contents: lazy materialisation and COW copies."""

import numpy as np
import pytest

from repro.errors import InvalidArgumentError
from repro.mem import PAGE_SIZE, PhysicalMemory


@pytest.fixture
def phys():
    return PhysicalMemory(1024)


class TestReadWrite:
    def test_unmaterialised_reads_zero(self, phys):
        assert phys.read(3, 0, 16) == bytes(16)
        assert phys.materialized_frames == 0

    def test_write_then_read(self, phys):
        phys.write(3, 100, b"hello")
        assert phys.read(3, 100, 5) == b"hello"
        assert phys.read(3, 0, 4) == bytes(4)
        assert phys.materialized_frames == 1

    def test_boundary_checks(self, phys):
        with pytest.raises(InvalidArgumentError):
            phys.read(3, PAGE_SIZE - 2, 4)
        with pytest.raises(InvalidArgumentError):
            phys.write(2000, 0, b"x")

    def test_full_page_write(self, phys):
        data = bytes(range(256)) * 16
        phys.write(9, 0, data)
        assert phys.read(9, 0, PAGE_SIZE) == data


class TestCopyAndZero:
    def test_copy_materialised_frame(self, phys):
        phys.write(1, 0, b"source")
        phys.copy_frame(1, 2)
        assert phys.read(2, 0, 6) == b"source"
        phys.write(2, 0, b"CHANGE")
        assert phys.read(1, 0, 6) == b"source"  # deep copy

    def test_copy_unmaterialised_stays_cheap(self, phys):
        phys.copy_frame(1, 2)
        assert phys.materialized_frames == 0

    def test_copy_unmaterialised_clears_stale_dst(self, phys):
        phys.write(2, 0, b"stale")
        phys.copy_frame(1, 2)
        assert phys.read(2, 0, 5) == bytes(5)

    def test_zero(self, phys):
        phys.write(5, 0, b"data")
        phys.zero(5)
        assert phys.read(5, 0, 4) == bytes(4)
        assert phys.materialized_frames == 0

    def test_zero_bulk(self, phys):
        for pfn in range(10):
            phys.write(pfn, 0, b"x")
        phys.zero_bulk(np.arange(10))
        assert phys.materialized_frames == 0


class TestBulkCopy:
    def test_bulk_copy_empty_store_noop(self, phys):
        phys.copy_frames_bulk(np.arange(100), np.arange(100, 200))
        assert phys.materialized_frames == 0

    def test_bulk_copy_mixed(self, phys):
        phys.write(10, 0, b"ten")
        phys.write(12, 0, b"twelve")
        src = np.asarray([10, 11, 12])
        dst = np.asarray([20, 21, 22])
        phys.copy_frames_bulk(src, dst)
        assert phys.read(20, 0, 3) == b"ten"
        assert phys.read(21, 0, 3) == bytes(3)
        assert phys.read(22, 0, 6) == b"twelve"

    def test_bulk_copy_sparse_fast_path(self, phys):
        # Few materialised frames against a large pfn set exercises the
        # dict-iteration branch.
        phys.write(500, 0, b"needle")
        src = np.arange(0, 1000, dtype=np.int64)
        dst_base = np.arange(0, 1000, dtype=np.int64)
        # copy into pfn+... must stay in range; use reversed mapping
        dst = (999 - src).astype(np.int64)
        phys.copy_frames_bulk(src, dst)
        assert phys.read(999 - 500, 0, 6) == b"needle"

    def test_bulk_copy_clears_stale_dst(self, phys):
        phys.write(30, 0, b"stale!")
        phys.write(40, 0, b"live")
        phys.copy_frames_bulk(np.asarray([7, 40]), np.asarray([30, 31]))
        assert phys.read(30, 0, 6) == bytes(6)
        assert phys.read(31, 0, 4) == b"live"
