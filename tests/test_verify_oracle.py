"""End-to-end tests for the differential oracle, shrinker, and CLI glue.

The headline test proves the oracle is *able* to catch a semantic
divergence: it flips ``FAULT_INJECT_SKIP_PARENT_WP`` (odfork skipping the
parent-side PMD write-protect — exactly the bug class the paper's §3.2
design prevents), watches the odfork-vs-classic pair diverge, and checks
ddmin shrinks the failure to a handful of ops.
"""

from __future__ import annotations

import pytest

from repro.kernel import odfork
from repro.verify import (
    check_trace,
    enumerate_failpoints,
    generate_trace,
    load_trace,
    save_trace,
    shrink_trace,
)
from repro.verify.oracle import is_hard
from repro.verify.trace import TraceExecutor, make_machine


def hard_findings(trace, **kwargs):
    return [f for f in check_trace(trace, **kwargs) if is_hard(f)]


# --------------------------------------------------------------------- #
# Clean runs


def test_differential_clean_on_random_traces():
    for seed in (0, 1, 2):
        trace = generate_trace(seed)
        assert hard_findings(trace, include_smp=False) == []


def test_differential_clean_with_smp_leg():
    assert hard_findings(generate_trace(3), include_smp=True, smp=2) == []


def test_failpoint_enumeration_clean():
    findings, meta = enumerate_failpoints(generate_trace(4, n_ops=20),
                                          max_hits_per_site=2)
    assert findings == []
    assert meta["runs"] > 0
    assert "fork.copy_slot" in meta["sites"] or meta["sites"]


# --------------------------------------------------------------------- #
# The oracle catches an injected semantic bug and shrinks it


def test_oracle_catches_and_shrinks_missing_parent_wp():
    odfork.FAULT_INJECT_SKIP_PARENT_WP = True
    try:
        caught = None
        for seed in range(100, 130):
            trace = generate_trace(seed)
            hard = hard_findings(trace, include_smp=False)
            if hard:
                caught = (trace, hard[0])
                break
        assert caught is not None, "oracle missed the injected WP bug"
        trace, finding = caught
        assert finding.pair == "odfork-vs-classic"
        assert finding.kind in ("state", "outcome")

        shrunk = shrink_trace(
            trace,
            lambda t: any(is_hard(f)
                          for f in check_trace(t, include_smp=False)))
        assert len(shrunk["ops"]) <= 10
        # The minimized repro must still exhibit the divergence...
        assert hard_findings(shrunk, include_smp=False)
    finally:
        odfork.FAULT_INJECT_SKIP_PARENT_WP = False
    # ...and be clean again once the injected bug is gone.
    assert hard_findings(shrunk, include_smp=False) == []


# --------------------------------------------------------------------- #
# Trace mechanics


def test_trace_json_round_trip(tmp_path):
    trace = generate_trace(11)
    path = save_trace(trace, tmp_path / "t.json")
    assert load_trace(path) == trace


def test_load_trace_rejects_unknown_format(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"format": 99, "ops": []}')
    with pytest.raises(ValueError):
        load_trace(path)


def test_executor_skips_dangling_references():
    """Any subsequence is a valid trace: unknown ids skip cleanly."""
    executor = TraceExecutor(make_machine(), flavor="classic")
    assert executor.execute({"op": "write", "proc": 9, "region": 0,
                             "page": 0, "val": 1}) == ("skip",)
    assert executor.execute({"op": "restore", "snap": 5}) == ("skip",)
    assert executor.execute({"op": "exit", "proc": 3}) == ("skip",)
    assert executor.execute({"op": "made-up"}) == ("skip",)
    # Ops on a live process still work after the skips.
    assert executor.execute({"op": "mmap", "proc": 0, "region": 0,
                             "pages": 2, "huge": False})[0] == "ok"


def test_executor_skips_table_moves_under_live_snapshot():
    executor = TraceExecutor(make_machine(), flavor="classic")
    executor.execute({"op": "mmap", "proc": 0, "region": 0, "pages": 2,
                      "huge": False})
    executor.execute({"op": "touch", "proc": 0, "region": 0, "lo": 0,
                      "hi": 2, "write": True})
    assert executor.execute({"op": "snapshot", "proc": 0,
                             "snap": 0}) == ("ok",)
    assert executor.execute({"op": "munmap", "proc": 0, "region": 0,
                             "lo": 0, "hi": 2}) == ("skip",)
    assert executor.execute({"op": "mremap", "proc": 0, "region": 0,
                             "new_pages": 4}) == ("skip",)
    assert executor.execute({"op": "discard", "snap": 0}) == ("ok",)
    # The restriction lifts with the snapshot.
    assert executor.execute({"op": "munmap", "proc": 0, "region": 0,
                             "lo": 0, "hi": 2}) == ("ok",)
