"""AND conjunctions in the SQL layer and compound where clauses."""

import pytest

from repro import Machine
from repro.apps import Column, MiniDB, MiniDBError, SQLParseError, execute_sql
from repro.apps.sql import Parser, tokenize


@pytest.fixture
def db(machine):
    p = machine.spawn_process("andproc")
    database = MiniDB(p, heap_mb=16)
    database.create_table("t", [
        Column("id", "int"),
        Column("grp", "int", indexed=True),
        Column("v", "int"),
    ], primary_key="id")
    for i in range(30):
        database.insert("t", {"id": i, "grp": i % 3, "v": i * 10})
    return database


class TestParsing:
    def parse(self, text):
        return Parser(tokenize(text)).parse()

    def test_single_condition_unchanged(self):
        stmt = self.parse("SELECT * FROM t WHERE a = 1")
        assert stmt["where"] == ("a", "=", 1)

    def test_two_conditions(self):
        stmt = self.parse("SELECT * FROM t WHERE a = 1 AND b > 2")
        assert stmt["where"] == ("and", [("a", "=", 1), ("b", ">", 2)])

    def test_three_conditions(self):
        stmt = self.parse("DELETE FROM t WHERE a = 1 AND b > 2 AND c != 'x'")
        assert len(stmt["where"][1]) == 3

    def test_dangling_and_rejected(self):
        with pytest.raises(SQLParseError):
            self.parse("SELECT * FROM t WHERE a = 1 AND")

    def test_and_without_where_rejected(self):
        with pytest.raises(SQLParseError):
            self.parse("SELECT * FROM t AND a = 1")


class TestExecution:
    def test_conjunction_filters(self, db):
        rows = execute_sql(db, "SELECT * FROM t WHERE grp = 1 AND v > 100")
        assert {r["id"] for r in rows} == {13, 16, 19, 22, 25, 28}

    def test_pk_condition_drives_probe(self, db, machine):
        """With a pk condition anywhere in the conjunction, the executor
        probes instead of scanning."""
        t0 = machine.now_ns
        rows = execute_sql(db, "SELECT * FROM t WHERE v > 0 AND id = 7")
        probe_cost = machine.now_ns - t0
        assert rows[0]["id"] == 7
        t0 = machine.now_ns
        execute_sql(db, "SELECT * FROM t WHERE v = 70")
        scan_cost = machine.now_ns - t0
        assert probe_cost < scan_cost

    def test_contradictory_conditions(self, db):
        assert execute_sql(db, "SELECT * FROM t WHERE id = 3 AND id = 4") == []

    def test_update_with_conjunction(self, db):
        n = execute_sql(db, "UPDATE t SET v = 0 WHERE grp = 2 AND v < 100")
        assert n == 3  # ids 2, 5, 8 (grp == 2 with v = 10*id < 100)
        rows = execute_sql(db, "SELECT * FROM t WHERE grp = 2 AND v = 0")
        assert len(rows) == n

    def test_delete_with_conjunction(self, db):
        before = execute_sql(db, "SELECT COUNT(*) FROM t")
        n = execute_sql(db, "DELETE FROM t WHERE grp = 0 AND v > 200")
        assert execute_sql(db, "SELECT COUNT(*) FROM t") == before - n
        assert execute_sql(db, "SELECT * FROM t WHERE grp = 0 AND v > 200") == []

    def test_unknown_column_in_conjunction(self, db):
        with pytest.raises(MiniDBError, match="no such column"):
            execute_sql(db, "SELECT * FROM t WHERE grp = 1 AND ghost = 2")
