"""Unit tests for the CFG lowering and the two dataflow runners.

A tiny trace domain records, per path state, the label of every node it
flowed through — so each test can assert exactly which paths reach which
exit, including exception edges, ``finally`` duplication, and the
zero-or-one-iteration loop bound.
"""

import ast

from repro.sancheck.cfg import build_cfg
from repro.sancheck.engine import (
    STATE_BUDGET,
    run_lattice,
    run_paths,
)


def cfg_of(source):
    tree = ast.parse(source)
    func = next(n for n in tree.body if isinstance(n, ast.FunctionDef))
    return build_cfg(func)


def label(node):
    """First Name/attribute identifier inside ``node`` (or '' if none)."""
    if node is None:
        return ""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            return sub.id
    return ""


class TraceDomain:
    """Path states are tuples of labels; calls named ``boom`` fork an
    exception state in addition to falling through."""

    def initial(self):
        return ()

    def on_stmt(self, node, state):
        name = label(node)
        fell = state + (name,) if name else state
        raises = []
        if node is not None and any(
                isinstance(s, ast.Call) and label(s.func) == "boom"
                for s in ast.walk(node)):
            raises.append(fell + ("<exc>",))
        return [fell], raises

    def on_branch(self, test, state, memo):
        name = label(test)
        return ([state + (f"{name}=T",)], [state + (f"{name}=F",)], [])

    def on_catch(self, handler, state):
        return state + ("<catch>",)

    def on_raise(self, stmt, state):
        return state + ("<raise>",)

    def signature(self, state):
        return state

    def copy(self, state):
        return state


def paths(source):
    exits, overflowed = run_paths(cfg_of(source), TraceDomain())
    assert not overflowed
    return {outcome: sorted(states) for outcome, states in exits.items()}


class TestRunPaths:
    def test_straight_line_is_one_fall_path(self):
        got = paths("def f():\n    a\n    b\n")
        assert got["fall"] == [("a", "b")]
        assert got["return"] == [] and got["raise"] == []

    def test_if_forks_both_arms(self):
        got = paths("def f():\n"
                    "    if c:\n        a\n"
                    "    else:\n        b\n"
                    "    d\n")
        assert got["fall"] == [("c=F", "b", "d"), ("c=T", "a", "d")]

    def test_return_routes_to_the_return_exit(self):
        got = paths("def f():\n"
                    "    if c:\n        return a\n"
                    "    b\n")
        assert got["return"] == [("c=T", "a")]
        assert got["fall"] == [("c=F", "b")]

    def test_explicit_raise_reaches_the_raise_exit(self):
        got = paths("def f():\n    a\n    raise Err\n")
        assert got["raise"] == [("a", "<raise>")]
        assert got["fall"] == []

    def test_exception_edge_enters_the_handler(self):
        got = paths("def f():\n"
                    "    try:\n        boom()\n"
                    "    except Err:\n        h\n"
                    "    d\n")
        # The call both falls through (no exception) and forks a raising
        # state into the handler.
        assert got["fall"] == [("boom", "<exc>", "<catch>", "h", "d"),
                               ("boom", "d")]

    def test_finally_runs_on_fall_and_raise_continuations(self):
        got = paths("def f():\n"
                    "    try:\n        boom()\n"
                    "    finally:\n        fin\n")
        assert got["fall"] == [("boom", "fin")]
        assert got["raise"] == [("boom", "<exc>", "fin")]

    def test_finally_runs_on_return_continuation(self):
        got = paths("def f():\n"
                    "    try:\n        return a\n"
                    "    finally:\n        fin\n")
        assert got["return"] == [("a", "fin")]

    def test_loop_runs_zero_or_one_iterations(self):
        got = paths("def f():\n"
                    "    while c:\n        body\n"
                    "    d\n")
        assert got["fall"] == [("c=F", "d"), ("c=T", "body", "d")]

    def test_back_edge_does_not_reevaluate_the_head(self):
        # The one-iteration path exits directly on the back edge: no
        # second ``c=T``/``c=F`` decision, so raise forks seeded at the
        # loop top can't be double-counted against first-iteration state.
        got = paths("def f():\n"
                    "    while c:\n        body\n")
        one_iter = next(p for p in got["fall"] if "body" in p)
        assert one_iter.count("c=T") == 1
        assert "c=F" not in one_iter

    def test_continue_takes_the_back_edge(self):
        got = paths("def f():\n"
                    "    for i in xs:\n"
                    "        if c:\n            continue\n"
                    "        body\n"
                    "    d\n")
        assert ("xs=T", "c=T", "d") in got["fall"]       # continue, exit
        assert ("xs=T", "c=F", "body", "d") in got["fall"]

    def test_break_exits_past_the_else(self):
        got = paths("def f():\n"
                    "    while c:\n"
                    "        break\n"
                    "    d\n")
        assert ("c=T", "d") in got["fall"]

    def test_state_budget_overflow_is_reported(self):
        # 2^11 path states at the join exceed STATE_BUDGET=1024; nine
        # diamonds (512) stay under it.
        def diamonds(n):
            body = "".join(f"    if c{i}:\n        a{i}\n" for i in range(n))
            return f"def f():\n{body}    tail\n"

        assert STATE_BUDGET == 1024
        _, overflowed = run_paths(cfg_of(diamonds(11)), TraceDomain())
        assert overflowed
        _, overflowed = run_paths(cfg_of(diamonds(9)), TraceDomain())
        assert not overflowed


class ChargedDomain:
    """Must-analysis: True iff every normal path so far has charged."""

    def initial(self):
        return False

    def join(self, a, b):
        return a and b

    def transfer(self, node, value):
        if node.ast is not None and any(
                isinstance(s, ast.Name) and s.id == "charge"
                for s in ast.walk(node.ast)):
            return True
        return value


class TestRunLattice:
    def test_both_arms_charging_is_must(self):
        exit_values = run_lattice(cfg_of(
            "def f():\n"
            "    if c:\n        charge()\n"
            "    else:\n        charge()\n"), ChargedDomain())
        assert exit_values["fall"] is True

    def test_one_uncharged_arm_breaks_must(self):
        exit_values = run_lattice(cfg_of(
            "def f():\n"
            "    if c:\n        charge()\n"
            "    else:\n        skip()\n"), ChargedDomain())
        assert exit_values["fall"] is False

    def test_raising_paths_are_not_normal_paths(self):
        # The uncharged arm raises, so the only *normal* exit charged.
        exit_values = run_lattice(cfg_of(
            "def f():\n"
            "    if c:\n        raise Err\n"
            "    charge()\n"), ChargedDomain())
        assert exit_values["fall"] is True
        assert "raise" not in exit_values

    def test_loop_body_charge_is_not_must(self):
        # The zero-iteration path skips the body: fixpoint joins it away.
        exit_values = run_lattice(cfg_of(
            "def f():\n"
            "    while c:\n        charge()\n"), ChargedDomain())
        assert exit_values["fall"] is False

    def test_charge_before_loop_survives_the_fixpoint(self):
        exit_values = run_lattice(cfg_of(
            "def f():\n"
            "    charge()\n"
            "    while c:\n        spin()\n"), ChargedDomain())
        assert exit_values["fall"] is True
