"""Property test: random schedules of {fork, odfork, child write-fault,
kswapd reclaim} racing over a shared PTE table.

Hypothesis drives the scheduling policy's seed; every generated schedule
must leave the kernel in a fully auditable state — lock quiescence, page
and table refcounts, swap_map, rmap, LRU membership, sharer registry —
and satisfy the schedule-independent semantic invariants of the race
suite (no data corruption, COW isolation in both directions).
"""

from __future__ import annotations

from hypothesis import given, settings
import hypothesis.strategies as st

from repro.smp.explore import check_race_suite, make_race_suite
from repro.smp.sched import RandomPolicy
from repro.verify.audit import audit_machine


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_random_schedule_leaves_kernel_consistent(seed):
    sched = make_race_suite()
    sched.run(policy=RandomPolicy(seed))
    sched.assert_quiescent()
    check_race_suite(sched)
    audit_machine(sched.machine)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       n_cpus=st.integers(min_value=1, max_value=4))
def test_schedule_is_deterministic_per_seed(seed, n_cpus):
    """Same seed + same scenario => identical trace and virtual time."""
    runs = []
    for _ in range(2):
        sched = make_race_suite(smp=n_cpus)
        policy = RandomPolicy(seed)
        sched.run(policy=policy)
        sched.assert_quiescent()
        runs.append((tuple(policy.trace), sched.machine.clock.now_ns,
                     sched.lock_wait_ns))
    assert runs[0] == runs[1]
