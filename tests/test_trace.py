"""The ktrace subsystem: rings, histograms, tracer, export, metrics.

Covers the ring-buffer overwrite semantics, log2 bucketing edges, the
disabled-path guarantee (no emit site reaches ``tracepoint()`` while
tracing is off), per-CPU attribution under the SMP scheduler, the golden
Chrome-trace export, the unified ``machine.stats()`` snapshot, the
bench-compare perf gate, and the traced-vs-plain oracle audit.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import GIB, MIB, Machine
from repro.bench import compare
from repro.trace import points
from repro.trace.hist import Histogram, _bucket, _bucket_bounds, build_histograms, report
from repro.trace.metrics import MetricsRegistry
from repro.trace.registry import EVENTS, KIND_INSTANT, KIND_SPAN, spec_for
from repro.trace.ring import RingBuffer
from repro.trace.tracer import TraceEvent, Tracer, recording
from repro.trace.export import to_chrome_trace, write_chrome_trace

GOLDEN = Path(__file__).parent / "fixtures" / "trace" / "golden_chrome.json"


@pytest.fixture(autouse=True)
def _detached():
    """Every test starts and ends with no tracer attached."""
    points.detach()
    yield
    points.detach()


# --------------------------------------------------------------------- #
# Ring buffer


class TestRingBuffer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RingBuffer(0)

    def test_fifo_below_capacity(self):
        ring = RingBuffer(4)
        for i in range(3):
            ring.push(i)
        assert list(ring) == [0, 1, 2]
        assert len(ring) == 3
        assert ring.dropped == 0

    def test_overwrites_oldest_and_counts_drops(self):
        ring = RingBuffer(3)
        for i in range(5):
            ring.push(i)
        assert list(ring) == [2, 3, 4]
        assert ring.dropped == 2

    def test_drain_empties_but_keeps_drop_counter(self):
        ring = RingBuffer(2)
        for i in range(3):
            ring.push(i)
        assert ring.drain() == [1, 2]
        assert len(ring) == 0
        assert ring.dropped == 1
        ring.push(9)
        assert list(ring) == [9]

    def test_clear_resets_drop_counter(self):
        ring = RingBuffer(1)
        ring.push(1)
        ring.push(2)
        ring.clear()
        assert ring.dropped == 0
        assert len(ring) == 0

    def test_wraps_many_times(self):
        ring = RingBuffer(4)
        for i in range(100):
            ring.push(i)
        assert list(ring) == [96, 97, 98, 99]
        assert ring.dropped == 96


# --------------------------------------------------------------------- #
# Histograms


class TestBucketing:
    @pytest.mark.parametrize("ns,bucket", [
        (0, 0), (1, 1), (2, 2), (3, 2), (4, 3), (7, 3), (8, 4),
        (1023, 10), (1024, 11), (1 << 20, 21),
    ])
    def test_bucket_index(self, ns, bucket):
        assert _bucket(ns) == bucket

    def test_bounds_are_half_open_powers_of_two(self):
        assert _bucket_bounds(0) == (0, 1)
        assert _bucket_bounds(1) == (1, 2)
        assert _bucket_bounds(11) == (1024, 2048)

    def test_every_duration_falls_inside_its_bucket(self):
        for ns in (0, 1, 2, 5, 63, 64, 65, 999, 1 << 30):
            lo, hi = _bucket_bounds(_bucket(ns))
            assert lo <= ns < hi

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Histogram("x").add(-1)

    def test_stats_and_rows(self):
        hist = Histogram("fault")
        for ns in (0, 1, 3, 1000):
            hist.add(ns)
        assert hist.count == 4
        assert hist.min_ns == 0
        assert hist.max_ns == 1000
        assert hist.mean_ns == pytest.approx(251.0)
        assert hist.rows() == [(0, 1, 1), (1, 2, 1), (2, 4, 1),
                               (512, 1024, 1)]
        assert "n=4" in hist.render()


def _event(name, ts, fields, cpu=0, pid=0, seq=0):
    return TraceEvent(ts, cpu, pid, name, fields, seq)


class TestHistogramBuild:
    def test_groups_by_class_and_name(self):
        events = [
            _event("fault.handle", 100, {"dur_ns": 50}),
            _event("fault.handle", 300, {"dur_ns": 70}),
            _event("reclaim.shrink", 900, {"dur_ns": 500}),
            _event("fault.demand_zero", 120, {"pfn": 3}),   # instant: skipped
        ]
        by_class = build_histograms(events, by="class")
        assert set(by_class) == {"fault", "reclaim"}
        assert by_class["fault"].count == 2
        by_name = build_histograms(events, by="name")
        assert set(by_name) == {"fault.handle", "reclaim.shrink"}

    def test_report_empty(self):
        assert report([]) == "(no span events recorded)"


# --------------------------------------------------------------------- #
# Registry and emit API


class TestRegistry:
    def test_names_are_class_dotted(self):
        for name, spec in EVENTS.items():
            assert "." in name
            assert spec.cls == name.split(".", 1)[0]
            assert spec.kind in (KIND_SPAN, KIND_INSTANT)

    def test_spans_declare_dur_field(self):
        for name, spec in EVENTS.items():
            if spec.kind == KIND_SPAN:
                assert "dur_ns" in spec.fields, name

    def test_spec_for_unknown_raises(self):
        with pytest.raises(KeyError):
            spec_for("nope.nothing")


class TestPoints:
    def test_detached_emit_is_a_noop(self):
        assert points.enabled is False
        points.tracepoint("fault.demand_zero", pfn=1)   # must not raise

    def test_undeclared_name_raises_when_attached(self):
        tracer = Tracer()
        points.attach(tracer)
        with pytest.raises(points.UnknownTracepoint):
            points.tracepoint("fault.not_a_thing", x=1)

    def test_attach_detach_flips_flag(self):
        tracer = Tracer()
        points.attach(tracer)
        assert points.enabled is True
        assert points.current() is tracer
        points.detach()
        assert points.enabled is False
        assert points.current() is None


class TestDisabledPath:
    def test_no_emit_site_reaches_tracepoint_when_off(self, monkeypatch):
        """Every instrumentation site guards on ``points.enabled``."""
        def boom(name, **fields):          # pragma: no cover - must not run
            raise AssertionError(f"unguarded tracepoint({name!r}) while off")

        monkeypatch.setattr(points, "tracepoint", boom)
        machine = Machine(phys_mb=256)
        parent = machine.spawn_process("guarded")
        buf = parent.mmap(8 * MIB)
        parent.touch_range(buf, 8 * MIB, write=True)
        child = parent.odfork()
        child.touch(buf, write=True)       # table-COW + page-COW faults
        child.exit()
        parent.wait()
        grandchild = parent.fork()
        grandchild.exit()
        parent.wait()
        parent.exit()
        machine.init_process.wait()


# --------------------------------------------------------------------- #
# Tracer + machine recording


class TestRecording:
    def test_fork_workload_emits_ordered_typed_events(self):
        machine = Machine(phys_mb=256)
        parent = machine.spawn_process("rec")
        buf = parent.mmap(4 * MIB)
        parent.touch_range(buf, 4 * MIB, write=True)
        with recording(machine) as tracer:
            child = parent.odfork()
            child.touch(buf, write=True)
            child.exit()
            parent.wait()
            events = tracer.drain()
        assert points.enabled is False     # restored on exit
        names = {e.name for e in events}
        assert "fork.invoke" in names
        assert "odfork.share_done" in names
        assert "fault.handle" in names
        # drained timeline is ordered and every name is declared
        assert all(a.ts_ns <= b.ts_ns for a, b in zip(events, events[1:]))
        assert all(e.name in EVENTS for e in events)
        invoke = next(e for e in events if e.name == "fork.invoke")
        assert invoke.dur_ns > 0
        assert invoke.fields["odf"] is True

    def test_counters_track_emissions(self):
        machine = Machine(phys_mb=128)
        parent = machine.spawn_process("c")
        with recording(machine) as tracer:
            buf = parent.mmap(1 * MIB)
            for i in range(16):
                parent.touch(buf + i * 4096, write=True)
            counters = tracer.counters()
        assert counters["emitted"] == tracer.emitted > 0
        assert counters["dropped"] == 0
        assert counters["count.fault.handle"] == tracer.by_name["fault.handle"]

    def test_ring_wrap_drops_oldest_not_newest(self):
        machine = Machine(phys_mb=128)
        parent = machine.spawn_process("wrap")
        with recording(machine, ring_capacity=8) as tracer:
            buf = parent.mmap(1 * MIB)
            for i in range(16):
                parent.touch(buf + i * 4096, write=True)
            assert tracer.dropped > 0
            events = tracer.drain()
        assert len(events) == 8
        # the survivors are the most recent emissions
        assert events[-1].seq == tracer.emitted - 1

    def test_recording_restores_previous_tracer(self):
        machine = Machine(phys_mb=64)
        outer = Tracer()
        points.attach(outer)
        with recording(machine):
            assert points.current() is not outer
        assert points.current() is outer

    def test_machine_built_under_tracer_binds(self):
        tracer = Tracer()
        points.attach(tracer)
        machine = Machine(phys_mb=64)
        assert machine in tracer.machines


class TestPerCpuUnderSmp:
    def test_lock_events_land_in_their_vcpu_ring(self):
        from repro.smp import Acquire, MODE_WRITE, Preempt, Release

        machine = Machine(phys_mb=128, smp=2)
        sched = machine.smp

        def flow(tag):
            lock = sched.mmap_lock("mm")
            yield Acquire(lock, MODE_WRITE)
            yield Preempt(tag)
            yield Release(lock)

        with recording(machine) as tracer:
            sched.spawn("a", flow("a"))
            sched.spawn("b", flow("b"))
            sched.run()
            cpus = sorted(cpu for cpu in (0, 1)
                          if tracer.ring_for(cpu) is not None)
            assert len(cpus) == 2, "flows should emit from both vCPUs"
            for cpu in cpus:
                ring_events = list(tracer.ring_for(cpu))
                assert ring_events
                assert all(e.cpu == cpu for e in ring_events)
            events = tracer.drain()
        acquires = [e for e in events if e.name == "lock.acquire"]
        assert {e.fields["cpu"] for e in acquires} == {0, 1}
        assert any(e.fields["contended"] for e in acquires)
        waits = [e for e in events if e.name == "lock.wait"]
        assert waits and all(e.dur_ns >= 0 for e in waits)


# --------------------------------------------------------------------- #
# Chrome-trace export


def _golden_events():
    return [
        _event("fault.handle", 5000,
               {"dur_ns": 3000, "vaddr": 4096, "write": True,
                "huge_vma": False}, cpu=0, seq=0),
        _event("fault.demand_zero", 4000, {"pfn": 7}, cpu=0, seq=1),
        _event("lock.wait", 9000, {"dur_ns": 1000, "kind": "mmap", "cpu": 1},
               cpu=1, seq=2),
    ]


class TestChromeExport:
    def test_matches_golden_file(self):
        doc = to_chrome_trace(_golden_events(), label="golden")
        assert doc == json.loads(GOLDEN.read_text())

    def test_span_slice_starts_at_ts_minus_dur(self):
        doc = to_chrome_trace(_golden_events())
        handle = next(e for e in doc["traceEvents"]
                      if e.get("name") == "fault.handle")
        assert handle["ph"] == "X"
        assert handle["ts"] == 2.0      # (5000 - 3000) / 1000
        assert handle["dur"] == 3.0
        assert "dur_ns" not in handle["args"]

    def test_write_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        n = write_chrome_trace(_golden_events(), path, label="golden")
        assert n == 4                   # 3 events + 1 process_name meta row
        assert json.loads(path.read_text()) == json.loads(GOLDEN.read_text())


# --------------------------------------------------------------------- #
# Metrics registry + machine.stats()


class TestMetricsRegistry:
    def test_snapshot_flattens_namespaced(self):
        reg = MetricsRegistry()
        reg.register("a", lambda: {"x": 1, "y": 2})
        reg.register("b", lambda: {"x": 10})
        assert reg.snapshot() == {"a.x": 1, "a.y": 2, "b.x": 10}
        assert reg.collect("b") == {"x": 10}
        assert reg.namespaces == ["a", "b"]

    def test_register_validates(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.register("a.b", dict)
        with pytest.raises(TypeError):
            reg.register("a", 42)

    def test_unregister(self):
        reg = MetricsRegistry()
        reg.register("a", lambda: {"x": 1})
        reg.unregister("a")
        assert reg.snapshot() == {}


class TestMachineStats:
    def test_attribute_proxy_still_works(self):
        machine = Machine(phys_mb=128)
        parent = machine.spawn_process("s")
        buf = parent.mmap(1 * MIB)
        parent.touch_range(buf, 1 * MIB, write=True)
        assert machine.stats.page_faults == 256
        machine.stats.page_faults = 0          # tests reset counters this way
        assert machine.kernel.stats.page_faults == 0

    def test_calling_stats_returns_unified_snapshot(self):
        machine = Machine(phys_mb=128)
        parent = machine.spawn_process("s")
        buf = parent.mmap(1 * MIB)
        for i in range(16):
            parent.touch(buf + i * 4096, write=True)
        snap = machine.stats()
        assert snap["vm.page_faults"] == 16
        assert snap["mem.total_frames"] == machine.allocator.n_frames
        assert snap["tlb.misses"] > 0
        assert "lock.waits" not in snap        # no SMP on this machine

    def test_smp_machine_exposes_lock_namespace(self):
        machine = Machine(phys_mb=128, smp=2)
        assert machine.stats()["lock.waits"] == 0

    def test_vmstat_is_the_vm_namespace(self):
        machine = Machine(phys_mb=128)
        assert machine.vmstat() == machine.metrics.collect("vm")

    def test_trace_namespace_live_only_while_bound(self):
        machine = Machine(phys_mb=128)
        assert "trace.emitted" not in machine.stats()
        parent = machine.spawn_process("t")
        with recording(machine):
            buf = parent.mmap(1 * MIB)
            parent.touch_range(buf, 1 * MIB, write=True)
            snap = machine.stats()
            assert snap["trace.emitted"] > 0
        assert "trace.emitted" not in machine.stats()


# --------------------------------------------------------------------- #
# Bench-compare perf gate


def _payload(fork_ms=7.0, odfork_ms=0.1, speedup=70.0, fault_ms=0.003,
             huge_ms=0.2, odf_fault_ms=0.012, p99=960.0,
             fleet_p99=0.12, numa_speedup=30.0, odf_100gb_ms=1.8,
             wall_s=12.0, faas_p99=88.0, faas_density=490.0):
    return [
        {"exp_id": "fig7", "title": "fig7",
         "headers": ["size_gb", "fork_ms", "fork_huge_ms", "odfork_ms",
                     "speedup_x", "paper_fork_ms", "paper_odf_ms"],
         "rows": [[0.5, 3.0, 2.0, 0.05, 60.0, 0, 0],
                  [1, fork_ms, 4.0, odfork_ms, speedup, 0, 0],
                  [100, "", "", odf_100gb_ms, "", "", ""]],
         "notes": ""},
        {"exp_id": "bench", "title": "harness wall-clock",
         "headers": ["metric", "seconds"],
         "rows": [["fig7_wall_s", wall_s * 0.7],
                  ["smoke_wall_s", wall_s]],
         "notes": ""},
        {"exp_id": "table1", "title": "table1",
         "headers": ["type", "measured_ms", "paper_ms"],
         "rows": [["Fork", fault_ms, 0],
                  ["Fork w/ huge pages", huge_ms, 0],
                  ["On-demand-fork", odf_fault_ms, 0]],
         "notes": ""},
        {"exp_id": "ext-reclaim", "title": "reclaim",
         "headers": ["heap/RAM", "p50 (us)", "p99 (us)"],
         "rows": [["0.5x", 400.0, 410.0], ["2.0x", 800.0, p99]],
         "notes": ""},
        {"exp_id": "fleet", "title": "fleet",
         "headers": ["config", "strategy", "flavor", "p50_ms", "p99_ms",
                     "p999_ms"],
         "rows": [["simultaneous/fork", "simultaneous", "fork",
                   0.02, 1.7, 1.8],
                  ["staggered/odfork", "staggered", "odfork",
                   0.02, fleet_p99, 0.14]],
         "notes": ""},
        {"exp_id": "faas", "title": "faas",
         "headers": ["flavor", "cold_p50_us", "cold_start_p99_us",
                     "e2e_p99_ms", "density_fn_per_gb"],
         "rows": [["fork", 1580.0, 1750.0, 1510.0, 110.0],
                  ["odfork", 86.0, faas_p99, 80.0, faas_density]],
         "notes": ""},
        {"exp_id": "fig7-numa", "title": "fig7-numa",
         "headers": ["mode", "fork_ms", "odfork_ms", "odfork_speedup_x",
                     "local_ns_pp", "remote_ns_pp", "remote_penalty_x"],
         "rows": [["flat", 1.8, 0.08, 21.0, 220.0, 220.0, 1.0],
                  ["numa-shared", 1.9, 0.09, 22.0, 221.0, 701.0, 3.2],
                  ["numa-replicated", 2.6, 0.09, numa_speedup,
                   221.0, 341.0, 1.5]],
         "notes": ""},
    ]


class TestCompareGate:
    def test_identical_payloads_pass(self):
        base = compare.extract_all(_payload())
        deltas, regressions = compare.compare_payloads(_payload(), base)
        assert regressions == []
        assert len(deltas) == len(compare.TRACKED)
        assert all(d.ratio == 1.0 for d in deltas)

    def test_injected_2x_slowdown_fails_the_gate(self):
        base = compare.extract_all(_payload())
        deltas, regressions = compare.compare_payloads(
            _payload(fork_ms=14.0), base)
        assert len(regressions) == 1
        assert "fig7.fork_ms@1gb" in regressions[0]
        assert "2.00x" in regressions[0]

    def test_wall_clock_and_100gb_point_gate(self):
        # The two fast-path sentinels: host wall-clock and the 100 GB
        # odfork showcase row both fail the gate when they blow up.
        base = compare.extract_all(_payload())
        _, regressions = compare.compare_payloads(
            _payload(wall_s=30.0), base)
        assert any("bench.smoke_wall_s" in r for r in regressions)
        _, regressions = compare.compare_payloads(
            _payload(odf_100gb_ms=9.0), base)
        assert any("fig7.odfork_ms@100gb" in r for r in regressions)

    def test_speedup_is_higher_is_better(self):
        base = compare.extract_all(_payload())
        # speedup halving is a regression; speedup doubling is not
        _, regressions = compare.compare_payloads(
            _payload(speedup=35.0), base)
        assert any("speedup" in r for r in regressions)
        _, regressions = compare.compare_payloads(
            _payload(speedup=140.0), base)
        assert regressions == []

    def test_within_threshold_noise_passes(self):
        base = compare.extract_all(_payload())
        _, regressions = compare.compare_payloads(
            _payload(fork_ms=7.0 * 1.2, p99=960.0 * 0.9), base)
        assert regressions == []

    def test_missing_table_is_a_regression(self):
        base = compare.extract_all(_payload())
        _, regressions = compare.compare_payloads(_payload()[:2], base)
        assert any("ext-reclaim" in r for r in regressions)

    def test_missing_baseline_metric_is_a_regression(self):
        base = compare.extract_all(_payload())
        del base["fig7.fork_ms@1gb"]
        _, regressions = compare.compare_payloads(_payload(), base)
        assert any("not in baseline" in r for r in regressions)

    def test_cli_seed_then_pass_then_fail(self, tmp_path, capsys):
        current = tmp_path / "current.json"
        baseline = tmp_path / "baseline.json"
        current.write_text(json.dumps(_payload()))
        assert compare.main([str(current), str(baseline),
                             "--write-baseline"]) == 0
        assert compare.main([str(current), str(baseline)]) == 0
        assert (f"all {len(compare.TRACKED)} tracked metrics"
                in capsys.readouterr().out)
        current.write_text(json.dumps(_payload(odfork_ms=0.3)))
        assert compare.main([str(current), str(baseline)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_faas_density_is_higher_is_better(self):
        base = compare.extract_all(_payload())
        # Density halving (fewer functions per GB) is a regression...
        _, regressions = compare.compare_payloads(
            _payload(faas_density=245.0), base)
        assert any("faas.density_fn_per_gb" in r for r in regressions)
        # ...density doubling is an improvement, not a failure.
        _, regressions = compare.compare_payloads(
            _payload(faas_density=980.0), base)
        assert regressions == []

    def test_faas_cold_start_regression_fails_the_gate(self):
        base = compare.extract_all(_payload())
        _, regressions = compare.compare_payloads(
            _payload(faas_p99=200.0), base)
        assert any("faas.cold_start_p99_us" in r for r in regressions)

    def test_step_summary_written_on_pass_and_fail(self, tmp_path,
                                                   monkeypatch):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        base = compare.extract_all(_payload())
        deltas, regressions = compare.compare_payloads(_payload(), base)
        assert compare.write_step_summary(deltas, regressions)
        text = summary.read_text()
        assert "| `faas.cold_start_p99_us` |" in text
        assert "within the 25% gate" in text
        # A failing gate appends the regression verdict, old and new.
        deltas, regressions = compare.compare_payloads(
            _payload(faas_p99=200.0), base)
        assert compare.write_step_summary(deltas, regressions)
        text = summary.read_text()
        assert ":x: regressed" in text
        assert "failed the 25% gate" in text

    def test_step_summary_noop_outside_actions(self, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        assert not compare.write_step_summary([], [])

    def test_committed_baseline_tracks_every_metric(self):
        baseline = json.loads(
            (Path(__file__).parent.parent / "benchmarks" /
             "baseline.json").read_text())
        assert set(baseline["metrics"]) == {m.key for m in compare.TRACKED}
        assert all(v > 0 for v in baseline["metrics"].values())


# --------------------------------------------------------------------- #
# CLI + oracle audit


class TestTraceCli:
    def test_list_prints_registry(self, capsys):
        from repro.trace.__main__ import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fork.invoke" in out
        assert "fault.handle" in out

    def test_record_forkbench_exports_valid_chrome_trace(self, tmp_path,
                                                         capsys):
        from repro.trace.__main__ import main
        out_json = tmp_path / "trace.json"
        assert main(["record", "--workload", "forkbench",
                     "--variant", "odfork", "--size-gb", "0.0625",
                     "--repeats", "1", "--export", str(out_json)]) == 0
        printed = capsys.readouterr().out
        assert "events=" in printed
        assert "mean=" in printed          # a histogram rendered
        doc = json.loads(out_json.read_text())
        assert doc["traceEvents"]
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "X" in phases and "M" in phases


class TestOracleTraceAudit:
    def test_tracing_is_side_effect_free_on_random_traces(self):
        from repro.verify.oracle import check_trace_traced
        from repro.verify.trace import generate_trace
        for seed in (0, 1):
            trace = generate_trace(seed, n_ops=12)
            assert check_trace_traced(trace) == []
