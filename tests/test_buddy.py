"""Buddy allocator: splitting, coalescing, bulk paths, invariants."""

import numpy as np
import pytest

from repro.errors import InvalidArgumentError, KernelBug
from repro.mem import MAX_ORDER, BuddyAllocator, OutOfFramesError


class TestSingleBlocks:
    def test_alloc_free_roundtrip(self):
        buddy = BuddyAllocator(1 << 12)
        before = buddy.free_frames
        pfn = buddy.alloc(0)
        assert buddy.free_frames == before - 1
        buddy.free(pfn)
        assert buddy.free_frames == before
        buddy.check_consistency()

    def test_alloc_aligned_blocks(self):
        buddy = BuddyAllocator(1 << 12)
        for order in range(MAX_ORDER + 1):
            pfn = buddy.alloc(order)
            assert pfn % (1 << order) == 0, f"order {order} misaligned"
        buddy.check_consistency()

    def test_low_frames_allocated_first(self):
        buddy = BuddyAllocator(1 << 12)
        assert buddy.alloc(0) == 0
        assert buddy.alloc(0) == 1

    def test_invalid_order(self):
        buddy = BuddyAllocator(64)
        with pytest.raises(InvalidArgumentError):
            buddy.alloc(MAX_ORDER + 1)
        with pytest.raises(InvalidArgumentError):
            buddy.alloc(-1)

    def test_double_free_detected(self):
        buddy = BuddyAllocator(64)
        pfn = buddy.alloc(0)
        buddy.free(pfn)
        with pytest.raises(KernelBug):
            buddy.free(pfn)

    def test_free_with_wrong_order_detected(self):
        buddy = BuddyAllocator(64)
        pfn = buddy.alloc(2)
        with pytest.raises(KernelBug):
            buddy.free(pfn, order=1)

    def test_coalescing_restores_large_blocks(self):
        buddy = BuddyAllocator(1 << MAX_ORDER)
        pfns = [buddy.alloc(0) for _ in range(1 << MAX_ORDER)]
        with pytest.raises(OutOfFramesError):
            buddy.alloc(0)
        for pfn in pfns:
            buddy.free(pfn)
        # Everything coalesced back: a max-order block must be available.
        assert buddy.alloc(MAX_ORDER) == 0
        buddy.check_consistency()

    def test_exhaustion_raises(self):
        buddy = BuddyAllocator(8)
        buddy.alloc(3)
        with pytest.raises(OutOfFramesError):
            buddy.alloc(0)

    def test_huge_and_small_interleaved(self):
        buddy = BuddyAllocator(1 << 12)
        small = [buddy.alloc(0) for _ in range(10)]
        huge = buddy.alloc(9)
        assert huge % 512 == 0
        spans = set(range(huge, huge + 512))
        assert not spans.intersection(small)
        buddy.free(huge)
        for pfn in small:
            buddy.free(pfn)
        buddy.check_consistency()


class TestBulkPaths:
    def test_alloc_bulk_unique_and_counted(self):
        buddy = BuddyAllocator(1 << 12)
        pfns = buddy.alloc_bulk(1000)
        assert len(pfns) == 1000
        assert len(np.unique(pfns)) == 1000
        assert buddy.used_frames == 1000
        buddy.check_consistency()

    def test_alloc_bulk_zero(self):
        buddy = BuddyAllocator(64)
        assert len(buddy.alloc_bulk(0)) == 0

    def test_alloc_bulk_exhaustion(self):
        buddy = BuddyAllocator(64)
        with pytest.raises(OutOfFramesError):
            buddy.alloc_bulk(65)

    def test_free_bulk_roundtrip(self):
        buddy = BuddyAllocator(1 << 12)
        pfns = buddy.alloc_bulk(3000)
        buddy.free_bulk(pfns)
        assert buddy.free_frames == 1 << 12
        buddy.check_consistency()
        # Large allocations possible again after re-forming blocks.
        assert buddy.alloc(MAX_ORDER) is not None

    def test_free_bulk_partial_then_single_free(self):
        buddy = BuddyAllocator(1 << 10)
        pfns = buddy.alloc_bulk(100)
        buddy.free_bulk(pfns[:50])
        for pfn in pfns[50:].tolist():
            buddy.free(pfn)
        assert buddy.free_frames == 1 << 10
        buddy.check_consistency()

    def test_free_bulk_detects_bad_frames(self):
        buddy = BuddyAllocator(256)
        pfns = buddy.alloc_bulk(10)
        buddy.free_bulk(pfns)
        with pytest.raises(KernelBug):
            buddy.free_bulk(pfns)  # double bulk free

    def test_bulk_then_compound_alloc(self):
        buddy = BuddyAllocator(1 << 12)
        pfns = buddy.alloc_bulk(2048)
        buddy.free_bulk(pfns)
        head = buddy.alloc(9)  # 2 MiB compound page
        assert head % 512 == 0
        buddy.check_consistency()

    def test_mixed_stress(self):
        rng = np.random.RandomState(0)
        buddy = BuddyAllocator(1 << 12)
        live_singles = []
        live_blocks = []
        for _ in range(300):
            action = rng.randint(0, 4)
            if action == 0:
                n = int(rng.randint(1, 64))
                if buddy.free_frames >= n:
                    live_singles.extend(buddy.alloc_bulk(n).tolist())
            elif action == 1 and live_singles:
                take = int(rng.randint(1, len(live_singles) + 1))
                chunk = [live_singles.pop() for _ in range(take)]
                buddy.free_bulk(np.asarray(chunk))
            elif action == 2:
                order = int(rng.randint(0, 5))
                if buddy.free_frames >= (1 << order):
                    try:
                        live_blocks.append((buddy.alloc(order), order))
                    except OutOfFramesError:
                        pass
            elif live_blocks:
                pfn, order = live_blocks.pop()
                buddy.free(pfn, order)
        buddy.check_consistency()
        for pfn, order in live_blocks:
            buddy.free(pfn, order)
        if live_singles:
            buddy.free_bulk(np.asarray(live_singles))
        assert buddy.free_frames == 1 << 12
        buddy.check_consistency()
