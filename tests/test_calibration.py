"""End-to-end calibration: the simulator must land on the paper's numbers.

These tests run the actual mechanisms (not the constants table) and check
the resulting virtual-time measurements against the EuroSys '21 values.
They are the executable form of EXPERIMENTS.md's paper-vs-measured record.
"""

import pytest

from repro import GIB, MIB, Machine
from repro.paging.table import PMD_REGION_SIZE


def filled_process(machine, size, huge=False):
    p = machine.spawn_process("calibrated")
    addr = p.mmap_huge(size) if huge else p.mmap(size)
    p.touch_range(addr, size, write=True)
    return p, addr


class TestForkLatency:
    def test_fork_1gb_matches_paper(self):
        machine = Machine(phys_mb=3072)
        p, _ = filled_process(machine, 1 * GIB)
        p.fork()
        assert p.last_fork_ns / 1e6 == pytest.approx(6.54, rel=0.03)

    def test_odfork_1gb_matches_paper(self):
        machine = Machine(phys_mb=3072)
        p, _ = filled_process(machine, 1 * GIB)
        p.odfork()
        assert p.last_fork_ns / 1e3 == pytest.approx(100, rel=0.05)

    def test_huge_fork_1gb_matches_paper(self):
        machine = Machine(phys_mb=3072)
        p, _ = filled_process(machine, 1 * GIB, huge=True)
        p.fork()
        assert p.last_fork_ns / 1e6 == pytest.approx(0.17, rel=0.05)

    def test_speedup_65x_at_1gb(self):
        machine = Machine(phys_mb=4096)
        p, _ = filled_process(machine, 1 * GIB)
        c = p.fork()
        fork_ns = p.last_fork_ns
        c.exit(); p.wait()
        p.odfork()
        assert fork_ns / p.last_fork_ns == pytest.approx(65, rel=0.08)

    def test_concurrent_fork_1gb(self):
        machine = Machine(phys_mb=3072)
        p, _ = filled_process(machine, 1 * GIB)
        with machine.concurrency(3):
            p.fork()
        assert p.last_fork_ns / 1e6 == pytest.approx(22.4, rel=0.05)

    def test_176mb_exceeds_1ms(self):
        """§2.1: fork latency enters the millisecond range for modest apps."""
        machine = Machine(phys_mb=1024)
        p, _ = filled_process(machine, 176 * MIB)
        p.fork()
        assert p.last_fork_ns > 1_000_000


class TestFaultCosts:
    def test_table1_fork_cow_fault(self):
        machine = Machine(phys_mb=1024)
        p, addr = filled_process(machine, 64 * MIB)
        child = p.fork()
        watch = machine.stopwatch()
        child.touch(addr + 32 * MIB, 1, write=True)
        assert watch.elapsed_us == pytest.approx(2.3, rel=0.25)

    def test_table1_odfork_worst_case(self):
        machine = Machine(phys_mb=1024)
        p, addr = filled_process(machine, 64 * MIB)
        child = p.odfork()
        watch = machine.stopwatch()
        child.touch(addr + 32 * MIB, 1, write=True)
        assert watch.elapsed_us == pytest.approx(12.2, rel=0.1)

    def test_table1_huge_cow_fault(self):
        machine = Machine(phys_mb=1024)
        p, addr = filled_process(machine, 64 * MIB, huge=True)
        child = p.fork()
        watch = machine.stopwatch()
        child.touch(addr + 2 * PMD_REGION_SIZE, 1, write=True)
        assert watch.elapsed_us == pytest.approx(198.4, rel=0.05)

    def test_odfork_second_fault_in_region_is_cheap(self):
        machine = Machine(phys_mb=1024)
        p, addr = filled_process(machine, 64 * MIB)
        child = p.odfork()
        child.touch(addr, 1, write=True)          # pays the table copy
        watch = machine.stopwatch()
        child.touch(addr + 4096, 1, write=True)   # same region: page COW only
        assert watch.elapsed_us < 3.0


class TestScalingShape:
    def test_fork_linear_odfork_flat(self):
        machine = Machine(phys_mb=6144)
        results = {}
        for size_gb in (1, 2, 4):
            p, _ = filled_process(machine, size_gb * GIB)
            c = p.fork()
            fork_ns = p.last_fork_ns
            c.exit(); p.wait()
            c = p.odfork()
            odf_ns = p.last_fork_ns
            c.exit(); p.wait()
            results[size_gb] = (fork_ns, odf_ns)
            p.exit(); machine.init_process.wait()
        # fork quadruples (minus fixed) from 1 to 4 GB; odfork grows far
        # more slowly (per-table, not per-page).
        assert results[4][0] / results[1][0] > 3.0
        assert results[4][1] / results[1][1] < 2.0
        # Speedup grows with size (towards the paper's 270x at 50 GB).
        assert results[4][0] / results[4][1] > results[1][0] / results[1][1]


class TestEmergentContention:
    """The SMP scheduler's emergent contention vs the fitted alpha model.

    The Figure 2 "Concurrent (3x)" point must be reproducible *without*
    the fitted multiplier: three fork tasks interleaved 2 MiB at a time
    on a Machine(smp=3), with the cost model's contention factor driven
    by the live copy-phase count plus real lock waits and IPIs.
    """

    @pytest.fixture(scope="class")
    def latencies(self):
        from repro.workloads.forkbench import (
            concurrent_fork_latencies_smp,
            fork_latency_for_size,
        )
        solo_machine = Machine(phys_mb=3072)
        solo = fork_latency_for_size(solo_machine, 1 * GIB, "fork",
                                     repeats=1)[0]
        alpha_machine = Machine(phys_mb=3072)
        alpha = fork_latency_for_size(alpha_machine, 1 * GIB, "fork",
                                      repeats=1, concurrency=3)[0]
        smp_machine = Machine(phys_mb=6144, smp=3)
        emergent = concurrent_fork_latencies_smp(smp_machine, 1 * GIB,
                                                 n_instances=3)
        return solo, alpha, sum(emergent) / len(emergent)

    def test_emergent_agrees_with_alpha_within_15pct(self, latencies):
        _solo, alpha, emergent = latencies
        assert abs(emergent - alpha) / alpha < 0.15

    def test_emergent_concurrent_matches_paper(self, latencies):
        _solo, _alpha, emergent = latencies
        assert emergent / 1e6 == pytest.approx(22.4, rel=0.05)

    def test_emergent_slowdown_at_least_3x(self, latencies):
        """ISSUE acceptance: the per-fork slowdown of three concurrent
        1 GB forks emerges as >= 3x — from interleaving, not a knob."""
        solo, _alpha, emergent = latencies
        assert emergent / solo >= 3.0
