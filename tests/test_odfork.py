"""On-demand-fork: table sharing, deferred copies, the §3 protocol."""

import pytest

from repro import MIB
from repro.paging import entry_pfn, is_present, is_writable, table_index
from repro.paging.table import LEVEL_PMD
from conftest import make_filled_region


def leaf_info(machine, process, addr):
    """(pmd_table, index, leaf_table, pt_refcount) for an address."""
    pmd_table, index = process.mm.walk_to_pmd(addr)
    leaf_pfn = int(entry_pfn(pmd_table.entries[index]))
    leaf = machine.kernel.resolve_table(leaf_pfn)
    return pmd_table, index, leaf, machine.pages.pt_ref(leaf_pfn)


class TestSharing:
    def test_tables_shared_not_copied(self, proc, machine):
        addr, _ = make_filled_region(proc)
        tables_before = machine.kernel.live_tables
        child = proc.odfork()
        # Only upper levels created for the child: a PGD + PUD + PMD.
        assert machine.kernel.live_tables - tables_before <= 4
        # Parent and child PMD entries point at the same leaf frame.
        p_pmd, p_idx, p_leaf, p_rc = leaf_info(machine, proc, addr)
        c_pmd, c_idx, c_leaf, _ = leaf_info(machine, child, addr)
        assert p_leaf is c_leaf
        assert p_rc == 2

    def test_pmd_write_protected_both_sides(self, proc, machine):
        addr, _ = make_filled_region(proc)
        child = proc.odfork()
        p_pmd, p_idx, _, _ = leaf_info(machine, proc, addr)
        c_pmd, c_idx, _, _ = leaf_info(machine, child, addr)
        assert not is_writable(p_pmd.entries[p_idx])
        assert not is_writable(c_pmd.entries[c_idx])

    def test_leaf_entries_untouched(self, proc, machine):
        """The point of the design: no per-PTE work at fork time."""
        addr, _ = make_filled_region(proc)
        _, _, leaf, _ = leaf_info(machine, proc, addr)
        entries_before = leaf.entries.copy()
        proc.odfork()
        assert (leaf.entries == entries_before).all()

    def test_data_page_refcounts_untouched(self, proc, machine):
        """§3.6: odfork defers page refcounting to the table refcount."""
        addr = proc.mmap(64 * 1024)
        proc.write(addr, b"x")
        leaf = proc.mm.get_pte_table(addr)
        pfn = leaf.child_pfn((addr >> 12) & 511)
        proc.odfork()
        assert machine.pages.get_ref(pfn) == 1

    def test_reads_are_fast_no_faults(self, proc, machine):
        """Figure 6 "fast read": reads through shared tables never fault."""
        addr, _ = make_filled_region(proc)
        child = proc.odfork()
        faults_before = machine.stats.page_faults
        assert child.read(addr, 64) is not None
        assert proc.read(addr + 8192, 64) is not None
        assert machine.stats.page_faults == faults_before

    def test_unlimited_sharers(self, proc, machine):
        addr, _ = make_filled_region(proc)
        children = [proc.odfork() for _ in range(5)]
        _, _, _, rc = leaf_info(machine, proc, addr)
        assert rc == 6
        for child in children:
            assert child.read(addr, 3) == proc.read(addr, 3)


class TestDeferredCopy:
    def test_first_write_copies_table_once(self, proc, machine):
        addr, _ = make_filled_region(proc, size=4 * MIB)
        child = proc.odfork()
        assert machine.stats.table_cow_copies == 0
        child.write(addr, b"w1")
        assert machine.stats.table_cow_copies == 1
        # Subsequent writes within the same 2 MiB region: no more copies.
        child.write(addr + 4096, b"w2")
        child.write(addr + 100 * 4096, b"w3")
        assert machine.stats.table_cow_copies == 1
        # A different 2 MiB region copies its own table.
        child.write(addr + 2 * MIB, b"w4")
        assert machine.stats.table_cow_copies == 2

    def test_copy_decrements_shared_refcount(self, proc, machine):
        addr, _ = make_filled_region(proc)
        _, _, leaf, _ = leaf_info(machine, proc, addr)
        child = proc.odfork()
        assert machine.pages.pt_ref(leaf.pfn) == 2
        child.write(addr, b"x")
        assert machine.pages.pt_ref(leaf.pfn) == 1
        # The child now has its own dedicated table.
        _, _, child_leaf, child_rc = leaf_info(machine, proc.machine and child, addr)
        assert child_leaf is not leaf
        assert child_rc == 1

    def test_sole_owner_flip(self, proc, machine):
        """§3.4: when the refcount returns to one, the survivor flips its
        PMD write bit instead of copying."""
        addr, _ = make_filled_region(proc)
        child = proc.odfork()
        child.write(addr, b"x")          # child copies the table
        copies_before = machine.stats.table_cow_copies
        proc.write(addr, b"y")           # parent is sole owner now
        assert machine.stats.table_cow_copies == copies_before
        assert machine.stats.table_unshares >= 1
        p_pmd, p_idx, _, rc = leaf_info(machine, proc, addr)
        assert rc == 1
        assert is_writable(p_pmd.entries[p_idx])

    def test_write_isolation_full(self, proc):
        addr, probes = make_filled_region(proc)
        child = proc.odfork()
        child.write(addr + probes[1], b"CHILD")
        proc.write(addr + probes[2], b"PARNT")
        assert proc.read(addr + probes[1], 5) != b"CHILD"
        assert child.read(addr + probes[2], 5) != b"PARNT"
        # Unwritten regions still shared and equal.
        assert proc.read(addr + probes[3], 3) == child.read(addr + probes[3], 3)

    def test_read_fault_on_absent_entry_copies_table(self, proc, machine):
        """Installing a PTE is a table write: the kernel must unshare
        first even for a read fault (demand-zero in a shared region)."""
        addr = proc.mmap(4 * MIB)
        proc.write(addr, b"only first page present")
        child = proc.odfork()
        assert machine.stats.table_cow_copies == 0
        child.read(addr + 8192, 1)  # absent page, read access
        assert machine.stats.table_cow_copies == 1

    def test_accessed_bits_preserved_on_copy(self, proc, machine):
        """§3.2: the copy duplicates accessed-bit state."""
        from repro.paging import BIT_ACCESSED
        addr, _ = make_filled_region(proc)
        _, _, leaf, _ = leaf_info(machine, proc, addr)
        index = (addr >> 12) & 511
        assert leaf.entries[index] & BIT_ACCESSED
        child = proc.odfork()
        child.write(addr + 4096, b"trigger copy")
        _, _, child_leaf, _ = leaf_info(machine, child, addr)
        assert child_leaf.entries[index] & BIT_ACCESSED


class TestOdforkCost:
    def test_invocation_near_constant_vs_fork(self, big_machine):
        p = big_machine.spawn_process("odf-cost")
        addr = p.mmap(1024 * MIB)
        p.touch_range(addr, 1024 * MIB, write=True)
        child = p.odfork()
        odf_ns = p.last_fork_ns
        child.exit(); p.wait()
        child = p.fork()
        fork_ns = p.last_fork_ns
        assert fork_ns / odf_ns > 30, "odfork should be >30x faster at 1 GB"

    def test_stats_track_shared_tables(self, proc, machine):
        addr, _ = make_filled_region(proc, size=8 * MIB)
        proc.odfork()
        assert machine.stats.tables_shared == 4  # 8 MiB = 4 leaf tables
