"""Property tests for the SQL layer: robustness and semantic round-trips."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
import hypothesis.strategies as st

from repro import Machine, ReproError
from repro.apps import Column, MiniDB, execute_sql


def fresh_db():
    machine = Machine(phys_mb=128)
    p = machine.spawn_process("sqlprop")
    db = MiniDB(p, heap_mb=16)
    db.create_table("t", [
        Column("id", "int"),
        Column("name", "str", indexed=True),
        Column("v", "int"),
    ], primary_key="id")
    return db


@settings(max_examples=150, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(text=st.text(max_size=120))
def test_arbitrary_text_never_crashes(text):
    """The fuzz contract: any input either executes or raises a
    simulator-level error — never an unhandled Python exception."""
    db = fresh_db()
    db.insert("t", {"id": 1, "name": "a", "v": 10})
    try:
        execute_sql(db, text)
    except ReproError:
        pass


@settings(max_examples=150, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.binary(max_size=80))
def test_arbitrary_bytes_never_crash(data):
    db = fresh_db()
    try:
        execute_sql(db, data.decode("utf-8", errors="replace"))
    except ReproError:
        pass


ids = st.integers(0, 30)
values = st.integers(-1000, 1000)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=st.dictionaries(ids, values, min_size=1, max_size=20),
       probe=ids, threshold=values)
def test_sql_matches_reference_semantics(rows, probe, threshold):
    """Generated INSERT/SELECT/DELETE/UPDATE agree with plain-dict
    reference semantics."""
    db = fresh_db()
    reference = {}
    for key, value in rows.items():
        execute_sql(db, f"INSERT INTO t (id, name, v) "
                        f"VALUES ({key}, 'n{key % 3}', {value})")
        reference[key] = value

    # Point query.
    got = execute_sql(db, f"SELECT * FROM t WHERE id = {probe}")
    assert len(got) == (1 if probe in reference else 0)
    if probe in reference:
        assert got[0]["v"] == reference[probe]

    # Range query.
    got = execute_sql(db, f"SELECT * FROM t WHERE v > {threshold}")
    assert {r["id"] for r in got} == \
        {k for k, v in reference.items() if v > threshold}

    # Conditional update.
    updated = execute_sql(db, f"UPDATE t SET v = 0 WHERE v < {threshold}")
    expected_updates = {k for k, v in reference.items() if v < threshold}
    assert updated == len(expected_updates)
    for key in expected_updates:
        reference[key] = 0

    # Conditional delete.
    deleted = execute_sql(db, f"DELETE FROM t WHERE id > {probe}")
    assert deleted == len({k for k in reference if k > probe})
    for key in [k for k in reference if k > probe]:
        del reference[key]

    assert execute_sql(db, "SELECT COUNT(*) FROM t") == len(reference)
