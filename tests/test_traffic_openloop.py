"""Open-loop arrival generator and single-store open-loop client."""

import numpy as np
import pytest

from repro import Machine
from repro.apps import ArrivalProcess, KVStore, OpenLoopClient
from repro.errors import InvalidArgumentError


def small_store(machine, **kwargs):
    kwargs.setdefault("data_mb", 8)
    kwargs.setdefault("snapshot_threshold", 10**9)   # never self-triggers
    return KVStore(machine, **kwargs)


class TestArrivalProcess:
    def test_deterministic_spacing(self):
        stamps = ArrivalProcess(1e6, distribution="deterministic").arrivals(5)
        gaps = np.diff(stamps)
        assert all(gap == 1000 for gap in gaps)      # 1 us at 1M req/s

    def test_poisson_mean_gap_converges(self):
        stamps = ArrivalProcess(1e6, seed=3).arrivals(20_000)
        mean_gap = float(np.mean(np.diff(stamps)))
        assert 900 < mean_gap < 1100                 # within 10% of 1 us

    def test_same_seed_same_schedule(self):
        a = ArrivalProcess(5e5, seed=11).arrivals(100)
        b = ArrivalProcess(5e5, seed=11).arrivals(100)
        assert np.array_equal(a, b)

    def test_different_seed_differs(self):
        a = ArrivalProcess(5e5, seed=11).arrivals(100)
        b = ArrivalProcess(5e5, seed=12).arrivals(100)
        assert not np.array_equal(a, b)

    def test_monotone_nondecreasing(self):
        stamps = ArrivalProcess(1e7, seed=5).arrivals(1000)
        assert np.all(np.diff(stamps) >= 0)

    def test_start_offset(self):
        stamps = ArrivalProcess(1e6, distribution="deterministic",
                                start_ns=5000).arrivals(3)
        assert stamps[0] == 6000

    def test_rejects_bad_rate_and_distribution(self):
        with pytest.raises(InvalidArgumentError):
            ArrivalProcess(0)
        with pytest.raises(InvalidArgumentError):
            ArrivalProcess(1e6, distribution="uniform")


class TestOpenLoopClient:
    def test_conservation_unbounded(self):
        store = small_store(Machine(phys_mb=128))
        result = OpenLoopClient(store, rate_rps=1e6, seed=7).run(2000)
        assert result.conserved()
        assert result.generated == 2000
        assert result.completed == 2000
        assert result.dropped == 0

    def test_latency_includes_queueing(self):
        # At an offered rate far above service capacity the queue grows
        # without bound and later latencies dominate earlier ones.
        store = small_store(Machine(phys_mb=128))
        result = OpenLoopClient(store, rate_rps=1e10, seed=7,
                                distribution="deterministic").run(3000)
        lat = result.latencies
        assert float(np.mean(lat[-100:])) > 10 * float(np.mean(lat[:100]))
        assert result.max_queue_len > 100

    def test_queue_limit_drops_and_conserves(self):
        store = small_store(Machine(phys_mb=128))
        result = OpenLoopClient(store, rate_rps=1e10, seed=7,
                                distribution="deterministic",
                                queue_limit=32).run(3000)
        assert result.dropped > 0
        assert result.conserved()
        assert result.max_queue_len <= 32

    def test_no_overload_keeps_queue_short(self):
        store = small_store(Machine(phys_mb=128))
        result = OpenLoopClient(store, rate_rps=1e5, seed=7).run(2000)
        # ~0.5 us service vs 10 us inter-arrival: essentially no queueing.
        assert result.mean_queue_len < 1.0
        assert result.dropped == 0

    def test_deterministic_replay(self):
        r1 = OpenLoopClient(small_store(Machine(phys_mb=128)),
                            rate_rps=1e6, seed=9).run(1500)
        r2 = OpenLoopClient(small_store(Machine(phys_mb=128)),
                            rate_rps=1e6, seed=9).run(1500)
        assert np.array_equal(r1.latencies, r2.latencies)
        assert r1.max_queue_len == r2.max_queue_len

    def test_rejects_bad_args(self):
        store = small_store(Machine(phys_mb=128))
        with pytest.raises(InvalidArgumentError):
            OpenLoopClient(store, rate_rps=1e6, write_ratio=1.5)
        with pytest.raises(InvalidArgumentError):
            OpenLoopClient(store, rate_rps=1e6, queue_limit=0)
