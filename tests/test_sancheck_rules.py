"""Fixture-driven unit tests for each sancheck rule family.

Every rule has a known-bad fixture that must fire *exactly* its rule and
a known-good twin that must pass clean — so a rule that goes blind (or
trigger-happy) fails here before it rots the repo gate in
test_sancheck_repo.py.  Fixtures live in tests/fixtures/sancheck/.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.sancheck.checker import check_paths

FIXTURES = Path(__file__).parent / "fixtures" / "sancheck"

#: bad fixture -> the one rule it must trip (and nothing else).
BAD = {
    "bad_lock.py": "lock-context",
    "bad_failpoint.py": "failpoint",
    "bad_refcount.py": "refcount",
    "bad_tlb.py": "tlb",
    "bad_ignore.py": "ignore",
    "bad_tracepoint.py": "trace-registry",
    "bad_replica.py": "refcount",
    "bad_clockcharge.py": "clock-charge",
    "bad_metrics.py": "metrics",
    "bad_fastpath.py": "fastpath-sound",
    "bad_faas_site.py": "metrics",
}

GOOD = ["good_lock.py", "good_failpoint.py", "good_refcount.py",
        "good_tlb.py", "good_ignore.py", "good_tracepoint.py",
        "good_replica.py", "good_clockcharge.py", "good_metrics.py",
        "good_fastpath.py", "good_faas_site.py"]


def run_fixture(name):
    path = FIXTURES / name
    assert path.exists(), f"missing fixture {name}"
    return check_paths([path])


@pytest.mark.parametrize("name,rule", sorted(BAD.items()))
def test_bad_fixture_trips_exactly_its_rule(name, rule):
    violations = run_fixture(name)
    assert violations, f"{name} produced no violation"
    assert {v.rule for v in violations} == {rule}


@pytest.mark.parametrize("name", GOOD)
def test_good_fixture_is_clean(name):
    assert run_fixture(name) == []


class TestViolationShape:
    def test_lock_violation_names_missing_lock(self):
        (violation,) = run_fixture("bad_lock.py")
        assert violation.func == "racy_fault"
        assert "ptl" in violation.message

    def test_refcount_violation_names_pin_site(self):
        (violation,) = run_fixture("bad_refcount.py")
        assert violation.func == "share_page"
        assert "reference" in violation.message
        assert "taken at line" in violation.message

    def test_failpoint_violation_points_at_alloc(self):
        (violation,) = run_fixture("bad_failpoint.py")
        assert "failpoints.hit" in violation.message

    def test_tlb_violation_mentions_flush(self):
        (violation,) = run_fixture("bad_tlb.py")
        assert "flush" in violation.message.lower()

    def test_trace_registry_names_both_failure_modes(self):
        typo, dynamic = sorted(run_fixture("bad_tracepoint.py"),
                               key=lambda v: v.lineno)
        assert "not declared" in typo.message
        assert "demand_zreo" in typo.message
        assert "string literal" in dynamic.message

    def test_unjustified_ignore_demands_reason(self):
        (violation,) = run_fixture("bad_ignore.py")
        assert "justification" in violation.message

    def test_clock_charge_names_the_mutation_site(self):
        (violation,) = run_fixture("bad_clockcharge.py")
        assert violation.func == "install_block"
        assert "virtual-clock charge" in violation.message
        assert "charge_deferred" in violation.message

    def test_metrics_violation_names_counter_and_unwind(self):
        (violation,) = run_fixture("bad_metrics.py")
        assert violation.func == "map_one_page"
        assert "'rss'" in violation.message
        assert "counters_deferred" in violation.message

    def test_faas_site_violation_names_the_unregistered_site(self):
        (violation,) = run_fixture("bad_faas_site.py")
        assert violation.func == "cold_fork"
        assert "faas.cold_fork" in violation.message
        assert "SITES" in violation.message

    def test_fastpath_violation_names_the_missing_feature(self):
        (violation,) = run_fixture("bad_fastpath.py")
        assert violation.func == "fast_path_ok"
        assert "'compaction'" in violation.message
        assert "FASTPATH_HANDLED" in violation.message

    def test_violation_identity_is_line_independent(self):
        # Baseline entries key on rule:module:func, not line numbers.
        (violation,) = run_fixture("bad_tlb.py")
        assert violation.ident == "tlb:bad_tlb:zap_entry"


class TestReplicaUnwindShape:
    """The Mitosis replica-allocation unwind, statically.

    ``bad_replica.py`` drops the first replica's page reference on the
    second node's OOM path; the refcount rule must name the pinned frame
    and the raise exit.  ``good_replica.py`` is the same code with the
    real ``replicate_table`` unwind handler and must pass — together
    they prove the repo gate would catch a regression in the replication
    unwind discipline.
    """

    def test_dropped_replica_reference_flagged(self):
        (violation,) = run_fixture("bad_replica.py")
        assert violation.rule == "refcount"
        assert violation.func == "replicate_table"
        assert "rpfn" in violation.message
        assert "exception" in violation.message

    def test_unwound_replica_reference_passes(self):
        assert run_fixture("good_replica.py") == []


class TestSeededDefectStaticHalf:
    """The FAULT_INJECT_SKIP_PTL defect, statically (cf. test_kcsan.py).

    The knob makes ``access_flow`` mutate a leaf table without the split
    PTL at runtime; ``bad_lock.py`` is that exact shape in source form —
    a fault path calling a ``@must_hold("ptl")`` mutator bare — and the
    lock-context rule must flag it.  ``good_lock.py``'s ``flow_fault``
    is the knob-off shape (explicit ``Acquire``/``Release`` events) and
    must pass.
    """

    def test_ptl_skip_shape_flagged(self):
        (violation,) = run_fixture("bad_lock.py")
        assert violation.rule == "lock-context"
        assert "install_entry" in violation.message

    def test_ptl_held_shape_passes(self):
        assert run_fixture("good_lock.py") == []

    def test_fixture_tracks_the_knob(self):
        # Keep the fixture honest about what it models: if the knob is
        # ever renamed, update the fixture docstring alongside it.
        from repro.smp import ops
        assert hasattr(ops, "FAULT_INJECT_SKIP_PTL")
        text = (FIXTURES / "bad_lock.py").read_text()
        assert "access_flow" in text


class TestSuppression:
    def test_justified_ignore_suppresses(self):
        # good_ignore.py carries the same TLB bug as bad_tlb.py, hidden
        # behind a '-- reason' comment: the checker honours it.
        assert run_fixture("good_ignore.py") == []

    def test_good_and_bad_ignore_share_the_defect(self):
        good = (FIXTURES / "good_ignore.py").read_text()
        bad = (FIXTURES / "bad_ignore.py").read_text()
        assert "leaf.entries[index] = ENTRY_NONE" in good
        assert "leaf.entries[index] = ENTRY_NONE" in bad
