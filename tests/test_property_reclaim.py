"""Property tests for reclaim & swap under random mmap/fork/write traffic.

Random operation scripts interleave page writes, forks, reclaim passes
(both kswapd-style and direct), partial unmaps, and child exits on a
machine small enough that swap traffic is routine.  After every step the
shadow copies must read back exactly and the full kernel audit — page
refcounts, swap_map, rmap, LRU membership, sharer registry — must hold.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
import hypothesis.strategies as st

from repro import MIB, Machine
from repro.verify.audit import audit_machine

REGION = 2 * MIB
PAGE = 4096
N_PAGES = REGION // PAGE

ops = st.lists(
    st.tuples(
        st.sampled_from(["write_parent", "write_child", "read_parent",
                         "read_child", "reclaim", "kswapd", "fork",
                         "odfork", "exit_child", "unmap_piece",
                         "snapshot", "restore"]),
        st.integers(0, N_PAGES - 1),
    ),
    min_size=4, max_size=24,
)


@settings(max_examples=35, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much])
@given(script=ops)
def test_reclaim_interleaved_with_lineages(script):
    # Small enough that reclaim targets hit mapped pages; big enough that
    # page tables and the page cache always fit.
    machine = Machine(phys_mb=8, swap_mb=16)
    kernel = machine.kernel
    parent = machine.spawn_process("root")
    region = parent.mmap(REGION)

    shadow_parent = {}
    shadow_child = None
    child = None
    snapshot = None
    snapshot_shadow = None
    unmapped = set()
    counter = 0

    for op, page in script:
        counter += 1
        payload = f"{counter:08d}".encode()
        addr = region + page * PAGE
        if op == "write_parent":
            if page in unmapped:
                continue
            parent.write(addr, payload)
            shadow_parent[page] = payload
        elif op == "write_child" and child is not None:
            if page in unmapped:
                continue
            child.write(addr, payload)
            shadow_child[page] = payload
        elif op == "read_parent" and page not in unmapped:
            expected = shadow_parent.get(page)
            if expected is not None:
                assert parent.read(addr, 8) == expected
        elif op == "read_child" and child is not None and page not in unmapped:
            expected = shadow_child.get(page)
            if expected is not None:
                assert child.read(addr, 8) == expected
        elif op == "reclaim":
            kernel.reclaim.shrink(max(8, page), from_kswapd=False)
        elif op == "kswapd":
            machine.run_kswapd()
        elif op in ("fork", "odfork") and child is None:
            child = parent.odfork() if op == "odfork" else parent.fork()
            shadow_child = dict(shadow_parent)
        elif op == "exit_child" and child is not None:
            child.exit()
            parent.wait()
            child = None
            shadow_child = None
        elif op == "unmap_piece" and child is None and page not in unmapped:
            parent.munmap(addr, PAGE)
            unmapped.add(page)
            shadow_parent.pop(page, None)
        elif op == "snapshot" and child is None and snapshot is None:
            snapshot = parent.snapshot()
            snapshot_shadow = dict(shadow_parent)
        elif (op == "restore" and snapshot is not None and child is None
              and not unmapped):
            # munmap can free a snapshotted leaf table; only restore while
            # the geometry is unchanged since creation.
            snapshot.restore()
            shadow_parent = dict(snapshot_shadow)

        audit_machine(machine)

    for page, expected in shadow_parent.items():
        assert parent.read(region + page * PAGE, 8) == expected
    if child is not None:
        for page, expected in shadow_child.items():
            assert child.read(region + page * PAGE, 8) == expected
        child.exit()
        parent.wait()
    if snapshot is not None:
        snapshot.discard()
    audit_machine(machine)
    parent.exit()
    machine.init_process.wait()
    audit_machine(machine)
    assert kernel.swap.used_slots == 0
    assert len(kernel.swap_cache) == 0
    assert len(kernel.reclaim.active) + len(kernel.reclaim.inactive) == 0
