"""Property-based testing: the simulated address space vs a flat model.

A hypothesis state machine drives a process (and fork children) through
random mmap/munmap/write/read/fork/exit sequences while mirroring every
write in plain Python dictionaries.  Any divergence between what the
simulated MMU returns and the shadow model is a paging bug; every step
also re-audits the kernel's refcounts.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
import hypothesis.strategies as st

from repro import MIB, Machine
from repro.verify.audit import audit_machine

REGION = 4 * MIB
PAGE = 4096
MAX_PROCS = 5


class AddressSpaceMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.machine = Machine(phys_mb=192)
        root = self.machine.spawn_process("root")
        self.region = root.mmap(REGION)
        # procs: list of (Process, shadow dict page->bytes, mapped flag)
        self.procs = [root]
        self.shadow = {root.pid: {}}
        self.unmapped = {root.pid: set()}
        self.readonly = {root.pid: set()}

    # --- helpers -----------------------------------------------------

    def _expected(self, pid, page):
        return self.shadow[pid].get(page, bytes(8))

    # --- rules ---------------------------------------------------------

    @rule(proc_index=st.integers(0, MAX_PROCS - 1),
          page=st.integers(0, REGION // PAGE - 1),
          value=st.binary(min_size=8, max_size=8))
    def write(self, proc_index, page, value):
        proc = self.procs[proc_index % len(self.procs)]
        if not proc.alive or page in self.unmapped[proc.pid]:
            return
        if page in self.readonly[proc.pid]:
            return  # exercised separately by write_respects_protection
        proc.write(self.region + page * PAGE, value)
        self.shadow[proc.pid][page] = value

    @rule(proc_index=st.integers(0, MAX_PROCS - 1),
          page=st.integers(0, REGION // PAGE - 1))
    def read(self, proc_index, page):
        proc = self.procs[proc_index % len(self.procs)]
        if not proc.alive or page in self.unmapped[proc.pid]:
            return
        actual = proc.read(self.region + page * PAGE, 8)
        assert actual == self._expected(proc.pid, page), \
            f"pid {proc.pid} page {page}: {actual!r}"

    @precondition(lambda self: len(self.procs) < MAX_PROCS)
    @rule(proc_index=st.integers(0, MAX_PROCS - 1), use_odf=st.booleans())
    def fork(self, proc_index, use_odf):
        parent = self.procs[proc_index % len(self.procs)]
        if not parent.alive:
            return
        child = parent.odfork() if use_odf else parent.fork()
        self.procs.append(child)
        self.shadow[child.pid] = dict(self.shadow[parent.pid])
        self.unmapped[child.pid] = set(self.unmapped[parent.pid])
        self.readonly[child.pid] = set(self.readonly[parent.pid])

    @rule(proc_index=st.integers(1, MAX_PROCS - 1))
    def exit_child(self, proc_index):
        if len(self.procs) < 2:
            return
        index = 1 + proc_index % (len(self.procs) - 1)
        proc = self.procs[index]
        if not proc.alive or any(
            p.alive and p.task.parent is proc.task for p in self.procs
        ):
            return  # keep lineages simple: exit leaves first
        parent_task = proc.task.parent
        proc.exit()
        for p in self.procs:
            if p.task is parent_task:
                p.wait(proc.pid)
        self.procs.pop(index)
        del self.shadow[proc.pid]
        del self.unmapped[proc.pid]
        del self.readonly[proc.pid]

    @rule(proc_index=st.integers(0, MAX_PROCS - 1),
          start_page=st.integers(0, REGION // PAGE - 1),
          n_pages=st.integers(1, 32),
          writable=st.booleans())
    def protect(self, proc_index, start_page, n_pages, writable):
        from repro import PROT_READ, PROT_WRITE
        proc = self.procs[proc_index % len(self.procs)]
        if not proc.alive:
            return
        end_page = min(start_page + n_pages, REGION // PAGE)
        span = range(start_page, end_page)
        if any(p in self.unmapped[proc.pid] for p in span):
            return
        prot = PROT_READ | (PROT_WRITE if writable else 0)
        proc.mprotect(self.region + start_page * PAGE,
                      (end_page - start_page) * PAGE, prot)
        readonly = self.readonly[proc.pid]
        for p in span:
            if writable:
                readonly.discard(p)
            else:
                readonly.add(p)

    @rule(proc_index=st.integers(0, MAX_PROCS - 1),
          page=st.integers(0, REGION // PAGE - 1),
          value=st.binary(min_size=8, max_size=8))
    def write_respects_protection(self, proc_index, page, value):
        from repro import SegmentationFault
        proc = self.procs[proc_index % len(self.procs)]
        if not proc.alive or page in self.unmapped[proc.pid]:
            return
        if page not in self.readonly[proc.pid]:
            return
        try:
            proc.write(self.region + page * PAGE, value)
            raise AssertionError(f"write to read-only page {page} succeeded")
        except SegmentationFault:
            pass

    @rule(proc_index=st.integers(0, MAX_PROCS - 1),
          start_page=st.integers(0, REGION // PAGE - 1),
          n_pages=st.integers(1, 64))
    def unmap(self, proc_index, start_page, n_pages):
        proc = self.procs[proc_index % len(self.procs)]
        if not proc.alive:
            return
        end_page = min(start_page + n_pages, REGION // PAGE)
        span = range(start_page, end_page)
        if any(p in self.unmapped[proc.pid] for p in span):
            return  # avoid double-unmap bookkeeping complexity
        proc.munmap(self.region + start_page * PAGE,
                    (end_page - start_page) * PAGE)
        for p in span:
            self.unmapped[proc.pid].add(p)
            self.shadow[proc.pid].pop(p, None)

    # --- invariants -------------------------------------------------------

    @invariant()
    def audit(self):
        if hasattr(self, "machine"):
            audit_machine(self.machine)


TestAddressSpaceProperties = AddressSpaceMachine.TestCase
TestAddressSpaceProperties.settings = settings(
    max_examples=25,
    stateful_step_count=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large,
                           HealthCheck.filter_too_much],
)
