"""struct-page metadata: refcounts, flags, compound pages, bulk ops."""

import numpy as np
import pytest

from repro.errors import KernelBug
from repro.mem import (
    HUGE_PAGE_ORDER,
    PG_ANON,
    PG_COMPOUND_HEAD,
    PG_COMPOUND_TAIL,
    PG_FILE,
    PG_PAGETABLE,
    PageStructArray,
)


@pytest.fixture
def pages():
    return PageStructArray(4096)


class TestSingleOps:
    def test_alloc_initialises(self, pages):
        pages.on_alloc(5, PG_ANON)
        assert pages.get_ref(5) == 1
        assert pages.has_flags(5, PG_ANON)
        assert pages.resolve_compound_head(5) == 5

    def test_double_alloc_detected(self, pages):
        pages.on_alloc(5, PG_ANON)
        with pytest.raises(KernelBug):
            pages.on_alloc(5, PG_ANON)

    def test_ref_inc_dec(self, pages):
        pages.on_alloc(1, PG_ANON)
        assert pages.ref_inc(1) == 2
        assert pages.ref_dec(1) == 1
        assert pages.ref_dec(1) == 0

    def test_underflow_detected(self, pages):
        pages.on_alloc(1, PG_ANON)
        pages.ref_dec(1)
        with pytest.raises(KernelBug):
            pages.ref_dec(1)

    def test_pt_refcount_independent(self, pages):
        pages.on_alloc(2, PG_PAGETABLE)
        pages.pt_refcount[2] = 1
        assert pages.pt_ref_inc(2) == 2
        assert pages.get_ref(2) == 1  # page refcount untouched
        assert pages.pt_ref_dec(2) == 1

    def test_flag_manipulation(self, pages):
        pages.on_alloc(3, PG_ANON)
        pages.set_flags(3, PG_FILE)
        assert pages.has_flags(3, PG_FILE)
        pages.clear_flags(3, PG_FILE)
        assert not pages.has_flags(3, PG_FILE)
        assert pages.has_flags(3, PG_ANON)

    def test_free_resets_everything(self, pages):
        pages.on_alloc(4, PG_ANON)
        pages.ref_inc(4)
        pages.on_free(4)
        assert pages.get_ref(4) == 0
        assert pages.flags[4] == 0


class TestCompoundPages:
    def test_compound_structure(self, pages):
        pages.on_alloc_compound(512, HUGE_PAGE_ORDER, PG_ANON)
        assert pages.has_flags(512, PG_COMPOUND_HEAD)
        assert pages.compound_order[512] == HUGE_PAGE_ORDER
        for tail in (513, 700, 1023):
            assert pages.has_flags(tail, PG_COMPOUND_TAIL)
            assert pages.resolve_compound_head(tail) == 512

    def test_compound_refcount_on_head_only(self, pages):
        pages.on_alloc_compound(512, HUGE_PAGE_ORDER, PG_ANON)
        assert pages.get_ref(512) == 1
        assert pages.get_ref(513) == 0

    def test_compound_free_clears_span(self, pages):
        pages.on_alloc_compound(1024, HUGE_PAGE_ORDER, PG_ANON)
        pages.on_free(1024)
        assert pages.flags[1024] == 0
        assert pages.flags[1500] == 0
        assert pages.compound_head[1500] == -1

    def test_compound_over_live_frames_detected(self, pages):
        pages.on_alloc(600, PG_ANON)
        with pytest.raises(KernelBug):
            pages.on_alloc_compound(512, HUGE_PAGE_ORDER, PG_ANON)


class TestBulkOps:
    def test_bulk_alloc_and_refcounts(self, pages):
        pfns = np.arange(10, 50, dtype=np.int64)
        pages.on_alloc_bulk(pfns, PG_ANON)
        assert (pages.refcount[pfns] == 1).all()
        pages.ref_inc_bulk(pfns)
        assert (pages.refcount[pfns] == 2).all()

    def test_bulk_dec_returns_zeroed(self, pages):
        pfns = np.arange(10, 20, dtype=np.int64)
        pages.on_alloc_bulk(pfns, PG_ANON)
        pages.ref_inc_bulk(pfns[:5])
        zeroed = pages.ref_dec_bulk(pfns)
        assert sorted(zeroed.tolist()) == list(range(15, 20))

    def test_bulk_with_duplicates(self, pages):
        pages.on_alloc(7, PG_ANON)
        dup = np.asarray([7, 7, 7], dtype=np.int64)
        pages.ref_inc_bulk(dup)
        assert pages.get_ref(7) == 4
        zeroed = pages.ref_dec_bulk(dup)
        assert pages.get_ref(7) == 1
        assert len(zeroed) == 0

    def test_bulk_underflow_detected(self, pages):
        pfns = np.asarray([3], dtype=np.int64)
        pages.on_alloc_bulk(pfns, PG_ANON)
        pages.ref_dec_bulk(pfns)
        with pytest.raises(KernelBug):
            pages.ref_dec_bulk(pfns)

    def test_bulk_free_resets(self, pages):
        pfns = np.arange(100, 200, dtype=np.int64)
        pages.on_alloc_bulk(pfns, PG_FILE)
        pages.on_free_bulk(pfns)
        assert (pages.refcount[pfns] == 0).all()
        assert (pages.flags[pfns] == 0).all()

    def test_live_frames_counter(self, pages):
        assert pages.live_frames() == 0
        pages.on_alloc_bulk(np.arange(5, dtype=np.int64), PG_ANON)
        assert pages.live_frames() == 5
