"""Repo-level sancheck gate, baseline machinery, and the CLI contract.

The tentpole promise of ISSUE 4: ``python -m repro.sancheck --strict``
exits 0 over the whole tree — every annotation discharged, every ignore
justified, no stale baseline fat.  These tests keep that promise honest
and exercise the baseline lifecycle (load/apply/stale/refuse-ignore).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sancheck.checker import (
    apply_baseline,
    check_paths,
    check_repo,
    load_baseline,
    repo_files,
    write_baseline,
)

FIXTURES = Path(__file__).parent / "fixtures" / "sancheck"
REPO_ROOT = Path(__file__).resolve().parent.parent


class TestRepoGate:
    def test_repo_is_clean(self):
        assert check_repo() == []

    def test_repo_sweep_covers_the_kernel(self):
        paths, _ = repo_files()
        modules = {p.parent.name for p in paths}
        assert {"kernel", "smp", "paging", "mem", "verify"} <= modules

    def test_checker_does_not_check_itself(self):
        # The sanitizer runtimes would pollute the name-based fixpoints
        # (KASAN's poison write would make every `.free()` fallible).
        paths, _ = repo_files()
        assert not [p for p in paths if "sancheck" in p.parts]

    def test_cli_strict_exits_zero(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.sancheck", "--strict", "--quiet"],
            cwd=REPO_ROOT, capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin"})
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 stale" in proc.stdout

    def test_cli_flags_bad_fixture(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.sancheck",
             "--baseline", str(tmp_path / "empty.json"),
             str(FIXTURES / "bad_tlb.py")],
            cwd=REPO_ROOT, capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin"})
        assert proc.returncode == 1
        assert "[tlb]" in proc.stdout


class TestBaseline:
    def violations(self):
        return check_paths([FIXTURES / "bad_tlb.py"])

    def test_write_then_apply_suppresses(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(self.violations(), path, reason="known debt")
        entries, problems = load_baseline(path)
        assert problems == []
        new, baselined, stale = apply_baseline(self.violations(), entries)
        assert new == [] and len(baselined) == 1 and stale == []

    def test_stale_entry_detected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps([
            {"rule": "tlb", "module": "long_gone", "func": "fixed_ages_ago",
             "reason": "was real once"}]))
        entries, problems = load_baseline(path)
        assert problems == []
        new, baselined, stale = apply_baseline(self.violations(), entries)
        assert len(new) == 1 and baselined == [] and len(stale) == 1

    def test_missing_file_is_empty_baseline(self, tmp_path):
        entries, problems = load_baseline(tmp_path / "nope.json")
        assert entries == [] and problems == []

    @pytest.mark.parametrize("entry,needle", [
        ({"rule": "tlb", "module": "m"}, "missing"),
        ({"rule": "nonsense", "module": "m", "func": "f",
          "reason": "r"}, "unknown rule"),
        ({"rule": "ignore", "module": "m", "func": "f",
          "reason": "r"}, "cannot be baselined"),
        ({"rule": "tlb", "module": "m", "func": "f"}, "no reason"),
    ])
    def test_malformed_entries_rejected(self, tmp_path, entry, needle):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps([entry]))
        _entries, problems = load_baseline(path)
        assert problems and needle in problems[0]

    def test_write_baseline_skips_ignore_rule(self, tmp_path):
        path = tmp_path / "baseline.json"
        vs = check_paths([FIXTURES / "bad_ignore.py"])
        assert {v.rule for v in vs} == {"ignore"}
        written = write_baseline(vs, path)
        assert written == []

    def test_committed_baseline_is_empty(self):
        # The repo ships with zero baselined debt; this fails the moment
        # someone baselines a violation instead of fixing it.
        committed = (REPO_ROOT / "src" / "repro" / "sancheck"
                     / "baseline.json")
        if committed.exists():
            assert json.loads(committed.read_text()) == []
