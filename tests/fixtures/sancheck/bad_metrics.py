"""Known-bad metrics-conservation fixture.

``map_one_page`` bumps RSS and then hits a fallible step: the injected
OOM leaves the function with the counter incremented and nothing mapped,
so every later RSS assertion drifts by one.  The checker must flag the
exception exit.
"""


def map_one_page(kernel, mm, pfn):
    mm.add_rss(1, file_backed=False)
    kernel.failpoints.hit("fixture.map_page")
    return pfn
