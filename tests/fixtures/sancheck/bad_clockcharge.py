"""Known-bad clock-charge fixture.

``install_block`` writes a PTE and returns without charging the virtual
clock — work the cost model never sees, so latency results silently
understate the operation.  The checker must flag the normal exit.
"""


def install_block(leaf, index, entry):
    leaf.entries[index] = entry
    return leaf
