"""Known-good Mitosis replication fixture.

Same shape as ``bad_replica.py``, but the second node's fallible
allocation sits in a ``try`` whose handler drops the first replica's
reference before re-raising — the best-effort unwind discipline the real
``MitosisState.replicate_table`` follows (an OOM mid-replication leaves
the table unreplicated and leaks nothing).
"""


def replicate_table(kernel, pages, table):
    kernel.failpoints.hit("mitosis.replica_alloc")
    rpfn = kernel.allocator.alloc(0, node=1, strict=True)
    pages.ref_inc(rpfn)
    try:
        kernel.failpoints.hit("mitosis.replica_alloc")
        other = kernel.allocator.alloc(0, node=2, strict=True)
    except Exception:
        pages.ref_dec(rpfn)
        raise
    pages.ref_inc(other)
    table.set(0, rpfn)
    table.set(1, other)
