"""Known-good suppression fixture: a justified inline ignore passes."""

ENTRY_NONE = 0


def zap_entry(cost, leaf, index):
    # sancheck: ignore[tlb] -- fixture models a caller-side batched flush
    leaf.entries[index] = ENTRY_NONE
    cost.charge_zap_entries(1)
    return leaf
