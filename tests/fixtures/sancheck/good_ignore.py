"""Known-good suppression fixture: a justified inline ignore passes."""

ENTRY_NONE = 0


def zap_entry(leaf, index):
    # sancheck: ignore[tlb] -- fixture models a caller-side batched flush
    leaf.entries[index] = ENTRY_NONE
    return leaf
