"""Known-bad refcount fixture.

``share_page`` takes a page reference, then crosses a fallible operation
(the failpoint may raise ``OutOfMemoryError``) *before* handing the
reference to its long-lived owner.  On the raise path the pin leaks —
the checker must flag the exception exit.
"""


def share_page(kernel, pages, pfn, leaf):
    pages.ref_inc(pfn)
    kernel.failpoints.hit("fixture.share_page")
    leaf.set(0, pfn)
