"""Known-good TLB fixtures: flush before exit, or declare deferral."""

from repro.sancheck.annotations import tlb_deferred

ENTRY_NONE = 0


def zap_entry(kernel, mm, leaf, index, vaddr):
    leaf.entries[index] = ENTRY_NONE
    kernel.cost.charge_zap_entries(1)
    kernel.tlbs.shootdown_page(mm, vaddr)
    return leaf


@tlb_deferred("the caller shoots the whole range down after the walk")
def zap_entry_batched(cost, leaf, index):
    leaf.entries[index] = ENTRY_NONE
    cost.charge_zap_entries(1)
    return leaf
