"""Known-bad failpoint fixture.

``fill_frame`` allocates straight from the buddy allocator with no
``failpoints.hit`` in the function, so fault injection can never force
this OOM path — the checker must flag the allocation.
"""


def fill_frame(kernel):
    pfn = int(kernel.allocator.alloc(0))
    return pfn
