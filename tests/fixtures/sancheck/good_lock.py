"""Known-good lock-context fixture: both caller disciplines pass.

``locked_fault`` declares the acquire with ``@acquires``; ``flow_fault``
is a generator flow that takes the lock via explicit ``Acquire`` events,
which the checker recognises from the flow's source.
"""

from repro.sancheck.annotations import acquires, must_hold


@must_hold("ptl")
def install_entry(cost, leaf, index, entry):
    leaf.entries[index] = entry
    cost.charge_fault_base()


@acquires("ptl")
def locked_fault(cost, leaf, index, entry):
    install_entry(cost, leaf, index, entry)


def flow_fault(sched, cost, leaf, index, entry, Acquire, Release):
    ptl = sched.pt_lock(int(leaf.pfn))
    yield Acquire(ptl)
    install_entry(cost, leaf, index, entry)
    yield Release(ptl)
