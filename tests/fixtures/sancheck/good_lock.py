"""Known-good lock-context fixture: both caller disciplines pass.

``locked_fault`` declares the acquire with ``@acquires``; ``flow_fault``
is a generator flow that takes the lock via explicit ``Acquire`` events,
which the checker recognises from the flow's source.
"""

from repro.sancheck.annotations import acquires, must_hold


@must_hold("ptl")
def install_entry(leaf, index, entry):
    leaf.entries[index] = entry


@acquires("ptl")
def locked_fault(leaf, index, entry):
    install_entry(leaf, index, entry)


def flow_fault(sched, leaf, index, entry, Acquire, Release):
    ptl = sched.pt_lock(int(leaf.pfn))
    yield Acquire(ptl)
    install_entry(leaf, index, entry)
    yield Release(ptl)
