"""Known-good failpoint fixture: the allocation sits behind a site."""


def fill_frame(kernel):
    kernel.failpoints.hit("fixture.fill_frame")
    pfn = int(kernel.allocator.alloc(0))
    return pfn
