"""Known-good metrics-conservation fixtures.

Three balanced shapes: an inline unwind (``map_one_page``), a declared
deferral whose caller balances through a ``@releases_refs`` helper
(``map_many`` / ``fork_driver``), and the helper itself.
"""

from repro.sancheck.annotations import counters_deferred, releases_refs


def map_one_page(kernel, mm, pfn):
    mm.add_rss(1, file_backed=False)
    try:
        kernel.failpoints.hit("fixture.map_page")
    except Exception:
        mm.sub_rss(1, file_backed=False)
        raise
    return pfn


@counters_deferred("rss", reason="fork_driver unwinds via abort_map")
def map_many(kernel, mm, pfns):
    for pfn in pfns:
        mm.add_rss(1, file_backed=False)
        kernel.failpoints.hit("fixture.map_many")


def fork_driver(kernel, mm, pfns):
    try:
        map_many(kernel, mm, pfns)
    except Exception:
        abort_map(mm, pfns)
        raise


@releases_refs("rss")
def abort_map(mm, pfns):
    mm.sub_rss(len(pfns), file_backed=False)
