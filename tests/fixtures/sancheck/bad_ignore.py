"""Known-bad suppression fixture: an ignore comment with no -- reason.

The underlying TLB violation is matched by the comment, but because the
justification is missing the checker must refuse the suppression and
report rule ``ignore`` instead.
"""

ENTRY_NONE = 0


def zap_entry(cost, leaf, index):
    leaf.entries[index] = ENTRY_NONE  # sancheck: ignore[tlb]
    cost.charge_zap_entries(1)
    return leaf
