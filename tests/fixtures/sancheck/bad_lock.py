"""Known-bad lock-context fixture.

``racy_fault`` mirrors the shape of ``smp.ops.access_flow`` with the
split page-table lock acquire dropped: it calls a ``@must_hold("ptl")``
function while holding nothing.  The static checker must flag the call.
"""

from repro.sancheck.annotations import must_hold


@must_hold("ptl")
def install_entry(cost, leaf, index, entry):
    leaf.entries[index] = entry
    cost.charge_fault_base()


def racy_fault(cost, leaf, index, entry):
    install_entry(cost, leaf, index, entry)
