"""BAD: tracepoint emissions the trace registry cannot vouch for.

``emit_typo`` uses a name that is not declared in
``repro.trace.registry.EVENTS`` (the runtime would only catch it if the
site executed under an attached tracer); ``emit_dynamic`` computes the
name, which defeats the registry check entirely.  The trace-registry
rule must flag both.
"""

from repro.trace import points


def emit_typo(vaddr):
    if points.enabled:
        points.tracepoint("fault.demand_zreo", vaddr=vaddr)


def emit_dynamic(kind, vaddr):
    name = "fault." + kind
    if points.enabled:
        points.tracepoint(name, vaddr=vaddr)
