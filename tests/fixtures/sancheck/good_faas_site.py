"""Known-good farm fail-point fixture: every ``faas.*`` site declared.

Both fallible paths hit sites present in the SITES registry, and every
declared site is used — no undeclared names, no stale entries.
"""

SITES = frozenset({"faas.template_alloc", "faas.invoke_fork"})


def spawn_template(kernel):
    kernel.failpoints.hit("faas.template_alloc")
    return int(kernel.allocator.alloc(0))


def cold_fork(kernel):
    kernel.failpoints.hit("faas.invoke_fork")
    return int(kernel.allocator.alloc(0))
