"""Known-good clock-charge fixtures: charge inline, or defer to the
caller with ``@charge_deferred`` and charge there."""

from repro.sancheck.annotations import charge_deferred


def install_block(cost, leaf, index, entry):
    leaf.entries[index] = entry
    cost.charge_fault_base()
    return leaf


@charge_deferred("the batched caller charges once for the whole range")
def install_block_batched(leaf, index, entry):
    leaf.entries[index] = entry


def install_range(cost, leaf, entries):
    for index, entry in enumerate(entries):
        install_block_batched(leaf, index, entry)
    cost.charge_many(len(entries))
