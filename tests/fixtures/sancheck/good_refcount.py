"""Known-good refcount fixtures: two ways to survive the raise path.

``share_page`` does the fallible work first and only then pins;
``share_page_unwind`` pins early but releases in the unwind handler.
"""


def share_page(kernel, pages, pfn, leaf):
    kernel.failpoints.hit("fixture.share_page")
    pages.ref_inc(pfn)
    leaf.set(0, pfn)


def share_page_unwind(kernel, pages, pfn, leaf):
    pages.ref_inc(pfn)
    try:
        kernel.failpoints.hit("fixture.share_page")
    except Exception:
        pages.ref_dec(pfn)
        raise
    leaf.set(0, pfn)
