"""Known-bad TLB fixture.

``zap_entry`` clears a present PTE and returns without any flush — a
stale translation survives on every CPU caching the mm.  The checker
must flag the normal exit.
"""

ENTRY_NONE = 0


def zap_entry(cost, leaf, index):
    leaf.entries[index] = ENTRY_NONE
    cost.charge_zap_entries(1)
    return leaf
