"""GOOD: every emitted tracepoint name is declared in the registry."""

from repro.trace import points


def emit_declared(vaddr, pfn):
    if points.enabled:
        points.tracepoint("fault.demand_zero", pfn=pfn)
        points.tracepoint("fault.spurious", vaddr=vaddr)
