"""Known-bad Mitosis replication fixture.

``replicate_table`` pins the first node's replica frame, then attempts
the second node's allocation — the ``mitosis.replica_alloc`` failpoint
may raise ``OutOfMemoryError`` — with no unwind handler.  On the raise
path the first replica's page reference (and its frame) leak; the
refcount rule must flag the exception exit.  This is the exact bug the
real ``MitosisState.replicate_table`` unwind loop exists to prevent.
"""


def replicate_table(kernel, pages, table):
    kernel.failpoints.hit("mitosis.replica_alloc")
    rpfn = kernel.allocator.alloc(0, node=1, strict=True)
    pages.ref_inc(rpfn)
    kernel.failpoints.hit("mitosis.replica_alloc")
    other = kernel.allocator.alloc(0, node=2, strict=True)
    pages.ref_inc(other)
    table.set(0, rpfn)
    table.set(1, other)
