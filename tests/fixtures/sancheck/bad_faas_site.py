"""Known-bad farm fail-point fixture: an unregistered ``faas.*`` site.

``spawn_template`` guards its allocation with a declared site, but
``cold_fork`` hits ``faas.cold_fork``, which is missing from the SITES
registry below — the checker must flag the undeclared name so the verify
harness's enumeration driver can trust the registry is complete.
"""

SITES = frozenset({"faas.template_alloc"})


def spawn_template(kernel):
    kernel.failpoints.hit("faas.template_alloc")
    return int(kernel.allocator.alloc(0))


def cold_fork(kernel):
    kernel.failpoints.hit("faas.cold_fork")
    return int(kernel.allocator.alloc(0))
