"""Known-bad fastpath-soundness fixture.

The slow path consults a (fake) ``compaction`` subsystem flag; the fast
path does not, and ``fast_path_ok`` neither tests the flag nor declares
it handled.  On a machine with compaction configured the fast path would
engage anyway and silently diverge — the checker must flag the guard.
"""

FASTPATH_REPLACES = {"fast_copy_range": "copy_range"}


def copy_range(kernel, mm, start, end):
    if kernel.compaction is not None:
        kernel.compaction.defrag(mm)
    n = end - start
    kernel.cost.charge_many(n)
    return n


def fast_copy_range(kernel, mm, start, end):
    n = end - start
    kernel.cost.charge_many(n)
    return n


def fast_path_ok(kernel):
    return kernel.fastpath and kernel.smp is None
