"""Known-good fastpath-soundness fixture: the guard tests the
``compaction`` flag the slow path consults, and the ``stats`` feature it
deliberately engages with is declared (with a why) in FASTPATH_HANDLED.
"""

FASTPATH_REPLACES = {"fast_copy_range": "copy_range"}

FASTPATH_HANDLED = {
    "stats": "the fast path bumps the same counters the slow path does",
}


def copy_range(kernel, mm, start, end):
    if kernel.compaction is not None:
        kernel.compaction.defrag(mm)
    if kernel.stats is not None:
        kernel.stats.pages_copied += 1
    n = end - start
    kernel.cost.charge_many(n)
    return n


def fast_copy_range(kernel, mm, start, end):
    if kernel.stats is not None:
        kernel.stats.pages_copied += 1
    n = end - start
    kernel.cost.charge_many(n)
    return n


def fast_path_ok(kernel):
    return (
        kernel.fastpath
        and kernel.smp is None
        and kernel.compaction is None
    )
