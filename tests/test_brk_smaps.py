"""brk (program break) and the /proc smaps report."""

import pytest

from repro import MIB, SegmentationFault
from repro.errors import InvalidArgumentError


class TestBrk:
    def test_initial_break(self, proc):
        base = proc.brk()
        assert base == proc.brk()  # stable query

    def test_grow_and_use(self, proc):
        base = proc.brk()
        new_end = proc.brk(base + 256 * 1024)
        assert new_end >= base + 256 * 1024
        proc.write(base, b"heap data")
        proc.write(new_end - 4096, b"top of heap")
        assert proc.read(base, 9) == b"heap data"

    def test_shrink_releases(self, proc, machine):
        base = proc.brk()
        proc.brk(base + 1 * MIB)
        proc.touch_range(base, 1 * MIB, write=True)
        live = machine.live_data_frames()
        proc.brk(base + 4096)
        assert machine.live_data_frames() < live
        with pytest.raises(SegmentationFault):
            proc.read(base + 512 * 1024, 1)

    def test_grow_after_shrink(self, proc):
        base = proc.brk()
        proc.brk(base + 64 * 1024)
        proc.write(base, b"one")
        proc.brk(base)
        proc.brk(base + 64 * 1024)
        assert proc.read(base, 3) == bytes(3)  # fresh zeroed heap

    def test_break_rounds_to_pages(self, proc):
        base = proc.brk()
        end = proc.brk(base + 100)
        assert end == base + 4096

    def test_window_limit(self, proc):
        base = proc.brk()
        with pytest.raises(InvalidArgumentError):
            proc.brk(base + (2 << 30))

    def test_heap_inherited_across_odfork(self, proc):
        base = proc.brk()
        proc.brk(base + 64 * 1024)
        proc.write(base, b"inherit me")
        child = proc.odfork()
        assert child.read(base, 10) == b"inherit me"
        child.write(base, b"child heap")
        assert proc.read(base, 10) == b"inherit me"


class TestSmaps:
    def test_reports_all_vmas(self, proc):
        a = proc.mmap(1 * MIB, name="one")
        b = proc.mmap(2 * MIB, name="two")
        report = {entry["name"]: entry for entry in proc.smaps()}
        assert report["one"]["size_bytes"] == 1 * MIB
        assert report["two"]["size_bytes"] == 2 * MIB
        assert report["one"]["rss_bytes"] == 0

    def test_rss_tracks_touches(self, proc):
        addr = proc.mmap(1 * MIB, name="tracked")
        proc.touch_range(addr, 256 * 1024, write=True)
        entry = next(e for e in proc.smaps() if e["name"] == "tracked")
        assert entry["rss_bytes"] == 256 * 1024

    def test_perms_string(self, proc, machine):
        from repro import PROT_READ
        ro = proc.mmap(64 * 1024, prot=PROT_READ, name="ro")
        sh = proc.mmap_shared(64 * 1024)
        report = proc.smaps()
        perms = {e["name"]: e["perms"] for e in report}
        assert perms["ro"] == "r-p"
        shared_entries = [e for e in report if e["perms"].endswith("s")]
        assert shared_entries

    def test_smaps_sums_match_rss(self, proc):
        addr = proc.mmap(4 * MIB, name="big")
        proc.touch_range(addr, 3 * MIB, write=True)
        total = sum(e["rss_bytes"] for e in proc.smaps())
        assert total == proc.rss_bytes

    def test_huge_mapping_rss(self, machine):
        p = machine.spawn_process("huge-smaps")
        addr = p.mmap_huge(4 * MIB)
        p.write(addr, b"x")
        entry = p.smaps()[0]
        assert entry["rss_bytes"] == 2 * MIB
