"""Serializable syscall traces: generation, JSON round-trip, execution.

A *trace* is a JSON document — ``{"format": 1, "seed": S, "ops": [...]}``
— whose ops range over the whole syscall surface (mmap/munmap/mprotect/
read/write/touch/fork/odfork/snapshot/restore/mremap/madvise/khugepaged/
kswapd/exit).  Ops reference trace-level ids (proc 0, region 3, snap 1),
never machine addresses or pids, so one trace replays identically on any
:class:`~repro.core.machine.Machine` configuration — that is what lets
the oracle diff an odfork machine against a classic-fork machine op by op.

Two properties are load-bearing:

* **Any subsequence of a trace is a valid trace.**  The executor skips an
  op whose referenced proc/region/snapshot does not exist (or is dead),
  so the delta-debugging shrinker can drop arbitrary ops.
* **Skip decisions are machine-independent.**  They consult only the
  executor's own bookkeeping (which ids were created/destroyed by *ok*
  outcomes), never kernel state, so paired machines always agree on what
  runs — any disagreement shows up as an outcome divergence first.

Snapshot restriction: ops that delete or move leaf tables out from under
a live snapshot (munmap/mremap/MADV_DONTNEED/khugepaged on that process)
are *skipped by the executor* while the process has a live snapshot —
this makes the restriction part of trace semantics rather than a
generator convention, which keeps shrunk subsequences valid.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from pathlib import Path

from ..core.machine import Machine
from ..errors import (
    BusError,
    InvalidArgumentError,
    OutOfMemoryError,
    ProcessError,
    SegmentationFault,
)
from ..kernel.kernel import MADV_DONTNEED, MADV_HUGEPAGE
from ..kernel.vma import PROT_NONE, PROT_READ, PROT_WRITE
from ..mem.page import HUGE_PAGE_SIZE, PAGE_SIZE
from ..paging.entries import (
    entry_pfn,
    is_huge,
    is_present,
    is_swap_entry,
    swap_entry_slot,
)
from ..paging.table import LEVEL_PTE, table_index
from .audit import audit_machine

TRACE_FORMAT = 1

#: Machine sizing for verify runs: small enough to be fast, large enough
#: that traces never hit *organic* memory pressure (which would make RSS
#: depend on eviction order and differ legitimately across the pair);
#: allocation-failure paths are exercised by fail points instead.
DEFAULT_MACHINE = {"phys_mb": 64, "swap_mb": 16}

#: Syscall errors are legal outcomes — caught, tagged, and compared.
#: Anything else (KernelBug, accounting assertion) is a crash finding.
_EXPECTED_ERRORS = (SegmentationFault, BusError, InvalidArgumentError,
                    OutOfMemoryError, ProcessError)

_ZERO_PAGE = bytes(PAGE_SIZE)

_PROT = {
    "rw": PROT_READ | PROT_WRITE,
    "r": PROT_READ,
    "none": PROT_NONE,
}


def make_machine(smp=None, **overrides):
    """A deterministic machine with the verify sizing defaults."""
    cfg = dict(DEFAULT_MACHINE)
    cfg.update(overrides)
    return Machine(smp=smp, **cfg)


# --------------------------------------------------------------------- #
# JSON round-trip


def save_trace(trace, path):
    """Write a trace as JSON; creates parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace, indent=1) + "\n")
    return path


def load_trace(path):
    """Read a trace written by :func:`save_trace`."""
    trace = json.loads(Path(path).read_text())
    if trace.get("format") != TRACE_FORMAT:
        raise ValueError(f"unknown trace format {trace.get('format')!r}")
    return trace


# --------------------------------------------------------------------- #
# Random generation


def generate_trace(seed, n_ops=32, max_procs=4, max_regions=6):
    """A random but well-formed trace over the full op surface.

    The generator mirrors the executor's bookkeeping (assuming success),
    so generated ops almost always reference live ids — skips appear only
    in shrunk subsequences.  Every trace opens with a mapped, written
    region on the root process so forks have state to diverge over.
    """
    rng = random.Random(seed)
    ops = []
    procs = {0: {"regions": {}, "alive": True, "locked": False}}
    region_meta = {}          # rid -> huge?
    live_snaps = {}           # sid -> proc
    counters = {"region": 0, "proc": 1, "snap": 0}
    budgets = {"huge": 2, "thp": 1}

    def live():
        return [p for p in procs if procs[p]["alive"]]

    def with_regions(unlocked=False):
        return [p for p in live() if procs[p]["regions"]
                and not (unlocked and procs[p]["locked"])]

    def emit_mmap(pid, huge=False, pages=None):
        rid = counters["region"]
        counters["region"] += 1
        if pages is None:
            pages = 1 if huge else rng.randint(1, 12)
        ops.append({"op": "mmap", "proc": pid, "region": rid,
                    "pages": pages, "huge": huge})
        procs[pid]["regions"][rid] = pages
        region_meta[rid] = huge
        return rid

    def pick_region(pid, no_huge=False):
        rids = [r for r in procs[pid]["regions"]
                if not (no_huge and region_meta[r])]
        return rng.choice(rids) if rids else None

    def emit_range_op(kind, pid, rid, whole=False, **extra):
        pages = procs[pid]["regions"][rid]
        if whole or region_meta[rid]:
            lo, hi = 0, pages
        else:
            lo = rng.randrange(pages)
            hi = rng.randint(lo + 1, pages)
        ops.append({"op": kind, "proc": pid, "region": rid,
                    "lo": lo, "hi": hi, **extra})
        return lo, hi

    # Opening: state for forks to diverge over.
    r0 = emit_mmap(0)
    emit_range_op("touch", 0, r0, whole=True, write=True)
    ops.append({"op": "write", "proc": 0, "region": r0,
                "page": rng.randrange(procs[0]["regions"][r0]),
                "val": rng.randrange(1 << 32)})

    while len(ops) < n_ops:
        actions = []
        if with_regions():
            actions += [("write", 6), ("read", 4), ("touch", 2),
                        ("mprotect", 1), ("snapshot", 1)]
            if len(procs) < max_procs:
                actions += [("fork", 3), ("odfork", 1)]
        if len(region_meta) < max_regions:
            actions.append(("mmap", 3))
            if budgets["huge"]:
                actions.append(("mmap_huge", 1))
            if budgets["thp"]:
                actions.append(("thp", 1))
        if with_regions(unlocked=True):
            actions += [("munmap", 1), ("mremap", 1), ("dontneed", 1)]
        if len(live()) > 1:
            actions.append(("exit", 1))
        if live_snaps:
            actions += [("restore", 2), ("discard", 1)]
        actions.append(("kswapd", 1))

        kind = rng.choices([a for a, _ in actions],
                           [w for _, w in actions])[0]

        if kind == "mmap":
            emit_mmap(rng.choice(live()))
        elif kind == "mmap_huge":
            budgets["huge"] -= 1
            pid = rng.choice(live())
            rid = emit_mmap(pid, huge=True)
            emit_range_op("touch", pid, rid, whole=True, write=True)
        elif kind == "thp":
            # A region large enough to contain a full aligned 2 MiB slot,
            # fully populated, advised, then promoted.
            budgets["thp"] -= 1
            pid = rng.choice([p for p in live() if not procs[p]["locked"]]
                             or live())
            rid = emit_mmap(pid, pages=1024)
            emit_range_op("touch", pid, rid, whole=True, write=True)
            ops.append({"op": "madvise_hugepage", "proc": pid, "region": rid})
            ops.append({"op": "khugepaged", "proc": pid})
        elif kind == "write":
            pid = rng.choice(with_regions())
            rid = pick_region(pid)
            ops.append({"op": "write", "proc": pid, "region": rid,
                        "page": rng.randrange(procs[pid]["regions"][rid]),
                        "val": rng.randrange(1 << 32)})
        elif kind == "read":
            pid = rng.choice(with_regions())
            rid = pick_region(pid)
            ops.append({"op": "read", "proc": pid, "region": rid,
                        "page": rng.randrange(procs[pid]["regions"][rid]),
                        "val": rng.randrange(1 << 32)})
        elif kind == "touch":
            pid = rng.choice(with_regions())
            emit_range_op("touch", pid, pick_region(pid),
                          write=rng.random() < 0.7)
        elif kind == "mprotect":
            pid = rng.choice(with_regions())
            prot = rng.choices(["rw", "r", "none"], [2, 1, 1])[0]
            emit_range_op("mprotect", pid, pick_region(pid), prot=prot)
        elif kind in ("fork", "odfork"):
            pid = rng.choice(with_regions())
            child = counters["proc"]
            counters["proc"] += 1
            ops.append({"op": kind, "proc": pid, "child": child})
            procs[child] = {
                "regions": dict(procs[pid]["regions"]),
                "alive": True, "locked": False,
            }
        elif kind == "exit":
            pid = rng.choice(live())
            ops.append({"op": "exit", "proc": pid})
            procs[pid]["alive"] = False
        elif kind == "munmap":
            pid = rng.choice(with_regions(unlocked=True))
            rid = pick_region(pid)
            pages = procs[pid]["regions"][rid]
            lo, hi = emit_range_op("munmap", pid, rid)
            if lo == 0 and hi == pages:
                del procs[pid]["regions"][rid]
        elif kind == "mremap":
            pid = rng.choice(with_regions(unlocked=True))
            rid = pick_region(pid, no_huge=True)
            if rid is None:
                continue
            new_pages = rng.randint(1, 16)
            ops.append({"op": "mremap", "proc": pid, "region": rid,
                        "new_pages": new_pages})
            procs[pid]["regions"][rid] = new_pages
        elif kind == "dontneed":
            pid = rng.choice(with_regions(unlocked=True))
            emit_range_op("madvise_dontneed", pid, pick_region(pid))
        elif kind == "snapshot":
            pid = rng.choice(with_regions())
            sid = counters["snap"]
            counters["snap"] += 1
            ops.append({"op": "snapshot", "proc": pid, "snap": sid})
            live_snaps[sid] = pid
            procs[pid]["locked"] = True
        elif kind == "restore":
            sid = rng.choice(list(live_snaps))
            ops.append({"op": "restore", "snap": sid})
        elif kind == "discard":
            sid = rng.choice(list(live_snaps))
            ops.append({"op": "discard", "snap": sid})
            pid = live_snaps.pop(sid)
            if pid not in live_snaps.values():
                procs[pid]["locked"] = False
        elif kind == "kswapd":
            ops.append({"op": "kswapd"})

    return {"format": TRACE_FORMAT, "seed": seed, "ops": ops[:n_ops]}


# --------------------------------------------------------------------- #
# Execution


@dataclass
class RunResult:
    """What one executor observed running one trace."""

    outcomes: list = field(default_factory=list)
    captures: dict = field(default_factory=dict)   # op index -> state dict
    audits: dict = field(default_factory=dict)     # op index -> [errors]
    crash: tuple | None = None                     # (op index, message)


class TraceExecutor:
    """Runs a trace on one machine, recording comparable outcomes.

    ``flavor`` decides what a trace-level ``fork`` op performs: the
    ``"odfork"`` executor uses on-demand fork where the ``"classic"``
    executor uses eager copies — the differential axis.  Explicit
    ``odfork`` ops use on-demand fork on both.
    """

    #: Op kinds after which observable state is captured (machine-
    #: independent trigger: kind only, never outcome).
    CAPTURE_KINDS = frozenset({"fork", "odfork", "exit", "restore"})

    #: Ops skipped while their process has a live snapshot (they would
    #: delete or move leaf tables the snapshot indexes by identity).
    SNAP_LOCKED_KINDS = frozenset({
        "munmap", "mremap", "madvise_dontneed", "khugepaged",
    })

    def __init__(self, machine, flavor="classic"):
        if flavor not in ("classic", "odfork"):
            raise ValueError(f"unknown flavor {flavor!r}")
        self.machine = machine
        self.flavor = flavor
        self.procs = {}        # trace pid -> {process, regions, alive}
        self.snaps = {}        # trace sid -> {proc, snap, live}
        self.region_meta = {}  # trace rid -> {"huge": bool}
        root = machine.spawn_process("t0")
        self.procs[0] = {"process": root, "regions": {}, "alive": True}

    # ---- driving ---------------------------------------------------------

    def run(self, trace, capture=True, audit=True):
        """Execute every op; returns a :class:`RunResult`."""
        ops = trace["ops"]
        result = RunResult()
        for i, op in enumerate(ops):
            try:
                result.outcomes.append(self.execute(op))
            except Exception as exc:  # KernelBug / accounting assertions
                result.crash = (i, f"{type(exc).__name__}: {exc}")
                return result
            if op.get("op") in self.CAPTURE_KINDS:
                if capture:
                    result.captures[i] = self.capture_state()
                if audit:
                    result.audits[i] = self._audit()
        if capture:
            result.captures[len(ops)] = self.capture_state()
        if audit:
            result.audits[len(ops)] = self._audit()
        return result

    def execute(self, op):
        """One op; returns an outcome tuple (``("skip",)``, ``("ok", ...)``
        or ``("err", ExcName)``)."""
        handler = getattr(self, "_op_" + op.get("op", ""), None)
        if handler is None:
            return ("skip",)
        try:
            return handler(op)
        except _EXPECTED_ERRORS as exc:
            return ("err", type(exc).__name__)

    def finish(self):
        """Discard surviving snapshots and exit every live process."""
        for rec in self.snaps.values():
            if rec["live"]:
                rec["snap"].discard()
                rec["live"] = False
        for pid in sorted(self.procs, reverse=True):
            st = self.procs[pid]
            if st["alive"]:
                st["process"].exit()
                st["alive"] = False

    # ---- bookkeeping helpers --------------------------------------------

    def _live(self, pid):
        st = self.procs.get(pid)
        return st if st is not None and st["alive"] else None

    def _region(self, st, rid):
        entry = st["regions"].get(rid)
        if entry is None:
            return None
        granule = HUGE_PAGE_SIZE if self.region_meta[rid]["huge"] else PAGE_SIZE
        return entry[0], entry[1], granule

    def _snap_locked(self, pid):
        return any(rec["live"] and rec["proc"] == pid
                   for rec in self.snaps.values())

    def _range(self, op, pages):
        lo = op["lo"] % pages
        hi = max(lo + 1, min(op["hi"], pages))
        return lo, hi

    # ---- op handlers -----------------------------------------------------

    def _op_mmap(self, op):
        st = self._live(op["proc"])
        if st is None or op["region"] in self.region_meta:
            return ("skip",)
        huge = bool(op.get("huge"))
        pages = max(1, int(op["pages"]))
        if huge:
            addr = st["process"].mmap_huge(pages * HUGE_PAGE_SIZE)
        else:
            addr = st["process"].mmap(pages * PAGE_SIZE)
        self.region_meta[op["region"]] = {"huge": huge}
        st["regions"][op["region"]] = [addr, pages]
        return ("ok", addr)

    def _op_write(self, op):
        st = self._live(op["proc"])
        spec = st and self._region(st, op["region"])
        if not spec:
            return ("skip",)
        addr, pages, granule = spec
        offset = (op["val"] * 2654435761) % (granule - 8)
        st["process"].write(addr + (op["page"] % pages) * granule + offset,
                            op["val"].to_bytes(8, "little"))
        return ("ok",)

    def _op_read(self, op):
        st = self._live(op["proc"])
        spec = st and self._region(st, op["region"])
        if not spec:
            return ("skip",)
        addr, pages, granule = spec
        offset = (op["val"] * 40503) % (granule - 32)
        data = st["process"].read(
            addr + (op["page"] % pages) * granule + offset, 32)
        return ("ok", hashlib.sha256(data).hexdigest()[:12])

    def _op_touch(self, op):
        st = self._live(op["proc"])
        spec = st and self._region(st, op["region"])
        if not spec:
            return ("skip",)
        addr, pages, granule = spec
        lo, hi = self._range(op, pages)
        st["process"].touch_range(addr + lo * granule, (hi - lo) * granule,
                                  write=bool(op.get("write", True)))
        return ("ok",)

    def _op_mprotect(self, op):
        st = self._live(op["proc"])
        spec = st and self._region(st, op["region"])
        if not spec or op.get("prot") not in _PROT:
            return ("skip",)
        addr, pages, granule = spec
        lo, hi = self._range(op, pages)
        st["process"].mprotect(addr + lo * granule, (hi - lo) * granule,
                               _PROT[op["prot"]])
        return ("ok",)

    def _op_munmap(self, op):
        st = self._live(op["proc"])
        spec = st and self._region(st, op["region"])
        if not spec or self._snap_locked(op["proc"]):
            return ("skip",)
        addr, pages, granule = spec
        lo, hi = self._range(op, pages)
        st["process"].munmap(addr + lo * granule, (hi - lo) * granule)
        if lo == 0 and hi == pages:
            del st["regions"][op["region"]]
        return ("ok",)

    def _op_mremap(self, op):
        st = self._live(op["proc"])
        spec = st and self._region(st, op["region"])
        if not spec or self._snap_locked(op["proc"]):
            return ("skip",)
        addr, pages, granule = spec
        new_pages = max(1, int(op["new_pages"]))
        new_addr = st["process"].mremap(addr, pages * granule,
                                        new_pages * granule)
        st["regions"][op["region"]] = [new_addr, new_pages]
        return ("ok", new_addr)

    def _op_madvise_dontneed(self, op):
        st = self._live(op["proc"])
        spec = st and self._region(st, op["region"])
        if not spec or self._snap_locked(op["proc"]):
            return ("skip",)
        addr, pages, granule = spec
        lo, hi = self._range(op, pages)
        st["process"].madvise(addr + lo * granule, (hi - lo) * granule,
                              MADV_DONTNEED)
        return ("ok",)

    def _op_madvise_hugepage(self, op):
        st = self._live(op["proc"])
        spec = st and self._region(st, op["region"])
        if not spec:
            return ("skip",)
        addr, pages, granule = spec
        st["process"].madvise(addr, pages * granule, MADV_HUGEPAGE)
        return ("ok",)

    def _op_khugepaged(self, op):
        st = self._live(op["proc"])
        if st is None or self._snap_locked(op["proc"]):
            return ("skip",)
        promoted = self.machine.run_khugepaged(st["process"],
                                               max_promotions=2)
        return ("ok", promoted)

    def _op_kswapd(self, op):
        self.machine.run_kswapd()
        return ("ok",)

    def _op_fork(self, op):
        return self._fork(op, use_odf=self.flavor == "odfork")

    def _op_odfork(self, op):
        return self._fork(op, use_odf=True)

    def _fork(self, op, use_odf):
        st = self._live(op["proc"])
        if st is None or op["child"] in self.procs:
            return ("skip",)
        parent = st["process"]
        child = parent.odfork() if use_odf else parent.fork()
        self.procs[op["child"]] = {
            "process": child, "alive": True,
            "regions": {rid: list(v) for rid, v in st["regions"].items()},
        }
        return ("ok",)

    def _op_exit(self, op):
        st = self._live(op["proc"])
        if st is None:
            return ("skip",)
        st["process"].exit()
        st["alive"] = False
        return ("ok",)

    def _op_snapshot(self, op):
        st = self._live(op["proc"])
        if st is None or op["snap"] in self.snaps:
            return ("skip",)
        snap = st["process"].snapshot()
        self.snaps[op["snap"]] = {"proc": op["proc"], "snap": snap,
                                  "live": True}
        return ("ok",)

    def _op_restore(self, op):
        rec = self.snaps.get(op["snap"])
        if rec is None or not rec["live"]:
            return ("skip",)
        rec["snap"].restore()
        return ("ok",)

    def _op_discard(self, op):
        rec = self.snaps.get(op["snap"])
        if rec is None or not rec["live"]:
            return ("skip",)
        rec["snap"].discard()
        rec["live"] = False
        return ("ok",)

    # ---- observable-state capture ---------------------------------------

    def capture_state(self):
        """Digest every live process's logical memory plus RSS invariants.

        The logical view is read by a *non-mutating* page-table walk:
        absent pages read as zeros, swap entries read from the swap
        device, huge entries at their sub-frame offset — so identical
        application-visible memory hashes identically no matter how it
        is physically represented (resident, COW-shared, or swapped).
        """
        state = {"procs": {}, "pgsteal": self.machine.kernel.stats.pgsteal}
        for pid in sorted(self.procs):
            st = self.procs[pid]
            if not st["alive"]:
                continue
            regions = {}
            for rid in sorted(st["regions"]):
                addr, pages = st["regions"][rid]
                granule = (HUGE_PAGE_SIZE if self.region_meta[rid]["huge"]
                           else PAGE_SIZE)
                regions[rid] = self._region_digest(st["process"], addr,
                                                   pages * granule)
            state["procs"][pid] = {
                "regions": regions,
                "rss": st["process"].rss_bytes,
                "smaps_consistent": self._smaps_consistent(st["process"]),
            }
        return state

    def _region_digest(self, process, addr, nbytes):
        kernel = self.machine.kernel
        mm = process.mm
        digest = hashlib.sha256()
        for offset in range(0, nbytes, PAGE_SIZE):
            digest.update(self._logical_page(kernel, mm, addr + offset))
        return digest.hexdigest()[:16]

    @staticmethod
    def _logical_page(kernel, mm, vaddr):
        walked = mm.walk_to_pmd(vaddr, alloc=False)
        if walked is None:
            return _ZERO_PAGE
        pmd_table, pmd_index = walked
        entry = pmd_table.entries[pmd_index]
        if not is_present(entry):
            return _ZERO_PAGE
        if is_huge(entry):
            sub = (vaddr % HUGE_PAGE_SIZE) // PAGE_SIZE
            return kernel.phys.read(int(entry_pfn(entry)) + sub, 0, PAGE_SIZE)
        leaf = mm.resolve(int(entry_pfn(entry)))
        pte = leaf.entries[table_index(vaddr, LEVEL_PTE)]
        if is_present(pte):
            return kernel.phys.read(int(entry_pfn(pte)), 0, PAGE_SIZE)
        if is_swap_entry(pte):
            data = kernel.swap.read(int(swap_entry_slot(pte)))
            return data if data is not None else _ZERO_PAGE
        return _ZERO_PAGE

    def _smaps_consistent(self, process):
        """Internal invariant: per-VMA residency sums to the RSS counter."""
        resident = sum(v["rss_bytes"] for v in process.smaps())
        return resident == process.status()["vm_rss_bytes"]

    def _audit(self):
        try:
            audit_machine(self.machine)
        except AssertionError as exc:
            return [str(exc)]
        return []
