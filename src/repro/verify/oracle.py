"""Differential oracle: paired-machine execution and fail-point sweeps.

Two checking modes, both driven by the traces in :mod:`repro.verify.trace`:

* :func:`check_trace` runs one trace on three machines — an *odfork*
  machine (trace-level ``fork`` ops use on-demand fork), a *classic*
  machine (eager copies), and a classic machine with the deterministic
  SMP scheduler enabled — and diffs what each observed: per-op outcomes,
  per-process logical-memory digests, RSS invariants, and the
  from-first-principles :func:`~repro.verify.audit.audit_machine` result
  at every capture point.  The paper's central claim is that odfork is
  *semantically invisible*; any divergence here falsifies it.

* :func:`enumerate_failpoints` records how often each fail-point site
  (``kernel.failpoints``) is hit by a trace, then re-runs the trace once
  per (site, Nth-hit) with that allocation forced to fail — asserting the
  kernel either surfaces a clean ``OutOfMemoryError`` or succeeds, and in
  both cases tears down to a zero-leak machine (one live table frame: the
  init PGD; no used data frames beyond the page cache; no referenced swap
  slots).

Outcome comparison stops at the first divergence: after it, the paired
executors' bookkeeping may legitimately disagree, so later diffs would
be noise.  An asymmetric ``OutOfMemoryError`` is classified separately
(``oom-divergence``) — resource headroom differs across copy strategies
by design, so it is inconclusive rather than a semantic failure; the
verify machine sizing makes it effectively unreachable in practice.
"""

from __future__ import annotations

from dataclasses import dataclass

from .audit import audit_machine
from .trace import TraceExecutor, make_machine


@dataclass
class Finding:
    """One oracle verdict; ``kind`` is one of outcome / state / invariant /
    audit / crash / leak / oom-divergence."""

    kind: str
    op_index: int
    detail: str
    pair: str

    def __str__(self):
        return f"[{self.pair}] {self.kind} at op {self.op_index}: {self.detail}"


def is_hard(finding):
    """Everything except resource-asymmetry noise is a real failure."""
    return finding.kind != "oom-divergence"


# --------------------------------------------------------------------- #
# Differential execution


def run_differential(trace, flavor, smp=None, **overrides):
    """Execute ``trace`` on a fresh machine; returns (executor, RunResult)."""
    executor = TraceExecutor(make_machine(smp=smp, **overrides), flavor=flavor)
    return executor, executor.run(trace)


def compare_runs(trace, res_a, res_b, pair, name_a="A", name_b="B"):
    """Diff two RunResults of the same trace; returns Findings."""
    findings = []
    for name, res in ((name_a, res_a), (name_b, res_b)):
        if res.crash is not None:
            findings.append(Finding("crash", res.crash[0],
                                    f"machine {name}: {res.crash[1]}", pair))
    if findings:
        return findings

    for name, res in ((name_a, res_a), (name_b, res_b)):
        for index in sorted(res.audits):
            for error in res.audits[index]:
                findings.append(Finding("audit", index,
                                        f"machine {name}: {error}", pair))
    if findings:
        return findings

    for i, (a, b) in enumerate(zip(res_a.outcomes, res_b.outcomes)):
        if a == b:
            continue
        if ("err", "OutOfMemoryError") in (a, b):
            findings.append(Finding(
                "oom-divergence", i,
                f"{name_a}={a} vs {name_b}={b} (resource asymmetry)", pair))
        else:
            findings.append(Finding(
                "outcome", i,
                f"{trace['ops'][i]} -> {name_a}={a} vs {name_b}={b}", pair))
        return findings

    for index in sorted(res_a.captures):
        findings.extend(_diff_state(index, res_a.captures[index],
                                    res_b.captures[index], pair,
                                    name_a, name_b))
        if findings:
            return findings
    return findings


def _diff_state(index, state_a, state_b, pair, name_a, name_b):
    findings = []
    procs_a, procs_b = state_a["procs"], state_b["procs"]
    if set(procs_a) != set(procs_b):
        return [Finding("state", index,
                        f"live procs {sorted(procs_a)} vs {sorted(procs_b)}",
                        pair)]
    # A process's smaps disagreeing with its RSS counter is an invariant
    # violation on that machine alone — flag it even if both sides match.
    for name, procs in ((name_a, procs_a), (name_b, procs_b)):
        for pid, snap in procs.items():
            if not snap["smaps_consistent"]:
                findings.append(Finding(
                    "invariant", index,
                    f"machine {name} proc {pid}: smaps sum != VmRSS", pair))
    if findings:
        return findings
    for pid in sorted(procs_a):
        regions_a = procs_a[pid]["regions"]
        regions_b = procs_b[pid]["regions"]
        for rid in sorted(regions_a):
            if regions_a[rid] != regions_b[rid]:
                return [Finding(
                    "state", index,
                    f"proc {pid} region {rid} memory differs: "
                    f"{name_a}={regions_a[rid]} vs {name_b}={regions_b[rid]}",
                    pair)]
    # RSS is only comparable while neither machine has reclaimed (eviction
    # picks are machine-local); the verify sizing keeps pgsteal at 0.
    if state_a["pgsteal"] == 0 and state_b["pgsteal"] == 0:
        for pid in sorted(procs_a):
            if procs_a[pid]["rss"] != procs_b[pid]["rss"]:
                return [Finding(
                    "state", index,
                    f"proc {pid} RSS {name_a}={procs_a[pid]['rss']} vs "
                    f"{name_b}={procs_b[pid]['rss']} with no reclaim", pair)]
    return findings


def check_trace(trace, smp=2, include_smp=True):
    """Run the full differential battery on one trace; returns Findings."""
    _, classic = run_differential(trace, "classic")
    _, odfork = run_differential(trace, "odfork")
    findings = compare_runs(trace, odfork, classic, "odfork-vs-classic",
                            name_a="odfork", name_b="classic")
    if include_smp:
        _, smp_run = run_differential(trace, "classic", smp=smp)
        findings += compare_runs(trace, smp_run, classic, "smp-vs-plain",
                                 name_a=f"smp={smp}", name_b="plain")
    return findings


def check_trace_sanitized(trace, smp=2):
    """Run one trace under the dynamic sanitizers; returns Findings.

    Three legs: a KASAN machine per flavor (classic and odfork — frame
    poisoning, quarantine, and UAF/double-free checks live for every
    alloc/free the trace drives) and a KCSAN machine sampling data races
    under the deterministic SMP scheduler.  Sanitizer reports arrive as
    crash findings (:class:`~repro.errors.SanitizerError` subclasses
    ``KernelBug``); the KASAN legs additionally drain the quarantine,
    detach the sanitizer, and re-run the leak check — quarantined frames
    count as allocated, so leak accounting needs the real frees.
    """
    findings = []
    for flavor in ("classic", "odfork"):
        tag = f"kasan:{flavor}"
        machine = make_machine(sanitize="kasan")
        executor = TraceExecutor(machine, flavor=flavor)
        result = executor.run(trace, capture=False, audit=False)
        if result.crash is not None:
            findings.append(Finding("crash", result.crash[0],
                                    result.crash[1], tag))
            continue
        machine.kasan.flush()
        machine.allocator.sanitizer = None
        machine.phys.sanitizer = None
        findings.extend(Finding("leak", len(trace["ops"]), error, tag)
                        for error in check_clean_shutdown(executor))
    machine = make_machine(smp=smp, sanitize="kcsan")
    executor = TraceExecutor(machine, flavor="classic")
    result = executor.run(trace, capture=False, audit=False)
    if result.crash is not None:
        findings.append(Finding("crash", result.crash[0], result.crash[1],
                                f"kcsan:smp={smp}"))
    return findings


def check_trace_traced(trace, flavors=("classic", "odfork")):
    """Tracing must be invisible: paired plain vs traced runs per flavor.

    The ktrace tracepoints (:mod:`repro.trace`) sit on the kernel's
    hottest paths; this audit runs the same trace with and without an
    attached tracer and diffs everything the oracle can see — outcomes,
    memory digests, audits, and the final vmstat counters.  Any
    divergence means instrumentation perturbed the kernel (the exact bug
    class the ``if points.enabled`` guard discipline exists to prevent).
    A traced run that emits zero events is also a finding: a dead tracer
    would make this audit vacuous.
    """
    from ..trace import points
    from ..trace.tracer import Tracer

    findings = []
    for flavor in flavors:
        pair = f"traced-vs-plain:{flavor}"
        exec_plain, plain = run_differential(trace, flavor)
        tracer = Tracer()
        prev = points.current()
        points.attach(tracer)
        try:
            exec_traced, traced = run_differential(trace, flavor)
        finally:
            points.detach()
            if prev is not None:
                points.attach(prev)
        findings += compare_runs(trace, traced, plain, pair,
                                 name_a="traced", name_b="plain")
        if findings:
            return findings
        vm_plain = exec_plain.machine.vmstat()
        vm_traced = exec_traced.machine.vmstat()
        if vm_plain != vm_traced:
            moved = sorted(k for k in set(vm_plain) | set(vm_traced)
                           if vm_plain.get(k) != vm_traced.get(k))
            findings.append(Finding(
                "state", len(trace["ops"]),
                f"vmstat diverges with tracing enabled: {moved}", pair))
        if tracer.emitted == 0 and len(trace["ops"]) > 0:
            findings.append(Finding(
                "audit", 0, "tracer attached but no events emitted — "
                "the side-effect audit checked nothing", pair))
    return findings


def check_trace_numa(trace, nodes=2, policies=None):
    """The NUMA differential battery: flat vs NUMA-shared vs replicated.

    NUMA placement and Mitosis page-table replication are *performance*
    mechanisms: a trace must produce identical outcomes, logical-memory
    digests, RSS, and audits on a flat machine, a NUMA machine with
    shared tables, and a NUMA machine with per-node replicas under every
    ``odfork_replica_policy`` — only virtual-time costs may differ.  Each
    NUMA machine is then torn down and leak-checked, which exercises the
    replica-collapse path for every table the trace created.
    """
    from ..numa.topology import NumaTopology, REPLICA_POLICIES

    if policies is None:
        policies = REPLICA_POLICIES
    findings = []
    _, flat = run_differential(trace, "odfork")
    exec_shared, shared = run_differential(
        trace, "odfork", numa=NumaTopology(nodes=nodes))
    findings += compare_runs(trace, shared, flat, "numa-shared-vs-flat",
                             name_a="numa-shared", name_b="flat")
    if findings:
        return findings
    executors = [("numa-shared", exec_shared)]
    for policy in policies:
        tag = f"numa-replicated:{policy}"
        exec_repl, repl = run_differential(
            trace, "odfork",
            numa=NumaTopology(nodes=nodes, replicate=True,
                              odfork_replica_policy=policy))
        findings += compare_runs(trace, repl, shared, f"{tag}-vs-shared",
                                 name_a=f"replicated:{policy}",
                                 name_b="numa-shared")
        if findings:
            return findings
        executors.append((tag, exec_repl))
    for tag, executor in executors:
        findings.extend(Finding("leak", len(trace["ops"]), error, tag)
                        for error in check_clean_shutdown(executor))
    return findings


def check_trace_equivalence(trace, flavors=("classic", "odfork")):
    """The analytic-fast-path battery: fastpath-on vs per-event machines.

    :mod:`repro.kernel.fastpath` claims to be *bit-identical* to the
    per-event kernel paths it replaces — same outcomes, same logical
    memory, same RSS, same vmstat counters, and (the strongest claim)
    the same virtual clock, because every skipped per-event charge is
    re-aggregated through the same noise stream.  This leg runs each
    trace on a paired machine per fork flavor — one with the fast path
    enabled (the default), one forced per-event via
    ``Machine(fastpath=False)`` — and diffs everything the oracle can
    see, then tears both down and leak-checks them (teardown itself has
    a fast path to prove equivalent).
    """
    findings = []
    for flavor in flavors:
        pair = f"fastpath-vs-perevent:{flavor}"
        exec_fast, fast = run_differential(trace, flavor)
        exec_slow, slow = run_differential(trace, flavor, fastpath=False)
        findings += compare_runs(trace, fast, slow, pair,
                                 name_a="fastpath", name_b="per-event")
        if findings:
            return findings
        vm_fast = exec_fast.machine.vmstat()
        vm_slow = exec_slow.machine.vmstat()
        if vm_fast != vm_slow:
            moved = sorted(k for k in set(vm_fast) | set(vm_slow)
                           if vm_fast.get(k) != vm_slow.get(k))
            return [Finding("state", len(trace["ops"]),
                            f"vmstat diverges with the fast path: {moved}",
                            pair)]
        ns_fast = exec_fast.machine.kernel.clock.now_ns
        ns_slow = exec_slow.machine.kernel.clock.now_ns
        if ns_fast != ns_slow:
            return [Finding("state", len(trace["ops"]),
                            f"virtual clock diverges: fastpath={ns_fast} vs "
                            f"per-event={ns_slow} "
                            f"(delta {ns_fast - ns_slow} ns)", pair)]
        for tag, executor in ((f"{pair}:fast", exec_fast),
                              (f"{pair}:per-event", exec_slow)):
            findings.extend(Finding("leak", len(trace["ops"]), error, tag)
                            for error in check_clean_shutdown(executor))
        if findings:
            return findings
    return findings


#: Fail-point sites on the bulk paths the fast path vectorises; arming any
#: of them sets ``failpoints.active``, which *disengages* the fast path —
#: the armed sweep proves the resulting per-event unwind is identical on a
#: machine that had the fast path enabled and one that never did.
EQUIVALENCE_FAILPOINT_SITES = frozenset({
    "fork.upper_table", "fork.copy_slot", "bulkops.fill_absent",
    "bulkops.bulk_cow", "bulkops.leaf_table", "odfork.share_table",
})


def enumerate_equivalence_failpoints(trace, flavor="classic",
                                     max_hits_per_site=3):
    """Paired armed runs: OOM unwinds must not depend on the fastpath knob.

    For each (site, Nth-hit) the sweep arms the same failure on two
    machines — fast path enabled and disabled — and requires the same
    crash-or-survival verdict plus a leak-free teardown on both.  Since
    arming makes :func:`~repro.kernel.fastpath.fast_path_ok` bail, this
    pins down the engagement predicate itself: a fast path that kept
    running with failpoints armed would skip the injected failure and
    diverge here.
    """
    overrides = {"fastpath": True}
    machine = make_machine(**overrides)
    failpoints = machine.kernel.failpoints
    recorder = TraceExecutor(machine, flavor=flavor)
    failpoints.record()
    recording = recorder.run(trace, capture=False, audit=False)
    failpoints.disarm()
    counts = {site: n for site, n in failpoints.counts.items()
              if site in EQUIVALENCE_FAILPOINT_SITES}
    meta = {"sites": counts, "runs": 0, "sampled_out": 0}
    if recording.crash is not None:
        return [Finding("crash", recording.crash[0],
                        f"recording run: {recording.crash[1]}",
                        "equivalence-failpoint:record")], meta

    findings = []
    for site in sorted(counts):
        hits = _sample_hits(counts[site], max_hits_per_site)
        meta["sampled_out"] += counts[site] - len(hits)
        for nth in hits:
            meta["runs"] += 1
            tag = f"equivalence-failpoint:{site}#{nth}"
            results = {}
            for label, fastpath in (("fast", True), ("per-event", False)):
                m = make_machine(fastpath=fastpath)
                executor = TraceExecutor(m, flavor=flavor)
                m.kernel.failpoints.arm(site, nth)
                result = executor.run(trace, capture=False, audit=False)
                m.kernel.failpoints.disarm()
                leaks = ([] if result.crash is not None
                         else check_clean_shutdown(executor))
                results[label] = (result, leaks)
                findings.extend(
                    Finding("leak", len(trace["ops"]), error,
                            f"{tag}:{label}") for error in leaks)
            res_fast, _ = results["fast"]
            res_slow, _ = results["per-event"]
            if (res_fast.crash is None) != (res_slow.crash is None):
                findings.append(Finding(
                    "crash", res_fast.crash[0] if res_fast.crash
                    else res_slow.crash[0],
                    f"armed unwind diverges: fast={res_fast.crash} vs "
                    f"per-event={res_slow.crash}", tag))
            elif res_fast.outcomes != res_slow.outcomes:
                first = next(i for i, (a, b) in enumerate(
                    zip(res_fast.outcomes, res_slow.outcomes)) if a != b)
                findings.append(Finding(
                    "outcome", first,
                    f"armed outcomes diverge: fast="
                    f"{res_fast.outcomes[first]} vs per-event="
                    f"{res_slow.outcomes[first]}", tag))
    return findings, meta


# --------------------------------------------------------------------- #
# Fail-point enumeration


def check_clean_shutdown(executor):
    """Tear the executor's machine down and verify nothing leaked."""
    machine = executor.machine
    kernel = machine.kernel
    errors = []
    try:
        audit_machine(machine)
    except AssertionError as exc:
        errors.append(f"pre-teardown audit: {exc}")
    try:
        executor.finish()
    except Exception as exc:
        errors.append(f"teardown crashed: {type(exc).__name__}: {exc}")
        return errors
    try:
        audit_machine(machine)
    except AssertionError as exc:
        errors.append(f"post-teardown audit: {exc}")
    if kernel.live_tables != 1:  # only init's PGD survives
        errors.append(f"{kernel.live_tables} table frames live after "
                      f"teardown (expected 1)")
    cached = len(kernel.page_cache._cache)
    expected = kernel.live_tables + cached
    if kernel.mitosis is not None:
        # The surviving init PGD keeps its per-node replicas; anything
        # beyond that is a replica frame the collapse path failed to free.
        expected += kernel.mitosis.replica_frame_count()
        if kernel.mitosis.replica_frame_count() > (
                kernel.numa.nodes - 1) * kernel.live_tables:
            errors.append(
                f"{kernel.mitosis.replica_frame_count()} replica frames "
                f"registered after teardown for {kernel.live_tables} live "
                f"table(s)")
    if machine.used_frames() != expected:
        errors.append(f"{machine.used_frames()} frames used after teardown, "
                      f"expected {expected} (tables + page cache)")
    if kernel.swap is not None:
        used_slots = kernel.swap.n_slots - len(kernel.swap._free)
        if used_slots:
            errors.append(f"{used_slots} swap slots still referenced "
                          f"after teardown")
    return errors


def _sample_hits(count, max_hits):
    """Which Nth-hits to arm for a site hit ``count`` times.

    Exhaustive when the budget allows; otherwise a deterministic spread —
    first, second, middle, last — the hits most likely to sit at distinct
    points of an operation's unwind path.
    """
    if max_hits is None or count <= max_hits:
        return list(range(1, count + 1))
    picks = {1, 2, (count + 1) // 2, count}
    step = max(1, count // max_hits)
    for nth in range(1, count + 1, step):
        if len(picks) >= max_hits:
            break
        picks.add(nth)
    return sorted(picks)[:max_hits]


#: The fail-point sites the NUMA subsystem adds: per-node allocation
#: (``bind``-strict and migration paths) and Mitosis replica allocation
#: (must unwind to the unreplicated-table path without leaking frames).
NUMA_FAILPOINT_SITES = frozenset({"numa.node_alloc", "mitosis.replica_alloc"})


def enumerate_numa_failpoints(trace, nodes=2, max_hits_per_site=4):
    """Sweep the NUMA fail-point sites on a Mitosis-replicated machine."""
    from ..numa.topology import NumaTopology

    return enumerate_failpoints(
        trace, flavor="odfork", max_hits_per_site=max_hits_per_site,
        machine_overrides={"numa": NumaTopology(nodes=nodes, replicate=True)},
        only_sites=NUMA_FAILPOINT_SITES)


def enumerate_failpoints(trace, flavor="classic", max_hits_per_site=4,
                         machine_overrides=None, only_sites=None):
    """Force each fail-point hit to fail, one run per (site, Nth hit).

    Returns ``(findings, meta)`` where meta reports per-site hit counts,
    the number of armed runs, and how many hits sampling skipped (so a
    bounded sweep never silently reads as exhaustive).  ``only_sites``
    restricts the sweep (the recording run still counts everything);
    ``machine_overrides`` forwards Machine kwargs, e.g. ``numa=...``.
    """
    overrides = machine_overrides or {}
    machine = make_machine(**overrides)
    failpoints = machine.kernel.failpoints
    # Record (and later arm) only after the executor has spawned the root
    # process: setup allocations hit the same sites (e.g. mm.pgd_alloc)
    # but are not part of the trace under test.
    recorder = TraceExecutor(machine, flavor=flavor)
    failpoints.record()
    recording = recorder.run(trace, capture=False, audit=False)
    failpoints.disarm()
    counts = dict(failpoints.counts)
    if only_sites is not None:
        counts = {site: n for site, n in counts.items() if site in only_sites}
    meta = {"sites": counts, "runs": 0, "sampled_out": 0}

    if recording.crash is not None:
        return [Finding("crash", recording.crash[0],
                        f"recording run: {recording.crash[1]}",
                        "failpoint:record")], meta

    findings = []
    for site in sorted(counts):
        hits = _sample_hits(counts[site], max_hits_per_site)
        meta["sampled_out"] += counts[site] - len(hits)
        for nth in hits:
            meta["runs"] += 1
            findings.extend(_armed_run(trace, flavor, site, nth, overrides))
    return findings, meta


def _armed_run(trace, flavor, site, nth, overrides=None):
    tag = f"failpoint:{site}#{nth}"
    machine = make_machine(**(overrides or {}))
    executor = TraceExecutor(machine, flavor=flavor)
    machine.kernel.failpoints.arm(site, nth)
    result = executor.run(trace, capture=False, audit=False)
    machine.kernel.failpoints.disarm()
    if result.crash is not None:
        return [Finding("crash", result.crash[0], result.crash[1], tag)]
    return [Finding("leak", len(trace["ops"]), error, tag)
            for error in check_clean_shutdown(executor)]
