"""Fleet fault-injection leg: a replica failure must never corrupt the
fleet's accounting.

The cluster layer carries three fail-point sites — ``gateway.queue_overflow``
(a request bounced at admission), ``dlm.acquire_timeout`` (a snapshot
sub-wave losing its epoch-lock grant), and ``nic.tx_drop`` (one transmit
retransmitted) — all *value-reporting* paths: the injected failure is
absorbed, not raised.  This leg arms each recorded hit of each site over a
tiny fleet campaign and asserts the absorption really is clean:

* **conservation** — completed + dropped == generated, and the per-replica
  completion split sums to the fleet total;
* **kernel audits** — every replica Machine passes ``audit_machine``
  after the campaign (no refcount drift from a fork wave that was skipped
  or a request that was dropped mid-flight);
* **clean teardown** — after ``shutdown()`` every replica's snapshot
  children are reaped and the server task exits without residue.

An unarmed baseline run (record mode) both checks the happy path and
enumerates the hit space, exactly like the kernel failpoint sweep in
``oracle.enumerate_failpoints``.
"""

from __future__ import annotations

from ..cluster.coordinator import EPOCH_LOCK
from ..cluster.fleet import Fleet, FleetConfig
from .audit import audit_machine
from .oracle import Finding

#: The cluster-layer sites this leg sweeps (MECHANISM.md §14).
FLEET_SITES = ("gateway.queue_overflow", "dlm.acquire_timeout",
               "nic.tx_drop")


def _small_config(seed, strategy="staggered"):
    """A seconds-scale fleet: 3 replicas, 3k arrivals, 2 snapshot waves."""
    return FleetConfig(replicas=3, data_mb=16, n_requests=3000,
                       rate_rps=1e6, strategy=strategy, stagger_k=1,
                       wave_interval_ms=1.0, n_waves=2, seed=seed)


def _run_and_audit(config, arm=None, record=False):
    """One campaign; returns (findings, failpoint counts, result)."""
    findings = []
    label = f"fleet/{arm[0]}#{arm[1]}" if arm else "fleet/baseline"
    fleet = Fleet(config)
    if record:
        fleet.failpoints.record()
    elif arm is not None:
        fleet.failpoints.arm(*arm)
    try:
        result = fleet.run()
    except Exception as exc:                         # noqa: BLE001
        fleet.shutdown()
        return ([Finding("crash", -1,
                         f"fleet campaign raised {exc!r}", label)],
                {}, None)
    counts = dict(fleet.failpoints.counts)
    fleet.failpoints.disarm()

    if arm is not None and not fleet.failpoints.fired:
        findings.append(Finding(
            "invariant", -1,
            f"armed hit never fired (site saw "
            f"{counts.get(arm[0], 0)} hits)", label))
    if not result.conserved():
        findings.append(Finding(
            "invariant", -1,
            f"accounting not conserved: generated={result.generated} "
            f"completed={result.completed} dropped={result.dropped} "
            f"by_replica={result.aggregator.completed_by_replica()}",
            label))
    if fleet.dlm.holder(EPOCH_LOCK) is not None:
        findings.append(Finding(
            "invariant", -1,
            f"epoch lock still held by "
            f"{fleet.dlm.holder(EPOCH_LOCK)!r} after the campaign", label))

    # Post-campaign kernel audit: a skipped wave or dropped request must
    # leave every replica's paging state internally consistent.
    for replica in fleet.replicas:
        try:
            audit_machine(replica.machine)
        except AssertionError as exc:
            findings.append(Finding(
                "audit", -1, f"{replica.name}: {exc}", label))

    # Clean teardown: reap children, exit servers, audit once more.
    fleet.shutdown()
    for replica in fleet.replicas:
        if replica.live_children:
            findings.append(Finding(
                "leak", -1,
                f"{replica.name}: {replica.live_children} snapshot "
                f"children survived shutdown", label))
        try:
            audit_machine(replica.machine)
        except AssertionError as exc:
            findings.append(Finding(
                "audit", -1, f"{replica.name} post-shutdown: {exc}", label))
    return findings, counts, result


def check_fleet(seed=0, max_hits_per_site=3):
    """Baseline + armed sweep; returns ``(findings, meta)``.

    ``meta`` mirrors ``enumerate_failpoints``: total armed runs and how
    many recorded hits were sampled out by ``max_hits_per_site``.
    """
    config = _small_config(seed)
    findings, counts, baseline = _run_and_audit(config, record=True)
    runs = 1
    sampled_out = 0
    if baseline is not None and baseline.dropped:
        findings.append(Finding(
            "invariant", -1,
            f"unarmed baseline dropped {baseline.dropped} requests",
            "fleet/baseline"))

    for site in FLEET_SITES:
        hits = counts.get(site, 0)
        if hits == 0:
            continue    # site never reached by this campaign shape
        armed = min(hits, max_hits_per_site)
        sampled_out += hits - armed
        for nth in range(1, armed + 1):
            armed_findings, _, _ = _run_and_audit(config, arm=(site, nth))
            findings.extend(armed_findings)
            runs += 1
    return findings, {"runs": runs, "sampled_out": sampled_out,
                      "sites": {s: counts.get(s, 0) for s in FLEET_SITES}}
