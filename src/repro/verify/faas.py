"""FaaS fault-injection leg: a failed invocation must never corrupt the
farm.

The serverless layer carries three fail-point sites —
``faas.template_alloc`` (raising, fired while a template deploys),
``faas.invoke_fork`` (raising, fired before every cold-start fork), and
``faas.queue_overflow`` (value-reporting, a request bounced at
admission).  This leg runs four kinds of campaign over one small farm
shape:

* **unarmed baseline** (record mode) — the happy path must complete with
  zero drops and zero failures while enumerating the hit space;
* **differential** — classic fork and odfork replay the *same* arrival
  schedule and must agree on every count that is not a latency: cold
  starts, warm hits, resets, drops, failures, and per-image splits
  (table-COW changes *when* copies happen, never *what* the farm does);
* **armed sweep** — each recorded hit of each site is armed in turn; the
  farm must absorb the failure (conservation: completed + dropped +
  failed == generated), pass :func:`~repro.verify.audit.audit_machine`
  on every node, and tear down leak-free;
* **memory round-trip** — after ``shutdown()`` every node returns to its
  pre-deploy frame count: no stale page tables, no leaked snapshot or
  instance frames.

An armed ``faas.template_alloc`` aborts deployment itself; the leg then
asserts the half-deployed farm still tears down to pristine machines.
"""

from __future__ import annotations

import dataclasses

from ..errors import OutOfMemoryError
from ..faas.invoker import DEFAULT_IMAGES, FarmConfig, Invoker
from .audit import audit_machine
from .oracle import Finding

#: The serverless-layer sites this leg sweeps (MECHANISM.md §18).
FAAS_SITES = ("faas.template_alloc", "faas.invoke_fork",
              "faas.queue_overflow")

#: Counters both fork flavours must agree on over a shared schedule.
DIFFERENTIAL_FIELDS = ("generated", "dropped", "failed", "warm_served",
                       "resets")


def _small_config(seed, use_odfork=True):
    """A seconds-scale farm: 3 images, 400 arrivals, no admission bound.

    Unbounded admission is deliberate: whether a request is dropped at a
    queue limit depends on how fast earlier requests completed, which is
    exactly what the two fork flavours differ on — a bounded queue would
    make the differential compare different request mixes.  The
    ``faas.queue_overflow`` site still fires per admission (and the armed
    sweep injects the drop), so the bounce path stays covered.
    """
    return FarmConfig(images=DEFAULT_IMAGES, use_odfork=use_odfork,
                      rate_rps=60_000.0, n_requests=400, queue_limit=None,
                      keepalive_ms=1.0, seed=seed)


def _pre_deploy_frames(invoker):
    """Per-node used-frame baseline the farm must return to.

    A probe spawn/exit cycle first, so one-time lazy kernel allocations
    (init's reaper structures) are charged to the baseline, not
    mistaken for a farm leak.
    """
    frames = []
    for machine in invoker.machines:
        probe = machine.spawn_process("faas-probe")
        probe.exit()
        machine.init_process.wait(probe.pid)
        frames.append(machine.used_frames())
    return frames


def _audit_nodes(invoker, findings, label, when):
    for node, machine in enumerate(invoker.machines):
        try:
            audit_machine(machine)
        except AssertionError as exc:
            findings.append(Finding(
                "audit", -1, f"node{node} {when}: {exc}", label))


def _check_teardown(invoker, findings, label, baseline_frames):
    """Shutdown must reap every instance and return memory to baseline."""
    invoker.shutdown()
    if invoker.live_instances():
        findings.append(Finding(
            "leak", -1,
            f"{invoker.live_instances()} instances survived shutdown",
            label))
    for node, machine in enumerate(invoker.machines):
        used = machine.used_frames()
        if used != baseline_frames[node]:
            findings.append(Finding(
                "leak", -1,
                f"node{node}: {used} frames used after teardown, "
                f"expected the pre-deploy {baseline_frames[node]} "
                f"(stale tables or instance frames)", label))
    _audit_nodes(invoker, findings, label, "post-shutdown")


def _run_and_audit(config, arm=None, record=False):
    """One campaign; returns (findings, failpoint counts, result)."""
    findings = []
    label = f"faas/{arm[0]}#{arm[1]}" if arm else "faas/baseline"
    invoker = Invoker(config)
    baseline_frames = _pre_deploy_frames(invoker)
    registries = invoker.failpoints()
    for fp in registries:
        if record:
            fp.record()
        elif arm is not None:
            fp.arm(*arm)
    result = None
    try:
        result = invoker.run()
    except OutOfMemoryError:
        # Only a deploy-time injection (faas.template_alloc) may escape:
        # the run loop absorbs invocation failures itself.
        if arm is None or arm[0] != "faas.template_alloc":
            findings.append(Finding(
                "invariant", -1,
                "campaign raised OutOfMemoryError outside the "
                "template-deploy window", label))
    except Exception as exc:                           # noqa: BLE001
        findings.append(Finding(
            "crash", -1, f"farm campaign raised {exc!r}", label))
    counts = {}
    fired = False
    for fp in registries:
        for site, n in fp.counts.items():
            counts[site] = counts.get(site, 0) + n
        fired = fired or fp.fired
        fp.disarm()

    if arm is not None and not fired:
        findings.append(Finding(
            "invariant", -1,
            f"armed hit never fired (site saw "
            f"{counts.get(arm[0], 0)} hits)", label))
    if result is not None and not result.conserved():
        findings.append(Finding(
            "invariant", -1,
            f"accounting not conserved: generated={result.generated} "
            f"completed={result.completed} dropped={result.dropped} "
            f"failed={result.failed}", label))
    _audit_nodes(invoker, findings, label, "post-campaign")
    _check_teardown(invoker, findings, label, baseline_frames)
    return findings, counts, result


def _check_differential(seed):
    """Classic fork vs odfork over one schedule: identical accounting."""
    findings = []
    label = "faas/differential"
    results = {}
    for use_odfork in (False, True):
        config = _small_config(seed, use_odfork=use_odfork)
        run_findings, _, result = _run_and_audit(config)
        findings.extend(run_findings)
        if result is not None:
            results[config.use_odfork] = result
    if len(results) != 2:
        return findings
    fork, odf = results[False], results[True]
    for field_name in DIFFERENTIAL_FIELDS:
        lhs = getattr(fork, field_name)
        rhs = getattr(odf, field_name)
        if lhs != rhs:
            findings.append(Finding(
                "divergence", -1,
                f"{field_name}: fork={lhs} odfork={rhs} over the same "
                f"schedule", label))
    if fork.completed != odf.completed:
        findings.append(Finding(
            "divergence", -1,
            f"completed: fork={fork.completed} odfork={odf.completed}",
            label))
    for name, stats in fork.per_image.items():
        odf_stats = odf.per_image.get(name)
        if odf_stats is None:
            findings.append(Finding(
                "divergence", -1, f"image {name!r} missing under odfork",
                label))
            continue
        for key in ("cold_starts", "warm_served", "resets"):
            if stats[key] != odf_stats[key]:
                findings.append(Finding(
                    "divergence", -1,
                    f"{name}.{key}: fork={stats[key]} "
                    f"odfork={odf_stats[key]}", label))
    return findings


def check_faas(seed=0, max_hits_per_site=3):
    """Baseline + differential + armed sweep; returns ``(findings, meta)``.

    ``meta`` mirrors the fleet leg: total campaigns run and how many
    recorded hits were sampled out by ``max_hits_per_site``.
    """
    config = _small_config(seed)
    findings, counts, baseline = _run_and_audit(config, record=True)
    runs = 1
    sampled_out = 0
    if baseline is not None:
        if baseline.dropped:
            findings.append(Finding(
                "invariant", -1,
                f"unarmed baseline dropped {baseline.dropped} requests",
                "faas/baseline"))
        if baseline.failed:
            findings.append(Finding(
                "invariant", -1,
                f"unarmed baseline failed {baseline.failed} invocations",
                "faas/baseline"))

    findings.extend(_check_differential(seed))
    runs += 2

    for site in FAAS_SITES:
        hits = counts.get(site, 0)
        if hits == 0:
            continue    # site never reached by this campaign shape
        armed = min(hits, max_hits_per_site)
        sampled_out += hits - armed
        for nth in range(1, armed + 1):
            armed_findings, _, _ = _run_and_audit(config, arm=(site, nth))
            findings.extend(armed_findings)
            runs += 1
    return findings, {"runs": runs, "sampled_out": sampled_out,
                      "sites": {s: counts.get(s, 0) for s in FAAS_SITES}}
