"""Correctness tooling: trace fuzzer, differential oracle, fail points.

The subsystem validates the simulator itself (the paper's equivalence
claim is only as credible as the machinery checking it):

* :mod:`repro.verify.audit` — ``audit_machine``, the from-first-principles
  refcount cross-check shared by tests, benchmarks, and the fuzzer;
* :mod:`repro.verify.trace` — a serializable random-trace model over the
  syscall surface, with a JSON format for record and replay;
* :mod:`repro.verify.oracle` — differential execution on paired machines
  (odfork vs classic fork, ``smp=N`` vs ``smp=None``) plus exhaustive
  fail-point enumeration;
* :mod:`repro.verify.shrink` — a ddmin delta-debugger that minimizes
  failing traces for the regression corpus.

CLI: ``python -m repro.verify --traces N --seed S [--failpoints]``.
"""

from .audit import audit_machine
from .oracle import check_trace, enumerate_failpoints, run_differential
from .shrink import shrink_trace
from .trace import TraceExecutor, generate_trace, load_trace, save_trace

__all__ = [
    "audit_machine",
    "check_trace",
    "enumerate_failpoints",
    "run_differential",
    "shrink_trace",
    "TraceExecutor",
    "generate_trace",
    "load_trace",
    "save_trace",
]
