"""Delta-debugging minimizer for failing traces (Zeller's ddmin).

Works directly on op lists because the executor makes *every* subsequence
of a trace a valid trace (ops referencing ids that no longer exist are
skipped).  ``shrink_trace`` repeatedly deletes complement chunks while the
predicate still reports failure, converging to 1-minimality: removing any
single remaining op makes the failure disappear.
"""

from __future__ import annotations


def _chunks(ops, n):
    """Split ``ops`` into ``n`` contiguous near-equal non-empty chunks."""
    quotient, remainder = divmod(len(ops), n)
    chunks = []
    start = 0
    for i in range(n):
        size = quotient + (1 if i < remainder else 0)
        if size:
            chunks.append(ops[start:start + size])
            start += size
    return chunks


def shrink_trace(trace, predicate, max_evals=512):
    """Minimize ``trace`` while ``predicate(candidate_trace)`` stays true.

    ``predicate`` receives a full trace dict and must return True when the
    candidate still exhibits the failure.  Returns the shrunk trace (the
    original, marked ``shrunk``, if nothing could be removed) along with
    the evaluation count in its ``shrink_evals`` field.
    """
    ops = list(trace["ops"])
    evals = 0

    def still_fails(candidate_ops):
        nonlocal evals
        evals += 1
        return predicate(_rebuild(trace, candidate_ops))

    granularity = 2
    while len(ops) >= 2 and evals < max_evals:
        chunks = _chunks(ops, granularity)
        reduced = False
        for i in range(len(chunks)):
            complement = [op for j, chunk in enumerate(chunks)
                          for op in chunk if j != i]
            if not complement:
                continue
            if still_fails(complement):
                ops = complement
                granularity = max(2, granularity - 1)
                reduced = True
                break
            if evals >= max_evals:
                break
        if not reduced:
            if granularity >= len(ops):
                break
            granularity = min(len(ops), granularity * 2)

    result = _rebuild(trace, ops)
    result["shrink_evals"] = evals
    return result


def _rebuild(trace, ops):
    return {
        "format": trace.get("format", 1),
        "seed": trace.get("seed"),
        "ops": list(ops),
        "shrunk": True,
    }
