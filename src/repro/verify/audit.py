"""Exhaustive kernel-state cross-checks (tests, benchmarks, the fuzzer).

``audit_machine`` recomputes every reference count from first principles —
walking each live address space's paging tree and the page cache — and
compares against the kernel's incremental accounting.  Any drift (the bug
class that makes real kernels corrupt memory) fails loudly.

Lives in ``repro.verify`` so the trace oracle, the benchmarks, and the
test suite share one auditor; ``tests/auditor.py`` is a re-export shim.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..mem.page import PG_ANON, PG_FILE, PG_PAGETABLE
from ..paging import (
    entry_pfn,
    is_huge,
    is_present,
    present_mask,
    swap_entry_slot,
    swap_mask,
)
from ..paging.table import LEVEL_PMD, LEVEL_PTE


def audit_machine(machine):
    """Recompute and verify all refcounts and table registrations."""
    kernel = machine.kernel
    pages = machine.pages

    expected_pt_refs = defaultdict(int)     # leaf table pfn -> #PMD refs
    expected_page_refs = defaultdict(int)   # data page pfn -> #table refs
    seen_leaf_tables = {}

    live_mms = []
    seen_mm_ids = set()
    for t in kernel.tasks.values():
        # clone_vm/vfork tasks share one mm; walk each address space once.
        if not t.mm.dead and id(t.mm) not in seen_mm_ids:
            seen_mm_ids.add(id(t.mm))
            live_mms.append(t.mm)
    for mm in live_mms:
        for pud_index in mm.pgd.present_indices().tolist():
            pud = mm.resolve(mm.pgd.child_pfn(pud_index))
            for pmd_index in pud.present_indices().tolist():
                pmd = mm.resolve(pud.child_pfn(pmd_index))
                entries = pmd.entries
                for slot in pmd.present_indices().tolist():
                    entry = entries[slot]
                    if is_huge(entry):
                        expected_page_refs[int(entry_pfn(entry))] += 1
                        continue
                    leaf_pfn = int(entry_pfn(entry))
                    expected_pt_refs[leaf_pfn] += 1
                    seen_leaf_tables[leaf_pfn] = mm.resolve(leaf_pfn)

    # Each leaf table *object* owns one reference per present data page.
    for leaf in seen_leaf_tables.values():
        for slot in leaf.present_indices().tolist():
            expected_page_refs[int(entry_pfn(leaf.entries[slot]))] += 1

    # The page cache holds one reference per cached page.
    for pfn in kernel.page_cache._cache.values():
        expected_page_refs[pfn] += 1

    # Live in-place snapshots hold one reference per saved present page.
    for snapshot in kernel.live_snapshots:
        for saved in snapshot.saved.values():
            for pfn in entry_pfn(saved[present_mask(saved)]).tolist():
                expected_page_refs[int(pfn)] += 1

    # The swap cache holds one reference per cached frame.
    if kernel.swap_cache is not None:
        for _slot, pfn in kernel.swap_cache.items():
            expected_page_refs[pfn] += 1

    errors = []
    for leaf_pfn, count in expected_pt_refs.items():
        actual = pages.pt_ref(leaf_pfn)
        if actual != count:
            errors.append(
                f"leaf table {leaf_pfn}: pt_refcount {actual}, "
                f"{count} PMD references found"
            )
    for pfn, count in expected_page_refs.items():
        actual = pages.get_ref(pfn)
        if actual != count:
            errors.append(
                f"page {pfn}: refcount {actual}, {count} references found"
            )

    # No data page should have a refcount without a referent (leak), and
    # table frames must be registered.
    live = np.nonzero(pages.refcount > 0)[0]
    for pfn in live.tolist():
        if pfn == 0:
            continue  # reserved frame
        if pages.has_flags(pfn, PG_PAGETABLE):
            if pfn not in kernel._tables:
                # Mitosis replica frames are table-flagged but live only
                # in the replica registry; _audit_numa cross-checks them.
                if kernel.mitosis is not None and \
                        pfn in kernel.mitosis.replica_of:
                    continue
                errors.append(f"table frame {pfn} not registered")
            continue
        if pages.flags[pfn] & np.uint16(0x10):  # PG_COMPOUND_TAIL
            continue
        if pfn not in expected_page_refs:
            errors.append(f"page {pfn} live (ref={pages.get_ref(pfn)}) "
                          f"but unreachable: leak")

    # Registered table frames must be exactly the reachable ones: a table
    # allocated but never installed (a botched unwind) would otherwise
    # pass every refcount check while leaking its frame.
    reachable_tables = set(seen_leaf_tables)
    for mm in live_mms:
        reachable_tables.add(mm.pgd.pfn)
        for table in mm.upper_tables():
            reachable_tables.add(table.pfn)
    registered = set(kernel._tables)
    stray = registered - reachable_tables
    unregistered = reachable_tables - registered
    if stray:
        errors.append(f"table frames registered but unreachable: "
                      f"{sorted(stray)[:8]}")
    if unregistered:
        errors.append(f"reachable table frames not registered: "
                      f"{sorted(unregistered)[:8]}")

    if kernel.swap is not None:
        errors += _audit_swap(kernel, seen_leaf_tables)
        errors += _audit_rmap_and_lru(kernel, pages, seen_leaf_tables)
    errors += _audit_pt_sharers(kernel, expected_pt_refs, live_mms)
    errors += _audit_smp(machine)
    if kernel.numa is not None:
        errors += _audit_numa(machine)

    pages.check_no_negative()
    machine.allocator.check_consistency()
    if errors:
        raise AssertionError("kernel audit failed:\n  " + "\n  ".join(errors[:12]))


def _audit_swap(kernel, seen_leaf_tables):
    """Recompute swap_map from table objects + snapshots; check the cache
    and the free list."""
    errors = []
    dev = kernel.swap
    expected_slots = defaultdict(int)   # slot -> #references
    for leaf in seen_leaf_tables.values():
        entries = leaf.entries
        swapped = swap_mask(entries)
        for slot in swap_entry_slot(entries[swapped]).tolist():
            expected_slots[int(slot)] += 1
    for snapshot in kernel.live_snapshots:
        for saved in snapshot.saved.values():
            for slot in swap_entry_slot(saved[swap_mask(saved)]).tolist():
                expected_slots[int(slot)] += 1

    for slot, count in expected_slots.items():
        actual = int(dev.swap_map[slot])
        if actual != count:
            errors.append(
                f"swap slot {slot}: swap_map {actual}, {count} references found"
            )
    for slot in np.nonzero(dev.swap_map > 0)[0].tolist():
        if slot not in expected_slots:
            errors.append(
                f"swap slot {slot} has {int(dev.swap_map[slot])} refs "
                f"but no referent: leaked slot"
            )

    # Free-list consistency: free slots carry no refs, and every slot is
    # either free or referenced.
    free = set(dev._free)
    if len(free) != len(dev._free):
        errors.append("swap free list contains duplicates")
    live = set(np.nonzero(dev.swap_map > 0)[0].tolist())
    overlap = free & live
    if overlap:
        errors.append(f"swap slots both free and referenced: {sorted(overlap)[:8]}")
    if len(free) + len(live) != dev.n_slots:
        errors.append(
            f"swap slot accounting: {len(free)} free + {len(live)} live "
            f"!= {dev.n_slots} total"
        )

    # Every cached slot must still be referenced, and the mapping must be
    # bijective.
    for slot, pfn in kernel.swap_cache.items():
        if dev.swap_map[slot] <= 0:
            errors.append(f"swap cache holds slot {slot} with no references")
        if kernel.swap_cache.slot_of(pfn) != slot:
            errors.append(f"swap cache slot {slot} <-> pfn {pfn} not bijective")
    return errors


def _audit_rmap_and_lru(kernel, pages, seen_leaf_tables):
    """Recompute the anon reverse map from the paging trees, then check the
    LRU lists track exactly the rmapped pages."""
    errors = []
    eligible = np.uint16(PG_ANON)
    expected = defaultdict(lambda: defaultdict(int))  # pfn -> {leaf_pfn: n}
    for leaf in seen_leaf_tables.values():
        entries = leaf.entries
        for pfn in entry_pfn(entries[present_mask(entries)]).tolist():
            pfn = int(pfn)
            if pages.flags[pfn] & eligible and not (
                    pages.flags[pfn] & np.uint16(PG_FILE)):
                expected[pfn][leaf.pfn] += 1

    actual = kernel.rmap._tables
    for pfn, tables in expected.items():
        got = actual.get(pfn)
        if got != dict(tables):
            errors.append(f"rmap for page {pfn}: kernel has {got}, "
                          f"walk found {dict(tables)}")
    for pfn in actual:
        if pfn not in expected:
            errors.append(f"rmap tracks page {pfn} with no mapping: dangling")

    reclaim = kernel.reclaim
    active = set(reclaim.active)
    inactive = set(reclaim.inactive)
    both = active & inactive
    if both:
        errors.append(f"pages on both LRU lists: {sorted(both)[:8]}")
    on_lru = active | inactive
    tracked = set(expected)
    if on_lru != tracked:
        missing = sorted(tracked - on_lru)[:8]
        stray = sorted(on_lru - tracked)[:8]
        if missing:
            errors.append(f"mapped anon pages missing from LRU: {missing}")
        if stray:
            errors.append(f"LRU holds unmapped pages: {stray}")
    return errors


def _audit_pt_sharers(kernel, expected_pt_refs, live_mms):
    """The sharer registry must list exactly the mms whose PMDs reference
    each leaf table."""
    errors = []
    expected = defaultdict(list)   # leaf pfn -> [mm, ...]
    for mm in live_mms:
        for pud_index in mm.pgd.present_indices().tolist():
            pud = mm.resolve(mm.pgd.child_pfn(pud_index))
            for pmd_index in pud.present_indices().tolist():
                pmd = mm.resolve(pud.child_pfn(pmd_index))
                for slot in pmd.present_indices().tolist():
                    entry = pmd.entries[slot]
                    if not is_huge(entry):
                        expected[int(entry_pfn(entry))].append(mm)

    for leaf_pfn, mms in expected.items():
        registered = kernel.pt_sharers.get(leaf_pfn, [])
        if sorted(map(id, registered)) != sorted(map(id, mms)):
            errors.append(
                f"pt_sharers for leaf {leaf_pfn}: {len(registered)} "
                f"registered, {len(mms)} referencing mms found"
            )
    for leaf_pfn in kernel.pt_sharers:
        if leaf_pfn not in expected:
            errors.append(f"pt_sharers tracks dead leaf table {leaf_pfn}")
    return errors


def _audit_smp(machine):
    """Lock quiescence: no held locks, no queued waiters, no in-flight
    IPIs, and no lingering copy-phase count once the scheduler is idle."""
    sched = getattr(machine, "smp", None)
    if sched is None:
        return []
    return sched.quiescence_errors()


def _audit_numa(machine):
    """Per-node frame conservation plus the Mitosis replica registry.

    Zones must partition the frame range with per-zone free/used summing
    to the span; every replica frame must be node-local to its registered
    node, table-flagged, refcount 1, bijectively mapped, and cover
    exactly the remote nodes of a registered primary (replication is
    all-or-nothing per table).
    """
    errors = []
    kernel = machine.kernel
    allocator = machine.allocator
    topology = kernel.numa
    pages = machine.pages

    covered = 0
    for node in range(topology.nodes):
        base, span = allocator.node_span(node)
        if base != covered:
            errors.append(f"node {node} zone starts at frame {base}, "
                          f"expected {covered}: zones do not partition")
        covered += span
        zone = allocator.zones[node]
        if zone.free_frames + zone.used_frames != zone.n_frames:
            errors.append(
                f"node {node}: {zone.free_frames} free + "
                f"{zone.used_frames} used != {zone.n_frames} span frames")
    if covered != allocator.n_frames:
        errors.append(f"zones cover {covered} frames of "
                      f"{allocator.n_frames}")

    mitosis = kernel.mitosis
    if mitosis is None:
        return errors
    all_nodes = set(range(topology.nodes))
    for primary, got in mitosis.replicas.items():
        if primary not in kernel._tables:
            errors.append(f"replicas registered for unknown table {primary}")
            continue
        home = allocator.node_of(primary)
        if set(got) != all_nodes - {home}:
            errors.append(
                f"table {primary}: replicas on nodes {sorted(got)}, "
                f"expected every node but home {home}")
        for node, rpfn in got.items():
            if allocator.node_of(rpfn) != node:
                errors.append(
                    f"replica {rpfn} of table {primary} lives on node "
                    f"{allocator.node_of(rpfn)}, registered for {node}")
            if mitosis.replica_of.get(rpfn) != primary:
                errors.append(f"replica map for frame {rpfn} not bijective")
            if not pages.has_flags(rpfn, PG_PAGETABLE):
                errors.append(f"replica frame {rpfn} missing PG_PAGETABLE")
            elif pages.get_ref(rpfn) != 1:
                errors.append(f"replica frame {rpfn}: refcount "
                              f"{pages.get_ref(rpfn)}, expected 1")
    for rpfn, primary in mitosis.replica_of.items():
        node = allocator.node_of(rpfn)
        if mitosis.replicas.get(primary, {}).get(node) != rpfn:
            errors.append(f"replica_of[{rpfn}] -> {primary} has no "
                          f"matching forward entry: leaked replica frame")
    for table_pfn in mitosis.owner:
        if table_pfn not in mitosis.replicas:
            errors.append(f"walk-entitlement owner recorded for "
                          f"unreplicated table {table_pfn}")
    return errors
