"""CLI driver: ``python -m repro.verify --traces N --seed S [--failpoints]``.

Generates (or replays) traces, runs the differential oracle on each, and
optionally sweeps every fail-point hit.  Failing traces are ddmin-shrunk
and written to the regression corpus so CI replays them forever.

Exit status: 0 when every trace is clean, 1 on any hard finding.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .oracle import (check_trace, check_trace_equivalence, check_trace_numa,
                     check_trace_sanitized, check_trace_traced,
                     enumerate_equivalence_failpoints, enumerate_failpoints,
                     enumerate_numa_failpoints, is_hard)
from .shrink import shrink_trace
from .trace import generate_trace, load_trace, save_trace


def _collect_traces(args):
    if args.replay:
        path = Path(args.replay)
        if path.is_dir():
            files = sorted(path.glob("*.json"))
        elif path.is_file():
            files = [path]
        else:
            raise SystemExit(f"no such trace file or directory: {path}")
        if not files:
            raise SystemExit(f"no *.json traces found in {path}")
        return [(f.stem, load_trace(f)) for f in files]
    return [(f"seed{args.seed + i}",
             generate_trace(args.seed + i, n_ops=args.ops))
            for i in range(args.traces)]


def _shrink_predicate(args, pair):
    """Re-check a candidate for the same class of failure (same pair).

    The SMP leg only reruns when the original finding came from it, which
    keeps shrinking to two machine builds per evaluation.
    """
    needs_smp = pair.startswith("smp")

    def predicate(candidate):
        findings = check_trace(candidate, smp=args.smp,
                               include_smp=needs_smp)
        return any(is_hard(f) and f.pair == pair for f in findings)

    return predicate


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="differential conformance + fault-injection harness")
    parser.add_argument("--traces", type=int, default=20,
                        help="number of random traces (default 20)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed; trace i uses seed+i (default 0)")
    parser.add_argument("--ops", type=int, default=32,
                        help="ops per generated trace (default 32)")
    parser.add_argument("--smp", type=int, default=2,
                        help="virtual CPUs for the SMP leg (default 2)")
    parser.add_argument("--no-smp", action="store_true",
                        help="skip the smp-vs-plain differential leg")
    parser.add_argument("--failpoints", action="store_true",
                        help="sweep fail-point hits per trace")
    parser.add_argument("--sanitize", action="store_true",
                        help="re-run each trace under KASAN (frame "
                             "poisoning/quarantine) and KCSAN (SMP data "
                             "races)")
    parser.add_argument("--trace-audit", action="store_true",
                        help="re-run each trace with a ktrace tracer "
                             "attached and fail on any observable "
                             "divergence (tracing must be side-effect "
                             "free)")
    parser.add_argument("--numa", action="store_true",
                        help="run the NUMA differential leg: flat vs "
                             "NUMA-shared vs Mitosis-replicated machines "
                             "(every odfork replica policy) must agree on "
                             "all observables, tear down leak-free, and "
                             "unwind the NUMA fail-point sites cleanly")
    parser.add_argument("--numa-nodes", type=int, default=2,
                        help="nodes for the NUMA leg's topology (default 2)")
    parser.add_argument("--equivalence", action="store_true",
                        help="run the analytic-fast-path leg: paired "
                             "fastpath-on vs per-event machines per fork "
                             "flavor must agree on outcomes, digests, RSS, "
                             "vmstat, audits and the virtual clock, and "
                             "armed failpoints must unwind identically on "
                             "both")
    parser.add_argument("--max-failpoint-hits", type=int, default=4,
                        help="armed runs per site; sampled beyond this "
                             "(default 4)")
    parser.add_argument("--exhaustive-failpoints", action="store_true",
                        help="arm every recorded hit of every site")
    parser.add_argument("--fleet", action="store_true",
                        help="run the cluster fault-injection leg: arm "
                             "each fleet fail-point site over a small "
                             "fleet campaign and assert conserved "
                             "accounting, clean audits, clean teardown")
    parser.add_argument("--faas", action="store_true",
                        help="run the serverless-farm leg: unarmed "
                             "baseline, fork-vs-odfork differential over "
                             "one schedule, and an armed sweep of every "
                             "faas fail-point site — conservation, clean "
                             "audits, memory back to pre-deploy levels")
    parser.add_argument("--replay", metavar="PATH",
                        help="replay a trace file or directory of *.json "
                             "instead of generating")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report failures without ddmin-shrinking them")
    parser.add_argument("--corpus-dir", default="tests/corpus",
                        help="where shrunk failures are written")
    args = parser.parse_args(argv)

    traces = _collect_traces(args)
    started = time.perf_counter()
    hard_findings = 0
    oom_warnings = 0
    failpoint_runs = 0
    failpoint_sampled_out = 0

    for index, (name, trace) in enumerate(traces):
        findings = check_trace(trace, smp=args.smp,
                               include_smp=not args.no_smp)
        hard = [f for f in findings if is_hard(f)]
        oom_warnings += len(findings) - len(hard)
        if hard:
            hard_findings += len(hard)
            print(f"FAIL {name} ({len(trace['ops'])} ops): {hard[0]}")
            if not args.no_shrink:
                shrunk = shrink_trace(
                    trace, _shrink_predicate(args, hard[0].pair))
                out = save_trace(
                    shrunk, Path(args.corpus_dir) / f"shrunk-{name}.json")
                print(f"  shrunk to {len(shrunk['ops'])} ops "
                      f"({shrunk['shrink_evals']} evaluations) -> {out}")

        if args.sanitize:
            san_findings = check_trace_sanitized(trace, smp=args.smp)
            if san_findings:
                hard_findings += len(san_findings)
                for finding in san_findings[:4]:
                    print(f"FAIL {name}: {finding}")

        if args.trace_audit:
            trace_findings = check_trace_traced(trace)
            if trace_findings:
                hard_findings += len(trace_findings)
                for finding in trace_findings[:4]:
                    print(f"FAIL {name}: {finding}")

        if args.numa:
            numa_findings = check_trace_numa(trace, nodes=args.numa_nodes)
            nfp_findings, nfp_meta = enumerate_numa_failpoints(
                trace, nodes=args.numa_nodes,
                max_hits_per_site=args.max_failpoint_hits)
            numa_findings += nfp_findings
            failpoint_runs += nfp_meta["runs"]
            failpoint_sampled_out += nfp_meta["sampled_out"]
            if numa_findings:
                hard_findings += len(numa_findings)
                for finding in numa_findings[:4]:
                    print(f"FAIL {name}: {finding}")

        if args.equivalence:
            eq_findings = check_trace_equivalence(trace)
            efp_findings, efp_meta = enumerate_equivalence_failpoints(
                trace, max_hits_per_site=args.max_failpoint_hits)
            eq_findings += efp_findings
            failpoint_runs += efp_meta["runs"]
            failpoint_sampled_out += efp_meta["sampled_out"]
            if eq_findings:
                hard_findings += len(eq_findings)
                for finding in eq_findings[:4]:
                    print(f"FAIL {name}: {finding}")

        if args.failpoints:
            max_hits = (None if args.exhaustive_failpoints
                        else args.max_failpoint_hits)
            fp_findings, meta = enumerate_failpoints(
                trace, max_hits_per_site=max_hits)
            failpoint_runs += meta["runs"]
            failpoint_sampled_out += meta["sampled_out"]
            if fp_findings:
                hard_findings += len(fp_findings)
                for finding in fp_findings[:4]:
                    print(f"FAIL {name}: {finding}")

        done = index + 1
        if done % 10 == 0 or done == len(traces):
            elapsed = time.perf_counter() - started
            print(f"  [{done}/{len(traces)}] traces checked, "
                  f"{elapsed:.1f}s elapsed")

    if args.fleet:
        from .fleet import check_fleet
        fleet_findings, fleet_meta = check_fleet(
            seed=args.seed, max_hits_per_site=args.max_failpoint_hits)
        hard_findings += len(fleet_findings)
        for finding in fleet_findings[:8]:
            print(f"FAIL fleet: {finding}")
        print(f"  fleet leg: {fleet_meta['runs']} campaigns, "
              f"{fleet_meta['sampled_out']} recorded hits sampled out, "
              f"{len(fleet_findings)} findings "
              f"(sites: {fleet_meta['sites']})")

    if args.faas:
        from .faas import check_faas
        faas_findings, faas_meta = check_faas(
            seed=args.seed, max_hits_per_site=args.max_failpoint_hits)
        hard_findings += len(faas_findings)
        for finding in faas_findings[:8]:
            print(f"FAIL faas: {finding}")
        print(f"  faas leg: {faas_meta['runs']} campaigns, "
              f"{faas_meta['sampled_out']} recorded hits sampled out, "
              f"{len(faas_findings)} findings "
              f"(sites: {faas_meta['sites']})")

    elapsed = time.perf_counter() - started
    print(f"checked {len(traces)} traces in {elapsed:.1f}s: "
          f"{hard_findings} failures, {oom_warnings} OOM-asymmetry warnings"
          + (f", {failpoint_runs} fail-point runs"
             f" ({failpoint_sampled_out} hits sampled out)"
             if args.failpoints else ""))
    return 1 if hard_findings else 0


if __name__ == "__main__":
    sys.exit(main())
