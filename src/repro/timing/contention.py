"""Multi-core contention modelling for concurrent fork invocations.

Section 2.1 of the paper observes that fork degrades when called in
parallel even with idle cores: three concurrent 1 GB forks average 22.4 ms
each versus 6.5 ms alone.  The cause is cacheline and memory contention on
the ``struct page`` array (every fork's leaf loop reads ``compound_head``
and atomically increments refcounts on densely packed cachelines).

Two models produce that factor:

* **Emergent (preferred):** on a ``Machine(smp=N)`` the SMP scheduler
  (:mod:`repro.smp.sched`) counts how many vCPUs are actually inside the
  fork copy loop at each charge and installs that count as the cost
  model's ``contention_source``; ``k`` then rises and falls with the
  real interleaving, and lock queueing/IPI delays add on top.
* **Fitted fallback:** on a ``Machine(smp=None)`` the *contention level*
  below applies — while ``k`` forkers are declared active, the
  struct-page portion of the per-PTE cost is multiplied by
  ``1 + alpha * (k - 1)`` with ``alpha`` fitted to the paper (2.10).
  The :func:`contention_group` context manager sets and restores the
  level; ``tests/test_calibration.py`` asserts the two models agree.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..errors import InvalidArgumentError


@contextmanager
def contention_group(cost_model, n_concurrent):
    """Declare ``n_concurrent`` concurrently-forking processes.

    Used by the Figure 2 "Concurrent (3x)" series: each measured fork runs
    with the contention level raised, which scales the struct-page charges
    exactly as shared-cacheline traffic would on real hardware.
    """
    if n_concurrent < 1:
        raise InvalidArgumentError("contention group needs at least 1 member")
    previous = cost_model.contention_level
    cost_model.contention_level = int(n_concurrent)
    try:
        yield cost_model
    finally:
        cost_model.contention_level = previous


class ConcurrencyTracker:
    """Reference-counted contention level for nested or overlapping groups.

    Applications that fork from several simulated processes (e.g. parallel
    test harnesses) register activity here rather than setting the level
    directly, so overlapping groups compose.
    """

    def __init__(self, cost_model):
        self._cost_model = cost_model
        self._active = 0

    @property
    def active(self):
        """Number of currently forking processes."""
        return self._active

    @contextmanager
    def forking(self):
        """Mark one process as inside a fork-like syscall."""
        self._active += 1
        previous = self._cost_model.contention_level
        self._cost_model.contention_level = max(1, self._active)
        try:
            yield
        finally:
            self._active -= 1
            self._cost_model.contention_level = previous
