"""Measurement-noise model for benchmark realism.

The paper reports averages, minima, and standard deviations over repeated
runs (e.g. 1 GB forks: 6.5 ms average, 5.4 ms minimum).  Real measurements
vary because of cache state, interrupts, and scheduling.  The simulator is
deterministic, so benchmarks opt into a seeded multiplicative noise model
that produces realistic spreads while keeping results reproducible run to
run.  Unit tests leave noise disabled.

The distribution is a clipped lognormal: most charges land within a few
percent of nominal, with a configurable-probability positive spike tail
modelling interrupts and hard page-fault stalls.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError


class NoiseModel:
    """Seeded multiplicative noise applied to individual cost charges.

    Parameters
    ----------
    seed:
        RNG seed; two models with the same seed perturb identically.
    sigma:
        Lognormal shape parameter.  ``0.05`` gives run-to-run spreads of a
        few percent, matching the paper's reported avg/min gaps.
    spike_prob:
        Probability that a charge additionally suffers a positive spike.
    spike_scale:
        Mean relative magnitude of a spike (exponential distributed).
    """

    def __init__(self, seed=0, sigma=0.05, spike_prob=0.0, spike_scale=0.5):
        if sigma < 0 or spike_prob < 0 or spike_prob > 1:
            raise ConfigurationError("invalid noise parameters")
        self._rng = np.random.RandomState(seed)
        self.sigma = float(sigma)
        self.spike_prob = float(spike_prob)
        self.spike_scale = float(spike_scale)
        # Buffer draws to keep per-charge overhead low: numpy RNG calls are
        # expensive one at a time but nearly free in batches.
        self._buffer = np.empty(0)
        self._pos = 0

    def _refill(self, n=4096):
        draws = self._rng.lognormal(mean=0.0, sigma=self.sigma, size=n)
        if self.spike_prob > 0:
            spikes = self._rng.random_sample(n) < self.spike_prob
            draws = draws + spikes * self._rng.exponential(self.spike_scale, size=n)
        self._buffer = draws
        self._pos = 0

    def perturb(self, ns):
        """Return ``ns`` scaled by one noise draw."""
        if self.sigma == 0 and self.spike_prob == 0:
            return ns
        if self._pos >= len(self._buffer):
            self._refill()
        factor = self._buffer[self._pos]
        self._pos += 1
        return ns * factor

    def take(self, n):
        """Consume ``n`` draws exactly as ``n`` ``perturb`` calls would.

        Returns a length-``n`` factor array, or ``None`` when the model is
        configured silent (``perturb`` short-circuits without consuming a
        draw).  Buffer refills happen at the same points a sequential
        per-charge consumer would hit them, so the underlying RNG stream —
        which ``syscall_jitter`` also reads — stays bit-identical between
        the per-event and the batched charge paths.
        """
        if self.sigma == 0 and self.spike_prob == 0:
            return None
        out = np.empty(n)
        filled = 0
        while filled < n:
            if self._pos >= len(self._buffer):
                self._refill()
            take = min(len(self._buffer) - self._pos, n - filled)
            out[filled:filled + take] = self._buffer[self._pos:self._pos + take]
            self._pos += take
            filled += take
        return out

    def syscall_jitter(self):
        """One-sided relative overrun for a whole syscall invocation.

        Per-charge noise averages out over the thousands of charges inside
        a large fork, but real invocations vary run to run (interrupts,
        cache state): the paper reports a 5.4 ms minimum against a 6.5 ms
        average for 1 GB forks.  This draw adds a correlated, non-negative
        overrun to one invocation; the calibrated constants remain the
        fast-path (minimum-ish) latency.
        """
        draw = float(self._rng.lognormal(0.0, max(self.sigma * 2.5, 1e-9)))
        return max(0.0, draw - 1.0)

    def uniform(self, low, high):
        """Convenience seeded uniform draw for workload generators."""
        return float(self._rng.uniform(low, high))

    def randint(self, low, high):
        """Convenience seeded integer draw in ``[low, high)``."""
        return int(self._rng.randint(low, high))
