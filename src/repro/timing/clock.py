"""Virtual time for the simulator.

All latencies and throughputs the reproduction reports are *simulated* time:
kernel operations charge nanoseconds to a :class:`SimClock` through the cost
model, and the applications' event loops advance the same clock.  Wall-clock
time never enters any measurement, which is what makes results deterministic
and machine-independent.

The clock is a plain monotonic counter in nanoseconds.  ``Stopwatch`` gives
benchmark code the same shape as the paper's ``clock_gettime`` bracketing.
"""

from __future__ import annotations

from ..errors import InvalidArgumentError

NSEC_PER_USEC = 1_000
NSEC_PER_MSEC = 1_000_000
NSEC_PER_SEC = 1_000_000_000


class SimClock:
    """A monotonic virtual clock measured in integer nanoseconds."""

    __slots__ = ("_now_ns",)

    def __init__(self, start_ns=0):
        if start_ns < 0:
            raise InvalidArgumentError("clock cannot start before zero")
        self._now_ns = int(start_ns)

    @property
    def now_ns(self):
        """Current virtual time in nanoseconds."""
        return self._now_ns

    @property
    def now_us(self):
        """Current virtual time in microseconds (float)."""
        return self._now_ns / NSEC_PER_USEC

    @property
    def now_ms(self):
        """Current virtual time in milliseconds (float)."""
        return self._now_ns / NSEC_PER_MSEC

    @property
    def now_s(self):
        """Current virtual time in seconds (float)."""
        return self._now_ns / NSEC_PER_SEC

    def advance(self, ns):
        """Advance the clock by ``ns`` nanoseconds (fractions are rounded).

        Negative advances are rejected: virtual time, like
        ``CLOCK_MONOTONIC``, never goes backwards.
        """
        ns = int(round(ns))
        if ns < 0:
            raise InvalidArgumentError(f"cannot advance clock by {ns} ns")
        self._now_ns += ns
        return self._now_ns

    def advance_to(self, deadline_ns):
        """Advance the clock to ``deadline_ns`` if it lies in the future."""
        deadline_ns = int(round(deadline_ns))
        if deadline_ns > self._now_ns:
            self._now_ns = deadline_ns
        return self._now_ns

    def stopwatch(self):
        """Return a started :class:`Stopwatch` reading this clock."""
        return Stopwatch(self)

    def __repr__(self):
        return f"SimClock(now={self._now_ns} ns)"


class Stopwatch:
    """Measures elapsed virtual time, mirroring ``clock_gettime`` pairs."""

    __slots__ = ("_clock", "_start_ns")

    def __init__(self, clock):
        self._clock = clock
        self._start_ns = clock.now_ns

    def restart(self):
        """Reset the start point to the current virtual time."""
        self._start_ns = self._clock.now_ns

    @property
    def elapsed_ns(self):
        """Elapsed virtual nanoseconds."""
        return self._clock.now_ns - self._start_ns

    @property
    def elapsed_us(self):
        """Elapsed virtual microseconds."""
        return self.elapsed_ns / NSEC_PER_USEC

    @property
    def elapsed_ms(self):
        """Elapsed virtual milliseconds."""
        return self.elapsed_ns / NSEC_PER_MSEC

    @property
    def elapsed_s(self):
        """Elapsed virtual seconds."""
        return self.elapsed_ns / NSEC_PER_SEC
