"""The calibrated timing model.

Every kernel operation in the simulator charges virtual nanoseconds through
a :class:`CostModel`.  The constants live in :class:`CostParams`; each one is
annotated with the paper measurement it was fitted to, so the calibration is
auditable in one place.  The *shape* of every reproduced figure (linearity,
orderings, crossovers) emerges from operation counts on the real simulated
paging structures; only the nanoseconds-per-operation scale comes from these
fitted constants.

Headline fits (see DESIGN.md §5 for derivations):

* Classic fork, per last-level PTE entry: 18.38 ns, split across the
  Figure 3 hot spots (``compound_head`` 63.9 %, ``page_ref_inc`` 14.4 %,
  ``__read_once_size`` 15.3 %, ``vm_normal_page`` 0.8 %, remainder 5.6 %).
  Together with the per-table and fixed costs this reproduces Figure 2/7:
  1 GB -> 6.54 ms and 50 GB -> 253.94 ms.
* Classic fork fixed cost: 1.462 ms "warm-up" (first-touch misses on
  ``struct page`` and allocator state) + 25 us task duplication; matches
  the Figure 2 intercept (~4 ms at 0.5 GB).
* On-demand-fork: 56 us fixed + 33.5 ns per shared PTE table; reproduces
  1 GB -> 0.10 ms and 50 GB -> 0.94 ms (§5.2.2).
* Huge-page fork: 90 us fixed + 156 ns per PMD-level huge entry
  (includes the PMD spin lock); reproduces Figure 4 (1 GB -> 0.17 ms).
* Page faults (Table 1): 1.0 us base; 1.3 us per 4 KiB COW copy; table
  copy reuses the 18.38 ns/entry machinery (worst case 12.2 us); 2 MiB
  bulk copy at 10.6 GB/s (198 us).
* Concurrency (§2.1): the struct-page cacheline portion of the per-PTE
  cost scales by ``1 + 2.10 * (k - 1)`` for ``k`` concurrent forkers;
  reproduces 3x concurrent 1 GB forks at 22.4 ms.
* Cache warmth (§5.2.4): the data copy of COW faults in odfork lineages
  runs ~10 % cheaper (shared tables and untouched struct pages leave more
  cache to user data), modelling the paper's explanation for
  on-demand-fork's positive time reduction even at 100 % write access.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from ..errors import ConfigurationError

# Names used for profiler attribution; Figure 3 reports these symbols.
FN_COMPOUND_HEAD = "compound_head"
FN_PAGE_REF_INC = "page_ref_inc"
FN_READ_ONCE = "__read_once_size"
FN_VM_NORMAL_PAGE = "vm_normal_page"
FN_COPY_ONE_PTE = "copy_one_pte_other"
FN_PTE_ALLOC = "pte_alloc_one"
FN_UPPER_COPY = "copy_upper_levels"
FN_TASK_DUP = "dup_task_struct"
FN_VMA_DUP = "dup_mmap_vma"
FN_FORK_WARMUP = "fork_struct_page_warmup"
FN_ODF_SHARE = "odf_share_pte_table"
FN_ODF_FIXED = "odf_fixed"
FN_HUGE_COPY = "copy_huge_pmd"
FN_FAULT_BASE = "handle_mm_fault"
FN_PAGE_COPY = "copy_user_page"
FN_PAGE_ZERO = "clear_user_page"
FN_BULK_COPY = "copy_huge_user_page"
FN_TABLE_COPY = "odf_copy_pte_table"
FN_PT_UNSHARE = "odf_reuse_sole_table"
FN_TLB_FLUSH = "flush_tlb"
FN_ZAP_PTE = "zap_pte_range"
FN_TABLE_FREE = "pte_free"
FN_TABLE_UNSHARE_DEC = "odf_put_pte_table"
FN_SYSCALL = "syscall_entry"
FN_MEMCPY = "user_memcpy"
FN_PAGE_CACHE = "page_cache"
FN_SWAP_OUT = "swap_writepage"
FN_SWAP_IN = "swap_readpage"
FN_SWAP_CACHE = "swap_cache_lookup"
FN_LRU_SCAN = "shrink_inactive_list"
FN_RMAP_UNMAP = "try_to_unmap"
FN_SHARED_UNMAP = "odf_shared_table_unmap"
FN_DIRECT_RECLAIM = "direct_reclaim"
FN_MMAP_LOCK = "mmap_lock"
FN_PT_LOCK = "ptl_lock"
FN_LOCK_WAKEUP = "lock_handoff"
FN_IPI = "flush_tlb_others"
FN_CTX_SWITCH = "context_switch"
FN_NUMA_ACCESS = "numa_remote_access"
FN_NUMA_WALK = "numa_remote_walk"
FN_REPLICA_SYNC = "mitosis_pgtable_update"
FN_REPLICA_ALLOC = "mitosis_replica_alloc"
FN_REPLICA_COLLAPSE = "mitosis_replica_collapse"
FN_MIGRATE = "migrate_pages"


@dataclass(frozen=True)
class CostParams:
    """Calibrated cost constants, in nanoseconds unless noted.

    The defaults reproduce the paper's testbed (16-core AMD EPYC 7302P,
    DDR4, Linux 5.6.19).  Construct with overrides for sensitivity studies;
    ``replace_with`` returns a modified copy.
    """

    # --- classic fork: per-PTE-entry machinery (copy_one_pte), 18.38 ns
    # total, split per the Figure 3 perf profile ------------------------
    pte_copy_compound_head: float = 11.74
    pte_copy_page_ref_inc: float = 2.66
    pte_copy_read_once: float = 2.81
    pte_copy_vm_normal_page: float = 0.145
    pte_copy_other: float = 1.03

    # --- classic fork: per-table and fixed costs -----------------------
    pte_table_alloc: float = 450.0        # pte_alloc_one + list insertion
    upper_table_copy: float = 400.0       # per upper-level table visited
    task_dup_fixed: float = 25_000.0      # dup_task_struct + fds + sched
    vma_dup_each: float = 1_500.0         # per VMA copied into the child
    fork_warmup_fixed: float = 1_462_000.0  # struct-page cache warm-up

    # --- on-demand-fork invocation --------------------------------------
    odf_share_per_table: float = 33.5     # refcount inc + PMD entry write
    odf_fixed: float = 56_000.0           # fitted residual (§5.2.2)

    # --- huge-page (2 MiB) fork path ------------------------------------
    huge_entry_copy: float = 156.0        # per PMD huge entry, incl. lock
    # Extra fixed cost when fork copies only huge entries (no leaf-table
    # machinery, hence no struct-page warm-up); fits Figure 4's 0.17 ms at
    # 1 GB together with task/VMA/upper costs and 512 x huge_entry_copy.
    huge_fork_fixed_extra: float = 62_400.0

    # --- page faults -----------------------------------------------------
    fault_base: float = 1_000.0           # trap + vma lookup + walk
    fault_spurious: float = 250.0         # TLB-stale / already-fixed fault
    page_copy_4k: float = 1_300.0         # cold 4 KiB copy (Table 1)
    page_zero_4k: float = 550.0           # clear_user_page on demand-zero
    page_alloc: float = 400.0             # buddy hot-list allocation
    bulk_copy_per_byte: float = 0.0941    # 10.6 GB/s streaming (2 MiB COW)
    pt_unshare_flip: float = 150.0        # sole owner flips PMD.RW back on
    tlb_flush: float = 200.0              # single-context invalidation
    tlb_flush_per_page: float = 10.0      # range-flush increment

    # --- teardown / unmap -------------------------------------------------
    zap_per_pte: float = 20.0             # per present entry on teardown
    table_free: float = 300.0             # pte_free + accounting
    odf_table_put: float = 40.0           # shared-table refcount decrement

    # --- syscall / user-memory primitives ---------------------------------
    syscall_fixed: float = 1_800.0        # mmap/munmap/mremap entry cost
    memcpy_read_per_byte: float = 0.054     # 19.9 GB/s (fits Fig 8 at 8 %)
    memcpy_write_per_byte: float = 0.158    # 6.3 GB/s (fits Fig 8 at 4 %)
    page_cache_lookup: float = 350.0

    # --- reclaim / swap ----------------------------------------------------
    # Swap I/O modelled on a fast NVMe device: ~12 us to write and ~9 us
    # to read one 4 KiB page, end to end (block submission + DMA).
    swap_out_4k: float = 12_000.0
    swap_in_4k: float = 9_000.0
    swap_cache_lookup: float = 300.0      # xarray lookup in the swap cache
    lru_scan_per_page: float = 30.0       # shrink loop per page examined
    rmap_unmap_per_entry: float = 120.0   # find + swap one PTE via rmap
    shared_table_unmap: float = 400.0     # in-place edit of a shared table
    direct_reclaim_fixed: float = 2_500.0  # foreground reclaim entry cost

    # --- SMP: kernel locking and TLB shootdown IPIs -----------------------
    mmap_lock_acquire: float = 40.0       # uncontended rwsem fast path
    pt_lock_acquire: float = 25.0         # split page-table spinlock
    lock_contended_wakeup: float = 120.0  # queue handoff after a blocked wait
    ipi_send_fixed: float = 1_000.0       # APIC write + send window
    ipi_send_per_cpu: float = 250.0       # per-target vector cost
    ipi_handle: float = 800.0             # remote flush handler + ack
    ctx_switch: float = 1_200.0           # vCPU runqueue task switch

    # --- NUMA topology (distance factor = distance/local - 1; every
    # numa_* constant is the extra cost at factor 1.0, i.e. a SLIT-20
    # hop on a local distance of 10 — typical two-socket DRAM numbers) --
    numa_remote_access: float = 120.0     # extra per remote data access
    numa_remote_walk_per_level: float = 90.0  # extra per remote table touch
    numa_migrate_per_page: float = 1_500.0  # migrate_pages copy + remap
    ipi_cross_node_extra: float = 400.0   # interconnect hop per remote node
    # Mitosis replication: per-replica entry update writes, per-frame
    # replica allocation, and the collapse that frees one replica frame.
    mitosis_replica_write: float = 25.0
    mitosis_replica_alloc: float = 450.0
    mitosis_collapse_per_replica: float = 300.0

    # --- cross-cutting factors --------------------------------------------
    contention_alpha: float = 2.10        # struct-page cacheline scaling
    odf_cow_warmth: float = 0.90          # COW copy discount after odfork

    def replace_with(self, **overrides):
        """Return a copy with ``overrides`` applied, validating names."""
        valid = {f.name for f in fields(self)}
        unknown = set(overrides) - valid
        if unknown:
            raise ConfigurationError(f"unknown cost parameters: {sorted(unknown)}")
        return replace(self, **overrides)

    @property
    def pte_copy_total(self):
        """Total per-PTE-entry cost of the classic fork leaf loop."""
        return (
            self.pte_copy_compound_head
            + self.pte_copy_page_ref_inc
            + self.pte_copy_read_once
            + self.pte_copy_vm_normal_page
            + self.pte_copy_other
        )

    @property
    def pte_copy_contended_part(self):
        """The struct-page cacheline portion that degrades under contention."""
        return self.pte_copy_compound_head + self.pte_copy_page_ref_inc


@dataclass
class CostModel:
    """Charges calibrated costs to the virtual clock with attribution.

    Parameters
    ----------
    clock:
        The machine's :class:`~repro.timing.clock.SimClock`.
    params:
        The constants table.
    profiler:
        Optional :class:`~repro.analysis.profiler.Profiler`; when present
        every charge is attributed to a named kernel function, which is how
        the Figure 3 reproduction works.
    noise:
        Optional :class:`~repro.timing.noise.NoiseModel` applied
        multiplicatively to each charge (off for unit tests).
    contention_source:
        Optional zero-argument callable returning the *emergent* number of
        CPUs concurrently inside the fork copy loop.  When set (by the SMP
        scheduler) it overrides the static ``contention_level``, which
        remains as the fitted-alpha fallback for ``Machine(smp=None)``.
    """

    clock: object
    params: CostParams = field(default_factory=CostParams)
    profiler: object = None
    noise: object = None
    contention_level: int = 1
    suspended: bool = False
    contention_source: object = None

    def background(self):
        """Context manager: suspend charging for off-CPU background work.

        The simulator has one clock (the measured process's CPU); work that
        a real system does on another core in parallel — e.g. a snapshot
        child serialising and exiting while the parent serves requests —
        runs inside this context so it does not inflate foreground time.
        """
        return _SuspendCharges(self)

    def charge(self, fn_name, ns):
        """Charge ``ns`` to the clock, attributed to ``fn_name``."""
        if self.suspended or ns <= 0:
            return 0
        if self.noise is not None:
            ns = self.noise.perturb(ns)
        ns = int(round(ns))
        self.clock.advance(ns)
        if self.profiler is not None:
            self.profiler.add(fn_name, ns)
        return ns

    def charge_many(self, fn_ids, ns_values, fn_table):
        """Charge a whole *sequence* of events as one vectorised operation.

        ``fn_ids`` indexes ``fn_table`` (a list of FN_* names) and
        ``ns_values`` carries the nominal nanoseconds, one entry per event
        in the exact order a per-event caller would have issued them.  The
        result is bit-identical to that per-event loop:

        * events with ``ns <= 0`` are skipped and consume **no** noise draw
          (``charge`` returns before ``perturb``);
        * noise factors come from the same buffered stream, refilled at the
          same boundaries (:meth:`NoiseModel.take`);
        * each event rounds half-even on its own (``np.rint`` == Python's
          ``round``) and the clock advances by the sum of the per-event
          integers;
        * the profiler receives the per-function sums of those integers.

        Returns the total nanoseconds advanced.
        """
        import numpy as np
        if self.suspended:
            return 0
        ns = np.asarray(ns_values, dtype=np.float64).ravel()
        ids = np.asarray(fn_ids, dtype=np.int64).ravel()
        mask = ns > 0.0
        if not mask.any():
            return 0
        live = ns[mask]
        live_ids = ids[mask]
        if self.noise is not None:
            draws = self.noise.take(live.size)
            if draws is not None:
                live = live * draws
        rounded = np.rint(live).astype(np.int64)
        total = int(rounded.sum())
        self.clock.advance(total)
        profiler = self.profiler
        if profiler is not None and profiler.enabled:
            sums = np.bincount(live_ids, weights=rounded,
                               minlength=len(fn_table))
            totals = profiler._totals
            # Every live event touches its function's total — including
            # sub-ns charges whose perturbed value rounds to 0, which the
            # per-event loop records as a zero-valued entry.
            for idx in np.unique(live_ids).tolist():
                totals[fn_table[idx]] += int(sums[idx])
        return total

    def contention_factor(self):
        """Multiplier on struct-page cacheline costs at the current level."""
        if self.contention_source is not None:
            k = max(1, self.contention_source())
        else:
            k = max(1, self.contention_level)
        return 1.0 + self.params.contention_alpha * (k - 1)

    # ---- classic fork ---------------------------------------------------

    def charge_fork_fixed(self, n_vmas):
        """Task and VMA duplication charges common to a classic fork."""
        p = self.params
        self.charge(FN_TASK_DUP, p.task_dup_fixed)
        self.charge(FN_VMA_DUP, p.vma_dup_each * n_vmas)

    def charge_fork_warmup(self):
        """struct-page cache warm-up: paid only when the leaf loop runs."""
        self.charge(FN_FORK_WARMUP, self.params.fork_warmup_fixed)

    def charge_copy_pte_entries(self, n_entries):
        """The copy_one_pte leaf loop over ``n_entries`` present entries."""
        if n_entries <= 0:
            return
        p = self.params
        factor = self.contention_factor()
        self.charge(FN_COMPOUND_HEAD, p.pte_copy_compound_head * n_entries * factor)
        self.charge(FN_PAGE_REF_INC, p.pte_copy_page_ref_inc * n_entries * factor)
        self.charge(FN_READ_ONCE, p.pte_copy_read_once * n_entries)
        self.charge(FN_VM_NORMAL_PAGE, p.pte_copy_vm_normal_page * n_entries)
        self.charge(FN_COPY_ONE_PTE, p.pte_copy_other * n_entries)

    def charge_pte_table_alloc(self, n_tables=1):
        """Allocation of ``n_tables`` leaf tables (pte_alloc_one)."""
        self.charge(FN_PTE_ALLOC, self.params.pte_table_alloc * n_tables)

    def charge_upper_copy(self, n_tables=1):
        """Copying/creating ``n_tables`` upper-level tables."""
        self.charge(FN_UPPER_COPY, self.params.upper_table_copy * n_tables)

    # ---- on-demand-fork --------------------------------------------------

    def charge_odfork_fixed(self, n_vmas):
        """Fixed invocation charges of an on-demand-fork."""
        p = self.params
        self.charge(FN_TASK_DUP, p.task_dup_fixed)
        self.charge(FN_VMA_DUP, p.vma_dup_each * n_vmas)
        self.charge(FN_ODF_FIXED, p.odf_fixed)

    def charge_share_tables(self, n_tables):
        """Sharing ``n_tables`` leaf tables (refcount + PMD write)."""
        if n_tables > 0:
            self.charge(FN_ODF_SHARE, self.params.odf_share_per_table * n_tables)

    def charge_table_put(self, n_tables=1):
        """Shared-table refcount decrements on unmap/exit."""
        self.charge(FN_TABLE_UNSHARE_DEC, self.params.odf_table_put * n_tables)

    # ---- huge pages -------------------------------------------------------

    def charge_huge_fork_fixed(self):
        """Fixed extra of a huge-entry-only classic fork."""
        self.charge(FN_HUGE_COPY, self.params.huge_fork_fixed_extra)

    def charge_copy_huge_entries(self, n_entries):
        """Eager copy of ``n_entries`` PMD-level huge entries."""
        if n_entries > 0:
            self.charge(FN_HUGE_COPY, self.params.huge_entry_copy * n_entries)

    # ---- faults -----------------------------------------------------------

    def charge_fault_base(self):
        """Trap + VMA lookup + walk of one page fault."""
        self.charge(FN_FAULT_BASE, self.params.fault_base)

    def charge_fault_spurious(self):
        """A fault that needed no real work (TLB-stale, reuse)."""
        self.charge(FN_FAULT_BASE, self.params.fault_spurious)

    def charge_page_alloc(self, n_pages=1):
        """Buddy allocation of ``n_pages`` data frames."""
        self.charge(FN_PTE_ALLOC, self.params.page_alloc * n_pages)

    def charge_page_copy_4k(self, n_pages=1, warm=False):
        """COW copies of ``n_pages`` 4 KiB pages (``warm`` discounts)."""
        ns = self.params.page_copy_4k * n_pages
        if warm:
            ns *= self.params.odf_cow_warmth
        self.charge(FN_PAGE_COPY, ns)

    def charge_page_zero(self, n_pages=1):
        """Zeroing ``n_pages`` on demand-zero faults."""
        self.charge(FN_PAGE_ZERO, self.params.page_zero_4k * n_pages)

    def charge_bulk_copy(self, n_bytes):
        """Streaming copy of ``n_bytes`` (huge-page COW, collapse)."""
        self.charge(FN_BULK_COPY, self.params.bulk_copy_per_byte * n_bytes)

    def charge_table_cow_copy(self, n_present):
        """Fault-time copy of a shared PTE table (the paper's mechanism)."""
        self.charge_pte_table_alloc()
        self.charge(FN_TABLE_COPY, 0.0)  # attribution anchor, cost below
        self.charge_copy_pte_entries(n_present)

    def charge_pt_unshare_flip(self):
        """The sole-owner PMD write-bit flip (§3.4)."""
        self.charge(FN_PT_UNSHARE, self.params.pt_unshare_flip)

    def charge_tlb_flush(self, n_pages=1):
        """TLB invalidation for ``n_pages`` (range or single)."""
        p = self.params
        self.charge(FN_TLB_FLUSH, p.tlb_flush + p.tlb_flush_per_page * max(0, n_pages - 1))

    # ---- teardown ----------------------------------------------------------

    def charge_zap_entries(self, n_entries):
        """zap_pte_range work over ``n_entries`` present entries."""
        if n_entries > 0:
            self.charge(FN_ZAP_PTE, self.params.zap_per_pte * n_entries)

    def charge_table_free(self, n_tables=1):
        """Freeing ``n_tables`` table frames."""
        self.charge(FN_TABLE_FREE, self.params.table_free * n_tables)

    # ---- syscalls / user memory ---------------------------------------------

    def charge_syscall(self):
        """Fixed syscall entry/exit cost (mmap family)."""
        self.charge(FN_SYSCALL, self.params.syscall_fixed)

    def charge_memcpy(self, n_bytes, is_write):
        """User-level copy bandwidth for ``n_bytes``."""
        p = self.params
        per = p.memcpy_write_per_byte if is_write else p.memcpy_read_per_byte
        self.charge(FN_MEMCPY, per * n_bytes)

    def charge_page_cache_lookup(self, n=1):
        """Page-cache radix lookups."""
        self.charge(FN_PAGE_CACHE, self.params.page_cache_lookup * n)

    # ---- reclaim / swap ------------------------------------------------------

    def charge_swap_out(self, n_pages=1):
        """Write-out of ``n_pages`` to the swap device."""
        self.charge(FN_SWAP_OUT, self.params.swap_out_4k * n_pages)

    def charge_swap_in(self, n_pages=1):
        """Read-back of ``n_pages`` from the swap device."""
        self.charge(FN_SWAP_IN, self.params.swap_in_4k * n_pages)

    def charge_swap_cache_lookup(self, n=1):
        """Swap-cache lookups on swap-in faults."""
        self.charge(FN_SWAP_CACHE, self.params.swap_cache_lookup * n)

    def charge_lru_scan(self, n_pages=1):
        """LRU shrink-loop work per page examined."""
        self.charge(FN_LRU_SCAN, self.params.lru_scan_per_page * n_pages)

    def charge_rmap_unmap(self, n_entries):
        """try_to_unmap work over ``n_entries`` PTEs."""
        if n_entries > 0:
            self.charge(FN_RMAP_UNMAP, self.params.rmap_unmap_per_entry * n_entries)

    def charge_shared_table_unmap(self):
        """The unmap-in-place edit of one fork-shared PTE table."""
        self.charge(FN_SHARED_UNMAP, self.params.shared_table_unmap)

    def charge_direct_reclaim(self):
        """Fixed entry cost of a foreground (direct) reclaim pass."""
        self.charge(FN_DIRECT_RECLAIM, self.params.direct_reclaim_fixed)

    # ---- SMP: locking and IPIs ----------------------------------------------

    def charge_mmap_lock(self):
        """Uncontended mmap_lock (rwsem) acquire fast path."""
        self.charge(FN_MMAP_LOCK, self.params.mmap_lock_acquire)

    def charge_pt_lock(self):
        """Split page-table spinlock acquire fast path."""
        self.charge(FN_PT_LOCK, self.params.pt_lock_acquire)

    def charge_lock_wakeup(self):
        """Queue handoff charged to a waiter when a contended lock is granted."""
        self.charge(FN_LOCK_WAKEUP, self.params.lock_contended_wakeup)

    def charge_ipi_send(self, n_targets):
        """Sender-side cost of a TLB shootdown IPI to ``n_targets`` vCPUs."""
        if n_targets > 0:
            p = self.params
            self.charge(FN_IPI, p.ipi_send_fixed + p.ipi_send_per_cpu * n_targets)

    def charge_ipi_handle(self):
        """Remote-side cost of receiving one shootdown IPI (flush + ack)."""
        self.charge(FN_IPI, self.params.ipi_handle)

    def charge_ctx_switch(self):
        """Switching the running task on a vCPU runqueue."""
        self.charge(FN_CTX_SWITCH, self.params.ctx_switch)

    # ---- NUMA topology / Mitosis replication --------------------------------

    def charge_numa_access(self, factor, n_pages=1):
        """Distance penalty for touching ``n_pages`` of remote data."""
        if factor > 0 and n_pages > 0:
            self.charge(FN_NUMA_ACCESS,
                        self.params.numa_remote_access * factor * n_pages)

    def charge_numa_walk(self, total_factor):
        """Distance penalty for one page walk's remote table touches.

        ``total_factor`` is the sum of per-level distance factors along
        the walk (0 for an all-local — or replicated — walk).
        """
        if total_factor > 0:
            self.charge(FN_NUMA_WALK,
                        self.params.numa_remote_walk_per_level * total_factor)

    def charge_replica_sync(self, n_replicas, n_entries=1):
        """Mitosis write fan-out: update every replica's copy of entries."""
        if n_replicas > 0 and n_entries > 0:
            self.charge(FN_REPLICA_SYNC,
                        self.params.mitosis_replica_write
                        * n_replicas * n_entries)

    def charge_replica_alloc(self, n_frames=1):
        """Allocation of ``n_frames`` node-local replica table frames."""
        self.charge(FN_REPLICA_ALLOC,
                    self.params.mitosis_replica_alloc * n_frames)

    def charge_replica_collapse(self, n_replicas):
        """Freeing ``n_replicas`` replica frames (collapse-to-shared)."""
        if n_replicas > 0:
            self.charge(FN_REPLICA_COLLAPSE,
                        self.params.mitosis_collapse_per_replica * n_replicas)

    def charge_migrate_pages(self, n_pages, factor=1.0):
        """migrate_pages: cross-node copy + remap of ``n_pages``."""
        if n_pages > 0:
            self.charge(FN_MIGRATE,
                        self.params.numa_migrate_per_page
                        * n_pages * max(factor, 0.5))

    def charge_ipi_cross_node(self, n_remote_nodes):
        """Interconnect-hop surcharge for a shootdown spanning nodes."""
        if n_remote_nodes > 0:
            self.charge(FN_IPI,
                        self.params.ipi_cross_node_extra * n_remote_nodes)


class _SuspendCharges:
    """Re-entrant suspension of cost charging (see CostModel.background)."""

    def __init__(self, model):
        self._model = model
        self._previous = None

    def __enter__(self):
        self._previous = self._model.suspended
        self._model.suspended = True
        return self._model

    def __exit__(self, exc_type, exc, tb):
        self._model.suspended = self._previous
        return False
