"""Virtual time, calibrated costs, noise, and contention modelling."""

from .clock import NSEC_PER_MSEC, NSEC_PER_SEC, NSEC_PER_USEC, SimClock, Stopwatch
from .contention import ConcurrencyTracker, contention_group
from .costs import CostModel, CostParams
from .noise import NoiseModel

__all__ = [
    "SimClock",
    "Stopwatch",
    "CostModel",
    "CostParams",
    "NoiseModel",
    "ConcurrencyTracker",
    "contention_group",
    "NSEC_PER_USEC",
    "NSEC_PER_MSEC",
    "NSEC_PER_SEC",
]
