"""The :class:`Machine`: one simulated host, fully assembled.

A Machine wires together every substrate — virtual clock, calibrated cost
model, noise, profiler, physical frames, buddy allocator, and the kernel —
and is the single entry point applications and benchmarks use.  The default
configuration models the paper's testbed (16-core EPYC 7302P; physical
memory is configurable because host-side numpy arrays scale with it).
"""

from __future__ import annotations

import os

from ..analysis.profiler import Profiler
from ..errors import ConfigurationError
from ..kernel.kernel import Kernel
from ..mem.buddy import BuddyAllocator
from ..mem.page import PAGE_SIZE, PG_RESERVED, PageStructArray
from ..mem.physmem import PhysicalMemory
from ..timing.clock import SimClock
from ..timing.contention import contention_group
from ..timing.costs import CostModel, CostParams
from ..timing.noise import NoiseModel
from ..trace import points
from ..trace.metrics import MetricsRegistry
from .process import Process

MIB = 1024 * 1024
GIB = 1024 * MIB


class StatsView:
    """``machine.stats``: attribute access *and* the unified snapshot.

    Attribute reads/writes proxy to the kernel's ``VMStats`` (the
    historical ``machine.stats.page_faults`` shape every test and
    benchmark uses), while *calling* the view — ``machine.stats()`` —
    returns the metrics registry's full namespaced snapshot, counters
    from every subsystem flattened to ``{"ns.key": value}``.
    """

    __slots__ = ("_machine",)

    def __init__(self, machine):
        object.__setattr__(self, "_machine", machine)

    def __call__(self):
        return self._machine.metrics.snapshot()

    def __getattr__(self, name):
        return getattr(self._machine.kernel.stats, name)

    def __setattr__(self, name, value):
        setattr(self._machine.kernel.stats, name, value)

    def __repr__(self):
        return f"StatsView({self._machine.kernel.stats!r})"


class Machine:
    """A simulated host: hardware model + kernel + process table."""

    def __init__(self, phys_mb=4096, cost_params=None, noise_sigma=0.0,
                 seed=0, n_cores=16, swap_mb=0, smp=None, sanitize=None,
                 numa=None, fastpath=True):
        if phys_mb <= 0:
            raise ConfigurationError("machine needs physical memory")
        self.n_cores = int(n_cores)
        n_frames = int(phys_mb) * MIB // PAGE_SIZE
        self.clock = SimClock()
        self.profiler = Profiler()
        noise = NoiseModel(seed=seed, sigma=noise_sigma) if noise_sigma > 0 else None
        self.cost = CostModel(
            clock=self.clock,
            params=cost_params or CostParams(),
            profiler=self.profiler,
            noise=noise,
        )
        # Opt-in NUMA topology: per-node buddy zones behind a facade with
        # the same surface as the flat allocator; distance costs, policies
        # and (optionally) Mitosis table replication hang off the kernel.
        self.numa = numa
        if numa is not None:
            from ..numa.zones import NumaAllocator
            self.allocator = NumaAllocator(n_frames, numa)
        else:
            self.allocator = BuddyAllocator(n_frames)
        self.pages = PageStructArray(n_frames)
        self.phys = PhysicalMemory(n_frames)
        self._reserve_frame_zero()
        swap = None
        if swap_mb:
            if swap_mb < 0:
                raise ConfigurationError("swap size cannot be negative")
            from ..mem.swap import SwapDevice
            swap = SwapDevice(int(swap_mb) * MIB // PAGE_SIZE)
        self.kernel = Kernel(self.clock, self.cost, self.allocator,
                             self.pages, self.phys, swap=swap, numa=numa)
        # The analytic fast paths (repro.kernel.fastpath) are semantically
        # invisible — repro.verify --equivalence holds them bit-identical
        # to the per-event walks — so they default on.  ``fastpath=False``
        # or REPRO_NO_FASTPATH=1 forces the per-event paths, which is how
        # the equivalence harness builds its reference machines.
        if os.environ.get("REPRO_NO_FASTPATH"):
            fastpath = False
        self.kernel.fastpath = bool(fastpath)
        # Opt-in SMP subsystem: ``smp=N`` attaches N virtual CPUs and the
        # deterministic cooperative scheduler; contention then emerges
        # from lock waits and IPIs instead of the fitted alpha fallback.
        self.smp = None
        if smp:
            if int(smp) < 1:
                raise ConfigurationError("smp needs at least one vCPU")
            from ..smp.sched import Scheduler
            self.smp = Scheduler(self, n_cpus=int(smp), seed=seed)
            self.kernel.smp = self.smp
        # Opt-in dynamic sanitizers (repro.sancheck): "kasan" poisons +
        # quarantines freed frames and catches UAF/double-free; "kcsan"
        # samples data races under the SMP scheduler; "all" enables both.
        self.kasan = None
        self.kcsan = None
        if sanitize is not None:
            if sanitize not in ("kasan", "kcsan", "all"):
                raise ConfigurationError(
                    f"sanitize must be 'kasan', 'kcsan' or 'all', "
                    f"got {sanitize!r}")
            if sanitize in ("kasan", "all"):
                from ..sancheck.kasan import KasanState
                self.kasan = KasanState(self.allocator, self.phys)
                self.allocator.sanitizer = self.kasan
                self.phys.sanitizer = self.kasan
            if sanitize in ("kcsan", "all"):
                if self.smp is None:
                    raise ConfigurationError(
                        "sanitize='kcsan' needs the SMP scheduler (smp=N)")
                from ..sancheck.kcsan import KcsanState
                self.kcsan = KcsanState(self.smp)
                self.kernel.san = self.kcsan
        self._init_process = None
        self._stats_view = StatsView(self)
        # The metrics registry (repro.trace.metrics): each subsystem
        # registers the one source that owns its counters; snapshot()
        # flattens them all into the namespaced ``machine.stats()`` view.
        self.metrics = MetricsRegistry()
        self.metrics.register("vm", self._vm_metrics)
        self.metrics.register("mem", self.memory_report)
        self.metrics.register("lock", self._lock_metrics)
        self.metrics.register("tlb", self._tlb_metrics)
        self.metrics.register("san", self._san_metrics)
        self.metrics.register("trace", self._trace_metrics)
        self.metrics.register("numa", self._numa_metrics)
        # A machine built while a tracer is attached binds to it, so
        # multi-machine benchmarks stamp events against the machine
        # currently under construction/measurement.
        tracer = points.current()
        if tracer is not None:
            tracer.bind(self)

    def _reserve_frame_zero(self):
        """Keep pfn 0 out of circulation so a zero pfn is always a bug."""
        pfn = self.allocator.alloc(0)
        if pfn != 0:
            raise ConfigurationError("expected the first allocation to be pfn 0")
        self.pages.on_alloc(0, PG_RESERVED)

    # ---- process management ------------------------------------------------

    @property
    def init_process(self):
        """The machine's init process (created on first use)."""
        if self._init_process is None:
            task = self.kernel.create_init_task()
            self._init_process = Process(self, task)
        return self._init_process

    def spawn_process(self, name):
        """A new top-level process, child of init."""
        init = self.init_process
        task = self.kernel._new_task(parent=init.task, name=name)
        return Process(self, task)

    # ---- measurement helpers --------------------------------------------------

    @property
    def now_ns(self):
        """Current virtual time in nanoseconds."""
        return self.clock.now_ns

    @property
    def stats(self):
        """Kernel counters — attributes proxy ``VMStats``; calling it
        (``machine.stats()``) returns the unified namespaced snapshot."""
        return self._stats_view

    def stopwatch(self):
        """A started stopwatch over the virtual clock."""
        return self.clock.stopwatch()

    def concurrency(self, n):
        """Context manager declaring ``n`` concurrent forking processes."""
        return contention_group(self.cost, n)

    def run_khugepaged(self, process, policy=None, max_promotions=None):
        """One khugepaged pass over a process (THP promotion, §2.3)."""
        daemon = self.kernel.khugepaged(policy=policy)
        return daemon.scan_mm(process.mm, max_promotions=max_promotions)

    def run_kswapd(self):
        """One kswapd balancing pass; returns frames freed (0 if no swap)."""
        if self.kernel.reclaim is None:
            return 0
        return self.kernel.wake_kswapd()

    def vmstat(self):
        """Kernel counters plus reclaim/swap gauges (/proc/vmstat-style).

        The same dict as the metrics registry's ``vm`` namespace — this
        is now a thin alias so no counter has two owners.
        """
        return self.metrics.collect("vm")

    # ---- metrics-registry sources (one owner per namespace) ----------------

    def _vm_metrics(self):
        """The ``vm`` namespace: VMStats plus reclaim/swap gauges."""
        stats = dict(vars(self.kernel.stats))
        stats["nr_free_pages"] = self.allocator.free_frames
        reclaim = self.kernel.reclaim
        if reclaim is not None:
            stats["nr_active_anon"] = len(reclaim.active)
            stats["nr_inactive_anon"] = len(reclaim.inactive)
            stats["watermark_min"] = reclaim.wm_min
            stats["watermark_low"] = reclaim.wm_low
            stats["watermark_high"] = reclaim.wm_high
            stats["swap_total_slots"] = len(self.kernel.swap)
            stats["swap_used_slots"] = self.kernel.swap.used_slots
            stats["swap_cache_pages"] = len(self.kernel.swap_cache)
        return stats

    def _lock_metrics(self):
        """The ``lock`` namespace: aggregated SMP lock/scheduler stats."""
        smp = self.smp
        if smp is None:
            return {}
        mmap_locks = list(smp._mmap_locks.values())
        pt_locks = list(smp._pt_locks.values())
        return {
            "waits": smp.lock_waits,
            "wait_ns": smp.lock_wait_ns,
            "mmap_contended": sum(l.contended_acquires for l in mmap_locks),
            "mmap_wait_ns": sum(l.wait_ns_total for l in mmap_locks),
            "pt_contended": sum(l.contended_acquires for l in pt_locks),
            "pt_wait_ns": sum(l.wait_ns_total for l in pt_locks),
            "sched_steps": smp.steps,
            "ctx_switches": sum(v.ctx_switches for v in smp.vcpus),
            "ipis_received": sum(v.ipis_received for v in smp.vcpus),
        }

    def _tlb_metrics(self):
        """The ``tlb`` namespace: hit/miss/flush totals over live views."""
        tlbs = [task.mm.tlb for task in self.kernel.tasks.values()]
        if self.smp is not None:
            tlbs.extend(v.tlb for v in self.smp.vcpus)
        out = {"hits": 0, "misses": 0, "flushes_full": 0,
               "flushes_range": 0, "evictions": 0}
        for tlb in tlbs:
            s = tlb.stats
            out["hits"] += s.hits
            out["misses"] += s.misses
            out["flushes_full"] += s.flushes_full
            out["flushes_range"] += s.flushes_range
            out["evictions"] += s.evictions
        out["shootdowns"] = self.kernel.stats.tlb_shootdowns
        out["ipis_sent"] = self.kernel.stats.ipis_sent
        return out

    def _san_metrics(self):
        """The ``san`` namespace: dynamic sanitizer tallies."""
        out = {}
        if self.kasan is not None:
            out["kasan_reports"] = len(self.kasan.reports)
            out["kasan_quarantined"] = len(self.kasan.quarantine)
        if self.kcsan is not None:
            out["kcsan_reports"] = len(self.kcsan.reports)
            out["kcsan_accesses"] = self.kcsan.accesses
        return out

    def _trace_metrics(self):
        """The ``trace`` namespace: the attached tracer's own counters."""
        tracer = points.current()
        if tracer is None or self not in tracer.machines:
            return {}
        return tracer.counters()

    def _numa_metrics(self):
        """The ``numa`` namespace: zonelist + replication statistics."""
        if self.numa is None:
            return {}
        allocator = self.allocator
        stats = self.kernel.stats
        out = {
            "nodes": self.numa.nodes,
            "hit": allocator.numa_hit,
            "fallback": allocator.numa_fallback,
            "remote_accesses": stats.numa_remote_accesses,
            "pages_migrated": stats.pages_migrated,
        }
        for node, (free, used) in enumerate(
                zip(allocator.node_free_frames(),
                    allocator.node_used_frames())):
            out[f"node{node}_free"] = free
            out[f"node{node}_used"] = used
        mitosis = self.kernel.mitosis
        if mitosis is not None:
            out["replica_frames"] = mitosis.replica_frame_count()
            out["replica_allocs"] = stats.replica_allocs
            out["replica_syncs"] = stats.replica_syncs
            out["replica_collapses"] = stats.replica_collapses
            out["replica_fallbacks"] = stats.replica_fallbacks
        return out

    # ---- accounting / invariants -------------------------------------------------

    def live_data_frames(self):
        """Frames with a live refcount, excluding the reserved frame."""
        return self.pages.live_frames() - 1

    def used_frames(self):
        """Allocated frames, excluding the reserved frame 0."""
        return self.allocator.used_frames - 1

    def check_frame_invariants(self):
        """Cross-check allocator vs struct-page state (used by tests)."""
        self.pages.check_no_negative()
        self.allocator.check_consistency()

    def memory_report(self):
        """Machine-wide memory accounting summary."""
        return {
            "total_frames": self.allocator.n_frames,
            "used_frames": self.used_frames(),
            "free_frames": self.allocator.free_frames,
            "live_tables": self.kernel.live_tables,
            "page_cache_pages": len(self.kernel.page_cache),
            "materialized_host_frames": self.phys.materialized_frames,
        }
