"""Public facade: the Machine and Process handles."""

from .machine import GIB, MIB, Machine
from .process import Process

__all__ = ["Machine", "Process", "MIB", "GIB"]
