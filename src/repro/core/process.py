"""User-level process handles.

A :class:`Process` wraps a kernel task with the libc-flavoured API that
examples and applications program against: ``mmap``/``munmap``/``mremap``/
``mprotect``, ``read``/``write`` (byte-accurate, faulting like real loads
and stores), bulk ``touch_range`` sweeps for gigabyte workloads, and the
three process-creation calls the paper discusses — ``fork``, ``odfork``,
and the procfs switch that reroutes the former to the latter.
"""

from __future__ import annotations

from ..kernel.bulkops import access_range, populate_range
from ..kernel.vma import (
    MAP_ANONYMOUS,
    MAP_HUGETLB,
    MAP_POPULATE,
    MAP_PRIVATE,
    MAP_SHARED,
    PROT_READ,
    PROT_WRITE,
)


class Process:
    """A handle on one simulated process."""

    def __init__(self, machine, task):
        self.machine = machine
        self.task = task

    # ---- identity ------------------------------------------------------

    @property
    def pid(self):
        """Process id."""
        return self.task.pid

    @property
    def name(self):
        """Human-readable task name."""
        return self.task.name

    @property
    def alive(self):
        """Whether the process can still run."""
        return self.task.alive

    @property
    def kernel(self):
        """The machine's kernel."""
        return self.machine.kernel

    @property
    def mm(self):
        """This process's address-space descriptor."""
        return self.task.mm

    def __repr__(self):
        return f"Process(pid={self.pid}, name={self.name!r})"

    # ---- memory mapping ----------------------------------------------------

    def mmap(self, length, prot=PROT_READ | PROT_WRITE,
             flags=MAP_PRIVATE | MAP_ANONYMOUS, file=None, offset=0,
             addr=None, name=""):
        """Map memory; returns the start address."""
        return self.kernel.sys_mmap(self.task, length, prot, flags,
                                    file=file, offset=offset, addr=addr,
                                    name=name)

    def mmap_huge(self, length, prot=PROT_READ | PROT_WRITE, populate=False):
        """Anonymous private mapping backed by 2 MiB huge pages."""
        flags = MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB
        if populate:
            flags |= MAP_POPULATE
        return self.kernel.sys_mmap(self.task, length, prot, flags)

    def mmap_shared(self, length, prot=PROT_READ | PROT_WRITE, file=None,
                    offset=0):
        """Shared mapping (shmem when no file is given)."""
        return self.kernel.sys_mmap(self.task, length, prot,
                                    MAP_SHARED | (MAP_ANONYMOUS if file is None else 0),
                                    file=file, offset=offset)

    def munmap(self, addr, length):
        """Unmap a range of this address space."""
        self.kernel.sys_munmap(self.task, addr, length)

    def mremap(self, old_addr, old_size, new_size, may_move=True):
        """Resize/move a mapping; returns its (new) address."""
        return self.kernel.sys_mremap(self.task, old_addr, old_size,
                                      new_size, may_move=may_move)

    def mprotect(self, addr, length, prot):
        """Change protection on a range."""
        self.kernel.sys_mprotect(self.task, addr, length, prot)

    def madvise(self, addr, length, advice):
        """MADV_DONTNEED / MADV_HUGEPAGE / MADV_NOHUGEPAGE (see kernel)."""
        self.kernel.sys_madvise(self.task, addr, length, advice)

    # ---- memory access --------------------------------------------------------

    def write(self, addr, data):
        """Byte-accurate store (takes real faults, COWs real pages)."""
        self.kernel.mem_write(self.task, addr, data)

    def read(self, addr, length):
        """Byte-accurate load."""
        return self.kernel.mem_read(self.task, addr, length)

    def touch(self, addr, length=1, write=False):
        """Fast single-access path: fault/COW like a real access, no bytes."""
        return self.kernel.mem_touch(self.task, addr, length, write)

    def touch_range(self, addr, length, write=True):
        """Bulk sweep over a range; returns the fault-event counts."""
        return access_range(self.kernel, self.task, addr, length,
                            is_write=write)

    def populate(self, addr, length):
        """Pre-fault a range without charging access bandwidth."""
        return populate_range(self.kernel, self.task, addr, length)

    # ---- process lifecycle --------------------------------------------------------

    def fork(self, name=None):
        """Classic fork (or odfork when the procfs default reroutes it)."""
        child_task = self.kernel.sys_fork(self.task, name=name)
        return Process(self.machine, child_task)

    def odfork(self, name=None):
        """The paper's on-demand fork."""
        child_task = self.kernel.sys_odfork(self.task, name=name)
        return Process(self.machine, child_task)

    def vfork(self, name=None):
        """vfork: borrow this address space; this process suspends until
        the child execs or exits (§6.1 semantics)."""
        child_task = self.kernel.sys_vfork(self.task, name=name)
        return Process(self.machine, child_task)

    def clone_vm(self, name=None):
        """clone(CLONE_VM): a thread-style child sharing this mm."""
        child_task = self.kernel.sys_clone_vm(self.task, name=name)
        return Process(self.machine, child_task)

    def execve(self, binary, stack_bytes=None):
        """Replace this process's image with ``binary`` (a SimFile)."""
        return self.kernel.sys_execve(self.task, binary,
                                      stack_bytes=stack_bytes)

    def posix_spawn(self, binary, name=None):
        """Spawn a child directly from a fresh image (clone+exec)."""
        child_task = self.kernel.sys_posix_spawn(self.task, binary, name=name)
        return Process(self.machine, child_task)

    def brk(self, new_brk=None):
        """Query or move the program break (malloc's sbrk heap)."""
        return self.kernel.sys_brk(self.task, new_brk)

    def smaps(self):
        """Per-VMA residency breakdown (/proc/<pid>/smaps)."""
        return self.kernel.proc_smaps(self.task)

    def snapshot(self):
        """In-place snapshot (restore()/discard() on the returned object)."""
        return self.kernel.sys_snapshot(self.task)

    def set_odfork_default(self, enabled=True):
        """The procfs knob: plain fork() becomes on-demand for this task."""
        self.kernel.set_odfork_default(self.task, enabled)

    def exit(self, code=0):
        """Terminate this process (tears down its mm)."""
        self.kernel.sys_exit(self.task, code)

    def wait(self, pid=None):
        """Reap a zombie child; ``(pid, exit_code)`` or ``None``."""
        return self.kernel.sys_wait(self.task, pid)

    # ---- introspection -----------------------------------------------------------------

    @property
    def last_fork_ns(self):
        """Duration of this process's most recent fork-family call."""
        return self.task.last_fork_ns

    @property
    def rss_bytes(self):
        """Resident set size in bytes."""
        return self.mm.rss_bytes

    @property
    def mapped_bytes(self):
        """Total mapped virtual memory in bytes."""
        return self.mm.mapped_bytes()

    def status(self):
        """The /proc/<pid>/status analogue."""
        return self.kernel.proc_status(self.task)
