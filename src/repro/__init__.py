"""On-demand-fork (EuroSys '21) reproduction.

A simulated Linux virtual-memory subsystem with copy-on-write page tables:
classic ``fork`` and the paper's ``on-demand-fork`` side by side, on real
hierarchical paging structures, with a calibrated timing model.

Quick start::

    from repro import Machine, GIB, MIB

    m = Machine(phys_mb=4096)
    parent = m.spawn_process("parent")
    buf = parent.mmap(256 * MIB)
    parent.touch_range(buf, 256 * MIB)          # fill with data
    child = parent.odfork()                     # microsecond fork
    print(parent.last_fork_ns / 1e3, "us")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced table and figure.
"""

from .core import GIB, MIB, Machine, Process
from .errors import (
    BusError,
    ConfigurationError,
    InvalidArgumentError,
    KernelBug,
    OutOfMemoryError,
    ProcessError,
    ReproError,
    SegmentationFault,
)
from .kernel.vma import (
    MAP_ANONYMOUS,
    MAP_FIXED,
    MAP_HUGETLB,
    MAP_POPULATE,
    MAP_PRIVATE,
    MAP_SHARED,
    PROT_EXEC,
    PROT_NONE,
    PROT_READ,
    PROT_WRITE,
)
from .kernel.kernel import MADV_DONTNEED, MADV_HUGEPAGE, MADV_NOHUGEPAGE
from .timing.costs import CostParams

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "Process",
    "CostParams",
    "MIB",
    "GIB",
    "ReproError",
    "ConfigurationError",
    "InvalidArgumentError",
    "SegmentationFault",
    "BusError",
    "OutOfMemoryError",
    "ProcessError",
    "KernelBug",
    "PROT_NONE",
    "PROT_READ",
    "PROT_WRITE",
    "PROT_EXEC",
    "MAP_PRIVATE",
    "MAP_SHARED",
    "MAP_ANONYMOUS",
    "MAP_HUGETLB",
    "MAP_POPULATE",
    "MAP_FIXED",
    "MADV_DONTNEED",
    "MADV_HUGEPAGE",
    "MADV_NOHUGEPAGE",
]
