"""SMP subsystem: virtual CPUs, kernel locking, IPIs, and the
deterministic interleaving scheduler (see MECHANISM.md §10).

Quickstart::

    from repro.core.machine import Machine
    from repro.smp import ops

    machine = Machine(phys_mb=8192, smp=4)
    sched = machine.smp
    p = machine.spawn_process("worker")
    buf = p.mmap(1 << 30); p.touch_range(buf, 1 << 30)
    task = sched.spawn("fork", ops.fork_flow(sched, p), mm=p.mm)
    sched.run()
    print(task.result["elapsed_ns"])
"""

from .locks import (
    DeadlockError,
    LockOrderError,
    MMapLock,
    MODE_READ,
    MODE_WRITE,
    PTLock,
    QuiescenceError,
)
from .sched import (
    Acquire,
    FairPolicy,
    Preempt,
    RandomPolicy,
    Release,
    Scheduler,
    ScriptedPolicy,
    SimTask,
)
from .vcpu import VCPU

__all__ = [
    "Acquire", "DeadlockError", "FairPolicy", "LockOrderError", "MMapLock",
    "MODE_READ", "MODE_WRITE", "PTLock", "Preempt", "QuiescenceError",
    "RandomPolicy", "Release", "Scheduler", "ScriptedPolicy", "SimTask",
    "VCPU",
]
