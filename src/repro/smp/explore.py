"""Interleaving explorer: enumerate/randomize yield-point schedules.

Every yield in an SMP task is a scheduling point; a *schedule* is the
sequence of ready-task choices the policy makes at those points.  The
explorer drives a scenario factory (a callable returning a fresh,
ready-to-run :class:`~repro.smp.sched.Scheduler`) through many distinct
schedules and checks each one:

* the scheduler's built-in lock-order and held-lock-at-yield checker
  (raises :class:`~repro.smp.locks.LockOrderError`);
* deadlock detection (:class:`~repro.smp.locks.DeadlockError`);
* lock/IPI quiescence after the run;
* an optional scenario-specific ``check(sched)`` callback (the tier-1
  race suite plugs the full state auditor in here).

Schedules are identified by their trace — the tuple of task ids chosen
at each step — so "distinct schedules" means distinct traces, and any
trace can be replayed exactly with :func:`replay`.

Run the bounded CI sweep from the command line::

    python -m repro.smp.explore --schedules 240 --seed 7
"""

from __future__ import annotations

from ..core.machine import MIB, Machine
from ..mem.page import PAGE_SIZE
from .locks import DeadlockError, LockOrderError, QuiescenceError
from .sched import RandomPolicy, ScriptedPolicy
from . import ops


class ExploreReport:
    """Outcome of an exploration sweep."""

    def __init__(self):
        self.n_runs = 0
        self.traces = set()
        self.lock_waits = 0
        self.ipis = 0

    @property
    def n_distinct(self):
        return len(self.traces)

    def __repr__(self):
        return (f"ExploreReport(runs={self.n_runs}, "
                f"distinct={self.n_distinct}, lock_waits={self.lock_waits}, "
                f"ipis={self.ipis})")


def run_schedule(make, policy, check=None, max_steps=200_000):
    """One scenario instance under ``policy``; returns (sched, trace).

    Violations — lock-order, deadlock, quiescence, or a failed ``check``
    — propagate as exceptions; a clean return means the schedule passed.
    """
    sched = make()
    sched.run(policy=policy, max_steps=max_steps)
    sched.assert_quiescent()
    if check is not None:
        check(sched)
    return sched, tuple(tid for _n, tid in policy.trace)


def explore_random(make, n_schedules=200, seed=0, check=None,
                   max_steps=200_000):
    """Randomized exploration: ``n_schedules`` seeded random schedules."""
    report = ExploreReport()
    for i in range(n_schedules):
        policy = RandomPolicy(seed * 1_000_003 + i)
        sched, trace = run_schedule(make, policy, check=check,
                                    max_steps=max_steps)
        report.n_runs += 1
        report.traces.add(trace)
        report.lock_waits += sched.lock_waits
        report.ipis += sum(v.ipis_received for v in sched.vcpus)
    return report


def enumerate_schedules(make, limit=50, check=None, max_steps=200_000):
    """Systematic DFS over scheduling-choice prefixes (bounded by ``limit``).

    Starts from the all-zeros schedule and branches at every step where
    more than one task was ready, exploring untaken siblings depth-first
    until ``limit`` runs have executed.  Exhaustive for scenarios with
    fewer than ``limit`` schedules; a prefix-cover sample otherwise.
    """
    report = ExploreReport()
    pending = [()]
    visited = set()
    while pending and report.n_runs < limit:
        prefix = pending.pop()
        if prefix in visited:
            continue
        visited.add(prefix)
        policy = ScriptedPolicy(prefix)
        sched, trace = run_schedule(make, policy, check=check,
                                    max_steps=max_steps)
        report.n_runs += 1
        report.traces.add(trace)
        report.lock_waits += sched.lock_waits
        report.ipis += sum(v.ipis_received for v in sched.vcpus)
        for depth in range(len(prefix), len(policy.branchpoints)):
            n_ready = policy.branchpoints[depth]
            for alt in range(1, n_ready):
                pending.append(tuple(policy.choices[:depth]) + (alt,))
    return report


def replay(make, trace_or_script, check=None, max_steps=200_000):
    """Replay one schedule exactly from a recorded choice script."""
    policy = ScriptedPolicy(trace_or_script)
    return run_schedule(make, policy, check=check, max_steps=max_steps)


# ---------------------------------------------------------------------------
# The fork/fault/reclaim race suite (the ISSUE's acceptance scenario)
# ---------------------------------------------------------------------------

RACE_REGION = 4 * MIB
PARENT_MARK = b"PARENT-DATA"
CHILD_MARK = b"CHILD-WROTE"


def make_race_suite(smp=3, phys_mb=64, swap_mb=8):
    """A fresh machine + scheduler running the shared-PTE-table race suite.

    Setup (outside the schedule): a parent with a 4 MiB touched anonymous
    region and an odfork child sharing its PTE tables.  Tasks (all racing
    over those shared tables):

    1. a classic ``fork`` of the parent (write-protect + leaf copy),
    2. an ``odfork`` of the parent (PMD write-protect + share),
    3. a child write fault (table-COW of a shared table),
    4. kswapd reclaim (in-place unmap through the shared table).

    Returns the scheduler; the machine hangs off ``sched.machine`` and
    the interesting handles off ``sched.scenario``.
    """
    machine = Machine(phys_mb=phys_mb, swap_mb=swap_mb, smp=smp)
    parent = machine.spawn_process("racer")
    buf = parent.mmap(RACE_REGION)
    parent.touch_range(buf, RACE_REGION)
    parent.write(buf, PARENT_MARK)
    child = parent.odfork("racer-odf-child")

    sched = machine.smp
    t_fork = sched.spawn(
        "fork", ops.fork_flow(sched, parent, use_odf=False), mm=parent.mm)
    t_odf = sched.spawn(
        "odfork", ops.fork_flow(sched, parent, use_odf=True), mm=parent.mm)
    t_cow = sched.spawn(
        "child-write",
        ops.write_flow(sched, child, buf + 64 * PAGE_SIZE, CHILD_MARK),
        mm=child.mm)
    t_kswapd = sched.spawn(
        "kswapd", ops.kswapd_flow(sched, machine, target_frames=6))
    sched.scenario = {
        "parent": parent, "child": child, "buf": buf,
        "tasks": {"fork": t_fork, "odfork": t_odf, "cow": t_cow,
                  "kswapd": t_kswapd},
    }
    return sched


def check_race_suite(sched):
    """Schedule-independent invariants of the race suite.

    The parent's data never changes during the run, so *every* fork
    flavour's child must read the parent's marker regardless of ordering;
    the odfork child's own write lands only in its address space.
    """
    scenario = sched.scenario
    parent = scenario["parent"]
    child = scenario["child"]
    buf = scenario["buf"]
    tasks = scenario["tasks"]

    if parent.read(buf, len(PARENT_MARK)) != PARENT_MARK:
        raise AssertionError("parent data corrupted by the schedule")
    if child.read(buf + 64 * PAGE_SIZE, len(CHILD_MARK)) != CHILD_MARK:
        raise AssertionError("odfork child lost its own write")
    if parent.read(buf + 64 * PAGE_SIZE, 1) == CHILD_MARK[:1]:
        raise AssertionError("child write leaked into the parent")
    for label in ("fork", "odfork"):
        grandchild = tasks[label].result["child"]
        if grandchild.read(buf, len(PARENT_MARK)) != PARENT_MARK:
            raise AssertionError(f"{label} child sees wrong parent data")


def run_bounded(n_schedules=240, seed=7, enumerate_limit=40):
    """The CI sweep: fixed seeds, random + systematic, full checks.

    Returns the combined report; raises on any violation.
    """
    random_report = explore_random(make_race_suite, n_schedules=n_schedules,
                                   seed=seed, check=check_race_suite)
    systematic = enumerate_schedules(make_race_suite, limit=enumerate_limit,
                                     check=check_race_suite)
    random_report.n_runs += systematic.n_runs
    random_report.traces |= systematic.traces
    random_report.lock_waits += systematic.lock_waits
    random_report.ipis += systematic.ipis
    return random_report


def main(argv=None):
    import argparse
    import time

    parser = argparse.ArgumentParser(
        prog="python -m repro.smp.explore",
        description="Bounded interleaving exploration of the race suite.")
    parser.add_argument("--schedules", type=int, default=240,
                        help="random schedules to run (default 240)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--enumerate", type=int, default=40,
                        help="systematic DFS budget (default 40)")
    parser.add_argument("--min-distinct", type=int, default=200,
                        help="fail unless at least this many distinct "
                             "schedules ran (default 200)")
    args = parser.parse_args(argv)

    started = time.time()
    try:
        report = run_bounded(n_schedules=args.schedules, seed=args.seed,
                             enumerate_limit=args.enumerate)
    except (LockOrderError, DeadlockError, QuiescenceError,
            AssertionError) as exc:
        print(f"VIOLATION: {type(exc).__name__}: {exc}")
        return 1
    elapsed = time.time() - started
    print(f"explored {report.n_runs} schedules "
          f"({report.n_distinct} distinct) in {elapsed:.1f}s host time; "
          f"{report.lock_waits} contended lock waits, "
          f"{report.ipis} shootdown IPIs; zero violations")
    if report.n_distinct < args.min_distinct:
        print(f"FAIL: only {report.n_distinct} distinct schedules "
              f"(< {args.min_distinct})")
        return 1
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
