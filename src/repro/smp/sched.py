"""Deterministic cooperative SMP scheduler over virtual CPUs.

Tasks are Python generators that perform real kernel work between
yields.  Every yield is a scheduling point; a task yields one of three
event objects:

``Acquire(lock, mode)``
    Block until the lock is granted.  Uncontended acquisition charges
    the fast-path cost; a contended one parks the task on the lock's
    FIFO queue, and the eventual grant advances the waiter's vCPU clock
    to the releaser's time (the queueing delay) plus a handoff charge.

``Release(lock)``
    Drop the lock, handing it to queued waiters in FIFO order.

``Preempt(tag)``
    A pure scheduling point (fault entry, per-2MiB copy boundary...).
    Holding a page-table spinlock across one raises
    :class:`~repro.smp.locks.LockOrderError`.

The scheduler multiplexes tasks over :class:`~repro.smp.vcpu.VCPU`
instances (round-robin placement at spawn, overridable).  While a task
runs, the machine's ``CostModel`` and ``Kernel`` clocks are swapped to
the task's vCPU clock, so all existing ``charge_*`` calls land on the
right CPU without any changes to kernel code.  Which ready task runs
next is decided by a pluggable, seedable policy — the basis of the
interleaving explorer in :mod:`repro.smp.explore`.

Emergent contention: tasks bracket their fork copy loops with
``phase_enter``/``phase_exit``; the live count is installed as the cost
model's ``contention_source``, so the struct-page cacheline multiplier
of §2.1 is driven by how many vCPUs are *actually* in the copy loop at
charge time instead of the fitted ``contention_level``.
"""

from __future__ import annotations

import random

from ..errors import KernelBug
from ..trace import points
from .locks import (
    DeadlockError,
    LockOrderError,
    MMapLock,
    MODE_WRITE,
    PTLock,
    QuiescenceError,
    check_lock_order,
)
from .vcpu import VCPU

STATE_READY = "ready"
STATE_BLOCKED = "blocked"
STATE_DONE = "done"


class Acquire:
    """Yielded by a task to block until ``lock`` is granted."""

    __slots__ = ("lock", "mode")

    def __init__(self, lock, mode=MODE_WRITE):
        self.lock = lock
        self.mode = mode

    def __repr__(self):
        return f"Acquire({self.lock!r}, {self.mode!r})"


class Release:
    """Yielded by a task to drop ``lock``."""

    __slots__ = ("lock",)

    def __init__(self, lock):
        self.lock = lock

    def __repr__(self):
        return f"Release({self.lock!r})"


class Preempt:
    """Yielded by a task at a pure scheduling point (``tag`` labels it)."""

    __slots__ = ("tag",)

    def __init__(self, tag=""):
        self.tag = tag

    def __repr__(self):
        return f"Preempt({self.tag!r})"


class SimTask:
    """One schedulable generator bound to a vCPU."""

    def __init__(self, tid, name, gen, vcpu, mm=None):
        self.tid = tid
        self.name = name
        self.gen = gen
        self.vcpu = vcpu
        self.mm = mm
        self.state = STATE_READY
        self.held = []                # locks currently held, acquire order
        self.blocked_on = None
        self.blocked_at_ns = 0
        self.result = None
        self.steps = 0

    def __repr__(self):
        return f"SimTask({self.tid}:{self.name}, {self.state}, cpu{self.vcpu.id})"


class FairPolicy:
    """Lowest-vCPU-clock-first: approximates truly parallel execution."""

    def pick(self, sched, ready):
        return min(ready, key=lambda t: (t.vcpu.clock.now_ns, t.vcpu.id, t.tid))


class RandomPolicy:
    """Seeded uniformly-random choice among ready tasks, with a trace."""

    def __init__(self, seed=0):
        self.rng = random.Random(seed)
        self.trace = []               # [(n_ready, chosen tid)]

    def pick(self, sched, ready):
        ready = sorted(ready, key=lambda t: t.tid)
        idx = self.rng.randrange(len(ready)) if len(ready) > 1 else 0
        self.trace.append((len(ready), ready[idx].tid))
        return ready[idx]


class ScriptedPolicy:
    """Replay / enumeration policy: follow ``script`` indices, then run 0.

    Records the branching factor and the concrete choice at every step so
    the explorer can both detect untaken siblings and replay a schedule
    exactly.
    """

    def __init__(self, script=()):
        self.script = list(script)
        self.pos = 0
        self.trace = []               # [(n_ready, chosen tid)]
        self.choices = []             # concrete index chosen at each step
        self.branchpoints = []        # n_ready at each step

    def pick(self, sched, ready):
        ready = sorted(ready, key=lambda t: t.tid)
        want = self.script[self.pos] if self.pos < len(self.script) else 0
        self.pos += 1
        idx = min(want, len(ready) - 1)
        self.branchpoints.append(len(ready))
        self.choices.append(idx)
        self.trace.append((len(ready), ready[idx].tid))
        return ready[idx]


class Scheduler:
    """Cooperative scheduler over ``n_cpus`` virtual CPUs.

    Created by ``Machine(smp=N)`` and reachable as ``machine.smp`` /
    ``kernel.smp``.  Spawn generator tasks with :meth:`spawn`, then drive
    them to completion with :meth:`run`.  Multiple spawn/run rounds are
    fine; vCPU clocks are synchronised with the machine's boot clock at
    the start and end of every run.
    """

    def __init__(self, machine, n_cpus=2, seed=0):
        if n_cpus < 1:
            raise KernelBug("Scheduler needs at least one vCPU")
        self.machine = machine
        self.n_cpus = n_cpus
        numa = getattr(machine, "numa", None)
        self.vcpus = [
            VCPU(i, node=numa.node_of_cpu(i, n_cpus) if numa else 0)
            for i in range(n_cpus)
        ]
        self.seed = seed
        self.tasks = []
        self.current = None
        self.running = False
        self.copy_phase = 0           # tasks inside the fork copy loop
        self.ipis_in_flight = 0       # always drains to 0 (sync IPI model)
        self.steps = 0
        self.lock_wait_ns = 0
        self.lock_waits = 0
        self._next_tid = 1
        self._rr = 0
        self._mmap_locks = {}         # id(mm) -> MMapLock
        self._pt_locks = {}           # table pfn -> PTLock

    # ---- lock registry ----------------------------------------------------

    def mmap_lock(self, mm):
        """The (singleton) ``mmap_lock`` for ``mm``."""
        lock = self._mmap_locks.get(id(mm))
        if lock is None:
            lock = self._mmap_locks[id(mm)] = MMapLock(mm)
        return lock

    def pt_lock(self, table_pfn):
        """The (singleton) split page-table lock for table frame ``pfn``."""
        key = int(table_pfn)
        lock = self._pt_locks.get(key)
        if lock is None:
            lock = self._pt_locks[key] = PTLock(key)
        return lock

    # ---- task management --------------------------------------------------

    def spawn(self, name, gen, mm=None, vcpu=None):
        """Register a generator task; round-robin vCPU placement by default."""
        if vcpu is None:
            cpu = self.vcpus[self._rr % self.n_cpus]
            self._rr += 1
        else:
            cpu = self.vcpus[vcpu]
        task = SimTask(self._next_tid, name, gen, cpu, mm=mm)
        self._next_tid += 1
        self.tasks.append(task)
        return task

    def now_ns(self):
        """Virtual time of the current vCPU (boot clock outside a run)."""
        if self.running and self.current is not None:
            return self.current.vcpu.clock.now_ns
        return self.machine.clock.now_ns

    # ---- emergent contention ---------------------------------------------

    def phase_enter(self):
        """A task entered the struct-page-hammering fork copy loop."""
        self.copy_phase += 1

    def phase_exit(self):
        self.copy_phase -= 1
        if self.copy_phase < 0:
            raise KernelBug("unbalanced copy-phase exit")

    def contention_level(self):
        """Emergent k for the alpha cacheline model (≥1)."""
        return max(1, self.copy_phase)

    # ---- IPI delivery (called by the TLB shootdown engine) ----------------

    def deliver_ipis(self, targets, flush):
        """Synchronously IPI ``targets``; ``flush(tlb)`` invalidates each.

        The sender charges the send cost on its own clock; each target is
        dragged forward to the send time (it must stop and service the
        interrupt), charges the handler cost, and the sender then waits
        for the last ack.
        """
        cost = self.machine.cost
        sender = self.current.vcpu if self.current is not None else None
        cost.charge_ipi_send(len(targets))
        self.ipis_in_flight += len(targets)
        send_ns = sender.clock.now_ns if sender is not None else 0
        ack_ns = send_ns
        prev_clock = cost.clock
        try:
            for vcpu in targets:
                vcpu.clock.advance_to(send_ns)
                cost.clock = vcpu.clock
                cost.charge_ipi_handle()
                flush(vcpu.tlb)
                vcpu.ipis_received += 1
                self.ipis_in_flight -= 1
                ack_ns = max(ack_ns, vcpu.clock.now_ns)
        finally:
            cost.clock = prev_clock
        if sender is not None:
            sender.clock.advance_to(ack_ns)
        self.machine.kernel.stats.ipis_sent += len(targets)

    # ---- the run loop -----------------------------------------------------

    def run(self, policy=None, max_steps=1_000_000):
        """Drive all spawned tasks to completion under ``policy``.

        Returns the list of tasks that completed during this run.  Raises
        :class:`DeadlockError` when blocked tasks remain but none is
        ready, and propagates any exception a task raises (including
        :class:`~repro.smp.locks.LockOrderError` from the checker).
        """
        if self.running:
            raise KernelBug("Scheduler.run is not reentrant")
        policy = policy or FairPolicy()
        machine = self.machine
        kernel = machine.kernel
        cost = machine.cost
        boot_clock = machine.clock
        for vcpu in self.vcpus:
            vcpu.clock.advance_to(boot_clock.now_ns)
        started = [t for t in self.tasks if t.state != STATE_DONE]
        prev_source = cost.contention_source
        self.running = True
        cost.contention_source = self.contention_level
        try:
            while True:
                ready = [t for t in self.tasks if t.state == STATE_READY]
                if not ready:
                    blocked = [t for t in self.tasks
                               if t.state == STATE_BLOCKED]
                    if blocked:
                        raise DeadlockError(
                            "all runnable tasks are blocked: "
                            + ", ".join(f"{t.name} on {t.blocked_on!r}"
                                        for t in blocked))
                    break
                self.steps += 1
                if self.steps > max_steps:
                    raise KernelBug(f"scheduler exceeded {max_steps} steps")
                task = policy.pick(self, ready)
                self._resume(task)
        finally:
            self.running = False
            self.current = None
            cost.contention_source = prev_source
            cost.clock = boot_clock
            kernel.clock = boot_clock
            boot_clock.advance_to(max(v.clock.now_ns for v in self.vcpus))
        return [t for t in started if t.state == STATE_DONE]

    def _resume(self, task):
        vcpu = task.vcpu
        cost = self.machine.cost
        cost.clock = vcpu.clock
        self.machine.kernel.clock = vcpu.clock
        if vcpu.current is not task:
            if vcpu.current is not None:
                cost.charge_ctx_switch()
            vcpu.current = task
            vcpu.ctx_switches += 1
        self.current = task
        task.steps += 1
        try:
            event = next(task.gen)
        except StopIteration as stop:
            task.state = STATE_DONE
            task.result = stop.value
            vcpu.current = None
            if task.held:
                raise LockOrderError(
                    f"task {task.name} finished while holding "
                    + ", ".join(repr(l) for l in task.held))
            return
        finally:
            self.current = None
        self._handle_event(task, event)

    def _handle_event(self, task, event):
        if isinstance(event, Acquire):
            check_lock_order(task, event.lock)
            lock = event.lock
            if lock.rank == 0:
                self.machine.cost.charge_mmap_lock()
            else:
                self.machine.cost.charge_pt_lock()
            contended = not lock.try_acquire(task, event.mode)
            if contended:
                task.state = STATE_BLOCKED
                task.blocked_on = lock
                task.blocked_at_ns = task.vcpu.clock.now_ns
            else:
                task.held.append(lock)
            if points.enabled:
                points.tracepoint(
                    "lock.acquire",
                    kind="mmap" if lock.rank == 0 else "pt",
                    contended=contended, cpu=task.vcpu.id)
        elif isinstance(event, Release):
            lock = event.lock
            granted = lock.release(task)
            task.held.remove(lock)
            release_ns = task.vcpu.clock.now_ns
            for waiter in granted:
                self._grant_to_waiter(waiter, lock, release_ns)
        elif isinstance(event, Preempt):
            for held in task.held:
                if held.rank > 0:
                    raise LockOrderError(
                        f"task {task.name} holds spinlock {held!r} across "
                        f"preemption point {event.tag!r}")
        else:
            raise KernelBug(f"task {task.name} yielded {event!r}; expected "
                            f"Acquire/Release/Preempt")

    def _grant_to_waiter(self, waiter, lock, release_ns):
        """Handoff: the waiter's CPU spun/slept until the release time."""
        waited = max(0, release_ns - waiter.blocked_at_ns)
        lock.wait_ns_total += waited
        self.lock_wait_ns += waited
        self.lock_waits += 1
        waiter.vcpu.clock.advance_to(release_ns)
        self._charge_on(waiter.vcpu, "charge_lock_wakeup")
        waiter.held.append(lock)
        waiter.state = STATE_READY
        waiter.blocked_on = None
        if points.enabled:
            points.tracepoint("lock.wait", dur_ns=waited,
                              kind="mmap" if lock.rank == 0 else "pt",
                              cpu=waiter.vcpu.id)

    def _charge_on(self, vcpu, method):
        cost = self.machine.cost
        prev = cost.clock
        cost.clock = vcpu.clock
        try:
            getattr(cost, method)()
        finally:
            cost.clock = prev

    # ---- quiescence -------------------------------------------------------

    def quiescence_errors(self):
        """Invariant violations visible after a run (empty when quiescent)."""
        errors = []
        for lock in list(self._mmap_locks.values()) + list(self._pt_locks.values()):
            if lock.holders():
                errors.append(f"lock still held at teardown: {lock!r}")
            if lock.waiters:
                errors.append(f"waiters still queued at teardown: {lock!r}")
        for task in self.tasks:
            if task.state == STATE_BLOCKED:
                errors.append(f"task still blocked: {task!r} on {task.blocked_on!r}")
            if task.held:
                errors.append(f"task still holds locks: {task!r} -> {task.held}")
        if self.ipis_in_flight:
            errors.append(f"{self.ipis_in_flight} IPIs still in flight")
        if self.copy_phase:
            errors.append(f"copy phase counter not drained: {self.copy_phase}")
        if self.running:
            errors.append("scheduler still marked running")
        return errors

    def assert_quiescent(self):
        """Raise :class:`QuiescenceError` unless all locks/IPIs drained."""
        errors = self.quiescence_errors()
        if errors:
            raise QuiescenceError("; ".join(errors))
