"""Generator task bodies driving kernel operations under the SMP scheduler.

Each flow performs the *same* kernel work as the corresponding syscall,
but yields scheduling events exactly where a real SMP kernel could be
interleaved by another CPU:

* ``Acquire``/``Release`` around ``mmap_lock`` (write for fork-family,
  read for the fault path) and the split page-table locks;
* ``Preempt`` at fault entry and at every 2 MiB copy/share boundary.

The kernel work between two yields executes atomically — that is the
cooperative model's definition of an interleaving point — so the
explorer's schedules enumerate exactly these boundaries.
"""

from __future__ import annotations

from ..core.process import Process
from ..errors import KernelBug
from ..kernel.fork import (
    begin_classic_copy,
    classic_copy_slot,
    finish_classic_copy,
    iter_parent_pmds,
)
from ..kernel.odfork import begin_odf_copy, finish_odf_copy, share_one_slot
from ..mem.page import PAGE_SIZE
from ..paging.entries import entry_pfn, is_huge, is_present
from ..paging.walk import MMUFault
from .locks import MODE_READ, MODE_WRITE
from .sched import Acquire, Preempt, Release

#: FAULT INJECTION (tests only): skip the split page-table lock around the
#: fault handler in :func:`access_flow`.  Two tasks faulting into the same
#: leaf table then mutate it with no common exclusive lock — the bug class
#: the KCSAN sampler and the static lock-context rule both exist to catch.
#: Never enable outside a test.
FAULT_INJECT_SKIP_PTL = False


def _ptl_key(mm, vaddr):
    """The split-lock key guarding ``vaddr``'s last-level translation.

    The leaf table's pfn when one exists (Linux keeps the PTL in the leaf
    table's struct page); the PMD table's pfn for absent or huge slots;
    ``None`` when no PMD table covers the address yet (nothing allocated
    to contend on — the fault runs atomically anyway).
    """
    walked = mm.walk_to_pmd(vaddr, alloc=False)
    if walked is None:
        return None
    pmd_table, pmd_index = walked
    entry = pmd_table.entries[pmd_index]
    if is_present(entry) and not is_huge(entry):
        return int(entry_pfn(entry))
    return int(pmd_table.pfn)


def fork_flow(sched, process, use_odf=False, child_name=None):
    """Fork ``process`` slot-by-slot under ``mmap_lock`` + per-table PTLs.

    Classic forks run inside the emergent-contention phase (their leaf
    loops hammer the struct-page cachelines); odforks never touch the
    leaf level and stay out of it — which is exactly the paper's
    scalability argument.  Returns ``{"child": Process, "elapsed_ns": n}``
    via the generator's return value; ``elapsed_ns`` spans lock wait to
    final shootdown like a wall-clock measurement of the syscall.
    """
    kernel = process.kernel
    task = process.task
    mm = task.mm
    machine = process.machine
    mmap = sched.mmap_lock(mm)
    t_start = sched.now_ns()
    kernel.cost.charge_syscall()
    yield Acquire(mmap, MODE_WRITE)
    name = child_name or f"{task.name}-child"
    child_task = kernel._new_task(parent=task, name=name)
    child_task.odfork_default = task.odfork_default
    child_mm = child_task.mm
    try:
        if use_odf:
            builder = begin_odf_copy(kernel, mm, child_mm)
            shared = 0
            for pmd, pmd_index, slot_start in list(iter_parent_pmds(mm)):
                entry = pmd.entries[pmd_index]
                if not is_present(entry):
                    continue
                if is_huge(entry):
                    share_one_slot(kernel, mm, child_mm, builder, pmd,
                                   pmd_index, slot_start)
                else:
                    ptl = sched.pt_lock(int(entry_pfn(entry)))
                    yield Acquire(ptl)
                    shared += share_one_slot(kernel, mm, child_mm, builder,
                                             pmd, pmd_index, slot_start)
                    yield Release(ptl)
                yield Preempt("odfork.slot")
            finish_odf_copy(kernel, mm, child_mm, builder, shared)
        else:
            state = begin_classic_copy(kernel, mm, child_mm)
            sched.phase_enter()
            try:
                for pmd, pmd_index, slot_start in list(iter_parent_pmds(mm)):
                    entry = pmd.entries[pmd_index]
                    if not is_present(entry):
                        continue
                    if is_huge(entry):
                        classic_copy_slot(kernel, mm, child_mm, state, pmd,
                                          pmd_index, slot_start)
                    else:
                        ptl = sched.pt_lock(int(entry_pfn(entry)))
                        yield Acquire(ptl)
                        classic_copy_slot(kernel, mm, child_mm, state, pmd,
                                          pmd_index, slot_start)
                        yield Release(ptl)
                    yield Preempt("fork.slot")
            finally:
                sched.phase_exit()
            finish_classic_copy(kernel, mm, child_mm, state)
    finally:
        yield Release(mmap)
    elapsed = sched.now_ns() - t_start
    task.last_fork_ns = elapsed
    return {"child": Process(machine, child_task), "elapsed_ns": elapsed}


def access_flow(sched, process, vaddr, n_bytes=1, is_write=True):
    """Touch ``[vaddr, vaddr + n_bytes)`` the way user code would.

    Per page: TLB lookup on the current vCPU, then the hardware-walk /
    fault loop.  The fault handler runs under ``mmap_lock`` (read) and
    the page-table lock covering the address, with a revalidation after
    the PTL acquire (the table may have been COW-replaced while we
    queued — the same re-check Linux does after ``pte_offset_map_lock``).
    """
    kernel = process.kernel
    task = process.task
    mm = task.mm
    mmap = sched.mmap_lock(mm)
    first = vaddr & ~(PAGE_SIZE - 1)
    last = vaddr + max(1, n_bytes) - 1
    for page in range(first, last + 1, PAGE_SIZE):
        yield Acquire(mmap, MODE_READ)
        for _attempt in range(8):
            tlb = kernel.active_tlb(mm)
            if tlb.lookup(page, is_write) is not None:
                break
            try:
                tr = kernel.walker.translate(mm.pgd, page, is_write)
            except MMUFault:
                yield Preempt("fault.entry")
                key = _ptl_key(mm, page)
                if key is None:
                    sched.phase_enter()
                    try:
                        kernel.fault_handler.handle(task, page, is_write)
                    finally:
                        sched.phase_exit()
                    continue
                ptl = sched.pt_lock(key)
                if not FAULT_INJECT_SKIP_PTL:
                    yield Acquire(ptl)
                    if _ptl_key(mm, page) != key:
                        # The table was replaced while we queued; retry
                        # with the lock that now covers the address.
                        yield Release(ptl)
                        continue
                sched.phase_enter()
                try:
                    kernel.fault_handler.handle(task, page, is_write)
                finally:
                    sched.phase_exit()
                if not FAULT_INJECT_SKIP_PTL:
                    yield Release(ptl)
                continue
            else:
                tlb.insert(page, tr.pfn, tr.writable, tr.huge)
                break
        else:
            raise KernelBug(f"SMP fault loop did not converge at {page:#x}")
        yield Release(mmap)


def write_flow(sched, process, addr, data):
    """Fault in ``[addr, addr + len(data))`` for write, then store bytes."""
    yield from access_flow(sched, process, addr, len(data), is_write=True)
    # Permissions are resolved; the store itself hits the warmed TLB.
    process.write(addr, data)


def read_flow(sched, process, addr, length, sink=None):
    """Fault in a range for read, then load it; bytes land in ``sink``."""
    yield from access_flow(sched, process, addr, length, is_write=False)
    data = process.read(addr, length)
    if sink is not None:
        sink.append(data)
    return data


def kswapd_flow(sched, machine, target_frames=8, max_attempts=None):
    """Background reclaim as a schedulable task.

    Victims are picked off the LRU one at a time; for each, every
    page-table lock covering a mapping is taken in ascending-pfn order
    (rmap tells us the set), the mapping set is revalidated after the
    waits, and only then is the page unmapped and swapped out.
    """
    kernel = machine.kernel
    reclaim = kernel.reclaim
    if reclaim is None:
        return 0
    freed = 0
    attempts = 0
    limit = max_attempts if max_attempts is not None else 4 * target_frames + 16
    was_running = reclaim.running
    reclaim.running = True
    try:
        while freed < target_frames and attempts < limit:
            attempts += 1
            yield Preempt("kswapd.scan")
            pfn = reclaim.pick_victim()
            if pfn is None:
                break
            tables = sorted(kernel.rmap.tables_for(pfn))
            if not tables:
                continue  # lost its last mapping while queued; frame gone
            locks = [sched.pt_lock(t) for t in tables]
            for lock in locks:
                yield Acquire(lock)
            current = sorted(kernel.rmap.tables_for(pfn))
            if current == tables:
                if reclaim.evict_candidate(pfn, from_kswapd=True):
                    freed += 1
            elif current and pfn not in reclaim.active \
                    and pfn not in reclaim.inactive:
                # The mapping set changed while we queued (a fork added a
                # sharer, a COW dropped one): rotate the page back.
                reclaim.active.add(pfn)
            for lock in reversed(locks):
                yield Release(lock)
    finally:
        reclaim.running = was_running
    return freed
