"""Virtual CPUs: one clock, one TLB, and one runqueue slot each.

A :class:`VCPU` gives the SMP scheduler a hardware context to charge
time against.  Each vCPU owns

* its own :class:`~repro.timing.clock.SimClock` — lock queueing delay
  and IPI acks propagate between vCPU clocks via ``advance_to``;
* its own :class:`~repro.paging.tlb.TLB` with CR3-style semantics:
  switching to a different ``mm`` flushes the TLB (the simulator has no
  ASIDs/PCIDs), which is what makes remote-vCPU shootdowns observable —
  a vCPU that keeps running the *same* mm keeps its cached translations
  until an IPI invalidates them.
"""

from __future__ import annotations

from ..paging.tlb import TLB
from ..timing.clock import SimClock


class VCPU:
    """One virtual CPU of a :class:`~repro.smp.sched.Scheduler`."""

    def __init__(self, cpu_id, node=0):
        self.id = cpu_id
        #: Home NUMA node (0 on non-NUMA machines): first-touch
        #: allocations by a task running here land on this node, and
        #: cross-node IPIs to/from this CPU carry the interconnect extra.
        self.node = node
        self.clock = SimClock()
        self.tlb = TLB()
        #: The mm whose translations :attr:`tlb` currently caches (CR3).
        self.tlb_mm = None
        #: Task currently (or last) resident on this CPU, for context
        #: switch accounting.
        self.current = None
        self.ctx_switches = 0
        self.ipis_received = 0

    def __repr__(self):
        return f"VCPU(id={self.id}, now={self.clock.now_ns}ns)"

    @property
    def now_ns(self):
        return self.clock.now_ns

    def tlb_for(self, mm):
        """Return this CPU's TLB view of ``mm``, switching CR3 if needed."""
        if self.tlb_mm is not mm:
            if self.tlb_mm is not None:
                self.tlb.flush_all()
            self.tlb_mm = mm
        return self.tlb
