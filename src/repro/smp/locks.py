"""Kernel lock objects for the SMP model: ``mmap_lock`` and split PTLs.

Two lock classes back the scheduler's blocking semantics:

``MMapLock``
    A reader/writer semaphore per address space, modelling Linux's
    ``mm->mmap_lock``.  Fault handlers take it for read; ``fork`` and the
    other address-space mutators take it for write.  Waiters queue FIFO,
    so a queued writer blocks later readers (no reader starvation of
    writers, and grant order is deterministic).

``PTLock``
    A split page-table spinlock, keyed by the physical frame number of
    the table it protects (Linux keeps the spinlock inside ``struct
    page`` of the PTE table — same idea).  Single owner, FIFO waiters.

Lock-ordering discipline (checked at every acquire, violations raise
:class:`LockOrderError`):

1. ``mmap_lock`` before any PTL — never acquire an ``MMapLock`` while
   holding a ``PTLock``.
2. Multiple PTLs only in ascending pfn order (reclaim needs several).
3. No recursive acquisition.
4. PTLs are spinlocks: they must not be held across a ``Preempt`` yield
   (the scheduler enforces this one).
"""

from __future__ import annotations

from ..errors import KernelBug


class LockOrderError(KernelBug):
    """A task violated the kernel lock-ordering discipline."""


class DeadlockError(KernelBug):
    """Every runnable task is blocked on a lock: the schedule deadlocked."""


class QuiescenceError(KernelBug):
    """Locks still held / waiters queued / IPIs in flight after a schedule."""


MODE_READ = "r"
MODE_WRITE = "w"

#: Lock ranks for the ordering check: lower rank must be taken first.
RANK_MMAP = 0
RANK_PT = 1


class MMapLock:
    """Reader/writer ``mmap_lock`` for one ``mm`` with FIFO waiters."""

    rank = RANK_MMAP

    def __init__(self, mm):
        self.mm = mm
        self.writer = None            # task holding it for write
        self.readers = []             # tasks holding it for read
        self.waiters = []             # FIFO [(task, mode)]
        self.contended_acquires = 0
        self.wait_ns_total = 0

    def __repr__(self):
        return (f"MMapLock(mm={getattr(self.mm, 'name', '?')!r}, "
                f"writer={self.writer}, readers={len(self.readers)}, "
                f"waiters={len(self.waiters)})")

    def holders(self):
        if self.writer is not None:
            return [self.writer]
        return list(self.readers)

    def held_by(self, task):
        return task is self.writer or task in self.readers

    def _compatible(self, mode):
        if mode == MODE_WRITE:
            return self.writer is None and not self.readers
        return self.writer is None

    def try_acquire(self, task, mode):
        """Grant immediately when free and no-one is queued ahead."""
        if self.held_by(task):
            raise LockOrderError(
                f"recursive mmap_lock acquire by {task.name}")
        if not self.waiters and self._compatible(mode):
            self._grant(task, mode)
            return True
        self.waiters.append((task, mode))
        self.contended_acquires += 1
        return False

    def _grant(self, task, mode):
        if mode == MODE_WRITE:
            self.writer = task
        else:
            self.readers.append(task)

    def release(self, task):
        """Drop the lock; returns the list of waiters granted by handoff."""
        if task is self.writer:
            self.writer = None
        elif task in self.readers:
            self.readers.remove(task)
        else:
            raise LockOrderError(
                f"{task.name} released mmap_lock it does not hold")
        granted = []
        while self.waiters:
            head, mode = self.waiters[0]
            if not self._compatible(mode):
                break
            self.waiters.pop(0)
            self._grant(head, mode)
            granted.append(head)
            if mode == MODE_WRITE:
                break
        return granted


class PTLock:
    """A split page-table spinlock keyed by the table's pfn."""

    rank = RANK_PT

    def __init__(self, key):
        self.key = int(key)
        self.owner = None
        self.waiters = []             # FIFO [task]
        self.contended_acquires = 0
        self.wait_ns_total = 0

    def __repr__(self):
        return (f"PTLock(pfn={self.key}, owner={self.owner}, "
                f"waiters={len(self.waiters)})")

    def holders(self):
        return [self.owner] if self.owner is not None else []

    def held_by(self, task):
        return task is self.owner

    def try_acquire(self, task, mode=MODE_WRITE):
        if task is self.owner:
            raise LockOrderError(
                f"recursive ptl acquire of pfn {self.key} by {task.name}")
        if self.owner is None and not self.waiters:
            self.owner = task
            return True
        self.waiters.append(task)
        self.contended_acquires += 1
        return False

    def release(self, task):
        if task is not self.owner:
            raise LockOrderError(
                f"{task.name} released ptl pfn {self.key} it does not hold")
        self.owner = None
        if self.waiters:
            head = self.waiters.pop(0)
            self.owner = head
            return [head]
        return []


def check_lock_order(task, lock):
    """Raise :class:`LockOrderError` if acquiring ``lock`` breaks the rules."""
    for held in task.held:
        if held is lock:
            raise LockOrderError(
                f"recursive acquire of {lock!r} by {task.name}")
        if held.rank > lock.rank:
            raise LockOrderError(
                f"{task.name} acquires {lock!r} while holding {held!r} "
                f"(mmap_lock must be taken before page-table locks)")
        if held.rank == lock.rank == RANK_PT and held.key >= lock.key:
            raise LockOrderError(
                f"{task.name} acquires ptl pfn {lock.key} while holding "
                f"ptl pfn {held.key} (ascending-pfn order required)")
