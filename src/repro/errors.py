"""Exception hierarchy for the simulated virtual-memory subsystem.

Every error raised by the simulator derives from :class:`ReproError`, so
callers can distinguish simulator failures from ordinary Python bugs.  The
fault-related exceptions mirror the outcomes a real kernel produces:
``SegmentationFault`` corresponds to delivering SIGSEGV, ``BusError`` to
SIGBUS, and ``OutOfMemoryError`` to the OOM killer selecting the caller.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every simulator-raised error."""


class ConfigurationError(ReproError):
    """A machine or subsystem was configured inconsistently."""


class InvalidArgumentError(ReproError):
    """A syscall-level argument was rejected (the kernel's ``-EINVAL``)."""


class SegmentationFault(ReproError):
    """An access hit an unmapped address or violated VMA permissions.

    Carries the faulting address and whether the access was a write so
    tests can assert on the precise failure.
    """

    def __init__(self, address, is_write, reason=""):
        self.address = address
        self.is_write = is_write
        self.reason = reason
        kind = "write" if is_write else "read"
        detail = f" ({reason})" if reason else ""
        super().__init__(f"SIGSEGV: {kind} at {address:#x}{detail}")


class BusError(ReproError):
    """A file-backed access fell beyond the end of the backing file."""

    def __init__(self, address, reason=""):
        self.address = address
        detail = f" ({reason})" if reason else ""
        super().__init__(f"SIGBUS at {address:#x}{detail}")


class OutOfMemoryError(ReproError):
    """Physical memory was exhausted and the OOM policy killed the caller."""


class ProcessError(ReproError):
    """Process-lifecycle misuse (waiting on a non-child, dead task, ...)."""


class KernelBug(ReproError):
    """An internal invariant was violated; the analogue of ``BUG_ON``.

    Raised instead of silently corrupting state so that tests catch
    refcounting or paging-structure mistakes immediately.
    """


class SanitizerError(KernelBug):
    """Base class for dynamic-sanitizer reports (KASAN/KCSAN).

    Subclasses :class:`KernelBug` deliberately: a sanitizer report means
    the kernel broke an invariant, so harnesses that classify KernelBug
    as a crash finding (the verify oracle, pytest) treat it the same way
    a real KASAN splat stops a syzkaller run.
    """


class KasanError(SanitizerError):
    """Use-after-free, double-free, or invalid-free of a physical frame."""


class KcsanError(SanitizerError):
    """Conflicting concurrent accesses with no common lock held."""
