"""The rule families of the static checker.

Every rule consumes the harvested :class:`~repro.sancheck.model.SourceFile`
records plus the interprocedural :class:`~repro.sancheck.summaries.Summaries`
and yields :class:`Violation`s.  Scoping mirrors where each discipline
applies:

* **lock-context** — global: any harvested caller of an annotated
  function is checked.
* **failpoint**, **refcount**, **tlb** — the kernel proper
  (``repro.kernel``/``repro.smp``) plus any non-``repro`` file passed
  explicitly (the test fixtures).
* **clock-charge** — ``repro.kernel`` + ``repro.paging`` (the layers
  whose mutations must be visible to the virtual clock) + fixtures.
* **metrics** — paired-counter conservation over the kernel scope plus
  ``repro.numa`` (the replica registry), and registry resolution for
  metric namespaces and failpoint site names across the whole tree.
* **fastpath-sound** — any file declaring ``FASTPATH_REPLACES`` next to
  a ``fast_path_ok`` predicate.
* **trace-registry** — every ``tracepoint()`` name, everywhere.

The path-walked families (refcount, tlb, clock-charge, metrics
conservation) share a single :func:`~repro.sancheck.engine.run_paths`
pass per function over its CFG; each family reads its own slice of the
exit states.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cfg import EXIT_FALL, EXIT_RAISE, EXIT_RETURN
from .engine import run_paths
from .events import Classifier, KernelPathDomain
from .summaries import (
    ALLOC_WRAPPERS,
    build_summaries,
    charge_scope,
    collect_tested_features,
    has_failpoint,
    layer,
    raw_alloc_calls,
    strict_kernel_scope,
)

RULES = ("lock-context", "failpoint", "refcount", "tlb", "clock-charge",
         "metrics", "fastpath-sound", "trace-registry", "ignore")

#: The families evaluated by the shared per-function path walk.
WALK_RULES = frozenset({"refcount", "tlb", "clock-charge", "metrics"})


@dataclass
class Violation:
    rule: str
    module: str
    func: str          # qualname
    lineno: int
    message: str

    @property
    def ident(self):
        """Baseline identity: stable across line-number churn."""
        return f"{self.rule}:{self.module}:{self.func}"

    def __str__(self):
        return (f"{self.module}:{self.lineno}: [{self.rule}] "
                f"{self.func}: {self.message}")


def _kernel_scope(func):
    return strict_kernel_scope(func)


def _metrics_scope(func):
    return strict_kernel_scope(func) or func.module.startswith("repro.numa")


# ------------------------------------------------------------------ #
# Classifier (name-flattened summaries for the path walk)


def build_classifier(files, summaries):
    deferred = set()
    charge_deferred = set()
    counters_deferred = {}
    releasers = {}
    for sf in files:
        for func in sf.functions:
            if func.tlb_deferred is not None:
                deferred.add(func.name)
            if func.charge_deferred is not None and not (
                    func.name.startswith("__") and func.name.endswith("__")):
                # Dunder names never flatten: ``super().__init__()`` must
                # not inherit an annotated constructor's obligation.  The
                # per-function suppression still applies via the
                # FunctionInfo attribute.
                charge_deferred.add(func.name)
            if func.counters_deferred:
                kinds = set(counters_deferred.get(func.name, ()))
                kinds.update(func.counters_deferred)
                counters_deferred[func.name] = frozenset(kinds)
            if func.releases_refs:
                kinds = set(releasers.get(func.name, ()))
                kinds.update(func.releases_refs)
                releasers[func.name] = frozenset(kinds)
    functions = summaries.graph.functions
    return Classifier(
        fallible=frozenset(functions[k].name
                           for k in summaries.fallible_keys),
        flushing=frozenset(functions[k].name
                           for k in summaries.flushing_keys),
        deferred=frozenset(deferred),
        releasers=releasers,
        charge_deferred=frozenset(charge_deferred),
        counters_deferred=counters_deferred,
        must_charge=summaries.must_charge_names(),
    )


# ------------------------------------------------------------------ #
# Rule 1: lock-context


def _inline_acquires(func):
    """Locks a generator flow takes via explicit Acquire events."""
    held = set()
    if "Acquire(" not in func.source:
        return held
    if "mmap_lock(" in func.source:
        held.add("mmap_lock")
    if "pt_lock(" in func.source:
        held.add("ptl")
    return held


def check_lock_context(files, summaries):
    violations = []
    graph = summaries.graph
    for sf in files:
        for func in sf.functions:
            held = None
            for call in func.calls:
                candidates = [c for c in graph.resolve(func, call.name)
                              if c.must_hold or c.releases]
                if not candidates:
                    continue
                required = set(candidates[0].must_hold) | set(
                    candidates[0].releases)
                for cand in candidates[1:]:
                    required &= set(cand.must_hold) | set(cand.releases)
                if not required:
                    continue
                if held is None:
                    held = (set(func.must_hold) | set(func.acquires)
                            | _inline_acquires(func))
                missing = sorted(required - held)
                if missing:
                    violations.append(Violation(
                        "lock-context", sf.module, func.qualname, call.lineno,
                        f"calls {call.name}() which requires "
                        f"{'+'.join(missing)}; caller holds "
                        f"{sorted(held) or 'nothing'} — annotate with "
                        f"@must_hold/@acquires or take the lock"))
    return violations


# ------------------------------------------------------------------ #
# Rule 2: failpoint coverage


def check_failpoints(files):
    violations = []
    for sf in files:
        if sf.module == "repro.kernel.failpoints":
            continue
        for func in sf.functions:
            if not _kernel_scope(func) or func.name in ALLOC_WRAPPERS:
                continue
            sites = raw_alloc_calls(func)
            if sites and not has_failpoint(func):
                call = sites[0]
                violations.append(Violation(
                    "failpoint", sf.module, func.qualname, call.lineno,
                    f"allocation via {call.name}() has no failpoints.hit() "
                    f"in this function — fault-injection cannot reach "
                    f"this OOM path"))
    return violations


# ------------------------------------------------------------------ #
# Rule: trace-registry


def check_trace_registry(files):
    """Every ``tracepoint()`` name must be declared in the trace registry.

    The runtime raises :class:`~repro.trace.points.UnknownTracepoint` for
    an undeclared name, but only if the site actually executes while a
    tracer is attached; this rule catches the typo at analysis time, on
    cold paths included.  Names must be string literals — the registry
    is the whole point, so a computed name defeats the check and is
    itself a violation.
    """
    import ast

    from ..trace.registry import EVENTS

    violations = []
    for sf in files:
        for func in sf.functions:
            for call in func.calls:
                if call.name != "tracepoint":
                    continue
                node = call.node
                if not node.args:
                    violations.append(Violation(
                        "trace-registry", sf.module, func.qualname,
                        call.lineno,
                        "tracepoint() called with no event name"))
                    continue
                first = node.args[0]
                if not (isinstance(first, ast.Constant)
                        and isinstance(first.value, str)):
                    violations.append(Violation(
                        "trace-registry", sf.module, func.qualname,
                        call.lineno,
                        "tracepoint name must be a string literal so the "
                        "registry check can verify it"))
                    continue
                if first.value not in EVENTS:
                    violations.append(Violation(
                        "trace-registry", sf.module, func.qualname,
                        call.lineno,
                        f"tracepoint {first.value!r} is not declared in "
                        f"repro.trace.registry.EVENTS — declare it (name, "
                        f"kind, fields) before emitting"))
    return violations


# ------------------------------------------------------------------ #
# Rules refcount / tlb / clock-charge / metrics-conservation
# (one shared CFG path walk per function)


def walk_function(func, classifier, cfg=None, rules=WALK_RULES):
    """Run the shared path walk over one function; yield violations."""
    from .cfg import build_cfg

    if cfg is None:
        cfg = build_cfg(func.node)
    domain = KernelPathDomain(func, classifier)
    exits, overflowed = run_paths(cfg, domain)
    if overflowed:
        return []  # under-approximate rather than guess

    violations = []
    raise_states = exits[EXIT_RAISE]
    normal_states = exits[EXIT_FALL] + exits[EXIT_RETURN]

    if "refcount" in rules and _kernel_scope(func):
        seen_ref = set()
        for state in raise_states:
            if state.bug or not state.pins:
                continue
            for (kind, key), (count, line) in state.pins.items():
                if (kind, key) in seen_ref:
                    continue
                seen_ref.add((kind, key))
                violations.append(Violation(
                    "refcount", func.module, func.qualname,
                    state.raise_line or line,
                    f"{kind} reference '{key}' (taken at line "
                    f"{line}) is still held when an exception "
                    f"path leaves the function — release it in "
                    f"the unwind or transfer ownership first"))

    if ("tlb" in rules and _kernel_scope(func)
            and func.tlb_deferred is None):
        for state in normal_states:
            if state.tlb_line is not None:
                violations.append(Violation(
                    "tlb", func.module, func.qualname, state.tlb_line,
                    "PTE/PMD cleared or downgraded (line "
                    f"{state.tlb_line}) with no TLB flush before a "
                    "normal exit — flush, or mark @tlb_deferred and "
                    "flush in the caller"))
                break

    if ("clock-charge" in rules and charge_scope(func)
            and func.charge_deferred is None):
        for state in normal_states:
            if state.mut_line is not None and not state.charged:
                violations.append(Violation(
                    "clock-charge", func.module, func.qualname,
                    state.mut_line,
                    f"frame/PTE mutation (line {state.mut_line}) reaches "
                    f"a normal exit with no virtual-clock charge on the "
                    f"path — charge the cost model, or mark "
                    f"@charge_deferred and charge in the caller"))
                break

    if "metrics" in rules and _metrics_scope(func):
        declared = frozenset(func.counters_deferred)
        seen_kind = set()
        for state in raise_states:
            if state.bug or not state.counts:
                continue
            for kind, (count, line) in state.counts.items():
                if kind in declared or kind in seen_kind:
                    continue
                seen_kind.add(kind)
                violations.append(Violation(
                    "metrics", func.module, func.qualname,
                    state.raise_line or line,
                    f"counter '{kind}' (incremented at line {line}) is "
                    f"left unbalanced when an exception path leaves the "
                    f"function — decrement it in the unwind, or mark "
                    f"@counters_deferred({kind!r}, ...) and balance in "
                    f"the caller"))
    return violations


def check_walk(files, summaries, classifier, rules=WALK_RULES):
    violations = []
    walk_scope_rules = rules & WALK_RULES
    if not walk_scope_rules:
        return violations
    for sf in files:
        for func in sf.functions:
            if not (_kernel_scope(func) or charge_scope(func)
                    or _metrics_scope(func)):
                continue
            violations.extend(walk_function(
                func, classifier, cfg=summaries.cfg(func),
                rules=walk_scope_rules))
    return violations


# ------------------------------------------------------------------ #
# Rule: fastpath-sound


def _feature_covered(required, tokens):
    """Whether ``required`` is satisfied by any token (prefix match in
    either direction: a test on ``numa`` covers ``numa.zones`` reads,
    and a test on ``failpoints.active`` covers the ``failpoints``
    machinery)."""
    for token in tokens:
        if (token == required or token.startswith(required + ".")
                or required.startswith(token + ".")):
            return True
    return False


def check_fastpath_sound(files, summaries):
    """``fast_path_ok`` must test (or declare handled) every kernel
    feature the slow paths it replaces consult."""
    violations = []
    for sf in files:
        replaces = sf.constants.get("FASTPATH_REPLACES")
        if not isinstance(replaces, dict) or not replaces:
            continue
        guard = next((f for f in sf.functions if f.name == "fast_path_ok"),
                     None)
        if guard is None:
            violations.append(Violation(
                "fastpath-sound", sf.module, "<module>", 1,
                "FASTPATH_REPLACES is declared but no fast_path_ok() "
                "predicate exists to guard the fast paths"))
            continue
        handled = sf.constants.get("FASTPATH_HANDLED")
        handled = handled if isinstance(handled, dict) else {}

        root_keys = set()
        for fast_name, slow_name in sorted(replaces.items()):
            candidates = [c for c in summaries.graph.by_name.get(slow_name, [])
                          if layer(c.module) == 0]
            if not candidates:
                violations.append(Violation(
                    "fastpath-sound", sf.module, guard.qualname, guard.lineno,
                    f"FASTPATH_REPLACES maps {fast_name!r} to unknown slow "
                    f"path {slow_name!r}"))
                continue
            root_keys.update(c.key for c in candidates)

        tokens, reaches_fp, reaches_tp = summaries.slow_path_requirements(
            root_keys)
        required = set(tokens)
        required.add("fastpath")          # the master engagement switch
        if reaches_fp:
            required.add("failpoints")
        if reaches_tp:
            required.add("points.enabled")

        tested = collect_tested_features(guard)
        handled_keys = frozenset(handled)
        for req in sorted(required):
            if _feature_covered(req, tested):
                continue
            if _feature_covered(req, handled_keys):
                continue
            violations.append(Violation(
                "fastpath-sound", sf.module, guard.qualname, guard.lineno,
                f"slow path consults kernel feature '{req}' but "
                f"fast_path_ok() neither tests it nor declares it in "
                f"FASTPATH_HANDLED — the fast path can engage with the "
                f"feature live and silently diverge"))

        # Shrink-only symmetry for the declaration table itself.
        for key in sorted(handled_keys):
            if not handled[key] or not isinstance(handled[key], str):
                violations.append(Violation(
                    "fastpath-sound", sf.module, guard.qualname, guard.lineno,
                    f"FASTPATH_HANDLED[{key!r}] has no justification string"))
            elif any(key == t or key.startswith(t + ".") for t in tested):
                violations.append(Violation(
                    "fastpath-sound", sf.module, guard.qualname, guard.lineno,
                    f"FASTPATH_HANDLED[{key!r}] is redundant: fast_path_ok() "
                    f"already bails on that feature — remove the entry"))
            elif not any(req == key or req.startswith(key + ".")
                         for req in required):
                violations.append(Violation(
                    "fastpath-sound", sf.module, guard.qualname, guard.lineno,
                    f"FASTPATH_HANDLED[{key!r}] is stale: no slow path "
                    f"consults that feature any more — remove the entry"))
    return violations


# ------------------------------------------------------------------ #
# Rule: metrics registry resolution (the string half of the metrics
# family — MetricsRegistry namespaces and failpoint site names)


def check_metrics_registry(files):
    import ast

    violations = []
    registered = set()
    consults = []      # (sf, func, call, kind)
    for sf in files:
        if sf.module == "repro.trace.metrics":
            continue   # the registry implementation iterates itself
        for func in sf.functions:
            for call in func.calls:
                if "metrics" not in call.receiver:
                    continue
                if call.name == "register":
                    node = call.node
                    if node.args and isinstance(node.args[0], ast.Constant):
                        registered.add(node.args[0].value)
                elif call.name in ("collect", "unregister"):
                    consults.append((sf, func, call))
    for sf, func, call in consults:
        node = call.node
        if not node.args or not isinstance(node.args[0], ast.Constant):
            violations.append(Violation(
                "metrics", sf.module, func.qualname, call.lineno,
                f"metrics.{call.name}() namespace must be a string literal "
                f"so the registry check can verify it"))
            continue
        name = node.args[0].value
        if name not in registered:
            violations.append(Violation(
                "metrics", sf.module, func.qualname, call.lineno,
                f"metrics.{call.name}({name!r}) does not resolve: no "
                f"metrics.register({name!r}, ...) exists in the tree"))

    # Failpoint site names resolve against the SITES registry.
    sites_owner = next(
        (sf for sf in files if isinstance(sf.constants.get("SITES"),
                                          (set, frozenset, tuple, list))),
        None)
    if sites_owner is not None:
        sites = frozenset(sites_owner.constants["SITES"])
        used = set()
        for sf in files:
            for func in sf.functions:
                for call in func.calls:
                    if (call.name not in ("hit", "fails")
                            or "failpoints" not in call.receiver):
                        continue
                    node = call.node
                    if not node.args or not isinstance(node.args[0],
                                                       ast.Constant):
                        continue   # programmatic site (verify harness)
                    site = node.args[0].value
                    used.add(site)
                    if site not in sites:
                        violations.append(Violation(
                            "metrics", sf.module, func.qualname, call.lineno,
                            f"failpoint site {site!r} is not declared in "
                            f"{sites_owner.module}.SITES — declare it so "
                            f"the fault-injection harness can enumerate it"))
        for site in sorted(sites - used):
            violations.append(Violation(
                "metrics", sites_owner.module, "<module>", 1,
                f"SITES declares failpoint site {site!r} but no "
                f"failpoints.hit()/fails() call uses it — remove the "
                f"stale declaration"))
    return violations


# ------------------------------------------------------------------ #


def run_all_rules(files, summaries=None, rules=None):
    enabled = frozenset(rules) if rules is not None else frozenset(RULES)
    if summaries is None:
        summaries = build_summaries(files)
    violations = []
    if "lock-context" in enabled:
        violations += check_lock_context(files, summaries)
    if "failpoint" in enabled:
        violations += check_failpoints(files)
    if "trace-registry" in enabled:
        violations += check_trace_registry(files)
    if "fastpath-sound" in enabled:
        violations += check_fastpath_sound(files, summaries)
    if "metrics" in enabled:
        violations += check_metrics_registry(files)
    if enabled & WALK_RULES:
        classifier = build_classifier(files, summaries)
        violations += check_walk(files, summaries, classifier,
                                 rules=enabled & WALK_RULES)
    return violations
