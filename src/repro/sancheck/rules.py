"""The four rule families of the static checker.

Every rule consumes the harvested :class:`~repro.sancheck.model.SourceFile`
records and yields :class:`Violation`s.  Scoping mirrors where each
discipline applies:

* **lock-context** — global: any harvested caller of an annotated
  function is checked.
* **failpoint**, **refcount**, **tlb** — the kernel proper
  (``repro.kernel``/``repro.smp``) plus any non-``repro`` file passed
  explicitly (the test fixtures); the mem/paging/core layers sit below
  the disciplines these rules encode.
"""

from __future__ import annotations

from dataclasses import dataclass

from .dataflow import (
    Classifier,
    FALL,
    FLUSH_CALLS,
    FunctionWalker,
    RAISE,
    RETURN,
)

RULES = ("lock-context", "failpoint", "refcount", "tlb", "trace-registry",
         "ignore")


@dataclass
class Violation:
    rule: str
    module: str
    func: str          # qualname
    lineno: int
    message: str

    @property
    def ident(self):
        """Baseline identity: stable across line-number churn."""
        return f"{self.rule}:{self.module}:{self.func}"

    def __str__(self):
        return (f"{self.module}:{self.lineno}: [{self.rule}] "
                f"{self.func}: {self.message}")


def _kernel_scope(func):
    module = func.module
    return (module.startswith("repro.kernel")
            or module.startswith("repro.smp")
            or not module.startswith("repro"))


# ------------------------------------------------------------------ #
# Project-wide fixpoints


#: The reclaim-on-pressure allocation wrappers: they *are* the fallible
#: primitives the failpoint rule guards, so they are exempt from needing
#: a failpoint themselves (their callers carry the sites).
ALLOC_WRAPPERS = frozenset({
    "alloc_data_frame", "alloc_data_frames_bulk", "alloc_huge_frame",
    "alloc_table_frame", "alloc_table",
    # The NUMA-aware inner halves of the wrappers above: their callers
    # carry the ``numa.node_alloc`` (or upstream) failpoint sites.
    "_alloc_one", "_alloc_bulk",
})


def _raw_alloc_calls(func):
    """Call sites in ``func`` that allocate frames or swap slots."""
    sites = []
    for call in func.calls:
        if call.name in ALLOC_WRAPPERS:
            sites.append(call)
        elif call.name in ("alloc", "alloc_bulk") and (
                "allocator" in call.receiver):
            sites.append(call)
        elif call.name == "alloc_slot" and "swap" in call.receiver:
            sites.append(call)
    return sites


def _has_failpoint(func):
    return any(call.name in ("hit", "fails") and "failpoints" in call.receiver
               for call in func.calls)


def _raises_oom(func):
    return ("raise OutOfMemoryError" in func.source
            or "raise OutOfFramesError" in func.source)


def compute_fallible(files):
    """Names of functions that can raise OOM, to a call-graph fixpoint.

    Only kernel-scope functions seed and propagate the set: the rules
    that consume it report on kernel scope alone, and the call graph is
    matched by bare name — an application- or fleet-layer method that
    happens to share a name with a kernel callee (``acquire``,
    ``transfer``) must not make every kernel call site look fallible.
    """
    by_name = {}
    fallible = set()
    for sf in files:
        for func in sf.functions:
            if not _kernel_scope(func):
                continue
            by_name.setdefault(func.name, []).append(func)
            if (_raw_alloc_calls(func) or _has_failpoint(func)
                    or _raises_oom(func)):
                fallible.add(func.name)
    changed = True
    while changed:
        changed = False
        for sf in files:
            for func in sf.functions:
                if not _kernel_scope(func) or func.name in fallible:
                    continue
                if any(c.name in fallible for c in func.calls):
                    fallible.add(func.name)
                    changed = True
    return frozenset(fallible)


def compute_flushing(files):
    """Names of functions that reach a TLB flush, to a fixpoint."""
    flushing = set()
    for sf in files:
        for func in sf.functions:
            if any(c.name in FLUSH_CALLS for c in func.calls):
                flushing.add(func.name)
    changed = True
    while changed:
        changed = False
        for sf in files:
            for func in sf.functions:
                if func.name in flushing:
                    continue
                if any(c.name in flushing for c in func.calls):
                    flushing.add(func.name)
                    changed = True
    return frozenset(flushing)


def build_classifier(files):
    deferred = set()
    releasers = {}
    for sf in files:
        for func in sf.functions:
            if func.tlb_deferred is not None:
                deferred.add(func.name)
            if func.releases_refs:
                kinds = set(releasers.get(func.name, ()))
                kinds.update(func.releases_refs)
                releasers[func.name] = frozenset(kinds)
    return Classifier(
        fallible=compute_fallible(files),
        flushing=compute_flushing(files),
        deferred=frozenset(deferred),
        releasers=releasers,
    )


# ------------------------------------------------------------------ #
# Rule 1: lock-context


def _inline_acquires(func):
    """Locks a generator flow takes via explicit Acquire events."""
    held = set()
    if "Acquire(" not in func.source:
        return held
    if "mmap_lock(" in func.source:
        held.add("mmap_lock")
    if "pt_lock(" in func.source:
        held.add("ptl")
    return held


def check_lock_context(files):
    annotated = {}
    for sf in files:
        for func in sf.functions:
            if func.must_hold or func.releases:
                annotated.setdefault(func.name, []).append(func)

    violations = []
    for sf in files:
        for func in sf.functions:
            held = None
            for call in func.calls:
                candidates = annotated.get(call.name)
                if not candidates:
                    continue
                required = set(candidates[0].must_hold) | set(
                    candidates[0].releases)
                for cand in candidates[1:]:
                    required &= set(cand.must_hold) | set(cand.releases)
                if not required:
                    continue
                if held is None:
                    held = (set(func.must_hold) | set(func.acquires)
                            | _inline_acquires(func))
                missing = sorted(required - held)
                if missing:
                    violations.append(Violation(
                        "lock-context", sf.module, func.qualname, call.lineno,
                        f"calls {call.name}() which requires "
                        f"{'+'.join(missing)}; caller holds "
                        f"{sorted(held) or 'nothing'} — annotate with "
                        f"@must_hold/@acquires or take the lock"))
    return violations


# ------------------------------------------------------------------ #
# Rule 2: failpoint coverage


def check_failpoints(files):
    violations = []
    for sf in files:
        if sf.module == "repro.kernel.failpoints":
            continue
        for func in sf.functions:
            if not _kernel_scope(func) or func.name in ALLOC_WRAPPERS:
                continue
            sites = _raw_alloc_calls(func)
            if sites and not _has_failpoint(func):
                call = sites[0]
                violations.append(Violation(
                    "failpoint", sf.module, func.qualname, call.lineno,
                    f"allocation via {call.name}() has no failpoints.hit() "
                    f"in this function — fault-injection cannot reach "
                    f"this OOM path"))
    return violations


# ------------------------------------------------------------------ #
# Rule: trace-registry


def check_trace_registry(files):
    """Every ``tracepoint()`` name must be declared in the trace registry.

    The runtime raises :class:`~repro.trace.points.UnknownTracepoint` for
    an undeclared name, but only if the site actually executes while a
    tracer is attached; this rule catches the typo at analysis time, on
    cold paths included.  Names must be string literals — the registry
    is the whole point, so a computed name defeats the check and is
    itself a violation.
    """
    import ast

    from ..trace.registry import EVENTS

    violations = []
    for sf in files:
        for func in sf.functions:
            for call in func.calls:
                if call.name != "tracepoint":
                    continue
                node = call.node
                if not node.args:
                    violations.append(Violation(
                        "trace-registry", sf.module, func.qualname,
                        call.lineno,
                        "tracepoint() called with no event name"))
                    continue
                first = node.args[0]
                if not (isinstance(first, ast.Constant)
                        and isinstance(first.value, str)):
                    violations.append(Violation(
                        "trace-registry", sf.module, func.qualname,
                        call.lineno,
                        "tracepoint name must be a string literal so the "
                        "registry check can verify it"))
                    continue
                if first.value not in EVENTS:
                    violations.append(Violation(
                        "trace-registry", sf.module, func.qualname,
                        call.lineno,
                        f"tracepoint {first.value!r} is not declared in "
                        f"repro.trace.registry.EVENTS — declare it (name, "
                        f"kind, fields) before emitting"))
    return violations


# ------------------------------------------------------------------ #
# Rules 3+4: refcount pairing and TLB discipline (shared path walk)


def check_dataflow(files, classifier):
    violations = []
    for sf in files:
        for func in sf.functions:
            if not _kernel_scope(func):
                continue
            walker = FunctionWalker(func, classifier)
            exits = walker.run()
            if walker.overflowed:
                continue  # under-approximate rather than guess
            seen_ref = set()
            seen_tlb = False
            for outcome, state in exits:
                if outcome is RAISE and state.pins and not state.bug:
                    for (kind, key), (count, line) in state.pins.items():
                        if (kind, key) in seen_ref:
                            continue
                        seen_ref.add((kind, key))
                        violations.append(Violation(
                            "refcount", sf.module, func.qualname,
                            state.raise_line or line,
                            f"{kind} reference '{key}' (taken at line "
                            f"{line}) is still held when an exception "
                            f"path leaves the function — release it in "
                            f"the unwind or transfer ownership first"))
                if (outcome in (FALL, RETURN) and state.tlb_line is not None
                        and func.tlb_deferred is None and not seen_tlb):
                    seen_tlb = True
                    violations.append(Violation(
                        "tlb", sf.module, func.qualname, state.tlb_line,
                        "PTE/PMD cleared or downgraded (line "
                        f"{state.tlb_line}) with no TLB flush before a "
                        "normal exit — flush, or mark @tlb_deferred and "
                        "flush in the caller"))
    return violations


def run_all_rules(files):
    classifier = build_classifier(files)
    violations = []
    violations += check_lock_context(files)
    violations += check_failpoints(files)
    violations += check_trace_registry(files)
    violations += check_dataflow(files, classifier)
    return violations
