"""Intraprocedural path walker for the refcount and TLB rules.

A deliberately small abstract interpreter over function bodies:

* Paths are enumerated over ``if``/``try``/``for``/``while`` structure —
  loops as zero-or-one iterations, conditions memoized by their source
  text (so ``if kernel.rmap is not None:`` guards taken at an ``inc``
  stay consistent with the same guard at the paired ``dec``).
* State is (open reference pins, pending-unflushed-TLB flag).  Calls are
  classified into events — inc/dec, fallible (may raise OOM), flush,
  deferred-flush, releases-refs — by name against project-wide fixpoint
  sets computed in :mod:`repro.sancheck.rules`.
* A *fallible* call forks a ``raise`` path that routes through enclosing
  ``try`` handlers; a reference pin still open when a raise path leaves
  the function is a refcount violation, and a pending TLB downgrade
  still unflushed when a *normal* path leaves is a TLB violation
  (raise exits are exempt: abort paths shoot down at the caller).

The walker under-approximates by design (one loop iteration, text-based
pin keys, ownership transfer closing pins) — a checker that floods real
kernels with false positives gets turned off; one that misses a corner
but holds the line on the common shapes gets kept on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .model import call_name

#: Calls that take a reference, by last name segment -> pin kind.
INC_CALLS = {
    "ref_inc": "page", "ref_inc_bulk": "page",
    "pt_ref_inc": "ptref",
    "swap_dup": "swap", "swap_dup_entries": "swap",
}
#: Calls that drop a reference (pairing with the above).
DEC_CALLS = {
    "ref_dec": "page", "ref_dec_bulk": "page",
    "pt_ref_dec": "ptref",
    "swap_put": "swap", "swap_put_entries": "swap",
}
#: TLB flush primitives (the ShootdownEngine / per-mm TLB surface).
FLUSH_CALLS = frozenset({
    "flush_page", "flush_range", "flush_all",
    "local_flush_page", "local_flush_range",
    "shootdown_page", "shootdown_mm", "shootdown_sharers",
})
#: Calls that hand an already-taken reference to a longer-lived owner
#: (entry installs are handled structurally; these are the call forms).
TRANSFER_CALLS = frozenset({"rmap_add", "rmap_add_bulk", "set"})

#: Per-function cap on simultaneously live abstract states.  A function
#: that overflows it is skipped (under-approximation, never a false
#: positive); nothing in the tree comes close.
STATE_BUDGET = 1024

FALL, RETURN, RAISE, BREAK = "fall", "return", "raise", "break"


@dataclass
class Classifier:
    """Project-wide call knowledge the walker consults by name."""

    fallible: frozenset = frozenset()     # names that may raise OOM
    flushing: frozenset = frozenset()     # names that flush on their paths
    deferred: frozenset = frozenset()     # names tagged @tlb_deferred
    releasers: dict = field(default_factory=dict)  # name -> ref kinds


@dataclass
class PathState:
    pins: dict = field(default_factory=dict)   # (kind, key) -> (count, line)
    tlb_line: int | None = None                # pending downgrade, or None
    conds: dict = field(default_factory=dict)  # memoized branch decisions
    raise_line: int | None = None              # where this path raised
    #: a KernelBug raise: the kernel is dead, nothing unwinds (BUG_ON
    #: semantics) — the refcount rule exempts these paths.
    bug: bool = False

    def copy(self):
        return PathState(dict(self.pins), self.tlb_line, dict(self.conds),
                         self.raise_line, self.bug)

    def signature(self):
        return (tuple(sorted((k, v[0]) for k, v in self.pins.items())),
                self.tlb_line, tuple(sorted(self.conds.items())),
                self.raise_line, self.bug)


def _dedupe(paths):
    seen = set()
    out = []
    for outcome, state in paths:
        sig = (outcome, state.signature())
        if sig not in seen:
            seen.add(sig)
            out.append((outcome, state))
    return out


def _calls_in_order(node):
    """Call nodes under ``node`` in source-position order."""
    calls = [n for n in ast.walk(node) if isinstance(n, ast.Call)]
    calls.sort(key=lambda n: (n.lineno, n.col_offset))
    return calls


def _text(node):
    try:
        return ast.unparse(node)
    except Exception:
        return ""


def _pin_key(call):
    """A textual identity for the reference a call takes or drops."""
    if call.args:
        return _text(call.args[0])
    return "<noarg>"


class FunctionWalker:
    """Walks one function; collects refcount and TLB findings."""

    def __init__(self, func, classifier):
        self.func = func
        self.classifier = classifier
        self.overflowed = False
        #: set when the function contains make_swap_entry: any entry
        #: store then counts as a downgrade (present -> swap-entry PTE).
        self._swapifies = "make_swap_entry" in func.source

    # -- events ----------------------------------------------------------

    def _apply_call(self, call, state):
        """Mutates ``state``; returns a forked raise-state or None."""
        name, receiver = call_name(call)
        cls = self.classifier
        forked = None
        if name in INC_CALLS:
            kind = INC_CALLS[name]
            key = (kind, _pin_key(call))
            count, _ = state.pins.get(key, (0, call.lineno))
            state.pins[key] = (count + 1, call.lineno)
        elif name in DEC_CALLS:
            kind = DEC_CALLS[name]
            key = (kind, _pin_key(call))
            entry = state.pins.get(key)
            if entry is not None:
                count, line = entry
                if count <= 1:
                    del state.pins[key]
                else:
                    state.pins[key] = (count - 1, line)
        elif name in cls.releasers:
            kinds = cls.releasers[name]
            for key in [k for k in state.pins if k[0] in kinds]:
                del state.pins[key]
        elif name in FLUSH_CALLS:
            state.tlb_line = None
        elif name in cls.flushing:
            state.tlb_line = None
        elif name in TRANSFER_CALLS:
            self._transfer(state, _text(call))
        if name == "clear" and call.args and "table" in receiver:
            state.tlb_line = call.lineno
        if name in cls.deferred:
            state.tlb_line = call.lineno

        if (name in cls.fallible
                or (name in ("hit",) and "failpoints" in receiver)):
            forked = state.copy()
            forked.raise_line = call.lineno
        return forked

    def _transfer(self, state, text):
        """Close pins whose key appears in an ownership-transfer site."""
        for key in [k for k in state.pins
                    if k[1] != "<noarg>" and k[1] in text]:
            del state.pins[key]

    def _apply_pt_refcount_aug(self, node, state):
        target_text = _text(node.target)
        if "pt_refcount" not in target_text:
            return
        key = ("ptref", target_text)
        if isinstance(node.op, ast.Add):
            count, _ = state.pins.get(key, (0, node.lineno))
            state.pins[key] = (count + 1, node.lineno)
        elif isinstance(node.op, ast.Sub) and key in state.pins:
            count, line = state.pins[key]
            if count <= 1:
                del state.pins[key]
            else:
                state.pins[key] = (count - 1, line)

    def _is_entries_target(self, target):
        return (isinstance(target, ast.Subscript)
                and ("entries" in _text(target.value)))

    def _downgrade_line(self, node):
        """Line of a PTE/PMD clear-or-downgrade in ``node``, else None."""
        if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.BitAnd):
            text = _text(node)
            soft = (("BIT_ACCESSED" in text or "BIT_DIRTY" in text)
                    and "RW" not in text and "drop" not in text.lower())
            if soft:
                return None
            if self._is_entries_target(node.target):
                return node.lineno
            # ``entry &= drop_rw`` on a local that is then stored back.
            if isinstance(node.target, ast.Name) and "drop" in text:
                return node.lineno
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if not self._is_entries_target(target):
                    continue
                value = _text(node.value)
                if ("ENTRY_NONE" in value or value == "0"
                        or "protected" in value or "drop" in value
                        or self._swapifies):
                    return node.lineno
        return None

    # -- statement walk --------------------------------------------------

    def run(self):
        """Returns the function's exit paths as (outcome, state) pairs."""
        exits = []
        falls = self._block(self.func.node.body, [PathState()], exits)
        for state in falls:
            exits.append((FALL, state))
        return exits

    def _block(self, stmts, states, exits):
        """Run ``stmts`` over ``states``; non-fall outcomes go to
        ``exits`` (return/raise) or are returned tagged (break)."""
        for stmt in stmts:
            if not states:
                break
            next_states = []
            for state in states:
                for outcome, out_state in self._stmt(stmt, state, exits):
                    if outcome is FALL:
                        next_states.append(out_state)
                    else:
                        exits.append((outcome, out_state))
            states = self._budget([(FALL, s) for s in next_states])
            states = [s for _, s in states]
        return states

    def _budget(self, paths):
        paths = _dedupe(paths)
        if len(paths) > STATE_BUDGET:
            self.overflowed = True
            paths = paths[:STATE_BUDGET]
        return paths

    def _stmt(self, stmt, state, exits):
        handler = getattr(self, "_stmt_" + type(stmt).__name__, None)
        if handler is not None:
            return handler(stmt, state, exits)
        # Default: evaluate any embedded calls, stay on the fall path.
        return self._eval(stmt, state)

    def _eval(self, node, state):
        """Process call/downgrade events in one simple statement."""
        results = [(FALL, state)]
        for call in _calls_in_order(node):
            forked = self._apply_call(call, state)
            if forked is not None:
                results.append((RAISE, forked))
        if isinstance(node, ast.AugAssign):
            self._apply_pt_refcount_aug(node, state)
        line = self._downgrade_line(node) if isinstance(
            node, (ast.Assign, ast.AugAssign)) else None
        if line is not None:
            state.tlb_line = line
        if isinstance(node, ast.Assign):
            # Ownership transfer: a pinned object stored into a container
            # or table entry now belongs to that owner.
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    self._transfer(state, _text(node.value))
        return results

    # individual statement kinds ----------------------------------------

    def _stmt_Return(self, stmt, state, exits):
        results = []
        if stmt.value is not None:
            for outcome, st in self._eval(stmt.value, state):
                if outcome is RAISE:
                    results.append((RAISE, st))
        results.append((RETURN, state))
        return results

    def _stmt_Raise(self, stmt, state, exits):
        state.raise_line = stmt.lineno
        if stmt.exc is not None and "KernelBug" in _text(stmt.exc):
            state.bug = True
        return [(RAISE, state)]

    def _stmt_Break(self, stmt, state, exits):
        return [(BREAK, state)]

    _stmt_Continue = _stmt_Break

    def _stmt_If(self, stmt, state, exits):
        test_text = _text(stmt.test)
        memo = len(test_text) < 80
        results = []
        decided = state.conds.get(test_text) if memo else None
        for take in (True, False):
            if decided is not None and take is not decided:
                continue
            branch = state.copy() if decided is None else state
            if memo and decided is None:
                branch.conds[test_text] = take
            body = stmt.body if take else stmt.orelse
            sub_exits = []
            falls = self._block(body, [branch], sub_exits)
            results.extend(sub_exits)
            results.extend((FALL, s) for s in falls)
        return _dedupe(results)

    def _stmt_For(self, stmt, state, exits):
        return self._loop(stmt.body, stmt.orelse, stmt.iter, state)

    def _stmt_While(self, stmt, state, exits):
        return self._loop(stmt.body, stmt.orelse, stmt.test, state)

    def _loop(self, body, orelse, head, state):
        results = []
        # Head expression may itself call something fallible.
        head_results = self._eval(head, state) if head is not None else [
            (FALL, state)]
        for outcome, st in head_results:
            if outcome is RAISE:
                results.append((RAISE, st))
        # Zero iterations:
        skip = state.copy()
        sub_exits = []
        falls = self._block(orelse, [skip], sub_exits)
        results.extend(sub_exits)
        results.extend((FALL, s) for s in falls)
        # One iteration (break/continue end it):
        once = state.copy()
        sub_exits = []
        falls = self._block(body, [once], sub_exits)
        for outcome, st in sub_exits:
            if outcome is BREAK:
                results.append((FALL, st))
            else:
                results.append((outcome, st))
        results.extend((FALL, s) for s in falls)
        return _dedupe(results)

    def _stmt_With(self, stmt, state, exits):
        for item in stmt.items:
            for outcome, st in self._eval(item.context_expr, state):
                if outcome is RAISE:
                    exits.append((RAISE, st))
        sub_exits = []
        falls = self._block(stmt.body, [state], sub_exits)
        results = list(sub_exits)
        results.extend((FALL, s) for s in falls)
        return results

    def _stmt_Try(self, stmt, state, exits):
        results = []
        body_exits = []
        body_falls = self._block(stmt.body, [state], body_exits)

        raised, passed = [], []
        for outcome, st in body_exits:
            (raised if outcome is RAISE else passed).append((outcome, st))

        # Raises route through each handler (types are not tracked).
        for _, st in raised:
            if not stmt.handlers:
                passed.append((RAISE, st))
                continue
            for handler in stmt.handlers:
                h_state = st.copy()
                h_exits = []
                h_falls = self._block(handler.body, [h_state], h_exits)
                passed.extend(h_exits)
                for h_fall in h_falls:  # handled: not raising any more
                    h_fall.raise_line = None
                body_falls = body_falls + h_falls

        # else-block runs after a clean body.
        if stmt.orelse:
            e_exits = []
            body_falls = self._block(stmt.orelse, list(body_falls), e_exits)
            passed.extend(e_exits)

        # finally runs on every path.
        if stmt.finalbody:
            fin_passed = []
            for outcome, st in passed:
                f_exits = []
                f_falls = self._block(stmt.finalbody, [st], f_exits)
                fin_passed.extend(f_exits)
                fin_passed.extend((outcome, s) for s in f_falls)
            passed = fin_passed
            fin_falls = []
            for st in body_falls:
                f_exits = []
                f_falls = self._block(stmt.finalbody, [st], f_exits)
                passed.extend(f_exits)
                fin_falls.extend(f_falls)
            body_falls = fin_falls

        results.extend(passed)
        results.extend((FALL, s) for s in body_falls)
        return self._budget(results)
