"""KCSAN-style data-race sampling for the SMP scheduler.

The real KCSAN plants watchpoints on sampled memory accesses and reports
when a conflicting access from another CPU lands while the watchpoint is
armed.  The cooperative model gives us something stronger: every
instrumented kernel access (``Kernel.san_access``) leaves a watchpoint
on its logical word — a leaf-table pfn, a struct-page refcount — tagged
with the accessing task and the locks (with hold modes) it held at that
moment.

A later access to the same word conflicts when all of:

* it comes from a **different task** that is still live (the previous
  accessor has not exited — its critical section could still be open);
* at least one of the two accesses is a **write**;
* **no common lock serialises the pair**.  A lock held by both sides
  serialises them unless *both* held it in read mode: two readers of
  the same rwsem are not mutually excluded — exactly the subtlety a
  pure "do they share a lock?" check misses and KCSAN catches.
"""

from __future__ import annotations

from ..errors import KcsanError


def _lockset(task):
    """Map ``id(lock) -> hold mode`` for every lock ``task`` holds.

    PTLs are always exclusive (``"w"``); an ``MMapLock`` records whether
    this task holds it as the writer or as one of the readers.
    """
    out = {}
    for lock in task.held:
        if hasattr(lock, "readers"):
            out[id(lock)] = "w" if lock.writer is task else "r"
        else:
            out[id(lock)] = "w"
    return out


def _serialized(locks_a, locks_b):
    """Whether some common lock orders the two accesses.

    A shared lock serialises the pair unless both sides held it for
    read (read/read holds of an rwsem exclude nobody).
    """
    for lock_id, mode_a in locks_a.items():
        mode_b = locks_b.get(lock_id)
        if mode_b is not None and (mode_a == "w" or mode_b == "w"):
            return True
    return False


class KcsanState:
    """Watchpoint table keyed by (kind, word) logical addresses."""

    def __init__(self, sched):
        self.sched = sched
        # (kind, key) -> (task, lockset, was_write)
        self.watchpoints = {}
        self.reports = []
        self.accesses = 0

    def access(self, kind, key, write):
        """Record an instrumented access; raise on a conflicting pair."""
        task = self.sched.current
        if task is None:
            return  # not running under the scheduler (setup/teardown)
        self.accesses += 1
        locks = _lockset(task)
        word = (kind, key)
        prev = self.watchpoints.get(word)
        self.watchpoints[word] = (task, locks, bool(write))
        if prev is None:
            return
        prev_task, prev_locks, prev_write = prev
        if prev_task is task or prev_task.state == "done":
            return
        if not (write or prev_write):
            return  # read/read never races
        if _serialized(locks, prev_locks):
            return
        message = (
            f"data race on {kind}:{key}: "
            f"{'write' if write else 'read'} by {task.name} "
            f"(holding {len(locks)} lock(s)) conflicts with "
            f"{'write' if prev_write else 'read'} by {prev_task.name} "
            f"(holding {len(prev_locks)} lock(s)) — "
            f"no common lock serialises the pair")
        self.reports.append(message)
        raise KcsanError(message)
