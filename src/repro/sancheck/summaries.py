"""Call graph + per-function summaries (the interprocedural layer).

The call graph keys functions by identity (``module:qualname``) and
resolves call sites by last name segment *filtered by layer*: core
kernel layers (``repro.kernel``/``smp``/``paging``/``mem``/``numa``/
``timing``/``trace``, plus non-``repro`` fixture files) never resolve
to fleet-layer candidates (``repro.cluster``/``apps``/``core``/...), so
an application-side method that happens to share a kernel callee's name
(``acquire``, ``transfer``, ``reserve``) cannot poison the kernel's
summaries — the PR 6 collision the old name-only fixpoint papered over
with a blanket scope test.

Summaries computed to a fixpoint over the graph:

* ``fallible_keys``   — may raise OOM (raw allocator/swap calls,
  failpoint sites, explicit OOM raises, or a fallible callee).
* ``flushing_keys``   — may reach a TLB flush.
* ``must_charge_keys`` — charge the virtual clock on **every** normal
  path (computed by iterating the boolean must-lattice per function
  over the call graph; see :class:`~.events.MustChargeDomain`).
* feature-attribute tests + failpoint/tracepoint reachability — the
  transitive "what does this slow path consult?" sets the
  fastpath-soundness rule compares against ``fast_path_ok``.
"""

from __future__ import annotations

import ast
from collections import defaultdict

from .cfg import EXIT_FALL, EXIT_RETURN, build_cfg
from .engine import run_lattice
from .events import FLUSH_CALLS, MustChargeDomain

#: Core-kernel module prefixes (layer 0).  Everything else under
#: ``repro.`` is the fleet/application layer (layer 1); files outside
#: the ``repro`` package (test fixtures) analyse as layer 0.
KERNELISH_PREFIXES = (
    "repro.kernel", "repro.smp", "repro.paging", "repro.mem",
    "repro.numa", "repro.timing", "repro.trace", "repro.errors",
)

#: Modules whose obligation the clock-charge rule enforces.
CHARGE_SCOPE_PREFIXES = ("repro.kernel", "repro.paging")

#: ``self``-rooted feature tests inside a subsystem module normalize
#: under that subsystem's feature root, so one ``fast_path_ok`` test or
#: ``FASTPATH_HANDLED`` entry covers the subsystem's internals.
MODULE_FEATURE_ROOTS = {
    "repro.mem.buddy": "allocator",
    "repro.mem.physmem": "phys",
    "repro.mem.reclaim": "reclaim",
    "repro.mem.swap": "swap",
    "repro.numa": "numa",
    "repro.smp": "smp",
    "repro.trace": "points",
}


def layer(module):
    """0 for core-kernel (and fixture) modules, 1 for the fleet layer."""
    if not module.startswith("repro.") and module != "repro":
        return 0
    if any(module == p or module.startswith(p + ".")
           for p in KERNELISH_PREFIXES):
        return 0
    return 1


def strict_kernel_scope(func):
    """The scope the failpoint/refcount/TLB rules report on."""
    module = func.module
    return (module.startswith("repro.kernel")
            or module.startswith("repro.smp")
            or not module.startswith("repro"))


def charge_scope(func):
    module = func.module
    return (any(module.startswith(p) for p in CHARGE_SCOPE_PREFIXES)
            or not module.startswith("repro"))


#: The reclaim-on-pressure allocation wrappers: they *are* the fallible
#: primitives the failpoint rule guards, so they are exempt from needing
#: a failpoint themselves (their callers carry the sites).
ALLOC_WRAPPERS = frozenset({
    "alloc_data_frame", "alloc_data_frames_bulk", "alloc_huge_frame",
    "alloc_table_frame", "alloc_table",
    # The NUMA-aware inner halves of the wrappers above: their callers
    # carry the ``numa.node_alloc`` (or upstream) failpoint sites.
    "_alloc_one", "_alloc_bulk",
})


def raw_alloc_calls(func):
    """Call sites in ``func`` that allocate frames or swap slots."""
    sites = []
    for call in func.calls:
        if call.name in ALLOC_WRAPPERS:
            sites.append(call)
        elif call.name in ("alloc", "alloc_bulk") and (
                "allocator" in call.receiver):
            sites.append(call)
        elif call.name == "alloc_slot" and "swap" in call.receiver:
            sites.append(call)
    return sites


def has_failpoint(func):
    return any(call.name in ("hit", "fails") and "failpoints" in call.receiver
               for call in func.calls)


def _raises_oom(func):
    return ("raise OutOfMemoryError" in func.source
            or "raise OutOfFramesError" in func.source)


class CallGraph:
    """Name-resolved, layer-filtered call edges over harvested files."""

    def __init__(self, files):
        self.functions = {}
        self.by_name = defaultdict(list)
        for sf in files:
            for func in sf.functions:
                self.functions[func.key] = func
                self.by_name[func.name].append(func)
        self._callees = {}

    def resolve(self, caller, name):
        """Candidate callees for ``name`` called from ``caller``.

        Layer-0 callers resolve only to layer-0 candidates (the kernel
        never calls up into the fleet); layer-1 callers resolve to
        everything (the fleet calls down freely).
        """
        candidates = self.by_name.get(name)
        if not candidates:
            return []
        if layer(caller.module) == 0:
            return [c for c in candidates if layer(c.module) == 0]
        return list(candidates)

    def callees(self, func):
        """Resolved callee FunctionInfos of ``func`` (cached)."""
        cached = self._callees.get(func.key)
        if cached is None:
            cached = []
            seen = set()
            for call in func.calls:
                for cand in self.resolve(func, call.name):
                    if cand.key not in seen:
                        seen.add(cand.key)
                        cached.append(cand)
            self._callees[func.key] = cached
        return cached


def _fixpoint(graph, funcs, seeded, absorb_scope):
    """Propagate a seeded key set along resolved call edges to fixpoint.

    ``absorb_scope(func)`` limits both who can join the set and whose
    membership is visible to callers.
    """
    result = set(seeded)
    changed = True
    while changed:
        changed = False
        for func in funcs:
            if func.key in result or not absorb_scope(func):
                continue
            for callee in graph.callees(func):
                if callee.key in result and absorb_scope(callee):
                    result.add(func.key)
                    changed = True
                    break
    return result


class Summaries:
    """The interprocedural facts every rule consumes."""

    def __init__(self, files):
        self.files = files
        self.graph = CallGraph(files)
        funcs = list(self.graph.functions.values())
        self._cfgs = {}
        self._feature_cache = {}

        self.fallible_keys = frozenset(_fixpoint(
            self.graph, funcs,
            {f.key for f in funcs if strict_kernel_scope(f)
             and (raw_alloc_calls(f) or has_failpoint(f) or _raises_oom(f))},
            strict_kernel_scope))

        self.flushing_keys = frozenset(_fixpoint(
            self.graph, funcs,
            {f.key for f in funcs
             if any(c.name in FLUSH_CALLS for c in f.calls)},
            lambda f: True))

        self.must_charge_keys = self._compute_must_charge(funcs)

    # -- CFG cache -------------------------------------------------------

    def cfg(self, func):
        got = self._cfgs.get(func.key)
        if got is None:
            got = build_cfg(func.node)
            self._cfgs[func.key] = got
        return got

    # -- must-charge fixpoint --------------------------------------------

    def _compute_must_charge(self, funcs):
        candidates = [f for f in funcs if charge_scope(f)
                      and "charge" in f.source]
        keys = set()
        while True:
            names = self._flatten_must_charge(keys, candidates)
            domain = MustChargeDomain(names)
            new = set()
            for func in candidates:
                exit_values = run_lattice(self.cfg(func), domain)
                normals = [exit_values[k] for k in (EXIT_FALL, EXIT_RETURN)
                           if k in exit_values]
                if normals and all(normals):
                    new.add(func.key)
            if new == keys:
                return frozenset(keys)
            keys = new

    def _flatten_must_charge(self, keys, candidates):
        by_name = defaultdict(list)
        for func in candidates:
            by_name[func.name].append(func)
        return frozenset(
            name for name, cands in by_name.items()
            if cands and all(f.key in keys for f in cands))

    def must_charge_names(self):
        candidates = [f for f in self.graph.functions.values()
                      if charge_scope(f) and "charge" in f.source]
        return self._flatten_must_charge(self.must_charge_keys, candidates)

    # -- feature-attribute tests (fastpath-soundness) --------------------

    def feature_tests(self, func):
        """Normalized kernel-feature tokens ``func``'s branches test."""
        got = self._feature_cache.get(func.key)
        if got is None:
            got = _collect_feature_tests(func)
            self._feature_cache[func.key] = got
        return got

    def reachable(self, roots):
        """Layer-0 transitive closure of callees from ``roots`` (keys)."""
        seen = set()
        stack = [self.graph.functions[k] for k in roots
                 if k in self.graph.functions]
        while stack:
            func = stack.pop()
            if func.key in seen or layer(func.module) != 0:
                continue
            seen.add(func.key)
            stack.extend(self.graph.callees(func))
        return seen

    def slow_path_requirements(self, root_keys):
        """(feature tokens, reaches_failpoint, reaches_tracepoint) for the
        closure of ``root_keys`` — what the slow paths consult."""
        tokens = set()
        reaches_fp = False
        reaches_tp = False
        for key in self.reachable(root_keys):
            func = self.graph.functions[key]
            if (func.module.startswith("repro.trace")
                    or func.module == "repro.kernel.failpoints"):
                # Wholesale-gated layers: the tracer is off behind
                # ``points.enabled`` and fault injection behind
                # ``failpoints``/``active`` — their internals are not
                # individually consultable features.
                continue
            tokens |= self.feature_tests(func)
            if has_failpoint(func):
                reaches_fp = True
            if any(c.name == "tracepoint" for c in func.calls):
                reaches_tp = True
        return tokens, reaches_fp, reaches_tp


def build_summaries(files):
    return Summaries(files)


# ------------------------------------------------------------------ #
# Feature-test normalization


def _module_feature_root(module):
    for prefix, root in MODULE_FEATURE_ROOTS.items():
        if module == prefix or module.startswith(prefix + "."):
            return root
    return None


def _attr_path(node):
    """Dotted text of a pure Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _paths_in_test(node, out):
    """Collect candidate dotted paths from one branch-test expression."""
    if isinstance(node, ast.BoolOp):
        for value in node.values:
            _paths_in_test(value, out)
    elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
        _paths_in_test(node.operand, out)
    elif isinstance(node, ast.Compare):
        # ``kernel.X is None`` / ``is not None`` / ``== something``: the
        # left side names the feature being consulted.
        _paths_in_test(node.left, out)
    elif isinstance(node, (ast.Attribute, ast.Name)):
        path = _attr_path(node)
        if path is not None:
            out.append(path)
    elif (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
          and node.func.id == "getattr" and len(node.args) >= 2):
        base = _attr_path(node.args[0])
        attr = node.args[1]
        if base is not None and isinstance(attr, ast.Constant):
            out.append(f"{base}.{attr.value}")


def _collect_aliases(func_node):
    """``x = kernel.swap``-style local aliases (name -> dotted path)."""
    aliases = {}
    for node in ast.walk(func_node):
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            path = _attr_path(node.value)
            if path is not None and "." in path:
                aliases[node.targets[0].id] = path
    return aliases


def normalize_feature(path, module, aliases=None, owner=None):
    """Map a dotted test path to a feature token, or None.

    ``kernel.``-rooted paths strip the root (``kernel.failpoints.active``
    -> ``failpoints.active``) wherever the ``kernel`` segment sits
    (``mm.kernel.mitosis`` -> ``mitosis``); ``self`` counts as the
    kernel only inside the ``Kernel`` class itself (``owner`` is the
    function's qualname); ``self`` inside a mapped subsystem module
    lands under that subsystem's feature root (``self.sanitizer`` in
    ``mem.buddy`` -> ``allocator.sanitizer``); the module-global tracer
    switch is the literal token ``points.enabled``.  Tokens are capped
    at two segments so a deep attribute chain matches its subsystem
    prefix, and private segments (``_headroom``) never form tokens —
    object state is not a kernel feature.
    """
    if aliases:
        head, sep, rest = path.partition(".")
        expanded = aliases.get(head)
        if expanded is not None:
            path = expanded + (sep + rest if rest else "")
    segments = path.split(".")
    root = segments[0]
    if path == "points.enabled" or path.startswith("points.enabled."):
        return "points.enabled"
    if root == "self":
        if module.startswith("repro.kernel"):
            if not (owner or "").startswith("Kernel."):
                return None       # another class's state, not the kernel's
            segments = ["kernel"] + segments[1:]
        else:
            feature_root = _module_feature_root(module)
            if feature_root is None:
                return None
            rest = [s for s in segments[1:2] if not s.startswith("_")]
            return ".".join([feature_root] + rest) if rest else None
    if "kernel" in segments:
        rest = segments[len(segments) - 1 - segments[::-1].index("kernel"):][1:]
    elif segments[0] == "machine" and len(segments) > 1:
        rest = segments[1:]
    else:
        return None
    rest = rest[:2]
    if not rest or any(s.startswith("_") for s in rest):
        return None
    return ".".join(rest)


def _collect_feature_tests(func):
    """Feature tokens appearing in ``func``'s branch conditions."""
    aliases = _collect_aliases(func.node)
    tokens = set()
    for node in ast.walk(func.node):
        if isinstance(node, (ast.If, ast.IfExp, ast.While)):
            test = node.test
        elif isinstance(node, ast.Assert):
            test = node.test
        else:
            continue
        paths = []
        _paths_in_test(test, paths)
        for path in paths:
            token = normalize_feature(path, func.module, aliases,
                                      owner=func.qualname)
            if token:
                tokens.add(token)
    return frozenset(tokens)


def collect_tested_features(func):
    """Every feature token ``func`` mentions anywhere — used on
    ``fast_path_ok`` itself, whose whole body is the predicate."""
    aliases = _collect_aliases(func.node)
    tokens = set()
    for node in ast.walk(func.node):
        paths = []
        _paths_in_test(node, paths)
        for path in paths:
            token = normalize_feature(path, func.module, aliases,
                                      owner=func.qualname)
            if token:
                tokens.add(token)
    return frozenset(tokens)
