"""AST harvest: the checker's view of the source tree.

One pass of :func:`harvest` turns a set of Python files into
:class:`FunctionInfo` records — per-function decorator metadata, call
sites, and the raw AST node the dataflow rules walk — plus the per-file
``# sancheck: ignore[...]`` suppression map.

Name resolution is deliberately simple (sparse-style, not a type
checker): a call is identified by the last attribute segment
(``kernel.fault_handler.handle`` -> ``handle``) and resolved against
every harvested function of that name.  The kernel's vocabulary is
unambiguous enough that this works; where several same-name functions
carry *different* annotations the rules take the conservative
intersection, so a collision can hide a requirement but never invent
a false one.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

IGNORE_RE = re.compile(
    r"#\s*sancheck:\s*ignore\[([a-z\-*,\s]+)\]\s*(?:--\s*(\S.*))?")

#: Decorator names read off ``@...`` lists (matched by last segment).
_LOCK_KEYS = {"must_hold": "must_hold", "acquires": "acquires",
              "releases": "releases"}


@dataclass
class CallSite:
    """One call expression inside a function body."""

    name: str          # last attribute segment ("handle", "ref_inc", ...)
    receiver: str      # source text of everything before the last segment
    lineno: int
    node: ast.Call


@dataclass
class FunctionInfo:
    """Everything the rules need to know about one function."""

    module: str        # dotted module name ("repro.kernel.fork")
    qualname: str      # "ChildTreeBuilder.pmd_for"
    name: str          # "pmd_for"
    path: Path
    lineno: int
    node: ast.FunctionDef
    must_hold: tuple = ()
    acquires: tuple = ()
    releases: tuple = ()
    tlb_deferred: str | None = None
    charge_deferred: str | None = None
    counters_deferred: tuple = ()   # (kinds...), empty when unannotated
    releases_refs: tuple = ()
    calls: list = field(default_factory=list)   # [CallSite]
    source: str = ""   # unparsed body text, for cheap substring probes

    @property
    def key(self):
        return f"{self.module}:{self.qualname}"


@dataclass
class IgnoreComment:
    """One inline ``sancheck: ignore`` suppression comment in a file."""

    lineno: int
    rules: frozenset
    justification: str | None

    def covers(self, rule):
        return "*" in self.rules or rule in self.rules


@dataclass
class SourceFile:
    """One harvested file: its functions and suppression comments."""

    path: Path
    module: str
    functions: list
    ignores: list      # [IgnoreComment]
    #: Module-level ``NAME = <literal>`` assignments (dicts, sets, tuples,
    #: strings...).  The fastpath-soundness rule reads declaration tables
    #: (``FASTPATH_REPLACES``/``FASTPATH_HANDLED``) and the failpoint
    #: site registry (``SITES``) out of this map.
    constants: dict = field(default_factory=dict)

    def ignore_for(self, rule, lineno, func=None):
        """The ignore comment covering ``rule`` at ``lineno``, if any.

        A comment suppresses a violation on its own line, on the line
        directly above it, or — when placed on (or immediately above) the
        enclosing ``def`` line — anywhere in that function.
        """
        lines = {lineno, lineno - 1}
        if func is not None:
            lines.update({func.lineno, func.lineno - 1})
        for ig in self.ignores:
            if ig.lineno in lines and ig.covers(rule):
                return ig
        return None


def call_name(node):
    """(last segment, receiver text) for a Call's func expression."""
    func = node.func
    if isinstance(func, ast.Attribute):
        try:
            receiver = ast.unparse(func.value)
        except Exception:
            receiver = ""
        return func.attr, receiver
    if isinstance(func, ast.Name):
        return func.id, ""
    return "", ""


def _decorator_meta(node):
    """Parse ``@must_hold(...)``-family decorators off a FunctionDef."""
    meta = {}
    for dec in node.decorator_list:
        if not isinstance(dec, ast.Call):
            continue
        name, _ = call_name(dec)
        if name in _LOCK_KEYS:
            locks = tuple(a.value for a in dec.args
                          if isinstance(a, ast.Constant))
            meta[_LOCK_KEYS[name]] = locks
        elif name in ("tlb_deferred", "charge_deferred"):
            reason = dec.args[0].value if dec.args and isinstance(
                dec.args[0], ast.Constant) else ""
            meta[name] = reason
        elif name == "counters_deferred":
            kinds = tuple(a.value for a in dec.args
                          if isinstance(a, ast.Constant))
            meta["counters_deferred"] = kinds
        elif name == "releases_refs":
            kinds = tuple(a.value for a in dec.args
                          if isinstance(a, ast.Constant))
            meta["releases_refs"] = kinds
    return meta


def _collect_calls(node):
    calls = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            name, receiver = call_name(sub)
            if name:
                calls.append(CallSite(name, receiver, sub.lineno, sub))
    return calls


def _harvest_functions(tree, module, path):
    functions = []

    def visit(node, prefix):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                meta = _decorator_meta(child)
                try:
                    source = ast.unparse(child)
                except Exception:
                    source = ""
                functions.append(FunctionInfo(
                    module=module, qualname=qual, name=child.name,
                    path=path, lineno=child.lineno, node=child,
                    calls=_collect_calls(child), source=source, **meta))
                visit(child, qual)
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}.{child.name}" if prefix
                      else child.name)

    visit(tree, "")
    return functions


def _literal_value(node):
    """Evaluate a constant expression, unwrapping ``frozenset({...})``."""
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "frozenset" and len(node.args) == 1):
        node = node.args[0]
    try:
        return ast.literal_eval(node)
    except (ValueError, TypeError, SyntaxError, MemoryError):
        return None


def _collect_constants(tree):
    constants = {}
    for stmt in tree.body:
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)):
            name = stmt.targets[0].id
        elif (isinstance(stmt, ast.AnnAssign) and stmt.value is not None
                and isinstance(stmt.target, ast.Name)):
            name = stmt.target.id
        else:
            continue
        if not name.isupper():
            continue
        value = _literal_value(stmt.value if isinstance(stmt, ast.AnnAssign)
                               else stmt.value)
        if value is not None:
            constants[name] = value
    return constants


def _collect_ignores(text):
    ignores = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = IGNORE_RE.search(line)
        if match:
            rules = frozenset(r.strip() for r in match.group(1).split(",")
                              if r.strip())
            ignores.append(IgnoreComment(lineno, rules, match.group(2)))
    return ignores


def module_name_for(path, src_root):
    """Dotted module name for ``path`` (fixture files get their stem)."""
    path = Path(path).resolve()
    try:
        rel = path.relative_to(Path(src_root).resolve())
        return ".".join(rel.with_suffix("").parts)
    except ValueError:
        return path.stem


def harvest(paths, src_root):
    """Parse ``paths`` into :class:`SourceFile` records."""
    files = []
    for path in sorted(Path(p) for p in paths):
        text = path.read_text()
        tree = ast.parse(text, filename=str(path))
        module = module_name_for(path, src_root)
        files.append(SourceFile(
            path=path, module=module,
            functions=_harvest_functions(tree, module, path),
            ignores=_collect_ignores(text),
            constants=_collect_constants(tree)))
    return files
