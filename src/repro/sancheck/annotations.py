"""Lock-context and ownership annotations (sparse's ``__must_hold`` family).

These decorators are **runtime no-ops**: they return the function
unchanged, tagging it with a ``__sancheck__`` attribute the static
checker (and nothing else) reads.  Keeping them inert means annotating a
hot path costs one attribute write at import time and zero per call.

Vocabulary (lock names are strings; the kernel uses ``"mmap_lock"`` for
the per-mm rwsem and ``"ptl"`` for the split per-leaf-table locks):

``@must_hold("mmap_lock")``
    Callers must already hold the lock; the checker verifies every call
    site sits in a context that holds or acquires it.  Sparse's
    ``__must_hold``.

``@acquires("mmap_lock", "ptl")``
    The function takes (and releases) the locks itself — a lock-context
    *root*.  On a single-threaded machine the "acquire" is the degenerate
    no-contention case; under SMP the generator flows yield real
    ``Acquire``/``Release`` events.  Sparse's ``__acquires``.

``@releases("ptl")``
    The function exits with the lock dropped; callers must hold it on
    entry.  Sparse's ``__releases``.

``@tlb_deferred("reason")``
    The function clears or downgrades translations but intentionally
    leaves the TLB flush to its caller (batching, as Linux's
    ``tlb_gather`` does).  The TLB-discipline rule then checks the
    *callers* flush or defer in turn.

``@releases_refs("page", "swap")``
    Calling this function releases every open reference of the given
    kinds held by the caller (e.g. ``Snapshot.discard``); the refcount
    rule treats a call as closing those pins on the paths it covers.
    The same vocabulary covers the paired *counters* the
    metrics-conservation rule tracks (``rss``, ``pt_sharers``,
    ``table``, ``replica``): annotating an unwind helper with
    ``@releases_refs("rss")`` tells the checker it restores the caller's
    RSS debt.

``@charge_deferred("reason")``
    The function mutates frames or PTEs but intentionally leaves the
    virtual-clock charge to its caller (batched charging, as the
    ``charge_many`` fast paths do).  The clock-charge rule then treats
    every *call* to it as a mutation the caller must cover with a
    charge on all normal paths — the exact shape of ``@tlb_deferred``,
    for the clock instead of the TLB.

``@counters_deferred("rss", "pt_sharers", reason="...")``
    The function may raise with the named counters incremented; a
    caller-side unwind (e.g. ``_abort_fork`` tearing the half-built
    child down) restores them.  The metrics-conservation rule stops
    reporting the raise exits of the annotated function and instead
    obliges every *caller* to balance those kinds on its own exception
    paths (via a matching decrement or a ``@releases_refs`` helper).
"""

from __future__ import annotations

#: The lock names the checker knows about (anything else is a typo).
KNOWN_LOCKS = frozenset({"mmap_lock", "ptl"})
#: Reference kinds tracked by the refcount-pairing rule.
KNOWN_REF_KINDS = frozenset({"page", "ptref", "swap"})
#: Paired-counter kinds tracked by the metrics-conservation rule.
KNOWN_COUNTER_KINDS = frozenset({"rss", "pt_sharers", "table", "replica"})


def _tag(func, key, value):
    meta = getattr(func, "__sancheck__", None)
    if meta is None:
        meta = {}
        func.__sancheck__ = meta
    meta[key] = value
    return func


def _lock_decorator(key, locks):
    unknown = set(locks) - KNOWN_LOCKS
    if unknown:
        raise ValueError(f"unknown lock name(s) {sorted(unknown)}; "
                         f"known: {sorted(KNOWN_LOCKS)}")

    def decorate(func):
        return _tag(func, key, tuple(locks))

    return decorate


def must_hold(*locks):
    """Callers must hold ``locks`` at every call site."""
    return _lock_decorator("must_hold", locks)


def acquires(*locks):
    """The function takes and releases ``locks`` itself."""
    return _lock_decorator("acquires", locks)


def releases(*locks):
    """The function returns with ``locks`` dropped (entered held)."""
    return _lock_decorator("releases", locks)


def tlb_deferred(reason):
    """Clears/downgrades PTEs but defers the TLB flush to the caller."""
    if not isinstance(reason, str) or not reason:
        raise ValueError("tlb_deferred needs a non-empty reason string")

    def decorate(func):
        return _tag(func, "tlb_deferred", reason)

    return decorate


def charge_deferred(reason):
    """Mutates frames/PTEs but defers the clock charge to the caller."""
    if not isinstance(reason, str) or not reason:
        raise ValueError("charge_deferred needs a non-empty reason string")

    def decorate(func):
        return _tag(func, "charge_deferred", reason)

    return decorate


def counters_deferred(*kinds, reason):
    """May raise with ``kinds`` counters incremented; callers balance."""
    unknown = set(kinds) - KNOWN_COUNTER_KINDS
    if unknown:
        raise ValueError(f"unknown counter kind(s) {sorted(unknown)}; "
                         f"known: {sorted(KNOWN_COUNTER_KINDS)}")
    if not isinstance(reason, str) or not reason:
        raise ValueError("counters_deferred needs a non-empty reason string")

    def decorate(func):
        return _tag(func, "counters_deferred", tuple(kinds))

    return decorate


def releases_refs(*kinds):
    """Calling this closes the caller's open reference pins of ``kinds``."""
    unknown = set(kinds) - (KNOWN_REF_KINDS | KNOWN_COUNTER_KINDS)
    if unknown:
        raise ValueError(f"unknown ref kind(s) {sorted(unknown)}; known: "
                         f"{sorted(KNOWN_REF_KINDS | KNOWN_COUNTER_KINDS)}")

    def decorate(func):
        return _tag(func, "releases_refs", tuple(kinds))

    return decorate
