"""Lock-context and ownership annotations (sparse's ``__must_hold`` family).

These decorators are **runtime no-ops**: they return the function
unchanged, tagging it with a ``__sancheck__`` attribute the static
checker (and nothing else) reads.  Keeping them inert means annotating a
hot path costs one attribute write at import time and zero per call.

Vocabulary (lock names are strings; the kernel uses ``"mmap_lock"`` for
the per-mm rwsem and ``"ptl"`` for the split per-leaf-table locks):

``@must_hold("mmap_lock")``
    Callers must already hold the lock; the checker verifies every call
    site sits in a context that holds or acquires it.  Sparse's
    ``__must_hold``.

``@acquires("mmap_lock", "ptl")``
    The function takes (and releases) the locks itself — a lock-context
    *root*.  On a single-threaded machine the "acquire" is the degenerate
    no-contention case; under SMP the generator flows yield real
    ``Acquire``/``Release`` events.  Sparse's ``__acquires``.

``@releases("ptl")``
    The function exits with the lock dropped; callers must hold it on
    entry.  Sparse's ``__releases``.

``@tlb_deferred("reason")``
    The function clears or downgrades translations but intentionally
    leaves the TLB flush to its caller (batching, as Linux's
    ``tlb_gather`` does).  The TLB-discipline rule then checks the
    *callers* flush or defer in turn.

``@releases_refs("page", "swap")``
    Calling this function releases every open reference of the given
    kinds held by the caller (e.g. ``Snapshot.discard``); the refcount
    rule treats a call as closing those pins on the paths it covers.
"""

from __future__ import annotations

#: The lock names the checker knows about (anything else is a typo).
KNOWN_LOCKS = frozenset({"mmap_lock", "ptl"})
#: Reference kinds tracked by the refcount-pairing rule.
KNOWN_REF_KINDS = frozenset({"page", "ptref", "swap"})


def _tag(func, key, value):
    meta = getattr(func, "__sancheck__", None)
    if meta is None:
        meta = {}
        func.__sancheck__ = meta
    meta[key] = value
    return func


def _lock_decorator(key, locks):
    unknown = set(locks) - KNOWN_LOCKS
    if unknown:
        raise ValueError(f"unknown lock name(s) {sorted(unknown)}; "
                         f"known: {sorted(KNOWN_LOCKS)}")

    def decorate(func):
        return _tag(func, key, tuple(locks))

    return decorate


def must_hold(*locks):
    """Callers must hold ``locks`` at every call site."""
    return _lock_decorator("must_hold", locks)


def acquires(*locks):
    """The function takes and releases ``locks`` itself."""
    return _lock_decorator("acquires", locks)


def releases(*locks):
    """The function returns with ``locks`` dropped (entered held)."""
    return _lock_decorator("releases", locks)


def tlb_deferred(reason):
    """Clears/downgrades PTEs but defers the TLB flush to the caller."""
    if not isinstance(reason, str) or not reason:
        raise ValueError("tlb_deferred needs a non-empty reason string")

    def decorate(func):
        return _tag(func, "tlb_deferred", reason)

    return decorate


def releases_refs(*kinds):
    """Calling this closes the caller's open reference pins of ``kinds``."""
    unknown = set(kinds) - KNOWN_REF_KINDS
    if unknown:
        raise ValueError(f"unknown ref kind(s) {sorted(unknown)}; "
                         f"known: {sorted(KNOWN_REF_KINDS)}")

    def decorate(func):
        return _tag(func, "releases_refs", tuple(kinds))

    return decorate
