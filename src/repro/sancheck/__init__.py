"""kernsan: static analysis and dynamic sanitizers for the simulated kernel.

Two halves, mirroring how Linux enforces its own discipline:

* **Static checker** (``python -m repro.sancheck``) — sparse/Coccinelle
  in miniature.  Per-function CFGs + a worklist dataflow engine + a
  layer-filtered call graph (``cfg``/``engine``/``summaries``) drive
  seven rule families over ``src/repro``: lock-context
  (``@must_hold``/``@acquires``/``@releases`` verified along the call
  graph), failpoint coverage (every raw allocation sits next to a
  ``failpoints.hit``), refcount pairing (no reference pin survives an
  exception exit), TLB discipline (every PTE/PMD clear or downgrade
  reaches a flush on all paths), clock-charge discipline (every
  frame/PTE mutation charges the virtual clock on all normal paths),
  metrics-conservation (paired counters balance across exception edges;
  metric/failpoint names resolve against their registries), and
  fastpath-soundness (``fast_path_ok`` must test every kernel feature
  the slow paths it replaces consult).

* **Dynamic sanitizers** (``Machine(sanitize=...)``) — KASAN-style frame
  poisoning + quarantine in the buddy allocator and a KCSAN-style data
  race sampler for SMP interleavings.

See MECHANISM.md §12 for the annotation vocabulary and rule semantics.
"""

from .annotations import (
    acquires,
    charge_deferred,
    counters_deferred,
    must_hold,
    releases,
    releases_refs,
    tlb_deferred,
)

__all__ = [
    "acquires",
    "charge_deferred",
    "counters_deferred",
    "must_hold",
    "releases",
    "releases_refs",
    "tlb_deferred",
    "Violation",
    "check_paths",
    "check_repo",
]


def __getattr__(name):
    # The checker machinery is imported lazily so that kernel modules
    # importing the (inert) annotation decorators do not pay for the AST
    # tooling at runtime.
    if name in ("Violation", "check_paths", "check_repo"):
        from . import checker
        return getattr(checker, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
