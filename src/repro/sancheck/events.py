"""Call/statement event vocabularies and the concrete dataflow domains.

:class:`KernelPathDomain` is the one path-sensitive domain all the
path-walked rule families share — refcount pairing, TLB discipline,
clock-charge, and metrics-conservation ride a single :func:`~repro.
sancheck.engine.run_paths` pass per function, each reading its own slice
of the :class:`PathState`.

:class:`MustChargeDomain` is the small boolean lattice ("has every path
prefix charged the clock?") the summary layer iterates over the call
graph to compute the MUST-charge function set.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .model import call_name

#: Calls that take a reference, by last name segment -> pin kind.
INC_CALLS = {
    "ref_inc": "page", "ref_inc_bulk": "page",
    "pt_ref_inc": "ptref",
    "swap_dup": "swap", "swap_dup_entries": "swap",
}
#: Calls that drop a reference (pairing with the above).
DEC_CALLS = {
    "ref_dec": "page", "ref_dec_bulk": "page",
    "pt_ref_dec": "ptref",
    "swap_put": "swap", "swap_put_entries": "swap",
}
#: TLB flush primitives (the ShootdownEngine / per-mm TLB surface).
FLUSH_CALLS = frozenset({
    "flush_page", "flush_range", "flush_all",
    "local_flush_page", "local_flush_range",
    "shootdown_page", "shootdown_mm", "shootdown_sharers",
})
#: Calls that hand an already-taken reference to a longer-lived owner
#: (entry installs are handled structurally; these are the call forms).
TRANSFER_CALLS = frozenset({"rmap_add", "rmap_add_bulk", "set"})

#: Paired-counter increments tracked by metrics-conservation, by call
#: name -> counter kind.  Unlike reference pins these are matched at
#: *kind* level: any decrement of the kind balances the path (the call
#: shapes differ between inc and dec — ``replicate_table(mm, table)``
#: vs ``collapse_table(table_pfn)`` — so textual keys cannot pair).
COUNTER_INC = {
    "add_rss": "rss",
    "add_table_sharer": "pt_sharers",
    "register_table": "table",
    "replicate_table": "replica",
}
COUNTER_DEC = {
    "sub_rss": "rss",
    "drop_table_sharer": "pt_sharers",
    "unregister_table": "table",
    "collapse_table": "replica",
}

#: Calls whose execution mutates frames or PTEs (clock-charge rule):
#: packed-store scatters, table-entry writes, and frame allocator
#: traffic.  Receiver-conditioned entries are handled in code below.
MUT_CALLS = frozenset({
    "scatter", "fill_rows",
    "alloc_table", "alloc_data_frame", "alloc_data_frames_bulk",
    "alloc_huge_frame", "alloc_table_frame",
    "free_table_frame", "free_huge_frame",
})

#: Virtual-clock charge entry points: every ``CostModel.charge_*``
#: method plus the raw ``charge``/``charge_many`` primitives.
def _is_charge_name(name):
    return name == "charge" or name.startswith("charge_") or name == "charge_many"


@dataclass
class Classifier:
    """Project-wide call knowledge the walk consults by name.

    The summary layer (:mod:`.summaries`) computes these sets over the
    *call graph* — resolution-filtered by layer, so a fleet-side method
    sharing a kernel callee's name cannot poison the kernel's sets —
    then flattens them to names for the per-function walk (call sites
    are identified by last name segment).
    """

    fallible: frozenset = frozenset()     # names that may raise OOM
    flushing: frozenset = frozenset()     # names that flush on their paths
    deferred: frozenset = frozenset()     # names tagged @tlb_deferred
    releasers: dict = field(default_factory=dict)  # name -> ref/counter kinds
    charge_deferred: frozenset = frozenset()   # names tagged @charge_deferred
    counters_deferred: dict = field(default_factory=dict)  # name -> kinds
    must_charge: frozenset = frozenset()  # names charging on all normal paths


@dataclass
class PathState:
    """One abstract execution path's state, shared by four rule families."""

    pins: dict = field(default_factory=dict)   # (kind, key) -> (count, line)
    counts: dict = field(default_factory=dict)  # counter kind -> (count, line)
    tlb_line: int | None = None                # pending downgrade, or None
    mut_line: int | None = None                # first frame/PTE mutation
    charged: bool = False                      # clock charged on this path
    conds: dict = field(default_factory=dict)  # memoized branch decisions
    raise_line: int | None = None              # where this path raised
    #: a KernelBug raise: the kernel is dead, nothing unwinds (BUG_ON
    #: semantics) — the refcount/metrics rules exempt these paths.
    bug: bool = False

    def copy(self):
        return PathState(dict(self.pins), dict(self.counts), self.tlb_line,
                         self.mut_line, self.charged, dict(self.conds),
                         self.raise_line, self.bug)

    def signature(self):
        return (tuple(sorted((k, v[0]) for k, v in self.pins.items())),
                tuple(sorted((k, v[0]) for k, v in self.counts.items())),
                self.tlb_line, self.mut_line, self.charged,
                tuple(sorted(self.conds.items())),
                self.raise_line, self.bug)


def _calls_in_order(node):
    """Call nodes under ``node`` in source-position order."""
    calls = [n for n in ast.walk(node) if isinstance(n, ast.Call)]
    calls.sort(key=lambda n: (n.lineno, n.col_offset))
    return calls


def _text(node):
    try:
        return ast.unparse(node)
    except Exception:
        return ""


def _pin_key(call):
    """A textual identity for the reference a call takes or drops."""
    if call.args:
        return _text(call.args[0])
    return "<noarg>"


class KernelPathDomain:
    """The shared path domain (see :class:`~.engine.PathDomain`)."""

    def __init__(self, func, classifier):
        self.func = func
        self.classifier = classifier
        #: set when the function contains make_swap_entry: any entry
        #: store then counts as a downgrade (present -> swap-entry PTE).
        self._swapifies = "make_swap_entry" in func.source

    # -- engine contract -------------------------------------------------

    def initial(self):
        return PathState()

    def copy(self, state):
        return state.copy()

    def signature(self, state):
        return state.signature()

    def on_stmt(self, node, state):
        if node is None:
            return [state], []
        raises = []
        for call in _calls_in_order(node):
            forked = self._apply_call(call, state)
            if forked is not None:
                raises.append(forked)
        if isinstance(node, ast.AugAssign):
            self._apply_pt_refcount_aug(node, state)
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            line = self._downgrade_line(node)
            if line is not None:
                state.tlb_line = line
            mline = self._mutation_line(node)
            if mline is not None and state.mut_line is None:
                state.mut_line = mline
        if isinstance(node, ast.Assign):
            # Ownership transfer: a pinned object stored into a container
            # or table entry now belongs to that owner.
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    self._transfer(state, _text(node.value))
        return [state], raises

    def on_branch(self, test, state, memo):
        raises = []
        for call in _calls_in_order(test):
            forked = self._apply_call(call, state)
            if forked is not None:
                raises.append(forked)
        test_text = _text(test)
        memo = memo and len(test_text) < 80
        decided = state.conds.get(test_text) if memo else None
        if decided is True:
            return [state], [], raises
        if decided is False:
            return [], [state], raises
        other = state.copy()
        if memo:
            state.conds[test_text] = True
            other.conds[test_text] = False
        return [state], [other], raises

    def on_catch(self, handler, state):
        state.raise_line = None
        state.bug = False
        return state

    def on_raise(self, stmt, state):
        state.raise_line = stmt.lineno
        if stmt.exc is not None and "KernelBug" in _text(stmt.exc):
            state.bug = True
        return state

    # -- events ----------------------------------------------------------

    def _apply_call(self, call, state):
        """Mutates ``state``; returns a forked raise-state or None."""
        name, receiver = call_name(call)
        cls = self.classifier
        forked = None
        if name in INC_CALLS:
            kind = INC_CALLS[name]
            key = (kind, _pin_key(call))
            count, _ = state.pins.get(key, (0, call.lineno))
            state.pins[key] = (count + 1, call.lineno)
        elif name in DEC_CALLS:
            kind = DEC_CALLS[name]
            key = (kind, _pin_key(call))
            entry = state.pins.get(key)
            if entry is not None:
                count, line = entry
                if count <= 1:
                    del state.pins[key]
                else:
                    state.pins[key] = (count - 1, line)
        elif name in cls.releasers:
            kinds = cls.releasers[name]
            for key in [k for k in state.pins if k[0] in kinds]:
                del state.pins[key]
            for kind in [k for k in state.counts if k in kinds]:
                del state.counts[kind]
        elif name in FLUSH_CALLS:
            state.tlb_line = None
        elif name in cls.flushing:
            state.tlb_line = None
        elif name in TRANSFER_CALLS:
            self._transfer(state, _text(call))

        if name in COUNTER_INC:
            kind = COUNTER_INC[name]
            count, _ = state.counts.get(kind, (0, call.lineno))
            state.counts[kind] = (count + 1, call.lineno)
        elif name in COUNTER_DEC:
            state.counts.pop(COUNTER_DEC[name], None)
        elif name == "append" and "pt_sharers" in receiver:
            # odfork's vectorised loop grows the sharer list in place.
            count, _ = state.counts.get("pt_sharers", (0, call.lineno))
            state.counts["pt_sharers"] = (count + 1, call.lineno)
        elif name in ("pop", "remove") and "pt_sharers" in receiver:
            state.counts.pop("pt_sharers", None)

        if name == "clear" and call.args and "table" in receiver:
            state.tlb_line = call.lineno
        if name in cls.deferred:
            state.tlb_line = call.lineno

        # clock-charge events: mutations and charges.
        if _is_charge_name(name):
            state.charged = True
        elif name in cls.must_charge:
            state.charged = True
        if state.mut_line is None:
            if name in MUT_CALLS or name in cls.charge_deferred:
                state.mut_line = call.lineno
            elif name in ("free", "free_bulk") and "allocator" in receiver:
                state.mut_line = call.lineno

        if (name in cls.fallible
                or (name in ("hit",) and "failpoints" in receiver)):
            forked = state.copy()
            forked.raise_line = call.lineno
        if name in cls.counters_deferred:
            # The callee may raise with these counters incremented; the
            # obligation to balance them lands on this caller's raise
            # fork.
            if forked is None:
                forked = state.copy()
                forked.raise_line = call.lineno
            for kind in cls.counters_deferred[name]:
                count, _ = forked.counts.get(kind, (0, call.lineno))
                forked.counts[kind] = (count + 1, call.lineno)
        return forked

    def _transfer(self, state, text):
        """Close pins whose key appears in an ownership-transfer site."""
        for key in [k for k in state.pins
                    if k[1] != "<noarg>" and k[1] in text]:
            del state.pins[key]

    def _apply_pt_refcount_aug(self, node, state):
        target_text = _text(node.target)
        if "pt_refcount" not in target_text:
            return
        key = ("ptref", target_text)
        if isinstance(node.op, ast.Add):
            count, _ = state.pins.get(key, (0, node.lineno))
            state.pins[key] = (count + 1, node.lineno)
        elif isinstance(node.op, ast.Sub) and key in state.pins:
            count, line = state.pins[key]
            if count <= 1:
                del state.pins[key]
            else:
                state.pins[key] = (count - 1, line)

    def _is_entries_target(self, target):
        # Exactly ``entries`` (``table.entries[i]`` or a local alias), not
        # any name that merely contains it — the TLB's ``self._entries``
        # dict of cached translations is not a PTE array.
        if not isinstance(target, ast.Subscript):
            return False
        value = target.value
        if isinstance(value, ast.Attribute):
            return value.attr == "entries"
        if isinstance(value, ast.Name):
            return value.id == "entries"
        return False

    def _downgrade_line(self, node):
        """Line of a PTE/PMD clear-or-downgrade in ``node``, else None."""
        if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.BitAnd):
            text = _text(node)
            soft = (("BIT_ACCESSED" in text or "BIT_DIRTY" in text)
                    and "RW" not in text and "drop" not in text.lower())
            if soft:
                return None
            if self._is_entries_target(node.target):
                return node.lineno
            # ``entry &= drop_rw`` on a local that is then stored back.
            if isinstance(node.target, ast.Name) and "drop" in text:
                return node.lineno
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if not self._is_entries_target(target):
                    continue
                value = _text(node.value)
                if ("ENTRY_NONE" in value or value == "0"
                        or "protected" in value or "drop" in value
                        or self._swapifies):
                    return node.lineno
        return None

    def _mutation_line(self, node):
        """Line of a PTE/frame mutation for the clock-charge rule.

        Broader than :meth:`_downgrade_line`: *any* store into a table's
        packed ``entries`` array counts (installs included), as does an
        in-place bit edit.
        """
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        for target in targets:
            if self._is_entries_target(target):
                return node.lineno
        return None


class MustChargeDomain:
    """Boolean must-lattice: True = every path prefix so far has charged.

    ``transfer`` marks a value charged when the node issues a direct
    ``charge*`` call or calls a function already proven must-charge;
    :func:`~.engine.run_lattice` joins with AND at merges, so a
    function's FALL/RETURN exit value is True exactly when every normal
    path charges.
    """

    def __init__(self, must_charge_names):
        self.must_charge = must_charge_names

    def initial(self):
        return False

    def join(self, a, b):
        return a and b

    def transfer(self, node, value):
        if value or node.ast is None:
            return value
        for call in _calls_in_order(node.ast):
            name, _ = call_name(call)
            if _is_charge_name(name) or name in self.must_charge:
                return True
        return value
