"""KASAN-style frame poisoning for the buddy allocator.

Mirrors the kernel's generic KASAN in miniature:

* **Poison on free** — a freed block is filled with :data:`POISON_BYTE`
  and *parked in a quarantine* instead of returning to the free lists,
  so the frames cannot be immediately reallocated and a late access
  through a stale pfn is unambiguously a use-after-free.
* **Double-free / invalid-free** — freeing a quarantined frame, or a pfn
  that never headed a live allocation, raises :class:`KasanError`
  instead of the allocator's generic :class:`KernelBug`.
* **Access checks** — :class:`~repro.mem.physmem.PhysicalMemory` calls
  :meth:`check_access` from its read/write/copy paths; touching a
  quarantined frame reports use-after-free with both the access and the
  free site recorded.

The quarantine is bounded (like KASAN's percpu quarantine): once it
exceeds :data:`QUARANTINE_DEPTH` blocks the oldest entry is *really*
freed — its buffer is dropped (clearing the poison) and the block goes
back to the buddy free lists.  :meth:`flush` drains it entirely; the
verify harness calls it before leak accounting because quarantined
frames still count as allocated.
"""

from __future__ import annotations

from collections import deque

from ..errors import KasanError
from ..mem.page import PAGE_SIZE

POISON_BYTE = 0xFB
QUARANTINE_DEPTH = 32

_POISON_PAGE = bytes([POISON_BYTE]) * PAGE_SIZE


class KasanState:
    """Poisoned-frame tracking shared by the allocator and physmem."""

    def __init__(self, allocator, phys, quarantine_depth=QUARANTINE_DEPTH):
        self.allocator = allocator
        self.phys = phys
        self.quarantine_depth = int(quarantine_depth)
        # Every frame of every quarantined block -> the block's head pfn.
        self.poisoned = {}
        # FIFO of (head_pfn, order) blocks awaiting the real free.
        self.quarantine = deque()
        self.reports = []
        self.frees_intercepted = 0

    # ---- free-path interception (called by BuddyAllocator.free) ----------

    def intercept_free(self, pfn, order=None):
        """Poison + quarantine a block instead of freeing it."""
        pfn = int(pfn)
        if pfn in self.poisoned:
            self._report(
                f"double free of pfn {pfn} "
                f"(block head {self.poisoned[pfn]} already quarantined)")
        recorded = int(self.allocator._alloc_order[pfn])
        if recorded < 0:
            self._report(
                f"invalid free of pfn {pfn} (not a live allocation head)")
        if order is not None and order != recorded:
            self._report(
                f"free of pfn {pfn} at order {order}, allocated {recorded}")
        self.frees_intercepted += 1
        for frame in range(pfn, pfn + (1 << recorded)):
            # Poison *before* marking, so this write does not trip the
            # physmem access check that guards quarantined frames.
            self.phys.write(frame, 0, _POISON_PAGE)
            self.poisoned[frame] = pfn
        self.quarantine.append((pfn, recorded))
        while len(self.quarantine) > self.quarantine_depth:
            self._evict_oldest()

    def _evict_oldest(self):
        head, order = self.quarantine.popleft()
        for frame in range(head, head + (1 << order)):
            del self.poisoned[frame]
            self.phys.zero(frame)
        self.allocator._free_now(head, order)

    def flush(self):
        """Drain the quarantine, really freeing every parked block."""
        while self.quarantine:
            self._evict_oldest()

    # ---- access checks (called by PhysicalMemory) ------------------------

    def check_access(self, pfn, kind):
        """Raise on any data access to a quarantined (poisoned) frame."""
        head = self.poisoned.get(int(pfn))
        if head is not None:
            self._report(
                f"use-after-free: {kind} of pfn {int(pfn)} "
                f"(freed as part of block {head}, still quarantined)")

    def _report(self, message):
        self.reports.append(message)
        raise KasanError(message)
