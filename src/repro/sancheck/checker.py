"""Checker driver: harvest, run rules, apply suppressions and baseline.

Suppression layers, in order:

1. ``# sancheck: ignore[rule] -- why`` inline comments.  The justification
   after ``--`` is mandatory: an unjustified ignore is itself reported
   (rule ``ignore``) and cannot be baselined away.
2. A committed JSON baseline (``--baseline``), entries
   ``{"rule", "module", "func", "reason"}``.  Entries are keyed on the
   violation identity, not line numbers, so they survive reformatting;
   entries whose violation no longer fires are *stale* and fail
   ``--strict`` (the baseline only ever shrinks).
"""

from __future__ import annotations

import json
from pathlib import Path

from .model import harvest
from .rules import RULES, Violation, run_all_rules

__all__ = ["Violation", "check_files", "check_paths", "check_repo",
           "load_baseline", "apply_baseline", "repo_src_root"]


def repo_src_root():
    """The ``src`` directory containing the installed ``repro`` package."""
    import repro
    return Path(repro.__file__).resolve().parent.parent


def repo_files(src_root=None):
    src_root = Path(src_root) if src_root else repo_src_root()
    paths = sorted(
        p for p in (src_root / "repro").rglob("*.py")
        # The checker does not check itself: the sanitizer runtimes sit
        # below the kernel discipline layer, and harvesting them would
        # pollute the name-based fixpoints (e.g. KASAN's free
        # interceptor writing poison would make every `.free()` in the
        # kernel look OOM-fallible).
        if "sancheck" not in p.parts)
    return paths, src_root


def check_files(files):
    """Run every rule over harvested files; returns surviving violations.

    Inline-suppressed violations are dropped; unjustified ignore comments
    are appended as ``ignore``-rule violations.
    """
    violations = []
    by_path = {sf.path: sf for sf in files}
    func_index = {}
    for sf in files:
        for func in sf.functions:
            func_index[(sf.path, func.qualname)] = func

    for violation in run_all_rules(files):
        sf = next((s for s in files if s.module == violation.module), None)
        if sf is not None:
            func = next((f for f in sf.functions
                         if f.qualname == violation.func), None)
            ig = sf.ignore_for(violation.rule, violation.lineno, func)
            if ig is not None:
                if not ig.justification:
                    violations.append(Violation(
                        "ignore", sf.module, violation.func, ig.lineno,
                        f"ignore[{violation.rule}] has no justification — "
                        f"append '-- <why this is safe>'"))
                continue
        violations.append(violation)

    # Ignore comments that never matched a violation but lack a
    # justification are still wrong (they will silently eat the next one).
    for sf in by_path.values():
        for ig in sf.ignores:
            if not ig.justification:
                already = any(v.rule == "ignore" and v.module == sf.module
                              and v.lineno == ig.lineno for v in violations)
                if not already:
                    violations.append(Violation(
                        "ignore", sf.module, "<module>", ig.lineno,
                        "ignore comment has no justification — append "
                        "'-- <why this is safe>'"))
    violations.sort(key=lambda v: (v.module, v.lineno))
    return violations


def check_repo(src_root=None):
    """Check the whole ``src/repro`` tree."""
    paths, src_root = repo_files(src_root)
    return check_files(harvest(paths, src_root))


def check_paths(paths):
    """Check explicit files (fixture mode: modules named by stem)."""
    return check_files(harvest(paths, repo_src_root()))


# ------------------------------------------------------------------ #
# Baseline


def load_baseline(path):
    entries = json.loads(Path(path).read_text()) if Path(path).exists() else []
    problems = []
    for entry in entries:
        missing = {"rule", "module", "func"} - set(entry)
        if missing:
            problems.append(f"baseline entry {entry} missing {sorted(missing)}")
        elif entry.get("rule") not in RULES:
            problems.append(f"baseline entry has unknown rule "
                            f"{entry.get('rule')!r}")
        elif entry.get("rule") == "ignore":
            problems.append("the 'ignore' rule cannot be baselined: "
                            "justify the inline comment instead")
        elif not entry.get("reason"):
            problems.append(f"baseline entry "
                            f"{entry['rule']}:{entry['module']}:"
                            f"{entry['func']} has no reason")
    return entries, problems


def apply_baseline(violations, entries):
    """Split violations into (new, baselined) and find stale entries."""
    keys = {f"{e['rule']}:{e['module']}:{e['func']}" for e in entries}
    new = [v for v in violations if v.ident not in keys]
    baselined = [v for v in violations if v.ident in keys]
    fired = {v.ident for v in baselined}
    stale = [e for e in entries
             if f"{e['rule']}:{e['module']}:{e['func']}" not in fired]
    return new, baselined, stale


def write_baseline(violations, path, reason="baselined by --write-baseline"):
    entries = []
    seen = set()
    for v in violations:
        if v.ident in seen or v.rule == "ignore":
            continue
        seen.add(v.ident)
        entries.append({"rule": v.rule, "module": v.module,
                        "func": v.func, "reason": reason})
    Path(path).write_text(json.dumps(entries, indent=1) + "\n")
    return entries
