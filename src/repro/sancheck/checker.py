"""Checker driver: harvest, build summaries, run rules, apply
suppressions and the baseline.

Suppression layers, in order:

1. ``# sancheck: ignore[rule] -- why`` inline comments.  The justification
   after ``--`` is mandatory: an unjustified ignore is itself reported
   (rule ``ignore``) and cannot be baselined away.  A *justified* ignore
   that no longer suppresses anything is stale and reported too (the
   suppression surface only ever shrinks); ``--prune-ignores`` rewrites
   the files to drop them.
2. A committed JSON baseline (``--baseline``), entries
   ``{"rule", "module", "func", "reason"}``.  Entries are keyed on the
   violation identity, not line numbers, so they survive reformatting;
   entries whose violation no longer fires are *stale* and fail
   ``--strict`` (the baseline only ever shrinks).

``check_files(..., jobs=N)`` fans the per-function path walks out over
worker processes (each worker re-harvests its file shard and receives
the pickled name-flattened classifier); the global rules — lock-context,
fastpath-sound, registry resolution — always run in the parent, where
the full call graph lives.
"""

from __future__ import annotations

import json
from pathlib import Path

from .model import IGNORE_RE, harvest
from .rules import (
    RULES,
    WALK_RULES,
    Violation,
    build_classifier,
    check_walk,
    run_all_rules,
    walk_function,
)
from .summaries import build_summaries

__all__ = ["Violation", "check_files", "check_paths", "check_repo",
           "load_baseline", "apply_baseline", "repo_src_root"]


def repo_src_root():
    """The ``src`` directory containing the installed ``repro`` package."""
    import repro
    return Path(repro.__file__).resolve().parent.parent


def repo_files(src_root=None):
    src_root = Path(src_root) if src_root else repo_src_root()
    paths = sorted(
        p for p in (src_root / "repro").rglob("*.py")
        # The checker does not check itself: the sanitizer runtimes sit
        # below the kernel discipline layer, and harvesting them would
        # pollute the name-based fixpoints (e.g. KASAN's free
        # interceptor writing poison would make every `.free()` in the
        # kernel look OOM-fallible).
        if "sancheck" not in p.parts)
    return paths, src_root


def _run_rules(files, rules, jobs):
    summaries = build_summaries(files)
    enabled = frozenset(rules) if rules is not None else frozenset(RULES)
    if jobs is None or jobs <= 1 or not (enabled & WALK_RULES):
        return run_all_rules(files, summaries=summaries, rules=enabled)
    # Parallel: global rules here, the per-function walks in workers.
    violations = run_all_rules(files, summaries=summaries,
                               rules=enabled - WALK_RULES)
    classifier = build_classifier(files, summaries)
    violations += _parallel_walk(files, classifier,
                                 enabled & WALK_RULES, jobs)
    return violations


def _parallel_walk(files, classifier, walk_rules, jobs):
    from concurrent.futures import ProcessPoolExecutor

    shards = [[] for _ in range(jobs)]
    order = sorted(files, key=lambda sf: -len(sf.functions))
    for i, sf in enumerate(order):
        shards[i % jobs].append(str(sf.path))
    shards = [s for s in shards if s]
    src_root = str(repo_src_root())
    violations = []
    try:
        with ProcessPoolExecutor(max_workers=len(shards)) as pool:
            futures = [pool.submit(_walk_shard, shard, src_root,
                                   classifier, tuple(walk_rules))
                       for shard in shards]
            for future in futures:
                violations.extend(Violation(*v) for v in future.result())
    except (OSError, ImportError):
        # No usable multiprocessing (sandboxes): fall back in-process.
        summaries = build_summaries(files)
        return check_walk(files, summaries, classifier, rules=walk_rules)
    return violations


def _walk_shard(paths, src_root, classifier, walk_rules):
    """Worker: re-harvest a file shard and run the path-walk rules."""
    from .summaries import charge_scope, strict_kernel_scope

    shard = harvest(paths, src_root)
    rules = frozenset(walk_rules)
    out = []
    for sf in shard:
        for func in sf.functions:
            if not (strict_kernel_scope(func) or charge_scope(func)
                    or func.module.startswith("repro.numa")):
                continue
            for v in walk_function(func, classifier, rules=rules):
                out.append((v.rule, v.module, v.func, v.lineno, v.message))
    return out


def check_files(files, rules=None, jobs=None, collect_stale_ignores=None):
    """Run the enabled rules over harvested files; returns surviving
    violations.

    Inline-suppressed violations are dropped; unjustified ignore comments
    are appended as ``ignore``-rule violations.  With the full rule set
    enabled, justified ignore comments that suppressed nothing are stale
    and reported too; ``collect_stale_ignores`` (a list) receives
    ``(path, lineno)`` pairs for ``--prune-ignores``.
    """
    enabled = frozenset(rules) if rules is not None else frozenset(RULES)
    violations = []
    used_ignores = set()      # (path, lineno) of comments that suppressed

    for violation in _run_rules(files, enabled, jobs):
        sf = next((s for s in files if s.module == violation.module), None)
        if sf is not None:
            func = next((f for f in sf.functions
                         if f.qualname == violation.func), None)
            ig = sf.ignore_for(violation.rule, violation.lineno, func)
            if ig is not None:
                used_ignores.add((sf.path, ig.lineno))
                if not ig.justification:
                    violations.append(Violation(
                        "ignore", sf.module, violation.func, ig.lineno,
                        f"ignore[{violation.rule}] has no justification — "
                        f"append '-- <why this is safe>'"))
                continue
        violations.append(violation)

    if "ignore" in enabled:
        full_run = enabled >= frozenset(RULES) - {"ignore"}
        for sf in files:
            for ig in sf.ignores:
                if (sf.path, ig.lineno) in used_ignores:
                    continue
                if not ig.justification:
                    violations.append(Violation(
                        "ignore", sf.module, "<module>", ig.lineno,
                        "ignore comment has no justification — append "
                        "'-- <why this is safe>'"))
                elif full_run:
                    # Shrink-only: a justified ignore that suppresses
                    # nothing under the full rule set is dead weight.
                    if collect_stale_ignores is not None:
                        collect_stale_ignores.append((sf.path, ig.lineno))
                    violations.append(Violation(
                        "ignore", sf.module, "<module>", ig.lineno,
                        f"stale ignore[{','.join(sorted(ig.rules))}] "
                        f"comment: it no longer suppresses any violation "
                        f"— remove it (or run --prune-ignores)"))
    violations.sort(key=lambda v: (v.module, v.lineno))
    return violations


def check_repo(src_root=None, rules=None, jobs=None,
               collect_stale_ignores=None):
    """Check the whole ``src/repro`` tree."""
    paths, src_root = repo_files(src_root)
    return check_files(harvest(paths, src_root), rules=rules, jobs=jobs,
                       collect_stale_ignores=collect_stale_ignores)


def check_paths(paths, rules=None, jobs=None, collect_stale_ignores=None):
    """Check explicit files (fixture mode: modules named by stem)."""
    return check_files(harvest(paths, repo_src_root()), rules=rules,
                       jobs=jobs,
                       collect_stale_ignores=collect_stale_ignores)


def prune_ignores(stale):
    """Rewrite files dropping the stale ignore comments in ``stale``
    (``(path, lineno)`` pairs).  Returns the number of comments removed."""
    by_path = {}
    for path, lineno in stale:
        by_path.setdefault(Path(path), set()).add(lineno)
    removed = 0
    for path, linenos in by_path.items():
        lines = path.read_text().splitlines(keepends=True)
        for lineno in linenos:
            idx = lineno - 1
            if idx >= len(lines):
                continue
            line = lines[idx]
            stripped = IGNORE_RE.sub("", line).rstrip()
            lines[idx] = (stripped + "\n") if stripped else ""
            removed += 1
        path.write_text("".join(lines))
    return removed


# ------------------------------------------------------------------ #
# Baseline


def load_baseline(path):
    entries = json.loads(Path(path).read_text()) if Path(path).exists() else []
    problems = []
    for entry in entries:
        missing = {"rule", "module", "func"} - set(entry)
        if missing:
            problems.append(f"baseline entry {entry} missing {sorted(missing)}")
        elif entry.get("rule") not in RULES:
            problems.append(f"baseline entry has unknown rule "
                            f"{entry.get('rule')!r}")
        elif entry.get("rule") == "ignore":
            problems.append("the 'ignore' rule cannot be baselined: "
                            "justify the inline comment instead")
        elif not entry.get("reason"):
            problems.append(f"baseline entry "
                            f"{entry['rule']}:{entry['module']}:"
                            f"{entry['func']} has no reason")
    return entries, problems


def apply_baseline(violations, entries):
    """Split violations into (new, baselined) and find stale entries."""
    keys = {f"{e['rule']}:{e['module']}:{e['func']}" for e in entries}
    new = [v for v in violations if v.ident not in keys]
    baselined = [v for v in violations if v.ident in keys]
    fired = {v.ident for v in baselined}
    stale = [e for e in entries
             if f"{e['rule']}:{e['module']}:{e['func']}" not in fired]
    return new, baselined, stale


def write_baseline(violations, path, reason="baselined by --write-baseline"):
    entries = []
    seen = set()
    for v in violations:
        if v.ident in seen or v.rule == "ignore":
            continue
        seen.add(v.ident)
        entries.append({"rule": v.rule, "module": v.module,
                        "func": v.func, "reason": reason})
    Path(path).write_text(json.dumps(entries, indent=1) + "\n")
    return entries
