"""Generic worklist dataflow over :mod:`.cfg` graphs.

Two runners, two domain styles:

:func:`run_paths` — **disjunctive path-state enumeration**.  The domain
value is a *set* of small per-path states (reference pins, pending TLB
flag, memoized branch decisions...).  Joins are set union with
signature-level dedup; the worklist is a delta queue (only states not
yet seen at a node are propagated), and loop unrolling is bounded by
letting each state traverse any given back edge at most once — the CFG
generalisation of the old walker's zero-or-one-iteration rule, which
keeps the refcount rule free of loop-count false positives.

:func:`run_lattice` — a **must-analysis** over a small join-semilattice
(e.g. "has this path-prefix charged the clock?": booleans under AND).
Back edges are iterated to a fixpoint the usual way; exception flow is
deliberately not followed (raise successors are skipped), because its
consumers reason about *normal* paths only.

Domains are duck-typed; see :class:`PathDomain` / :class:`LatticeDomain`
for the contracts.
"""

from __future__ import annotations

from collections import deque

from .cfg import EXIT_FALL, EXIT_RAISE, EXIT_RETURN

#: Per-node cap on distinct abstract states.  A function that overflows
#: is skipped by the rules (under-approximation, never a false
#: positive); nothing in the tree comes close.
STATE_BUDGET = 1024

#: Global cap on worklist items processed per function — a backstop
#: against pathological graphs, far above anything real.
WORK_BUDGET = 200_000


class PathDomain:
    """Contract for :func:`run_paths` domains (documentation only).

    ``initial() -> state``
        The state at function entry.
    ``on_stmt(ast_node, state) -> (fall_states, raise_states)``
        Execute one simple statement/expression.  May mutate and return
        ``state`` itself among the falls; raise states route to the
        node's ``exc`` edge.  ``ast_node`` may be ``None``.
    ``on_branch(test_expr, state, memo) -> (true, false, raise_states)``
        Evaluate a branch test.  ``memo=False`` for loop heads (their
        "test" re-evaluates every iteration, so remembering one outcome
        would be wrong).
    ``on_catch(handler, state) -> state``
        Entering an ``except`` handler: clear pending-raise bookkeeping.
    ``on_raise(stmt, state) -> state``
        An explicit ``raise`` statement.
    ``signature(state) -> hashable``
        Dedup identity.
    ``copy(state) -> state``
    """


class LatticeDomain:
    """Contract for :func:`run_lattice` domains (documentation only).

    ``initial() -> value`` — value at function entry.
    ``join(a, b) -> value`` — merge at control-flow joins.
    ``transfer(node, value) -> value`` — flow through one node.
    Values must support ``==``.
    """


def run_paths(cfg, domain):
    """Enumerate path states over ``cfg``.

    Returns ``(exits, overflowed)`` where ``exits`` maps each exit
    outcome (``fall``/``return``/``raise``) to its list of states.
    """
    exits = {EXIT_FALL: [], EXIT_RETURN: [], EXIT_RAISE: []}
    seen = {}          # node id -> set of (signature, back-edges-taken)
    overflowed = False
    work = deque()

    def push(edge, state, back_taken):
        nonlocal overflowed
        node, is_back = edge
        if is_back:
            key = edge[0].id
            if key in back_taken:
                return            # bounded unrolling: once per back edge
            back_taken = back_taken | {key}
        if node.kind == "exit":
            exits[node.outcome].append(state)
            return
        sigs = seen.setdefault(node.id, set())
        sig = (domain.signature(state), back_taken)
        if sig in sigs:
            return
        if len(sigs) >= STATE_BUDGET:
            overflowed = True
            return
        sigs.add(sig)
        work.append((node, state, back_taken))

    push(cfg.entry, domain.initial(), frozenset())
    processed = 0
    while work:
        processed += 1
        if processed > WORK_BUDGET:
            overflowed = True
            break
        node, state, back_taken = work.popleft()
        kind = node.kind
        if kind == "stmt":
            falls, raises = domain.on_stmt(node.ast, state)
            _fan_out(domain, node.succs, falls, back_taken, push)
            if node.exc is not None:
                for r in raises:
                    push(node.exc, r, back_taken)
        elif kind in ("branch", "loophead"):
            if kind == "loophead" and node.id in back_taken:
                # A state returning over the back edge has run the body
                # once; route it straight out (zero-or-one iterations,
                # without re-evaluating the head expression).
                push(node.succs[1], state, back_taken)
                continue
            trues, falses, raises = domain.on_branch(
                node.ast, state, memo=(kind == "branch"))
            for st in trues:
                push(node.succs[0], st, back_taken)
            for st in falses:
                push(node.succs[1], st, back_taken)
            if node.exc is not None:
                for r in raises:
                    push(node.exc, r, back_taken)
        elif kind == "catch":
            _fan_out(domain, node.succs,
                     [domain.on_catch(node.ast, state)], back_taken, push)
        elif kind == "raise":
            _fan_out(domain, node.succs,
                     [domain.on_raise(node.ast, state)], back_taken, push)
        elif kind == "jump":
            _fan_out(domain, node.succs, [state], back_taken, push)
    return exits, overflowed


def _fan_out(domain, edges, states, back_taken, push):
    """Route ``states`` to every successor edge, copying as needed."""
    if not edges:
        return
    for state in states:
        for edge in edges[:-1]:
            push(edge, domain.copy(state), back_taken)
        push(edges[-1], state, back_taken)


def run_lattice(cfg, domain):
    """Forward must-analysis to fixpoint; normal control flow only.

    Returns ``{outcome: joined exit value}`` for the exits reached by
    normal flow (``raise`` successors and ``exc`` edges are skipped, so
    the RAISE exit never accumulates a value).
    """
    entry_node, _ = cfg.entry
    values = {entry_node.id: domain.initial()}
    exit_values = {}
    work = deque([entry_node])
    queued = {entry_node.id}

    def flow(edge, value):
        node, _ = edge
        if node.kind == "exit":
            old = exit_values.get(node.outcome)
            new = value if old is None else domain.join(old, value)
            if old is None or new != old:
                exit_values[node.outcome] = new
            return
        old = values.get(node.id)
        new = value if old is None else domain.join(old, value)
        if old is None or new != old:
            values[node.id] = new
            if node.id not in queued:
                queued.add(node.id)
                work.append(node)

    while work:
        node = work.popleft()
        queued.discard(node.id)
        if node.kind == "raise":
            continue              # exceptional flow: not a normal path
        out = domain.transfer(node, values[node.id])
        for edge in node.succs:
            flow(edge, out)
    return exit_values
