"""CLI: ``python -m repro.sancheck [--strict] [paths...]``.

With no paths, checks the whole ``src/repro`` tree.  Exit status is 0
when no unsuppressed, unbaselined violation fires; ``--strict``
additionally fails on stale baseline entries (so the baseline only ever
shrinks) — CI runs ``--strict``.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path

from .checker import (
    apply_baseline,
    check_paths,
    check_repo,
    load_baseline,
    repo_src_root,
    write_baseline,
)

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.sancheck",
        description="static lock/failpoint/refcount/TLB checker")
    parser.add_argument("paths", nargs="*",
                        help="files to check (default: all of src/repro)")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="committed baseline JSON (default: "
                             "src/repro/sancheck/baseline.json)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current violations to the baseline "
                             "file and exit 0")
    parser.add_argument("--strict", action="store_true",
                        help="also fail on stale baseline entries")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the summary line")
    args = parser.parse_args(argv)

    if args.paths:
        violations = check_paths(args.paths)
    else:
        violations = check_repo()

    entries, problems = load_baseline(args.baseline)
    if args.write_baseline:
        written = write_baseline(violations, args.baseline)
        print(f"wrote {len(written)} baseline entries to {args.baseline}")
        return 0

    new, baselined, stale = apply_baseline(violations, entries)

    if not args.quiet:
        for violation in new:
            print(violation)
        for problem in problems:
            print(f"baseline: {problem}")
        if args.strict:
            for entry in stale:
                print(f"baseline: stale entry "
                      f"{entry['rule']}:{entry['module']}:{entry['func']} "
                      f"(no longer fires — remove it)")

    counts = Counter(v.rule for v in new)
    scanned = "paths" if args.paths else f"src root {repo_src_root()}"
    summary = ", ".join(f"{rule}={counts[rule]}" for rule in sorted(counts))
    print(f"sancheck: {len(new)} violation(s) [{summary or 'clean'}], "
          f"{len(baselined)} baselined, {len(stale)} stale baseline "
          f"entries ({scanned})")

    failed = bool(new) or bool(problems)
    if args.strict:
        failed = failed or bool(stale)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
