"""CLI: ``python -m repro.sancheck [--strict] [paths...]``.

With no paths, checks the whole ``src/repro`` tree.  Exit status is 0
when no unsuppressed, unbaselined violation fires; ``--strict``
additionally fails on stale baseline entries (so the baseline only ever
shrinks) — CI runs ``--strict``.

``--rules a,b`` restricts the run to a subset of the rule families;
``--jobs N`` fans the per-function path walks out over N worker
processes; ``--json PATH`` writes a machine-readable report (CI uploads
it as an artifact); ``--prune-ignores`` rewrites source files to drop
stale ignore comments.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import Counter
from pathlib import Path

from .checker import (
    apply_baseline,
    check_paths,
    check_repo,
    load_baseline,
    prune_ignores,
    repo_src_root,
    write_baseline,
)
from .rules import RULES

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def _parse_rules(spec):
    if spec is None:
        return None
    rules = frozenset(r.strip() for r in spec.split(",") if r.strip())
    unknown = rules - frozenset(RULES)
    if unknown:
        raise SystemExit(f"sancheck: unknown rule(s) {sorted(unknown)}; "
                         f"known: {', '.join(RULES)}")
    return rules


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.sancheck",
        description="static lock/failpoint/refcount/TLB/clock-charge/"
                    "metrics/fastpath checker")
    parser.add_argument("paths", nargs="*",
                        help="files to check (default: all of src/repro)")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="committed baseline JSON (default: "
                             "src/repro/sancheck/baseline.json)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current violations to the baseline "
                             "file and exit 0")
    parser.add_argument("--strict", action="store_true",
                        help="also fail on stale baseline entries")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the summary line")
    parser.add_argument("--rules", default=None, metavar="R1,R2",
                        help=f"comma-separated rule selection "
                             f"(default: all of {','.join(RULES)})")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run the path-walk rules in N worker "
                             "processes (default: 1)")
    parser.add_argument("--json", default=None, metavar="PATH", dest="json_out",
                        help="write a JSON report (violations + summary) "
                             "to PATH")
    parser.add_argument("--prune-ignores", action="store_true",
                        help="rewrite files to drop stale ignore comments")
    args = parser.parse_args(argv)

    rules = _parse_rules(args.rules)
    started = time.monotonic()
    stale_ignores = []
    if args.paths:
        violations = check_paths(args.paths, rules=rules, jobs=args.jobs,
                                 collect_stale_ignores=stale_ignores)
    else:
        violations = check_repo(rules=rules, jobs=args.jobs,
                                collect_stale_ignores=stale_ignores)
    elapsed = time.monotonic() - started

    if args.prune_ignores:
        removed = prune_ignores(stale_ignores)
        print(f"sancheck: pruned {removed} stale ignore comment(s)")
        violations = [v for v in violations
                      if not (v.rule == "ignore"
                              and "stale ignore" in v.message)]

    entries, problems = load_baseline(args.baseline)
    if args.write_baseline:
        written = write_baseline(violations, args.baseline)
        print(f"wrote {len(written)} baseline entries to {args.baseline}")
        return 0

    new, baselined, stale = apply_baseline(violations, entries)

    if not args.quiet:
        for violation in new:
            print(violation)
        for problem in problems:
            print(f"baseline: {problem}")
        if args.strict:
            for entry in stale:
                print(f"baseline: stale entry "
                      f"{entry['rule']}:{entry['module']}:{entry['func']} "
                      f"(no longer fires — remove it)")

    counts = Counter(v.rule for v in new)
    scanned = "paths" if args.paths else f"src root {repo_src_root()}"
    summary = ", ".join(f"{rule}={counts[rule]}" for rule in sorted(counts))
    print(f"sancheck: {len(new)} violation(s) [{summary or 'clean'}], "
          f"{len(baselined)} baselined, {len(stale)} stale baseline "
          f"entries ({scanned}) in {elapsed:.2f}s")

    failed = bool(new) or bool(problems)
    if args.strict:
        failed = failed or bool(stale)

    if args.json_out:
        report = {
            "violations": [
                {"rule": v.rule, "module": v.module, "func": v.func,
                 "lineno": v.lineno, "message": v.message}
                for v in new],
            "baselined": len(baselined),
            "stale_baseline": [
                {"rule": e["rule"], "module": e["module"], "func": e["func"]}
                for e in stale],
            "counts": dict(counts),
            "rules": sorted(rules) if rules is not None else list(RULES),
            "elapsed_s": round(elapsed, 3),
            "ok": not failed,
        }
        Path(args.json_out).write_text(json.dumps(report, indent=1) + "\n")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
