"""Per-function control-flow graphs for the dataflow engine.

:func:`build_cfg` lowers one ``ast.FunctionDef`` body into a graph of
small :class:`Node` objects the worklist engine (:mod:`.engine`) walks:

* ``stmt``   — one simple statement (or expression); calls inside it may
  fork exception flow to the node's ``exc`` edge.
* ``branch`` — an ``if`` test; ``succs[0]`` is the true edge,
  ``succs[1]`` the false edge.
* ``loophead`` — a ``for``/``while`` head; ``succs[0]`` enters the body,
  ``succs[1]`` is the zero-iteration / loop-exhausted edge.  Body-fall
  and ``continue`` edges return to the head marked **back** so the
  engine can bound unrolling.
* ``catch``  — an ``except`` handler entry: the domain clears the
  pending-exception bookkeeping here.
* ``raise``  — an explicit ``raise``; its successor is the enclosing
  exception continuation (handler dispatch, ``finally`` copy, or the
  RAISE exit).
* ``jump``   — structural glue (handler dispatch fan-out, ``break``).
* ``exit``   — one of the three function exits: ``fall`` (end of body),
  ``return``, ``raise``.

Exception edges are explicit: every statement that can raise carries an
``exc`` edge pointing at the innermost handler dispatch (``try``), the
exceptional ``finally`` copy, or the RAISE exit.  ``finally`` blocks are
duplicated once per continuation kind (fall / raise / return / break /
continue) — the classic lowering that keeps the walked state precise
about *why* the finally ran — and handler dispatch fans a raising state
out to every handler (exception types are not tracked; the checker
over-approximates which handler runs).

Nested ``def``/``class`` statements are opaque: their bodies are
harvested and checked as functions in their own right, not inlined into
the enclosing flow.
"""

from __future__ import annotations

import ast

EXIT_FALL, EXIT_RETURN, EXIT_RAISE = "fall", "return", "raise"


class Node:
    """One CFG node.  ``succs`` holds ``(target, is_back)`` edges."""

    __slots__ = ("id", "kind", "ast", "succs", "exc", "outcome")

    def __init__(self, nid, kind, ast_node=None, outcome=None):
        self.id = nid
        self.kind = kind
        self.ast = ast_node
        self.succs = []
        self.exc = None       # (target, is_back) exception edge, if any
        self.outcome = outcome

    def __repr__(self):
        return f"<Node {self.id} {self.kind}>"


class CFG:
    """The graph for one function: entry edge plus the three exits."""

    def __init__(self, entry, nodes, exits):
        self.entry = entry         # (node, is_back) — is_back always False
        self.nodes = nodes
        self.exits = exits         # outcome -> exit Node


_OPAQUE = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


class _Builder:
    def __init__(self):
        self.nodes = []

    def node(self, kind, ast_node=None, outcome=None):
        n = Node(len(self.nodes), kind, ast_node, outcome)
        self.nodes.append(n)
        return n

    def build(self, func_node):
        exits = {
            EXIT_FALL: self.node("exit", outcome=EXIT_FALL),
            EXIT_RETURN: self.node("exit", outcome=EXIT_RETURN),
            EXIT_RAISE: self.node("exit", outcome=EXIT_RAISE),
        }
        ctx = {
            "raise": (exits[EXIT_RAISE], False),
            "return": (exits[EXIT_RETURN], False),
            "break": None,
            "continue": None,
        }
        entry = self.stmts(func_node.body, (exits[EXIT_FALL], False), ctx)
        return CFG(entry, self.nodes, exits)

    # -- statement lowering (built back-to-front: succ is the
    #    continuation edge the statement falls through to) --------------

    def stmts(self, body, succ, ctx):
        edge = succ
        for stmt in reversed(body):
            edge = self.stmt(stmt, edge, ctx)
        return edge

    def _simple(self, ast_node, succ, ctx):
        n = self.node("stmt", ast_node)
        n.succs = [succ]
        n.exc = ctx["raise"]
        return (n, False)

    def stmt(self, stmt, succ, ctx):
        method = getattr(self, "_stmt_" + type(stmt).__name__, None)
        if method is not None:
            return method(stmt, succ, ctx)
        if isinstance(stmt, _OPAQUE):
            return succ
        return self._simple(stmt, succ, ctx)

    def _stmt_Return(self, stmt, succ, ctx):
        n = self.node("stmt", stmt.value)
        n.succs = [ctx["return"]]
        n.exc = ctx["raise"]
        return (n, False)

    def _stmt_Raise(self, stmt, succ, ctx):
        n = self.node("raise", stmt)
        n.succs = [ctx["raise"]]
        return (n, False)

    def _stmt_Break(self, stmt, succ, ctx):
        n = self.node("jump")
        n.succs = [ctx["break"] if ctx["break"] is not None else succ]
        return (n, False)

    def _stmt_Continue(self, stmt, succ, ctx):
        n = self.node("jump")
        n.succs = [ctx["continue"] if ctx["continue"] is not None else succ]
        return (n, False)

    def _stmt_If(self, stmt, succ, ctx):
        n = self.node("branch", stmt.test)
        n.succs = [self.stmts(stmt.body, succ, ctx),
                   self.stmts(stmt.orelse, succ, ctx)]
        n.exc = ctx["raise"]
        return (n, False)

    def _stmt_While(self, stmt, succ, ctx):
        return self._loop(stmt.test, stmt.body, stmt.orelse, succ, ctx)

    def _stmt_For(self, stmt, succ, ctx):
        return self._loop(stmt.iter, stmt.body, stmt.orelse, succ, ctx)

    _stmt_AsyncFor = _stmt_For

    def _loop(self, head_expr, body, orelse, succ, ctx):
        head = self.node("loophead", head_expr)
        head.exc = ctx["raise"]
        orelse_edge = self.stmts(orelse, succ, ctx)
        body_ctx = dict(ctx, **{"break": succ, "continue": (head, True)})
        body_edge = self.stmts(body, (head, True), body_ctx)
        head.succs = [body_edge, orelse_edge]
        return (head, False)

    def _stmt_With(self, stmt, succ, ctx):
        edge = self.stmts(stmt.body, succ, ctx)
        for item in reversed(stmt.items):
            edge = self._simple(item.context_expr, edge, ctx)
        return edge

    _stmt_AsyncWith = _stmt_With

    def _stmt_Try(self, stmt, succ, ctx):
        inner_succ, inner_ctx = succ, ctx
        if stmt.finalbody:
            # One copy of the finally per continuation kind, each wired
            # to the continuation it resumes after running.
            inner_ctx = dict(ctx)
            inner_succ = self.stmts(stmt.finalbody, succ, ctx)
            inner_ctx["raise"] = self.stmts(stmt.finalbody, ctx["raise"], ctx)
            inner_ctx["return"] = self.stmts(stmt.finalbody, ctx["return"], ctx)
            if ctx["break"] is not None:
                inner_ctx["break"] = self.stmts(
                    stmt.finalbody, ctx["break"], ctx)
            if ctx["continue"] is not None:
                inner_ctx["continue"] = self.stmts(
                    stmt.finalbody, ctx["continue"], ctx)

        body_ctx = inner_ctx
        if stmt.handlers:
            dispatch = self.node("jump")
            for handler in stmt.handlers:
                catch = self.node("catch", handler)
                catch.succs = [self.stmts(handler.body, inner_succ, inner_ctx)]
                dispatch.succs.append((catch, False))
            body_ctx = dict(inner_ctx, **{"raise": (dispatch, False)})

        orelse_edge = self.stmts(stmt.orelse, inner_succ, inner_ctx)
        return self.stmts(stmt.body, orelse_edge, body_ctx)

    _stmt_TryStar = _stmt_Try

    def _stmt_Match(self, stmt, succ, ctx):
        # Conservative: evaluate the subject, then nondeterministically
        # enter any case body (or fall through when no case matches).
        n = self.node("stmt", stmt.subject)
        n.exc = ctx["raise"]
        n.succs = [self.stmts(case.body, succ, ctx) for case in stmt.cases]
        n.succs.append(succ)
        return (n, False)


def build_cfg(func_node):
    """Lower ``func_node`` (an ``ast.FunctionDef``) to a :class:`CFG`."""
    return _Builder().build(func_node)
