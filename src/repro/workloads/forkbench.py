"""The paper's Figure 1 benchmark program, as a reusable workload.

A loop that maps anonymous memory, fills it with data, forks (the child
exits immediately), and measures the fork invocation with ``clock_gettime``
around the call.  Used by the Figure 2 / Figure 4 / Figure 7 sweeps with
three variants (classic fork, fork with 2 MiB huge pages, on-demand-fork)
and with optional concurrency (the Figure 2 "Concurrent (3x)" series).
"""

from __future__ import annotations

from ..core.machine import GIB, Machine
from ..errors import InvalidArgumentError

VARIANT_FORK = "fork"
VARIANT_FORK_HUGE = "fork_huge"
VARIANT_ODFORK = "odfork"
VARIANTS = (VARIANT_FORK, VARIANT_FORK_HUGE, VARIANT_ODFORK)

#: The x-axis ticks of Figures 2, 4, and 7 (the paper sweeps in 512 MiB
#: increments and plots a log axis labelled at these sizes).
PAPER_SIZE_TICKS_GB = (0.5, 1, 2, 4, 8, 16, 32, 50)


def measure_fork_once(process, variant):
    """One fork + child-exit iteration; returns the invocation ns."""
    if variant == VARIANT_ODFORK:
        child = process.odfork()
    else:
        child = process.fork()
    elapsed = process.last_fork_ns
    child.exit()
    process.wait()
    return elapsed


def fork_latency_for_size(machine, size_bytes, variant, repeats=5,
                          concurrency=1):
    """Fork latencies (ns) for a process with ``size_bytes`` mapped.

    Mirrors the Figure 1 program: map, fill, fork repeatedly (the child
    exits immediately and is reaped), unmap.
    """
    if variant not in VARIANTS:
        raise InvalidArgumentError(f"unknown variant {variant!r}")
    parent = machine.spawn_process(f"forkbench-{variant}")
    if variant == VARIANT_FORK_HUGE:
        buf = parent.mmap_huge(size_bytes)
    else:
        buf = parent.mmap(size_bytes)
    parent.touch_range(buf, size_bytes, write=True)

    samples = []
    with machine.concurrency(concurrency):
        for _ in range(repeats):
            samples.append(measure_fork_once(parent, variant))
    parent.exit()
    machine.init_process.wait()
    return samples


def concurrent_fork_latencies_smp(machine, size_bytes, n_instances=3,
                                  variant=VARIANT_FORK, repeats=1):
    """Per-fork latencies when ``n_instances`` processes fork *together*.

    The emergent counterpart of ``concurrency=...``: requires a
    ``Machine(smp=N)``.  Each instance is its own process with its own
    ``size_bytes`` buffer; per repeat, one fork task per instance is
    spawned and the SMP scheduler interleaves them, so the contention
    level the cost model sees is the actual number of vCPUs inside the
    copy loop at each charge — no fitted alpha involved.  Returns a list
    of per-fork latencies (ns), ``n_instances`` per repeat.
    """
    from ..smp import ops

    if variant not in VARIANTS:
        raise InvalidArgumentError(f"unknown variant {variant!r}")
    sched = machine.smp
    if sched is None:
        raise InvalidArgumentError("concurrent_fork_latencies_smp needs "
                                   "a Machine(smp=N)")
    use_odf = variant == VARIANT_ODFORK
    parents = []
    for i in range(n_instances):
        parent = machine.spawn_process(f"forkbench-smp-{i}")
        if variant == VARIANT_FORK_HUGE:
            buf = parent.mmap_huge(size_bytes)
        else:
            buf = parent.mmap(size_bytes)
        parent.touch_range(buf, size_bytes, write=True)
        parents.append(parent)

    samples = []
    for _ in range(repeats):
        tasks = [
            sched.spawn(f"fork-{i}", ops.fork_flow(sched, p, use_odf=use_odf),
                        mm=p.mm)
            for i, p in enumerate(parents)
        ]
        sched.run()
        for task in tasks:
            samples.append(task.result["elapsed_ns"])
            task.result["child"].exit()
        for p in parents:
            p.wait()
    for p in parents:
        p.exit()
    machine.init_process.wait()
    return samples


def run_latency_sweep(sizes_gb=PAPER_SIZE_TICKS_GB, variant=VARIANT_FORK,
                      repeats=5, concurrency=1, noise_sigma=0.04, seed=1,
                      phys_headroom_gb=3.0):
    """The full Figure 2/4/7-style sweep; returns ``{size_gb: [ns, ...]}``.

    Each size gets a fresh machine so struct-page arrays scale with the
    point being measured rather than the largest one.
    """
    results = {}
    for size_gb in sizes_gb:
        size_bytes = int(size_gb * GIB)
        phys_mb = int((size_gb + phys_headroom_gb) * 1024)
        machine = Machine(phys_mb=phys_mb, noise_sigma=noise_sigma, seed=seed)
        results[size_gb] = fork_latency_for_size(
            machine, size_bytes, variant, repeats=repeats,
            concurrency=concurrency,
        )
    return results
