"""Benchmark workloads: the Figure 1 program, access mixes, patterns."""

from .accessmix import (
    CHUNK_BYTES,
    PAPER_READ_MIXES,
    chunk_plan,
    fork_and_access,
    run_access_mix_point,
    run_reduction_curve,
)
from .forkbench import (
    PAPER_SIZE_TICKS_GB,
    VARIANT_FORK,
    VARIANT_FORK_HUGE,
    VARIANT_ODFORK,
    VARIANTS,
    fork_latency_for_size,
    measure_fork_once,
    run_latency_sweep,
)
from .patterns import PatternGenerator, touch_pages

__all__ = [
    "VARIANT_FORK",
    "VARIANT_FORK_HUGE",
    "VARIANT_ODFORK",
    "VARIANTS",
    "PAPER_SIZE_TICKS_GB",
    "PAPER_READ_MIXES",
    "CHUNK_BYTES",
    "fork_latency_for_size",
    "measure_fork_once",
    "run_latency_sweep",
    "chunk_plan",
    "fork_and_access",
    "run_access_mix_point",
    "run_reduction_curve",
    "PatternGenerator",
    "touch_pages",
]
