"""The Figure 8 workload: fork + access a fraction of memory, mixed R/W.

The paper's program allocates a large region, forks, then the *parent*
sequentially accesses the first X percent of the memory using ``memcpy``
through a 32 MiB bounce buffer, in one of five read/write mixes.  The
measured quantity is the total time from just before the fork call until
the accesses complete; Figure 8 plots on-demand-fork's percentage time
reduction over classic fork.

Reads and writes are interleaved at bounce-buffer (32 MiB) granularity in
proportion to the mix — e.g. "75 % read" issues three read chunks per
write chunk — which matches how the mix shapes the number of PTE tables
that must be copied on demand (§5.2.4: more writes, more copied tables).
"""

from __future__ import annotations

from fractions import Fraction

from ..core.machine import GIB, MIB, Machine
from ..errors import InvalidArgumentError
from ..workloads.forkbench import VARIANT_FORK, VARIANT_ODFORK

CHUNK_BYTES = 32 * MIB  # the paper's memcpy bounce-buffer size
PAPER_READ_MIXES = (1.0, 0.75, 0.50, 0.25, 0.0)


def chunk_plan(n_chunks, read_fraction):
    """Deterministic R/W interleaving: ``True`` = read chunk.

    Spreads reads evenly through the sequence (Bresenham-style) so any
    prefix of the plan approximates the requested mix.
    """
    if not 0.0 <= read_fraction <= 1.0:
        raise InvalidArgumentError("read fraction must be within [0, 1]")
    ratio = Fraction(read_fraction).limit_denominator(100)
    plan = []
    acc = Fraction(0)
    for _ in range(n_chunks):
        acc += ratio
        if acc >= 1:
            plan.append(True)
            acc -= 1
        else:
            plan.append(False)
    return plan


def fork_and_access(machine, parent, size_bytes, buf, fraction,
                    read_fraction, variant):
    """One Figure 8 measurement; returns total ns (fork + accesses).

    The child is created, the parent performs the accesses, and the child
    is then torn down outside the measured window (its teardown happens on
    another core in the paper's setup).
    """
    watch = machine.stopwatch()
    child = parent.odfork() if variant == VARIANT_ODFORK else parent.fork()
    accessed = int(size_bytes * fraction)
    offset = 0
    for is_read in chunk_plan(max(1, accessed // CHUNK_BYTES), read_fraction):
        take = min(CHUNK_BYTES, accessed - offset)
        if take <= 0:
            break
        parent.touch_range(buf + offset, take, write=not is_read)
        offset += take
    total_ns = watch.elapsed_ns
    with machine.cost.background():
        child.exit()
        parent.wait()
    return total_ns


def run_access_mix_point(size_bytes, fraction, read_fraction, variant,
                         phys_headroom_gb=2.0, seed=3):
    """One (fraction, mix, variant) data point on a fresh machine.

    A fresh parent per point keeps the pre-fork state identical across
    points: the parent's writes COW pages and unshare tables, so state
    cannot be reused between measurements.
    """
    write_fraction = (1.0 - read_fraction) * fraction
    phys_mb = int((size_bytes * (1 + write_fraction)) // MIB
                  + phys_headroom_gb * 1024)
    machine = Machine(phys_mb=phys_mb, seed=seed)
    parent = machine.spawn_process("accessmix")
    buf = parent.mmap(size_bytes)
    parent.touch_range(buf, size_bytes, write=True)
    return fork_and_access(machine, parent, size_bytes, buf, fraction,
                           read_fraction, variant)


def run_reduction_curve(size_bytes=4 * GIB, fractions=None,
                        read_mixes=PAPER_READ_MIXES):
    """Figure 8's curves: ``{read_mix: [(fraction, reduction_pct), ...]}``.

    The default region is 4 GiB rather than the paper's 50 GiB: both fork
    costs and access costs scale linearly with size, so the reduction
    *ratio* is size-invariant to within the fixed constants (documented in
    EXPERIMENTS.md; the 0 % point still reproduces the paper's ~99 %).
    """
    if fractions is None:
        fractions = [i / 10 for i in range(0, 11)]
    curves = {}
    for read_mix in read_mixes:
        points = []
        for fraction in fractions:
            t_fork = run_access_mix_point(size_bytes, fraction, read_mix,
                                          VARIANT_FORK)
            t_odf = run_access_mix_point(size_bytes, fraction, read_mix,
                                         VARIANT_ODFORK)
            reduction = 100.0 * (t_fork - t_odf) / t_fork
            points.append((fraction, reduction))
        curves[read_mix] = points
    return curves
