"""Synthetic memory-access pattern generators.

Shared by the microbenchmarks and the application simulations: sequential
sweeps, uniform-random page touches, Zipfian key popularity (what key-value
store traffic actually looks like), and hot/cold working-set splits.  All
generators are seeded and deterministic.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidArgumentError
from ..mem.page import PAGE_SIZE


class PatternGenerator:
    """Seeded generator of page/offset access sequences over a region."""

    def __init__(self, region_bytes, seed=0):
        if region_bytes < PAGE_SIZE:
            raise InvalidArgumentError("region smaller than one page")
        self.region_bytes = int(region_bytes)
        self.n_pages = self.region_bytes // PAGE_SIZE
        self._rng = np.random.RandomState(seed)

    def sequential(self, n, start_page=0):
        """``n`` page indices in address order, wrapping at the region end."""
        return (start_page + np.arange(n)) % self.n_pages

    def uniform(self, n):
        """``n`` uniformly random page indices."""
        return self._rng.randint(0, self.n_pages, size=n)

    def zipfian(self, n, skew=1.01):
        """``n`` Zipf-distributed page indices (popular pages repeat).

        Rejection-sampled into range, matching how key-value benchmarks
        (memtier, YCSB) generate skewed key popularity.
        """
        if skew <= 1.0:
            raise InvalidArgumentError("zipf skew must exceed 1.0")
        draws = self._rng.zipf(skew, size=int(n * 1.5) + 16)
        draws = draws[draws <= self.n_pages][:n]
        while len(draws) < n:
            extra = self._rng.zipf(skew, size=n)
            draws = np.concatenate([draws, extra[extra <= self.n_pages]])[:n]
        return (draws - 1).astype(np.int64)

    def hot_cold(self, n, hot_fraction=0.1, hot_probability=0.9):
        """Hot/cold split: ``hot_probability`` of touches land in the first
        ``hot_fraction`` of pages."""
        if not 0 < hot_fraction <= 1 or not 0 <= hot_probability <= 1:
            raise InvalidArgumentError("invalid hot/cold parameters")
        hot_pages = max(1, int(self.n_pages * hot_fraction))
        is_hot = self._rng.random_sample(n) < hot_probability
        hot = self._rng.randint(0, hot_pages, size=n)
        cold = self._rng.randint(hot_pages, max(hot_pages + 1, self.n_pages), size=n)
        return np.where(is_hot, hot, cold)

    def page_to_addr(self, base, page_indices):
        """Byte addresses (page starts) for an index array."""
        return base + page_indices.astype(np.int64) * PAGE_SIZE


def touch_pages(process, base, page_indices, write, bytes_per_touch=64):
    """Touch each listed page once through the fast access path."""
    for page in np.asarray(page_indices).tolist():
        process.touch(base + page * PAGE_SIZE, bytes_per_touch, write=write)
