"""Distributed lock manager: FIFO-fair named locks over the fleet clock.

The fleet needs exactly one serialisation primitive: a **snapshot epoch**
lock, held by whichever wave (or sub-wave) of replicas is currently
forking.  Rather than simulate a consensus protocol per message, the DLM
is analytic in the markkampe style: an acquire costs a fixed round-trip
pair to the lock master (request + grant), and a busy lock queues the
request FIFO — the grant time is simply ``max(request, holder release) +
acquire cost``, chained in request order, so fairness is deterministic
and starvation impossible.

The lock-order discipline is the same one :mod:`repro.smp.locks` enforces
inside a machine, re-used at fleet scope: no recursive acquisition, and
multiple locks only in ascending name order (violations raise the same
:class:`~repro.smp.locks.LockOrderError` the SMP checker uses, so one
exception type covers both layers).

The ``dlm.acquire_timeout`` fail-point models a lock master that never
answers: ``acquire`` charges the timeout and returns ``None``; the caller
(the snapshot coordinator) skips that epoch cleanly and retries at the
next scheduled wave.
"""

from __future__ import annotations

from ..errors import InvalidArgumentError
from ..smp.locks import LockOrderError
from ..trace import points


class _NamedLock:
    """One lock's analytic state: who holds it and when it frees."""

    __slots__ = ("name", "holder", "free_at_ns", "grants", "queued_grants",
                 "wait_ns_total", "grant_log")

    def __init__(self, name):
        self.name = name
        self.holder = None
        self.free_at_ns = 0
        self.grants = 0
        self.queued_grants = 0
        self.wait_ns_total = 0
        self.grant_log = []     # (owner, request_ns, grant_ns) in FIFO order


class Dlm:
    """Fleet-wide named locks with FIFO grants and analytic timing."""

    def __init__(self, acquire_rtt_us=20.0, timeout_us=200.0,
                 failpoints=None):
        if acquire_rtt_us < 0 or timeout_us < 0:
            raise InvalidArgumentError("DLM costs cannot be negative")
        self.acquire_ns = int(acquire_rtt_us * 1_000)
        self.timeout_ns = int(timeout_us * 1_000)
        self.failpoints = failpoints
        self._locks = {}
        self._held = {}          # owner -> set of lock names
        self.timeouts = 0

    def _lock(self, name):
        lock = self._locks.get(name)
        if lock is None:
            lock = self._locks[name] = _NamedLock(name)
        return lock

    # ---- client API ------------------------------------------------------

    def acquire(self, name, owner, request_ns):
        """Request ``name`` for ``owner``; returns the grant time (ns).

        A busy lock queues the request: the grant lands after the current
        holder's release, in request order (calls arrive in fleet-time
        order, so chaining off ``free_at_ns`` *is* FIFO).  Returns ``None``
        when the ``dlm.acquire_timeout`` fail-point fires — the request is
        charged the timeout and abandoned, leaving the lock untouched.
        """
        held = self._held.setdefault(owner, set())
        if name in held:
            raise LockOrderError(f"recursive DLM acquire of {name!r} "
                                 f"by {owner!r}")
        for already in held:
            if already >= name:
                raise LockOrderError(
                    f"{owner!r} acquires {name!r} while holding "
                    f"{already!r} — DLM locks must be taken in ascending "
                    f"name order")
        if (self.failpoints is not None
                and self.failpoints.fails("dlm.acquire_timeout")):
            self.timeouts += 1
            return None
        lock = self._lock(name)
        queued = lock.holder is not None or lock.free_at_ns > request_ns
        grant_ns = max(request_ns, lock.free_at_ns) + self.acquire_ns
        lock.holder = owner
        lock.free_at_ns = grant_ns
        lock.grants += 1
        if queued:
            lock.queued_grants += 1
        lock.wait_ns_total += grant_ns - request_ns
        lock.grant_log.append((owner, request_ns, grant_ns))
        held.add(name)
        if points.enabled:
            points.tracepoint("dlm.acquire", dur_ns=grant_ns - request_ns,
                              lock=name, owner=owner, queued=queued)
        return grant_ns

    def release(self, name, owner, at_ns):
        """Release ``name``; later acquires queue behind ``at_ns``."""
        lock = self._locks.get(name)
        if lock is None or lock.holder != owner:
            raise LockOrderError(f"{owner!r} released DLM lock {name!r} "
                                 f"it does not hold")
        lock.holder = None
        lock.free_at_ns = max(lock.free_at_ns, at_ns)
        self._held[owner].discard(name)
        if points.enabled:
            points.tracepoint("dlm.release", lock=name, owner=owner)

    # ---- introspection ---------------------------------------------------

    def holder(self, name):
        """Current holder of ``name`` (None when free or never taken)."""
        lock = self._locks.get(name)
        return lock.holder if lock is not None else None

    def grant_order(self, name):
        """Owners in the order they were granted ``name`` (FIFO check)."""
        lock = self._locks.get(name)
        return [owner for owner, _, _ in lock.grant_log] if lock else []

    def stats(self):
        """Aggregate tallies across all named locks."""
        return {
            "locks": len(self._locks),
            "grants": sum(l.grants for l in self._locks.values()),
            "queued_grants": sum(l.queued_grants
                                 for l in self._locks.values()),
            "wait_ns_total": sum(l.wait_ns_total
                                 for l in self._locks.values()),
            "timeouts": self.timeouts,
        }
