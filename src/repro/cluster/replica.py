"""One fleet member: a faithful single-machine simulator behind a NIC.

The network layer above is analytic, but each replica keeps the *real*
mechanism: a full :class:`~repro.core.machine.Machine` running a
:class:`~repro.apps.kvstore.KVStore`, so fork blocks, table-COW faults
and the post-snapshot write burst all come from the paging model, not
from constants.  The replica's machine clock is slaved to fleet time —
``advance_to`` before every service or snapshot — so per-replica Perfetto
tracks line up with the gateway track and background deadlines (snapshot
children serialising) expire at realistic fleet times.
"""

from __future__ import annotations

from collections import deque

from ..apps.kvstore import KVStore
from ..core.machine import Machine
from ..trace import points


class Replica:
    """A Machine + KVStore pair with fleet-time service accounting."""

    def __init__(self, index, data_mb=64, value_bytes=1024, phys_mb=None,
                 use_odfork=False, serialize_ms=450.0, seed=0):
        self.index = index
        self.name = f"replica{index}"
        if phys_mb is None:
            # Headroom for COW bursts while snapshot children are alive.
            phys_mb = max(128, int(data_mb * 4))
        self.machine = Machine(phys_mb=phys_mb, seed=seed + index)
        self.store = KVStore(self.machine, data_mb=data_mb,
                             value_bytes=value_bytes,
                             use_odfork=use_odfork,
                             serialize_ms=serialize_ms,
                             seed=seed + index, name=self.name)
        # Snapshots are fleet-coordinated, never store-triggered.
        self.store.save_enabled = False
        self.ready_at_ns = 0          # fleet time the server next frees
        self.snap_busy_until_ns = 0   # end of the last snapshot block
        self.draining = False
        self.served = 0
        self.snapshots = 0
        self._completions = deque()   # fleet-time completion stamps

    # ---- data plane ------------------------------------------------------

    def queue_len(self, now_ns):
        """Requests assigned but not yet completed at fleet time ``now``."""
        pending = self._completions
        while pending and pending[0] <= now_ns:
            pending.popleft()
        return len(pending)

    def serve(self, key, write, start_ns):
        """Serve one request starting at fleet time ``start_ns``.

        Returns the service time (ns) measured off the machine clock —
        command dispatch plus whatever faults the touch takes (COW after a
        classic fork, table-copy-then-COW after an odfork).
        """
        if points.enabled:
            tracer = points.current()
            if tracer is not None:
                tracer.bind(self.machine)
        clock = self.machine.clock
        clock.advance_to(start_ns)
        before = clock.now_ns
        if write:
            self.store.handle_set(key)
        else:
            self.store.handle_get(key)
        service_ns = clock.now_ns - before
        end_ns = start_ns + service_ns
        self.ready_at_ns = end_ns
        self._completions.append(end_ns)
        self.served += 1
        return service_ns

    # ---- snapshot plane --------------------------------------------------

    def snapshot(self, at_ns):
        """Fork a snapshot child at fleet time ``at_ns``; returns the block.

        The returned duration is the fork *invocation* block — the window
        the server cannot serve — straight from the machine clock (reaping
        earlier children runs off-CPU and charges nothing).
        """
        if points.enabled:
            tracer = points.current()
            if tracer is not None:
                tracer.bind(self.machine)
        clock = self.machine.clock
        clock.advance_to(at_ns)
        before = clock.now_ns
        self.store.snapshot()
        block_ns = clock.now_ns - before
        end_ns = at_ns + block_ns
        self.ready_at_ns = max(self.ready_at_ns, end_ns)
        self.snap_busy_until_ns = end_ns
        self.snapshots += 1
        return block_ns

    # ---- lifecycle -------------------------------------------------------

    @property
    def live_children(self):
        """Snapshot children not yet reaped (0 after a clean shutdown)."""
        return len(self.store._snapshot_children)

    def shutdown(self):
        """Reap outstanding snapshot children and exit the server."""
        self.store.shutdown()

    def info(self):
        """Per-replica report row material."""
        return {
            "name": self.name,
            "served": self.served,
            "snapshots": self.snapshots,
            "fork_ns_samples": list(self.store.fork_ns_samples),
            "rss_bytes": self.store.proc.rss_bytes,
        }
