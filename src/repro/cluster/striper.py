"""Traffic striping policies: how the gateway spreads keys over replicas.

Two policies, both fully deterministic for a given seed:

``RoundRobinStriper``
    Ignores the key; request *i* goes to replica ``i % N``.  Perfect load
    balance, no key affinity — every replica sees every key, so a
    snapshot on any one replica perturbs a slice of *all* traffic.

``ConsistentHashStriper``
    A classic hash ring with virtual nodes.  Each replica owns ``vnodes``
    points on a 32-bit ring (positions are ``crc32(seed:replica:vnode)``,
    so they do not depend on ``PYTHONHASHSEED``); a key routes to the
    first vnode clockwise from ``crc32(seed:key)``.  Removing a replica
    remaps only the arc it owned (~1/N of keys), which is what makes the
    drain-then-snapshot strategy cheap: traffic for a draining replica
    fails over to its ring successor and everyone else is untouched.
"""

from __future__ import annotations

import bisect
import zlib

from ..errors import InvalidArgumentError


def _crc(seed, *parts):
    """Deterministic 32-bit hash (stable across runs and interpreters)."""
    data = ":".join(str(p) for p in (seed,) + parts).encode()
    return zlib.crc32(data) & 0xFFFFFFFF


class RoundRobinStriper:
    """Stateless rotation over the replica set."""

    policy = "rr"

    def __init__(self, n_replicas, seed=0):
        if n_replicas < 1:
            raise InvalidArgumentError("need at least one replica")
        self.n_replicas = n_replicas
        self.seed = seed
        self._next = 0

    def route(self, key):
        """Replica index for the next request (key is ignored)."""
        replica = self._next
        self._next = (self._next + 1) % self.n_replicas
        return replica

    def successor(self, replica, skip=()):
        """The next replica in rotation that is not in ``skip``."""
        for step in range(1, self.n_replicas):
            candidate = (replica + step) % self.n_replicas
            if candidate not in skip:
                return candidate
        return replica

    def reset(self):
        """Back to replica 0 (so identical runs assign identically)."""
        self._next = 0


class ConsistentHashStriper:
    """Hash ring with virtual nodes; same seed -> same assignment."""

    policy = "hash"

    def __init__(self, n_replicas, seed=0, vnodes=64):
        if n_replicas < 1:
            raise InvalidArgumentError("need at least one replica")
        if vnodes < 1:
            raise InvalidArgumentError("need at least one virtual node")
        self.n_replicas = n_replicas
        self.seed = seed
        self.vnodes = vnodes
        self._ring = []            # sorted (position, replica)
        self._positions = []       # positions only, for bisect
        for replica in range(n_replicas):
            for v in range(vnodes):
                self._ring.append((_crc(seed, replica, v), replica))
        self._ring.sort()
        self._positions = [pos for pos, _ in self._ring]

    def route(self, key):
        """Replica index owning ``key``'s ring position."""
        point = _crc(self.seed, key)
        index = bisect.bisect_right(self._positions, point)
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]

    def successor(self, replica, skip=()):
        """The next distinct replica clockwise (drain failover target).

        ``skip`` lists replicas that are themselves unavailable; with every
        replica skipped the original target is returned (nowhere to go).
        """
        order = sorted(set(r for _, r in self._ring))
        start = order.index(replica)
        for step in range(1, len(order)):
            candidate = order[(start + step) % len(order)]
            if candidate not in skip:
                return candidate
        return replica

    def reset(self):
        """No per-request state; present for striper interface parity."""


def make_striper(policy, n_replicas, seed=0, vnodes=64):
    """Factory keyed by policy name ("rr" or "hash")."""
    if policy == "rr":
        return RoundRobinStriper(n_replicas, seed=seed)
    if policy == "hash":
        return ConsistentHashStriper(n_replicas, seed=seed, vnodes=vnodes)
    raise InvalidArgumentError(f"unknown striping policy {policy!r}")
