"""Network cost model for the fleet layer: links and bandwidth-shared NICs.

Following the markkampe premise (SNIPPETS.md) this is *not* a packet
simulator: a transfer's cost is an analytic sum — per-hop wire latency
plus the time the message occupies the NIC (``bytes / bandwidth``) plus
whatever queueing delay earlier transfers already booked on that NIC.
Each :class:`Nic` is full duplex: the tx and rx directions keep
independent ``free_at`` cursors, so a response stream never queues behind
the request stream.

Accounting mirrors the load-warning style of the markkampe Gateway/Server
models: every transfer's queue delay is tallied, and a delay above the
warning threshold bumps ``load_warnings`` — the fleet report surfaces a
NIC that is becoming the bottleneck long before it saturates outright.

The ``nic.tx_drop`` fail-point models a lost frame on the transmit side:
the transfer is charged one retransmit timeout on top of its normal cost
(the message still arrives — fleet request accounting stays conserved).
"""

from __future__ import annotations

from ..errors import InvalidArgumentError
from ..trace import points

#: One direction's running tallies live under these keys.
TX = "tx"
RX = "rx"


class Link:
    """A fixed-latency hop (gateway uplink, top-of-rack cable)."""

    __slots__ = ("name", "latency_ns")

    def __init__(self, name, latency_us=5.0):
        if latency_us < 0:
            raise InvalidArgumentError("link latency cannot be negative")
        self.name = name
        self.latency_ns = int(latency_us * 1_000)

    def traverse(self):
        """Cost of one message crossing the link (ns)."""
        return self.latency_ns


class _Direction:
    """One NIC direction: a free-at cursor plus its tallies."""

    __slots__ = ("free_at_ns", "messages", "bytes", "busy_ns",
                 "queue_delay_ns", "load_warnings", "retransmits")

    def __init__(self):
        self.free_at_ns = 0
        self.messages = 0
        self.bytes = 0
        self.busy_ns = 0
        self.queue_delay_ns = 0
        self.load_warnings = 0
        self.retransmits = 0


class Nic:
    """A bandwidth-shared network interface (front- or back-side).

    ``transfer()`` returns the total delay a message experiences at this
    NIC: queueing behind earlier transfers, then ``bytes / bandwidth`` of
    occupancy.  The caller adds link latency separately, so a NIC shared
    by many flows (the gateway's front NIC) naturally becomes the queueing
    point while idle back NICs add only their occupancy.
    """

    def __init__(self, name, gbps=10.0, warn_queue_us=50.0,
                 failpoints=None, retransmit_us=50.0):
        if gbps <= 0:
            raise InvalidArgumentError("NIC bandwidth must be positive")
        self.name = name
        self.gbps = float(gbps)
        self.warn_queue_ns = int(warn_queue_us * 1_000)
        self.retransmit_ns = int(retransmit_us * 1_000)
        self.failpoints = failpoints
        self._dirs = {TX: _Direction(), RX: _Direction()}

    def occupancy_ns(self, nbytes):
        """Time ``nbytes`` occupies the wire at this NIC's bandwidth."""
        return int(round(nbytes * 8 / self.gbps))

    def transfer(self, direction, nbytes, at_ns):
        """Book one message; returns the delay it sees at this NIC (ns).

        Out-of-order ``at_ns`` on the response path is tolerated: the
        cursor only moves forward, so a late booking simply sees whatever
        queue the earlier ones built (sum-of-resources stays exact, the
        per-message queue split is approximate).
        """
        if nbytes <= 0:
            raise InvalidArgumentError("transfer needs a positive size")
        d = self._dirs[direction]
        start = max(at_ns, d.free_at_ns)
        queue_ns = start - at_ns
        occupy = self.occupancy_ns(nbytes)
        d.free_at_ns = start + occupy
        d.messages += 1
        d.bytes += nbytes
        d.busy_ns += occupy
        d.queue_delay_ns += queue_ns
        if queue_ns > self.warn_queue_ns:
            d.load_warnings += 1
        delay = queue_ns + occupy
        if (direction == TX and self.failpoints is not None
                and self.failpoints.fails("nic.tx_drop")):
            # Lost frame: the sender eats one retransmit timeout and the
            # message goes out again — delivered late, never dropped.
            d.retransmits += 1
            delay += self.retransmit_ns
        if points.enabled:
            if direction == TX:
                points.tracepoint("nic.tx", nic=self.name,
                                  nbytes=nbytes, queue_ns=queue_ns)
            else:
                points.tracepoint("nic.rx", nic=self.name,
                                  nbytes=nbytes, queue_ns=queue_ns)
        return delay

    def stats(self, direction=None):
        """Tallies for one direction, or both nested under ``tx``/``rx``."""
        if direction is not None:
            d = self._dirs[direction]
            return {
                "messages": d.messages,
                "bytes": d.bytes,
                "busy_ns": d.busy_ns,
                "queue_delay_ns": d.queue_delay_ns,
                "load_warnings": d.load_warnings,
                "retransmits": d.retransmits,
            }
        return {TX: self.stats(TX), RX: self.stats(RX)}

    def utilization(self, direction, horizon_ns):
        """Fraction of ``horizon_ns`` the direction spent transmitting."""
        if horizon_ns <= 0:
            return 0.0
        return self._dirs[direction].busy_ns / horizon_ns

    def __repr__(self):
        return (f"Nic({self.name!r}, {self.gbps} Gb/s, "
                f"tx_msgs={self._dirs[TX].messages}, "
                f"rx_msgs={self._dirs[RX].messages})")
