"""The fleet: N replica Machines, one gateway, one open-loop campaign.

This is the discrete-event layer the ROADMAP's first open item asks for,
built on the Virtuoso/markkampe trade: the *network* is an analytic
latency/bandwidth/resource model (sum the costs, take the longest path
for parallel work), while each replica stays the faithful per-page
simulator — so a fleet sweep finishes in seconds, yet the fork block and
the post-snapshot COW burst are still produced by the real paging model.

The event loop walks arrivals in fleet-time order.  Per arrival it pumps
the snapshot coordinator (waves whose grant has passed execute their
forks), stripes and admits the request, books the inbound NIC/link costs,
serves on the replica's own machine clock (slaved to fleet time), and
books the response path.  Per-replica virtual clocks advance
independently; fleet completion is the longest path over them.

Accounting is conservative by construction and checked by the verify
harness's fleet leg: every generated request is either completed or
dropped-at-gateway, with per-replica splits that sum to the totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.stats import percentile
from ..apps.traffic import ArrivalProcess
from ..errors import InvalidArgumentError
from ..kernel.failpoints import FailPoints
from ..trace import points
from .coordinator import SnapshotCoordinator
from .dlm import Dlm
from .gateway import Gateway
from .replica import Replica

#: The fleet-wide SLO percentiles (p999 == 99.9th).
FLEET_PERCENTILES = (50, 99, 99.9)


class _StampClock:
    """A settable stamp source for gateway-scope tracepoints."""

    __slots__ = ("now_ns",)

    def __init__(self):
        self.now_ns = 0


class _GatewayShim:
    """Duck-typed 'machine' so fleet events get their own Perfetto track."""

    class _Cost:
        __slots__ = ("clock",)

        def __init__(self):
            self.clock = _StampClock()

    def __init__(self):
        self.cost = self._Cost()
        self.smp = None


class FleetAggregator:
    """Per-replica latency samples merged into fleet-wide percentiles.

    Percentiles use the same nearest-rank rule as the paper's tables
    (``analysis.stats.percentile``); with tiny samples that rule is
    well-defined — p999 of ten samples is simply the maximum — which the
    unit tests pin down so small smoke runs stay meaningful.
    """

    def __init__(self, n_replicas):
        self._samples = [[] for _ in range(n_replicas)]
        self.dropped = 0

    def add(self, replica, latency_ns):
        self._samples[replica].append(latency_ns)

    def drop(self):
        self.dropped += 1

    @property
    def completed(self):
        return sum(len(s) for s in self._samples)

    def completed_by_replica(self):
        return [len(s) for s in self._samples]

    def merged(self):
        """All samples, fleet-wide (np.int64 array)."""
        flat = [v for s in self._samples for v in s]
        return np.asarray(flat, dtype=np.int64)

    def percentiles(self, points_=FLEET_PERCENTILES):
        """Fleet-wide ``{pct: latency_ns}`` (empty dict with no samples)."""
        merged = sorted(v for s in self._samples for v in s)
        if not merged:
            return {}
        return {p: percentile(merged, p) for p in points_}

    def replica_percentiles(self, replica, points_=FLEET_PERCENTILES):
        """One replica's ``{pct: latency_ns}`` (empty when it served none)."""
        samples = self._samples[replica]
        if not samples:
            return {}
        ordered = sorted(samples)
        return {p: percentile(ordered, p) for p in points_}


@dataclass
class FleetConfig:
    """Everything one fleet campaign needs; defaults suit a quick sweep."""

    replicas: int = 4
    policy: str = "hash"              # "hash" | "rr"
    strategy: str = "staggered"       # see coordinator.STRATEGIES
    stagger_k: int = 1
    use_odfork: bool = True
    rate_rps: float = 1e6
    n_requests: int = 50_000
    distribution: str = "poisson"     # "poisson" | "deterministic"
    write_ratio: float = 0.10
    data_mb: int = 64
    value_bytes: int = 1024
    phys_mb: int = None               # default: 4x data_mb per replica
    seed: int = 1234
    wave_interval_ms: float = 8.0
    n_waves: int = 2
    queue_limit: int = None           # per-replica; None = unbounded
    serialize_ms: float = 40.0        # snapshot child lifetime (fleet time)
    req_bytes: int = 128
    resp_bytes: int = 256
    front_gbps: float = 40.0
    back_gbps: float = 10.0
    hop_us: float = 5.0
    dlm_rtt_us: float = 20.0
    nic_retransmit_us: float = 50.0

    def __post_init__(self):
        if self.replicas < 1:
            raise InvalidArgumentError("fleet needs at least one replica")
        if self.n_requests < 1:
            raise InvalidArgumentError("campaign needs requests")
        if not 0 <= self.write_ratio <= 1:
            raise InvalidArgumentError("write ratio must be in [0, 1]")


@dataclass
class FleetResult:
    """One campaign's outcome: samples plus every layer's tallies."""

    config: FleetConfig
    aggregator: FleetAggregator
    generated: int
    duration_ns: int
    gateway_stats: dict
    nic_stats: dict
    dlm_stats: dict
    coordinator_stats: dict
    replica_info: list
    fork_blocks_ns: list = field(default_factory=list)

    @property
    def completed(self):
        return self.aggregator.completed

    @property
    def dropped(self):
        return self.gateway_stats["dropped"]

    def percentiles_ms(self, points_=FLEET_PERCENTILES):
        """Fleet-wide percentiles in milliseconds."""
        return {p: v / 1e6 for p, v in
                self.aggregator.percentiles(points_).items()}

    def conserved(self):
        """True iff no request was lost by the accounting itself."""
        by_replica = sum(self.aggregator.completed_by_replica())
        return (self.completed + self.dropped == self.generated
                and by_replica == self.completed)


class Fleet:
    """N replicas + gateway + DLM + snapshot coordinator, ready to run."""

    def __init__(self, config):
        self.config = config
        self.failpoints = FailPoints()
        self._shim = _GatewayShim()
        tracer = points.current()
        if tracer is not None:
            tracer.bind(self._shim)       # pid 0: the gateway track
        self.replicas = [
            Replica(i, data_mb=config.data_mb,
                    value_bytes=config.value_bytes,
                    phys_mb=config.phys_mb,
                    use_odfork=config.use_odfork,
                    serialize_ms=config.serialize_ms,
                    seed=config.seed)
            for i in range(config.replicas)
        ]
        self.gateway = Gateway(
            config.replicas, policy=config.policy, seed=config.seed,
            front_gbps=config.front_gbps, back_gbps=config.back_gbps,
            hop_us=config.hop_us, req_bytes=config.req_bytes,
            resp_bytes=config.resp_bytes, queue_limit=config.queue_limit,
            failpoints=self.failpoints,
            nic_retransmit_us=config.nic_retransmit_us)
        self.dlm = Dlm(acquire_rtt_us=config.dlm_rtt_us,
                       failpoints=self.failpoints)
        self.coordinator = SnapshotCoordinator(
            self, strategy=config.strategy, stagger_k=config.stagger_k,
            wave_interval_ms=config.wave_interval_ms,
            n_waves=config.n_waves)
        self.aggregator = FleetAggregator(config.replicas)
        self._ran = False

    # ---- tracing ---------------------------------------------------------

    def fleet_trace(self, ts_ns):
        """Prepare a gateway-scope tracepoint stamped at fleet time.

        Binds the gateway shim (so the event lands on the gateway's
        Perfetto track) and sets its stamp clock; returns True when the
        caller should emit.  The caller invokes ``points.tracepoint``
        itself with a literal name — the trace-registry rule verifies
        every emit site statically, so names never pass through here.
        """
        if not points.enabled:
            return False
        tracer = points.current()
        if tracer is None:
            return False
        tracer.bind(self._shim)
        self._shim.cost.clock.now_ns = ts_ns
        return True

    def trace_process_names(self):
        """Perfetto pid -> track name, in tracer bind order."""
        tracer = points.current()
        if tracer is None:
            return {}
        names = {}
        for pid, bound in enumerate(tracer.machines):
            if bound is self._shim:
                names[pid] = "gateway"
            else:
                for replica in self.replicas:
                    if bound is replica.machine:
                        names[pid] = replica.name
        return names

    # ---- the campaign ----------------------------------------------------

    def run(self):
        """Drive the whole open-loop campaign; returns a FleetResult."""
        if self._ran:
            raise InvalidArgumentError("a Fleet instance runs once")
        self._ran = True
        cfg = self.config
        arrivals = ArrivalProcess(cfg.rate_rps,
                                  distribution=cfg.distribution,
                                  seed=cfg.seed).arrivals(cfg.n_requests)
        rng = np.random.RandomState(cfg.seed + 1)
        keyspace = self.replicas[0].store.n_keys
        keys = rng.randint(0, keyspace, size=cfg.n_requests)
        writes = rng.random_sample(cfg.n_requests) < cfg.write_ratio

        gateway = self.gateway
        coordinator = self.coordinator
        aggregator = self.aggregator
        replicas = self.replicas
        trace_on = points.enabled
        last_completion = 0

        for i in range(cfg.n_requests):
            t = int(arrivals[i])
            coordinator.pump(t)
            draining = ()
            if coordinator.drains:
                draining = tuple(r.index for r in replicas if r.draining)
            reroutes_before = gateway.rerouted
            rid = gateway.route(int(keys[i]), draining=draining)
            replica = replicas[rid]
            qlen = replica.queue_len(t)
            if not gateway.admit(rid, qlen):
                aggregator.drop()
                continue
            if trace_on and self.fleet_trace(t):
                points.tracepoint(
                    "gateway.enqueue", replica=rid, qlen=qlen,
                    rerouted=gateway.rerouted > reroutes_before)
            t_at_replica = gateway.inbound(rid, t)
            start = max(t_at_replica, replica.ready_at_ns)
            service = replica.serve(int(keys[i]), bool(writes[i]), start)
            end = start + service
            if trace_on and self.fleet_trace(start):
                points.tracepoint("gateway.dispatch", dur_ns=start - t,
                                  replica=rid)
            completion = gateway.outbound(rid, end)
            aggregator.add(rid, completion - t)
            last_completion = max(last_completion, completion)

        coordinator.flush()
        duration = max([last_completion]
                       + [r.ready_at_ns for r in replicas])
        fork_blocks = [ns for r in replicas
                       for ns in r.store.fork_ns_samples]
        return FleetResult(
            config=cfg,
            aggregator=aggregator,
            generated=cfg.n_requests,
            duration_ns=duration,
            gateway_stats=gateway.stats(),
            nic_stats=gateway.nic_stats(),
            dlm_stats=self.dlm.stats(),
            coordinator_stats=coordinator.stats(),
            replica_info=[r.info() for r in replicas],
            fork_blocks_ns=fork_blocks,
        )

    def shutdown(self):
        """Reap snapshot children and exit every replica server."""
        for replica in self.replicas:
            replica.shutdown()


def run_fleet(config):
    """Build, run, and shut down one fleet; returns the FleetResult."""
    fleet = Fleet(config)
    try:
        return fleet.run()
    finally:
        fleet.shutdown()
