"""The protocol gateway: striping, admission, and the NIC pair per path.

Every client request enters through the gateway's **front NIC**, is
striped to a replica (consistent-hash or round-robin), crosses that
replica's **back NIC**, gets served, and returns the same way.  The
gateway is where fleet-wide admission decisions live:

* **queue overflow** — with a configured per-replica queue limit, a
  request that would exceed it is dropped at the gateway (accounted,
  never silently lost).  The ``gateway.queue_overflow`` fail-point
  injects the same drop path deterministically.
* **drain failover** — while the snapshot coordinator is draining a
  replica, its traffic is re-striped to the ring successor.

The gateway never advances a machine clock: it books analytic NIC and
link costs in fleet time, in the markkampe sum-of-resources style.
"""

from __future__ import annotations

from ..errors import InvalidArgumentError
from .net import Link, Nic, RX, TX
from .striper import make_striper


class Gateway:
    """Front door of the fleet: striper + front NIC + per-replica back NICs."""

    def __init__(self, n_replicas, policy="hash", seed=0,
                 front_gbps=40.0, back_gbps=10.0, hop_us=5.0,
                 req_bytes=128, resp_bytes=256, queue_limit=None,
                 failpoints=None, nic_retransmit_us=50.0):
        if req_bytes <= 0 or resp_bytes <= 0:
            raise InvalidArgumentError("message sizes must be positive")
        if queue_limit is not None and queue_limit < 1:
            raise InvalidArgumentError("queue limit must be >= 1 (or None)")
        self.n_replicas = n_replicas
        self.striper = make_striper(policy, n_replicas, seed=seed)
        self.front_nic = Nic("front", gbps=front_gbps,
                             failpoints=failpoints,
                             retransmit_us=nic_retransmit_us)
        self.back_nics = [Nic(f"back{i}", gbps=back_gbps,
                              failpoints=failpoints,
                              retransmit_us=nic_retransmit_us)
                          for i in range(n_replicas)]
        self.uplink = Link("uplink", latency_us=hop_us)
        self.req_bytes = req_bytes
        self.resp_bytes = resp_bytes
        self.queue_limit = queue_limit
        self.failpoints = failpoints
        self.accepted = 0
        self.dropped = 0
        self.rerouted = 0
        self.drops_by_replica = [0] * n_replicas

    # ---- admission & routing ---------------------------------------------

    def route(self, key, draining=()):
        """Replica index for ``key``; drained replicas fail over."""
        replica = self.striper.route(key)
        if replica in draining:
            target = self.striper.successor(replica, skip=draining)
            if target != replica:
                self.rerouted += 1
                replica = target
        return replica

    def admit(self, replica, queue_len):
        """True when the request may proceed; False records a drop."""
        overflow = (self.queue_limit is not None
                    and queue_len >= self.queue_limit)
        if self.failpoints is not None and self.failpoints.fails(
                "gateway.queue_overflow"):
            overflow = True
        if overflow:
            self.dropped += 1
            self.drops_by_replica[replica] += 1
            return False
        self.accepted += 1
        return True

    # ---- analytic transfer paths -----------------------------------------

    def inbound(self, replica, at_ns):
        """Client -> gateway -> replica; returns arrival time at the server."""
        t = at_ns + self.front_nic.transfer(RX, self.req_bytes, at_ns)
        t += self.uplink.traverse()
        t += self.back_nics[replica].transfer(RX, self.req_bytes, t)
        t += self.uplink.traverse()
        return t

    def outbound(self, replica, at_ns):
        """Replica -> gateway -> client; returns delivery time."""
        t = at_ns + self.back_nics[replica].transfer(TX, self.resp_bytes,
                                                     at_ns)
        t += self.uplink.traverse()
        t += self.front_nic.transfer(TX, self.resp_bytes, t)
        t += self.uplink.traverse()
        return t

    # ---- reporting --------------------------------------------------------

    def nic_stats(self):
        """Front + per-replica back NIC tallies."""
        out = {"front": self.front_nic.stats()}
        for nic in self.back_nics:
            out[nic.name] = nic.stats()
        return out

    def stats(self):
        return {
            "policy": self.striper.policy,
            "accepted": self.accepted,
            "dropped": self.dropped,
            "rerouted": self.rerouted,
        }
