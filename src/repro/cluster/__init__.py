"""Distributed fleet layer: replicas behind a gateway, rolling snapshots.

``python -m repro.cluster`` runs open-loop campaigns over a grid of
(snapshot-wave strategy x fork flavour) and reports fleet-wide
p50/p99/p999 SLO latencies — the paper's Redis tail-latency story
(Tables 4/5) reproduced at cluster scale, where scheduling strategy
becomes an axis no single-machine benchmark can expose.
"""

from .coordinator import STRATEGIES, SnapshotCoordinator
from .dlm import Dlm
from .fleet import (FLEET_PERCENTILES, Fleet, FleetAggregator, FleetConfig,
                    FleetResult, run_fleet)
from .gateway import Gateway
from .net import Link, Nic, RX, TX
from .replica import Replica
from .striper import ConsistentHashStriper, RoundRobinStriper, make_striper

__all__ = [
    "STRATEGIES", "SnapshotCoordinator", "Dlm", "FLEET_PERCENTILES",
    "Fleet", "FleetAggregator", "FleetConfig", "FleetResult", "run_fleet",
    "Gateway", "Link", "Nic", "RX", "TX", "Replica",
    "ConsistentHashStriper", "RoundRobinStriper", "make_striper",
]
