"""Rolling-snapshot scheduling: which replicas fork when, and who waits.

The paper shows (Table 4/5) that a *single* Redis server's snapshot fork
is either a multi-millisecond outage (classic fork) or a ~100 us blip
(odfork).  Fleet-wide, a second axis appears that no single-machine
benchmark can expose: the **wave strategy** — how snapshot epochs roll
across replicas:

``simultaneous``
    Every replica forks in the same epoch.  Total snapshot wall time is
    one block (longest path), but the whole fleet is unavailable at once:
    with classic fork this is the worst case for tail latency.

``staggered`` (by ``k``)
    The wave is split into sub-waves of ``k`` replicas; each sub-wave
    acquires the snapshot-epoch DLM lock in FIFO order, so at most ``k``
    replicas are blocked at any instant and the rest absorb traffic.

``drain``
    Staggered, plus the gateway fails traffic for a granted replica over
    to its ring successor until the fork completes — the block never lands
    on client requests at all, at the price of doubled load next door.

Epochs are serialized by the :class:`~repro.cluster.dlm.Dlm`: a sub-wave
holds ``snapshot-epoch`` from grant until its slowest replica's fork
returns (the longest-path rule), and the next sub-wave's grant chains
behind the release.  Once granted, a sub-wave's forks run at the earliest
instant each server frees — ahead of requests that arrive after the
grant, matching how BGSAVE fires at an event-loop boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import InvalidArgumentError
from ..trace import points

STRATEGIES = ("simultaneous", "staggered", "drain")

EPOCH_LOCK = "snapshot-epoch"


@dataclass
class SubWave:
    """One DLM-serialized batch of replica snapshots."""

    wave: int
    index: int                    # position within the wave
    sched_ns: int                 # earliest fleet time it may request
    replicas: list
    grant_ns: int = None
    blocks_ns: dict = field(default_factory=dict)

    @property
    def owner(self):
        return f"wave{self.wave}.{self.index}"


class SnapshotCoordinator:
    """Turns a wave schedule into DLM-serialized per-replica forks."""

    def __init__(self, fleet, strategy="staggered", stagger_k=1,
                 wave_interval_ms=8.0, n_waves=2):
        if strategy not in STRATEGIES:
            raise InvalidArgumentError(
                f"strategy must be one of {STRATEGIES}, got {strategy!r}")
        if stagger_k < 1:
            raise InvalidArgumentError("stagger_k must be >= 1")
        if wave_interval_ms <= 0 or n_waves < 0:
            raise InvalidArgumentError("bad wave schedule")
        self.fleet = fleet
        self.strategy = strategy
        self.stagger_k = stagger_k
        self.wave_interval_ns = int(wave_interval_ms * 1e6)
        self.n_waves = n_waves
        self._pending = self._build_schedule()
        self._active = None
        self._last_release_ns = 0
        self.waves_completed = 0
        self.subwaves_completed = 0
        self.subwaves_skipped = 0
        self.max_block_ns = 0

    def _build_schedule(self):
        """The sub-wave queue, in the order the DLM will serve it."""
        n = len(self.fleet.replicas)
        if self.strategy == "simultaneous":
            chunk = n
        else:
            chunk = self.stagger_k
        pending = []
        for wave in range(self.n_waves):
            sched = (wave + 1) * self.wave_interval_ns
            ids = list(range(n))
            subs = [ids[i:i + chunk] for i in range(0, n, chunk)]
            for index, replicas in enumerate(subs):
                pending.append(SubWave(wave, index, sched, replicas))
        return pending

    @property
    def drains(self):
        """True when granted replicas should shed traffic to a neighbour."""
        return self.strategy == "drain"

    def pump(self, now_ns):
        """Advance the snapshot machinery up to fleet time ``now_ns``.

        Starts any sub-wave whose schedule has arrived (chaining its DLM
        grant behind the previous release) and executes the forks of the
        active sub-wave once its grant time has passed.  Called by the
        fleet loop before each arrival and once more at end of run with
        ``now_ns`` beyond every schedule point to flush stragglers.
        """
        while True:
            if self._active is None:
                if not self._pending or self._pending[0].sched_ns > now_ns:
                    return
                sub = self._pending.pop(0)
                request = max(sub.sched_ns, self._last_release_ns)
                grant = self.fleet.dlm.acquire(EPOCH_LOCK, sub.owner,
                                               request)
                if grant is None:
                    # Injected lock-master timeout: skip this epoch; the
                    # replicas simply snapshot at the next scheduled wave.
                    self.subwaves_skipped += 1
                    continue
                sub.grant_ns = grant
                self._active = sub
                if self.drains:
                    for r in sub.replicas:
                        self.fleet.replicas[r].draining = True
                if self.fleet.fleet_trace(grant):
                    points.tracepoint("snap.wave_start",
                                      wave=sub.wave, sub=sub.index,
                                      n_replicas=len(sub.replicas),
                                      strategy=self.strategy)
            sub = self._active
            if sub.grant_ns > now_ns:
                return
            end_max = sub.grant_ns
            for r in sub.replicas:
                replica = self.fleet.replicas[r]
                start = max(sub.grant_ns, replica.ready_at_ns)
                block = replica.snapshot(start)
                sub.blocks_ns[r] = block
                end_max = max(end_max, start + block)
                self.max_block_ns = max(self.max_block_ns, block)
            self.fleet.dlm.release(EPOCH_LOCK, sub.owner, end_max)
            self._last_release_ns = end_max
            if self.drains:
                for r in sub.replicas:
                    self.fleet.replicas[r].draining = False
            if self.fleet.fleet_trace(end_max):
                points.tracepoint("snap.wave_end",
                                  dur_ns=end_max - sub.grant_ns,
                                  wave=sub.wave, sub=sub.index,
                                  max_block_ns=max(sub.blocks_ns.values(),
                                                   default=0))
            self.subwaves_completed += 1
            self._active = None
            self.waves_completed = self._count_waves()
            # Loop: the next sub-wave may already be due at ``now_ns``.

    def _count_waves(self):
        """Waves fully dealt with so far (every sub-wave executed/skipped)."""
        done = self.subwaves_completed + self.subwaves_skipped
        n = len(self.fleet.replicas)
        chunk = n if self.strategy == "simultaneous" else self.stagger_k
        per_wave = (n + chunk - 1) // chunk
        return done // per_wave

    def flush(self):
        """Execute everything still scheduled (end of campaign)."""
        horizon = (self.n_waves + 1) * self.wave_interval_ns
        last = self._last_release_ns + self.wave_interval_ns
        self.pump(max(horizon, last) * 2 + 1)
        self.waves_completed = self._count_waves()

    def stats(self):
        return {
            "strategy": self.strategy,
            "waves_completed": self._count_waves(),
            "subwaves_completed": self.subwaves_completed,
            "subwaves_skipped": self.subwaves_skipped,
            "max_block_ns": self.max_block_ns,
        }
