"""CLI: ``python -m repro.cluster --replicas 8 --rate 1e6 --smoke``.

Runs one open-loop campaign per (snapshot-wave strategy x fork flavour)
over the same arrival schedule and prints fleet-wide p50/p99/p999 SLO
latencies, snapshot-wave accounting, and NIC/DLM load.  The run fails
(exit 2) if the fleet headline ever inverts: staggered odfork waves must
beat simultaneous classic-fork waves on p999 — that is the paper's Redis
story at fleet scale, and CI asserts it on every push.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time

from ..analysis.tables import render_table
from .coordinator import STRATEGIES
from .fleet import FLEET_PERCENTILES, Fleet, FleetConfig

#: The acceptance pair: the strategy/flavour the fleet should run, and
#: the one it should beat.
HEADLINE = ("staggered", "odfork")
BASELINE = ("simultaneous", "fork")


def run_grid(base, strategies, flavors, trace=False):
    """One campaign per (strategy, flavour); returns [(s, f, result)]."""
    results = []
    for strategy in strategies:
        for flavor in flavors:
            config = dataclasses.replace(
                base, strategy=strategy, use_odfork=(flavor == "odfork"))
            fleet = Fleet(config)
            try:
                result = fleet.run()
            finally:
                fleet.shutdown()
            results.append((strategy, flavor, result,
                            fleet.trace_process_names() if trace else {}))
    return results


def grid_rows(results):
    """Render-ready rows: one per (strategy, flavour) config."""
    rows = []
    for strategy, flavor, result, _ in results:
        pct = result.percentiles_ms(FLEET_PERCENTILES)
        coord = result.coordinator_stats
        rows.append([
            f"{strategy}/{flavor}", strategy, flavor,
            round(pct.get(50, 0.0), 4),
            round(pct.get(99, 0.0), 4),
            round(pct.get(99.9, 0.0), 4),
            round(coord["max_block_ns"] / 1e6, 4),
            result.coordinator_stats["waves_completed"],
            result.dropped,
            result.gateway_stats["rerouted"],
        ])
    return rows


HEADERS = ["config", "strategy", "flavor", "p50_ms", "p99_ms", "p999_ms",
           "max_block_ms", "waves", "drops", "rerouted"]


def headline_check(results):
    """(ok, detail): staggered-odfork p999 strictly below simultaneous-fork."""
    p999 = {}
    for strategy, flavor, result, _ in results:
        pct = result.percentiles_ms((99.9,))
        if pct:
            p999[(strategy, flavor)] = pct[99.9]
    if HEADLINE not in p999 or BASELINE not in p999:
        return True, "headline pair not in this grid; check skipped"
    better, worse = p999[HEADLINE], p999[BASELINE]
    ok = better < worse
    detail = (f"p999 staggered/odfork {better:.4f} ms "
              f"{'<' if ok else '>='} simultaneous/fork {worse:.4f} ms")
    return ok, detail


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="Fleet-wide rolling-snapshot SLO sweep "
                    "(strategy x fork flavour).")
    parser.add_argument("--replicas", type=int, default=4)
    parser.add_argument("--rate", type=float, default=1e6,
                        help="fleet-wide offered load, requests/s "
                             "(default 1e6)")
    parser.add_argument("--requests", type=int, default=None,
                        help="arrivals per campaign (default: rate-scaled)")
    parser.add_argument("--data-mb", type=int, default=None,
                        help="dataset per replica (default 256; smoke 48)")
    parser.add_argument("--policy", choices=("hash", "rr"), default="hash")
    parser.add_argument("--strategies", nargs="*", default=None,
                        choices=STRATEGIES,
                        help=f"wave strategies (default: all of "
                             f"{STRATEGIES})")
    parser.add_argument("--flavors", nargs="*", default=("fork", "odfork"),
                        choices=("fork", "odfork"))
    parser.add_argument("--stagger-k", type=int, default=1,
                        help="replicas per staggered sub-wave (default 1)")
    parser.add_argument("--waves", type=int, default=2)
    parser.add_argument("--wave-interval-ms", type=float, default=None,
                        help="fleet time between waves (default: spread "
                             "across the campaign)")
    parser.add_argument("--write-ratio", type=float, default=0.10)
    parser.add_argument("--queue-limit", type=int, default=None)
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--smoke", action="store_true",
                        help="small dataset + short campaign (CI)")
    parser.add_argument("--json", metavar="PATH",
                        help="dump the grid results as JSON")
    parser.add_argument("--trace", metavar="PATH",
                        help="record fleet tracepoints and export "
                             "Chrome-trace JSON (gateway + one process "
                             "track per replica)")
    args = parser.parse_args(argv)

    data_mb = args.data_mb
    n_requests = args.requests
    if args.smoke:
        data_mb = data_mb or 48
        n_requests = n_requests or 24_000
    else:
        data_mb = data_mb or 256
        n_requests = n_requests or 200_000
    # Default wave spacing: both waves land while arrivals are flowing.
    campaign_ms = n_requests / args.rate * 1e3
    wave_interval_ms = args.wave_interval_ms
    if wave_interval_ms is None:
        wave_interval_ms = campaign_ms / (args.waves + 1)

    base = FleetConfig(
        replicas=args.replicas, policy=args.policy,
        rate_rps=args.rate, n_requests=n_requests,
        write_ratio=args.write_ratio, data_mb=data_mb,
        stagger_k=args.stagger_k, seed=args.seed,
        wave_interval_ms=wave_interval_ms, n_waves=args.waves,
        queue_limit=args.queue_limit)
    strategies = args.strategies or list(STRATEGIES)

    tracer = None
    process_names = {}
    if args.trace:
        from ..trace import points as trace_points
        from ..trace.tracer import Tracer
        tracer = Tracer()
        trace_points.attach(tracer)

    started = time.time()
    try:
        results = run_grid(base, strategies, args.flavors,
                           trace=tracer is not None)
    finally:
        if tracer is not None:
            from ..trace import points as trace_points
            trace_points.detach()
    if tracer is not None:
        # Every campaign binds gateway + replicas in the same order, so
        # later grid cells only extend the pid -> name map.
        for *_rest, names in results:
            process_names.update(names)

    rows = grid_rows(results)
    print()
    print(render_table(
        HEADERS, rows,
        title=f"[fleet] {args.replicas} replicas @ "
              f"{args.rate:.0f} req/s, {n_requests} arrivals, "
              f"{args.waves} snapshot wave(s) "
              f"({time.time() - started:.1f}s host time)"))
    for strategy, flavor, result, _ in results:
        assert result.conserved(), (
            f"fleet accounting broken for {strategy}/{flavor}")

    ok, detail = headline_check(results)
    print(f"\n  headline: {detail}")

    if tracer is not None:
        from ..trace.export import write_chrome_trace
        events = tracer.drain()
        n = write_chrome_trace(events, args.trace, label="fleet",
                               process_names=process_names)
        print(f"  wrote {n} trace entries to {args.trace} "
              f"({tracer.emitted} emitted, {tracer.dropped} dropped)")

    if args.json:
        payload = []
        for strategy, flavor, result, _ in results:
            payload.append({
                "strategy": strategy, "flavor": flavor,
                "percentiles_ms": {str(p): v for p, v in
                                   result.percentiles_ms().items()},
                "generated": result.generated,
                "completed": result.completed,
                "dropped": result.dropped,
                "gateway": result.gateway_stats,
                "dlm": result.dlm_stats,
                "coordinator": result.coordinator_stats,
            })
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"  wrote {len(payload)} fleet results to {args.json}")

    return 0 if ok else 2


if __name__ == "__main__":
    sys.exit(main())
