"""Unmapping and address-space teardown.

``zap_range`` is the shared engine behind ``munmap``, ``mremap`` shrinking,
and process exit.  Its interaction with shared PTE tables implements §3.3
of the paper:

* a shared table whose whole 2 MiB slot is being unmapped is released with
  a bare refcount decrement — the entries must be *preserved* because other
  processes in the fork lineage still translate through them;
* a shared table that is only partially unmapped is first copied
  (copy-on-write applied to the unmap operation itself), and the copy is
  then zapped like any dedicated table.

Teardown cost is a first-class part of the model: the paper's fuzzing
workloads are bounded by fork + child-exit, and the per-entry
``zap_pte_range`` work (refcount decrements, free batching) is what makes
classic fork's exits expensive while odfork children exit in microseconds.
The shared-table release is vectorised at PMD-table granularity on the
exit path (``account_rss=False``), mirroring how cheap the real operation
is: one refcount decrement per table, no per-page work.
"""

from __future__ import annotations
from ..sancheck.annotations import acquires, must_hold, tlb_deferred

import numpy as np

from ..errors import InvalidArgumentError, KernelBug
from ..mem.page import HUGE_PAGE_ORDER, PAGE_SIZE
from ..paging.entries import (
    BIT_PS,
    ENTRY_NONE,
    entry_pfn,
    is_huge,
    is_present,
    present_mask,
)
from ..paging.table import LEVEL_PMD, LEVEL_SPAN, PMD_REGION_SIZE
from .fork import iter_parent_pmd_tables
from .rmap import rmap_remove_bulk
from .tableops import (
    copy_shared_pte_table,
    count_file_pages,
    drop_table_sharer,
    free_anon_frames,
    put_pte_table,
    table_present_pfns,
)


@must_hold("mmap_lock")
@acquires("ptl")
def zap_range(kernel, mm, start, end, account_rss=True):
    """Clear all translations for ``[start, end)`` and release pages."""
    if start % PAGE_SIZE or end % PAGE_SIZE:
        raise InvalidArgumentError("zap range must be page-aligned")
    for pmd_table, pmd_index, slot_start, lo, hi in mm.pmd_slots(start, end):
        entry = pmd_table.entries[pmd_index]
        if not is_present(entry):
            continue
        if is_huge(entry):
            whole_slot = lo == slot_start and hi == slot_start + PMD_REGION_SIZE
            vma = mm.vmas.find(slot_start)
            is_thp = vma is None or not vma.is_hugetlb
            if not whole_slot and is_thp:
                # A partially unmapped THP region: split back to 4 KiB
                # pages, then fall through to the normal leaf zap.
                from .thp import split_huge_entry
                split_huge_entry(kernel, mm, pmd_table, pmd_index, slot_start)
                entry = pmd_table.entries[pmd_index]
            else:
                _zap_huge(kernel, mm, pmd_table, pmd_index, slot_start, lo,
                          hi, account_rss)
                continue

        leaf = mm.resolve(int(entry_pfn(entry)))
        whole_slot = lo == slot_start and hi == slot_start + PMD_REGION_SIZE
        if kernel.pages.pt_ref(leaf.pfn) > 1:
            if whole_slot:
                # §3.3 fast path: drop our reference, preserve the entries
                # for the other sharers.
                pmd_table.clear(pmd_index)
                mm.nr_pte_tables -= 1
                put_pte_table(kernel, mm, leaf, account_rss=account_rss)
                continue
            # §3.3 slow path: other VMAs of this process still live under
            # this table, so take a private copy before clearing entries.
            leaf = copy_shared_pte_table(kernel, mm, pmd_table, pmd_index, slot_start)

        _zap_dedicated_entries(kernel, mm, leaf, slot_start, lo, hi, account_rss)
        if leaf.is_empty():
            pmd_table.clear(pmd_index)
            mm.nr_pte_tables -= 1
            put_pte_table(kernel, mm, leaf, account_rss=False)

    # Freed frames must not stay reachable through any CPU's TLB.
    kernel.tlbs.shootdown_mm(mm, start, end)


@must_hold("mmap_lock", "ptl")
@tlb_deferred("zap_range shoots the whole range down after the walk")
def _zap_huge(kernel, mm, pmd_table, pmd_index, slot_start, lo, hi,
              account_rss=True):
    if lo != slot_start or hi != slot_start + PMD_REGION_SIZE:
        raise InvalidArgumentError("hugetlb mappings unmap at 2 MiB granularity")
    head = int(entry_pfn(pmd_table.entries[pmd_index]))
    pmd_table.clear(pmd_index)
    if account_rss:
        mm.sub_rss(1 << HUGE_PAGE_ORDER, file_backed=False)
    kernel.cost.charge_zap_entries(1)
    if kernel.pages.ref_dec(head) == 0:
        kernel.free_huge_frame(head)


@must_hold("mmap_lock", "ptl")
@tlb_deferred("zap_range shoots the whole range down after the walk")
def _zap_dedicated_entries(kernel, mm, leaf, slot_start, lo, hi, account_rss=True):
    lo_index = (lo - slot_start) // PAGE_SIZE
    hi_index = (hi - slot_start) // PAGE_SIZE
    indices, pfns = table_present_pfns(leaf, lo_index, hi_index)
    if len(pfns):
        if account_rss:
            n_file = count_file_pages(kernel, pfns)
            mm.sub_rss(n_file, file_backed=True)
            mm.sub_rss(len(pfns) - n_file, file_backed=False)
        rmap_remove_bulk(kernel, pfns, leaf.pfn)
        zeroed = kernel.pages.ref_dec_bulk(pfns)
        free_anon_frames(kernel, zeroed)
        kernel.cost.charge_zap_entries(len(pfns))
    kernel.swap_put_entries(leaf.entries[lo_index:hi_index])
    # sancheck: ignore[clock-charge] -- with no entry present this store clears only swap/absent slots, below the per-present-entry zap model's resolution
    leaf.entries[lo_index:hi_index] = ENTRY_NONE
    kernel.note_table_write(leaf, hi_index - lo_index)


@must_hold("mmap_lock", "ptl")
@tlb_deferred("exit_mmap shoots the dying mm down once after the walk")
def _exit_release_pmd_table(kernel, mm, pmd_table, table_base):
    """Release every mapping a PMD table reaches, vectorised.

    Only safe on the exit path: the whole address space is going away, so
    per-table RSS accounting is unnecessary.  Shared leaf tables are
    released with one bulk refcount decrement; tables whose count reaches
    zero, dedicated tables, and huge entries fall back to the per-slot
    logic.
    """
    entries = pmd_table.entries
    present = present_mask(entries)
    if not present.any():
        return
    huge = (entries & BIT_PS) != np.uint64(0)
    leaf_positions = np.nonzero(present & ~huge)[0]
    if len(leaf_positions):
        pfns = entry_pfn(entries[leaf_positions]).astype(np.int64)
        refs = kernel.pages.pt_refcount[pfns]
        surviving = refs > 1
        if surviving.any():
            drop_positions = leaf_positions[surviving]
            if kernel.pt_sharers is not None:
                for leaf_pfn in pfns[surviving].tolist():
                    drop_table_sharer(kernel, leaf_pfn, mm)
            kernel.pages.pt_refcount[pfns[surviving]] -= 1
            entries[drop_positions] = ENTRY_NONE
            mm.nr_pte_tables -= len(drop_positions)
            kernel.cost.charge_table_put(len(drop_positions))
        for position in leaf_positions[~surviving].tolist():
            leaf = mm.resolve(int(entry_pfn(entries[position])))
            slot_start = table_base + position * LEVEL_SPAN[LEVEL_PMD]
            _zap_dedicated_entries(kernel, mm, leaf, slot_start, slot_start,
                                   slot_start + PMD_REGION_SIZE, account_rss=False)
            # sancheck: ignore[clock-charge] -- the per-slot helpers above charge zap/table costs for every populated table; the PMD-entry clear itself is below resolution
            entries[position] = ENTRY_NONE
            mm.nr_pte_tables -= 1
            put_pte_table(kernel, mm, leaf, account_rss=False)
    for position in np.nonzero(present & huge)[0].tolist():
        slot_start = table_base + position * LEVEL_SPAN[LEVEL_PMD]
        _zap_huge(kernel, mm, pmd_table, int(position), slot_start, slot_start,
                  slot_start + PMD_REGION_SIZE, account_rss=False)


@acquires("mmap_lock", "ptl")
def exit_mmap(kernel, mm):
    """Tear down an entire address space on process exit."""
    if mm.dead:
        raise KernelBug("exit_mmap on a dead mm")
    from .fastpath import fast_exit_release_pmd_table, fast_path_ok
    use_fast = fast_path_ok(kernel)
    for pmd_table, table_base in iter_parent_pmd_tables(mm):
        if use_fast and fast_exit_release_pmd_table(kernel, mm, pmd_table,
                                                    table_base):
            continue
        _exit_release_pmd_table(kernel, mm, pmd_table, table_base)
    for vma in list(mm.vmas):
        mm.remove_vma(vma)
    # All leaf tables are gone; release the upper levels.
    uppers = mm.upper_tables()
    for table in uppers:
        if table.level == LEVEL_PMD and not table.is_empty():
            raise KernelBug("leaf table leaked past exit_mmap")
        mm.free_table_frame(table)
    kernel.cost.charge_table_free(len(uppers))
    mm.free_table_frame(mm.pgd)
    kernel.cost.charge_table_free()
    mm.nr_upper_tables = 0
    mm.rss_anon_pages = 0
    mm.rss_file_pages = 0
    mm.dead = True
    if mm.nr_pte_tables != 0:
        raise KernelBug(f"PTE-table accounting leak at exit: {mm.nr_pte_tables}")
    kernel.tlbs.shootdown_mm(mm, charge=False)
