"""The page cache: physical pages backing file contents.

Every file-backed page lives here exactly once, keyed by ``(inode, page
index)``.  The cache holds one reference on each cached page; page tables
that map the page hold additional references (the same ownership rule the
rest of the model uses: one reference per PageTable object per present
entry).  A page can therefore never be freed while mapped, and dropping a
file's cache only frees pages no table references.

This is what makes §3.7 of the paper work unchanged under On-demand-fork:
the fault handler forwards file-backed faults here, and physical-page
lifetime is the cache's business, not the PTE-table refcount's.
"""

from __future__ import annotations

from ..errors import KernelBug
from ..mem.page import PAGE_SIZE, PG_DIRTY, PG_FILE


class PageCache:
    """(inode, page index) -> pfn mapping with cache-held references."""

    def __init__(self, allocator, pages, phys, failpoints=None):
        self._allocator = allocator
        self._pages = pages
        self._phys = phys
        self._failpoints = failpoints
        self._cache = {}
        self.lookups = 0
        self.fills = 0

    def __len__(self):
        return len(self._cache)

    def lookup(self, file, page_index):
        """Return the cached pfn, or ``None`` on a cache miss."""
        self.lookups += 1
        return self._cache.get((file.inode, page_index))

    def get_page(self, file, page_index):
        """Return the pfn for a file page, filling the cache on miss.

        The fill copies the file's initial contents into a fresh frame —
        the model's "read from backing store" — and the cache takes its
        reference.
        """
        key = (file.inode, page_index)
        pfn = self._cache.get(key)
        self.lookups += 1
        if pfn is not None:
            return pfn
        if self._failpoints is not None:
            self._failpoints.hit("pagecache.fill")
        pfn = int(self._allocator.alloc(0))
        self._pages.on_alloc(pfn, PG_FILE)
        data = file.initial_page(page_index)
        if any(data):
            self._phys.write(pfn, 0, data)
        self._cache[key] = pfn
        self.fills += 1
        return pfn

    def mark_dirty(self, pfn):
        """Flag a cached page dirty (blocks clean reclaim)."""
        self._pages.set_flags(pfn, PG_DIRTY)

    def read(self, file, offset, length):
        """Read bytes through the cache (the model's ``read(2)``)."""
        out = bytearray()
        pos = offset
        end = min(offset + length, file.size)
        while pos < end:
            page_index = pos // PAGE_SIZE
            page_off = pos % PAGE_SIZE
            take = min(PAGE_SIZE - page_off, end - pos)
            pfn = self.get_page(file, page_index)
            out += self._phys.read(pfn, page_off, take)
            pos += take
        return bytes(out)

    def write(self, file, offset, data):
        """Write bytes through the cache (the model's ``write(2)``)."""
        pos = 0
        while pos < len(data):
            abs_off = offset + pos
            page_index = abs_off // PAGE_SIZE
            page_off = abs_off % PAGE_SIZE
            take = min(PAGE_SIZE - page_off, len(data) - pos)
            pfn = self.get_page(file, page_index)
            self._phys.write(pfn, page_off, data[pos:pos + take])
            self.mark_dirty(pfn)
            pos += take
        file.size = max(file.size, offset + len(data))

    def drop_file(self, file):
        """Evict a file's pages, freeing those with no other references."""
        keys = [k for k in self._cache if k[0] == file.inode]
        for key in keys:
            pfn = self._cache.pop(key)
            new_count = self._pages.ref_dec(pfn)
            if new_count == 0:
                self._pages.on_free(pfn)
                self._phys.zero(pfn)
                self._allocator.free(pfn, 0)  # sancheck: ignore[clock-charge] -- file eviction rides the unlink/close syscall cost; cache drops are below per-op resolution

    def reclaim_clean(self, target_frames):
        """Drop clean, unmapped pages under memory pressure.

        Returns the number of frames actually freed; the OOM path calls
        this before killing anyone.
        """
        freed = 0
        for key in list(self._cache):
            if freed >= target_frames:
                break
            pfn = self._cache[key]
            if self._pages.get_ref(pfn) != 1:
                continue  # mapped somewhere
            if self._pages.has_flags(pfn, PG_DIRTY):
                continue  # would need writeback; keep it simple and skip
            del self._cache[key]
            if self._pages.ref_dec(pfn) != 0:
                raise KernelBug("cache ref accounting broken during reclaim")
            self._pages.on_free(pfn)
            self._phys.zero(pfn)
            # sancheck: ignore[clock-charge] -- background eviction is charged by the reclaim scan loops (charge_lru_scan), not per freed frame
            self._allocator.free(pfn, 0)
            freed += 1
        return freed
