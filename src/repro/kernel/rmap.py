"""Anonymous reverse mapping (rmap).

To evict a frame, reclaim must find and clear *every* PTE that maps it.
The kernel records, per anonymous order-0 frame, which leaf tables map
it and how many of that table's entries do (the per-page ``mapcount``).
Back-pointers are added at fault time, fork time (classic fork's table
copies), table-COW time, and THP splits, and dropped wherever entries
are zapped — the auditor recomputes the whole structure from the live
page tables after every test.

The interesting case is the paper's: a victim mapped through a PTE
table *shared* by on-demand-fork.  :func:`try_to_unmap` does not
unshare — one back-pointer covers every sharer, and editing the shared
table in place unmaps the page from all of them at once (each sharer's
RSS shrinks and its TLB is flushed via the ``pt_sharers`` registry).
The in-place edit is the cheap side of the unshare-or-edit decision;
each shared table touched is counted in ``shared_table_unmaps`` and
charged to the cost model so benchmarks see the price.

File-backed pages never enter the rmap: the page cache owns them and
clean-cache reclaim handles their eviction separately.
"""

from __future__ import annotations
from ..sancheck.annotations import charge_deferred, must_hold

import numpy as np

from ..errors import KernelBug
from ..mem.page import PG_ANON, PG_COMPOUND_HEAD, PG_COMPOUND_TAIL, PG_FILE
from ..paging.entries import (
    BIT_ACCESSED,
    entry_pfn,
    make_swap_entry,
    present_mask,
)

_INELIGIBLE = np.uint16(PG_FILE | PG_COMPOUND_HEAD | PG_COMPOUND_TAIL)
_ANON = np.uint16(PG_ANON)


class AnonRmap:
    """pfn -> {leaf table pfn: number of entries mapping it}."""

    def __init__(self):
        self._tables = {}

    def mapcount(self, pfn):
        d = self._tables.get(pfn)
        return sum(d.values()) if d else 0

    def tables_for(self, pfn):
        """Leaf-table pfns mapping ``pfn`` (a copy, safe to mutate under)."""
        return list(self._tables.get(pfn, ()))

    def table_refs(self, pfn, leaf_pfn):
        d = self._tables.get(pfn)
        return d.get(leaf_pfn, 0) if d else 0

    def add(self, pfn, leaf_pfn, n=1):
        """Record ``n`` more mappings; returns True on the 0 -> mapped edge."""
        d = self._tables.get(pfn)
        if d is None:
            d = self._tables[pfn] = {}
            first = True
        else:
            first = False
        d[leaf_pfn] = d.get(leaf_pfn, 0) + n
        return first

    def remove(self, pfn, leaf_pfn, n=1):
        """Drop ``n`` mappings; returns True on the mapped -> 0 edge."""
        d = self._tables.get(pfn)
        if d is None or leaf_pfn not in d:
            raise KernelBug(f"rmap: pfn {pfn} has no entry for table {leaf_pfn}")
        remaining = d[leaf_pfn] - n
        if remaining < 0:
            raise KernelBug(f"rmap underflow: pfn {pfn} table {leaf_pfn}")
        if remaining:
            d[leaf_pfn] = remaining
        else:
            del d[leaf_pfn]
        if not d:
            del self._tables[pfn]
            return True
        return False

    def move(self, pfn, old_leaf_pfn, new_leaf_pfn, n=1):
        """Retarget ``n`` mappings to another table (mremap entry moves)."""
        self.remove(pfn, old_leaf_pfn, n)
        self.add(pfn, new_leaf_pfn, n)

    def tracked_pfns(self):
        return self._tables.keys()

    def table_items(self, pfn):
        d = self._tables.get(pfn)
        return list(d.items()) if d else []


def _eligible_mask(pages, pfns):
    flags = pages.flags[pfns]
    return ((flags & _ANON) != 0) & ((flags & _INELIGIBLE) == 0)


def rmap_add(kernel, pfn, leaf_pfn):
    """One new mapping of ``pfn`` from ``leaf_pfn`` (fault-time hook)."""
    rmap = kernel.rmap
    if rmap is None:
        return
    flags = int(kernel.pages.flags[pfn])
    if not (flags & PG_ANON) or flags & _INELIGIBLE:
        return
    if rmap.add(pfn, leaf_pfn):
        kernel.reclaim.lru_add(pfn)


def rmap_remove(kernel, pfn, leaf_pfn):
    """One mapping of ``pfn`` gone (COW replacement, zap of one entry)."""
    rmap = kernel.rmap
    if rmap is None:
        return
    flags = int(kernel.pages.flags[pfn])
    if not (flags & PG_ANON) or flags & _INELIGIBLE:
        return
    if rmap.remove(pfn, leaf_pfn):
        kernel.reclaim.lru_remove(pfn)


def rmap_add_bulk(kernel, pfns, leaf_pfn):
    """Record mappings for every eligible pfn in ``pfns`` (fork, fills)."""
    rmap = kernel.rmap
    if rmap is None or len(pfns) == 0:
        return
    pfns = np.asarray(pfns, dtype=np.int64)
    mask = _eligible_mask(kernel.pages, pfns)
    reclaim = kernel.reclaim
    for pfn in pfns[mask].tolist():
        if rmap.add(pfn, leaf_pfn):
            reclaim.lru_add(pfn)


def rmap_remove_bulk(kernel, pfns, leaf_pfn):
    """Drop mappings for every eligible pfn in ``pfns`` (zap, teardown)."""
    rmap = kernel.rmap
    if rmap is None or len(pfns) == 0:
        return
    pfns = np.asarray(pfns, dtype=np.int64)
    mask = _eligible_mask(kernel.pages, pfns)
    reclaim = kernel.reclaim
    for pfn in pfns[mask].tolist():
        if rmap.remove(pfn, leaf_pfn):
            reclaim.lru_remove(pfn)


def rmap_move(kernel, pfn, old_leaf_pfn, new_leaf_pfn):
    """Retarget one mapping when an entry migrates between tables."""
    rmap = kernel.rmap
    if rmap is None:
        return
    flags = int(kernel.pages.flags[pfn])
    if not (flags & PG_ANON) or flags & _INELIGIBLE:
        return
    rmap.move(pfn, old_leaf_pfn, new_leaf_pfn)


@charge_deferred("the LRU aging loops charge charge_lru_scan per probe")
def test_and_clear_referenced(kernel, pfn):
    """Aging probe: was any PTE mapping ``pfn`` accessed since last clear?

    Clears the accessed bits it finds (in place, even in shared tables —
    an attribute edit is invisible to the sharers' semantics, so no
    unshare decision applies here).
    """
    referenced = False
    target = np.uint64(pfn)
    for leaf_pfn, _count in kernel.rmap.table_items(pfn):
        leaf = kernel.resolve_table(leaf_pfn)
        entries = leaf.entries
        match = present_mask(entries) & (entry_pfn(entries) == target)
        if not match.any():
            raise KernelBug(f"rmap points at table {leaf_pfn} with no PTE for {pfn}")
        if (entries[match] & BIT_ACCESSED).any():
            referenced = True
            entries[match] &= ~BIT_ACCESSED
    return referenced


@charge_deferred("frame release is priced by the zap/unmap cost models "
                 "at the call site")
def free_one_anon_frame(kernel, pfn):
    """Free one anonymous frame whose refcount reached zero."""
    if kernel.pages.flags[pfn] & PG_FILE:
        raise KernelBug("file page refcount dropped to zero outside the cache")
    kernel.pages.on_free(pfn)
    kernel.phys.zero(pfn)
    kernel.allocator.free(pfn, 0)


@must_hold("ptl")
def try_to_unmap(kernel, pfn, slot):
    """Replace every PTE mapping ``pfn`` with the swap entry for ``slot``.

    Each referencing table — dedicated or fork-shared — is edited in
    place; a shared table's edit unmaps the page from all sharers at
    once (one swap reference per table *object*, matching the ownership
    rule).  Every affected mm loses the page from its RSS and gets a
    full TLB flush.  Returns the page's remaining refcount (0 unless a
    swap-cache entry, snapshot, or pin still holds it); the frame is
    freed here when it hits zero.
    """
    rmap = kernel.rmap
    entry_value = make_swap_entry(slot)
    target = np.uint64(pfn)
    total = 0
    for leaf_pfn in rmap.tables_for(pfn):
        leaf = kernel.resolve_table(leaf_pfn)
        kernel.san_access("pt", leaf_pfn)
        entries = leaf.entries
        match = present_mask(entries) & (entry_pfn(entries) == target)
        n = int(np.count_nonzero(match))
        if n == 0:
            raise KernelBug(f"rmap points at table {leaf_pfn} with no PTE for {pfn}")
        entries[match] = entry_value
        kernel.swap_dup(slot, n)
        if kernel.pages.pt_ref(leaf_pfn) > 1:
            # The unshare-or-edit decision: edit in place, charge for it.
            kernel.stats.shared_table_unmaps += 1
            kernel.cost.charge_shared_table_unmap()
        sharers = list(kernel.pt_sharers.get(leaf_pfn, ()))
        for mm in sharers:
            mm.sub_rss(n, file_backed=False)
        # Unmapping changes translations under every sharer at once, and
        # any vCPU running one of them must be interrupted too.
        kernel.tlbs.shootdown_sharers(leaf_pfn, mms=sharers)
        if rmap.remove(pfn, leaf_pfn, n):
            kernel.reclaim.lru_remove(pfn)
        total += n
    kernel.cost.charge_rmap_unmap(total)
    remaining = kernel.pages.get_ref(pfn)
    for _ in range(total):
        remaining = kernel.pages.ref_dec(pfn)
    if remaining == 0:
        free_one_anon_frame(kernel, pfn)
    return remaining
