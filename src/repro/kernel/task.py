"""Tasks (processes) and their lifecycle.

A :class:`Task` is the simulator's ``task_struct``: pid, parent/children
links, its ``MMStruct``, exit state, and the per-process On-demand-fork
opt-in the paper exposes through procfs (§4 "Flexibility") — when
``odfork_default`` is set, plain ``fork()`` calls transparently take the
on-demand path, providing full application transparency.
"""

from __future__ import annotations

from ..errors import ProcessError

STATE_RUNNING = "running"
STATE_ZOMBIE = "zombie"
STATE_DEAD = "dead"


class Task:
    """One simulated process."""

    def __init__(self, pid, mm, parent=None, name=""):
        self.pid = pid
        self.mm = mm
        self.parent = parent
        self.name = name or f"task-{pid}"
        self.children = []
        self.state = STATE_RUNNING
        self.exit_code = None
        # procfs-style knob: /proc/<pid>/odfork_enabled in the paper's
        # implementation.  Inherited across fork.
        self.odfork_default = False
        # vfork protocol state: a parent suspended by vfork refuses to run
        # until the child execs or exits; the child records its parent.
        self.vfork_blocked = False
        self.vfork_parent = None
        # Bookkeeping mirrored from Redis's `latest_fork_usec` and similar
        # application-visible metrics.
        self.last_fork_ns = None
        self.fork_count = 0

    @property
    def alive(self):
        """Whether the task is running (not zombie/dead)."""
        return self.state == STATE_RUNNING

    def require_alive(self):
        """Raise unless the task may run (alive, not vfork-blocked)."""
        if not self.alive:
            raise ProcessError(f"{self.name} (pid {self.pid}) is {self.state}")
        if self.vfork_blocked:
            raise ProcessError(
                f"{self.name} (pid {self.pid}) is suspended in vfork"
            )

    def adopt(self, child):
        """Record a new child task."""
        self.children.append(child)

    def reap_ready_child(self, pid=None):
        """Return a zombie child matching ``pid`` (or any), else ``None``."""
        for child in self.children:
            if child.state != STATE_ZOMBIE:
                continue
            if pid is None or child.pid == pid:
                return child
        return None

    def __repr__(self):
        return f"Task(pid={self.pid}, name={self.name!r}, state={self.state})"
