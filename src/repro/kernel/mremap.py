"""``mremap`` relocation: moving page-table entries between addresses.

Moving a mapping clears entries at the old location and installs them at
the new one.  With shared PTE tables this is another §3.3 COW-on-modify
case, on *both* sides:

* an old-range slot whose table is shared must be copied before its
  entries can be cleared (other sharers still need them);
* a new-range slot can land under a shared table too (the free gap may sit
  inside a 2 MiB slot partially covered by a neighbouring shared mapping),
  in which case installing entries also forces a copy first.

Entry moves transfer page ownership between table objects, so data-page
refcounts are untouched — exactly why mremap is cheap compared with
copying.
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelBug
from ..mem.page import PAGE_SIZE
from ..paging.entries import (
    ENTRY_NONE,
    entry_pfn,
    is_huge,
    is_present,
    make_entry,
    present_mask,
    swap_mask,
)
from ..paging.table import LEVEL_PTE, level_base, table_index
from .rmap import rmap_move
from .tableops import copy_shared_pte_table, put_pte_table
from ..sancheck.annotations import acquires, must_hold


@must_hold("mmap_lock", "ptl")
def _dedicated_leaf_for(kernel, mm, vaddr):
    """The dedicated PTE table covering ``vaddr``, creating/copying as needed."""
    kernel.failpoints.hit("mremap.target_leaf")
    pmd_table, pmd_index = mm.walk_to_pmd(vaddr, alloc=True)
    entry = pmd_table.entries[pmd_index]
    if not is_present(entry):
        leaf = mm.alloc_table(LEVEL_PTE)
        kernel.cost.charge_pte_table_alloc()
        pmd_table.set(pmd_index, make_entry(leaf.pfn, writable=True, user=True))
        return pmd_table, pmd_index, leaf
    if is_huge(entry):
        raise KernelBug("mremap target collided with a huge mapping")
    leaf = mm.resolve(int(entry_pfn(entry)))
    if kernel.pages.pt_ref(leaf.pfn) > 1:
        leaf = copy_shared_pte_table(kernel, mm, pmd_table, pmd_index,
                                     level_base(vaddr, 2))
    return pmd_table, pmd_index, leaf


@must_hold("mmap_lock")
@acquires("ptl")
def move_mapping(kernel, mm, vma, new_size):
    """Relocate ``vma`` to a fresh area of ``new_size`` bytes; returns it."""
    old_start, old_end = vma.start, vma.end
    # A 2 MiB-aligned target keeps the destination slots disjoint from the
    # source slots even when the free gap is adjacent to the old mapping.
    from ..paging.table import PMD_REGION_SIZE
    new_start = mm.find_free_area(new_size, align=PMD_REGION_SIZE)
    new_vma = vma.clone(start=new_start, end=new_start + new_size)
    new_vma.file_offset = vma.file_offset
    # Install the new VMA first: table-COW decisions on both sides need the
    # final geometry.
    mm.add_vma(new_vma)

    # An OOM part-way through the walk (table COW on either side, or a
    # fresh target leaf) aborts the move with both VMAs installed and the
    # entries moved so far at their new addresses.  Every refcount stays
    # consistent — each entry moves atomically — so the caller sees a
    # failed syscall over a torn but audit-clean mapping, as with a
    # mid-copy fork abort.
    moved = 0
    for pmd_table, pmd_index, slot_start, lo, hi in mm.pmd_slots(old_start, old_end):
        kernel.failpoints.hit("mremap.move_slot")
        entry = pmd_table.entries[pmd_index]
        if not is_present(entry):
            continue
        if is_huge(entry):
            raise KernelBug("mremap over hugetlb should have been rejected")
        leaf = mm.resolve(int(entry_pfn(entry)))
        if kernel.pages.pt_ref(leaf.pfn) > 1:
            leaf = copy_shared_pte_table(kernel, mm, pmd_table, pmd_index, slot_start)
        lo_index = (lo - slot_start) // PAGE_SIZE
        hi_index = (hi - slot_start) // PAGE_SIZE
        sub = leaf.entries[lo_index:hi_index]
        mask = present_mask(sub)
        if kernel.swap is not None:
            # Swapped-out pages relocate too: the swap entry (and its slot
            # reference) moves between table objects like a present entry.
            mask |= swap_mask(sub)
        for index in (np.nonzero(mask)[0] + lo_index).tolist():
            old_vaddr = slot_start + index * PAGE_SIZE
            new_vaddr = new_start + (old_vaddr - old_start)
            _, _, target_leaf = _dedicated_leaf_for(kernel, mm, new_vaddr)
            target_index = table_index(new_vaddr, LEVEL_PTE)
            if target_leaf.entries[target_index] != ENTRY_NONE:
                raise KernelBug("mremap target entry already present")
            # Ownership transfer: the entry (and its page or swap-slot
            # reference) moves from the old table object to the new one.
            entry = leaf.entries[index]
            target_leaf.entries[target_index] = entry
            leaf.entries[index] = ENTRY_NONE
            if is_present(entry):
                rmap_move(kernel, int(entry_pfn(entry)), leaf.pfn,
                          target_leaf.pfn)
            moved += 1
        if leaf.is_empty():
            pmd_table.clear(pmd_index)
            mm.nr_pte_tables -= 1
            put_pte_table(kernel, mm, leaf, account_rss=False)

    kernel.cost.charge_zap_entries(moved)   # clearing old entries
    kernel.cost.charge_copy_pte_entries(0)  # attribution anchor
    mm.remove_vma(vma)
    # The old range's translations are dead on every CPU running this mm.
    kernel.tlbs.shootdown_mm(mm, old_start, old_end)
    return new_start
