"""Memory reclaim: LRU aging, kswapd watermarks, eviction to swap.

Structure follows Linux's ``mm/vmscan.c`` in miniature:

* Anonymous order-0 pages sit on an **active** or **inactive** LRU list
  (insertion-ordered; head = oldest).  A page enters the active list at
  its first mapping and leaves the lists when its last mapping goes.

* **Aging** gives second chances: refilling the inactive list moves the
  oldest active pages over and clears their PTE accessed bits (through
  the rmap); a page found re-accessed when the inactive scan reaches it
  is rotated back to the active list instead of being evicted.

* **Watermarks** drive the policy.  With ``n`` physical frames:
  ``min = max(64, n/256)``, ``low = 2*min``, ``high = 3*min``.  Frame
  allocations that see free memory below *low* wake kswapd, which
  reclaims in the background (cost-free to the foreground workload)
  until free memory recovers to *high*.  An allocation that actually
  fails falls back to **direct reclaim** — same shrink loop, but
  charged to the faulting task — before the kernel reports OOM.

* **Eviction** writes the victim to a swap slot (or, for a clean page
  still in the swap cache, reuses its slot with no I/O at all), then
  :func:`~repro.kernel.rmap.try_to_unmap` swaps every PTE that maps it,
  including PTEs inside fork-shared tables.

The whole subsystem is instantiated only when the machine is given a
swap device (``Machine(swap_mb=...)``); without one the kernel keeps
its legacy behavior bit for bit.
"""

from __future__ import annotations

from ..errors import KernelBug
from ..mem.page import PAGE_SIZE
from .rmap import free_one_anon_frame, test_and_clear_referenced, try_to_unmap
from ..sancheck.annotations import acquires, must_hold
from ..trace import points


class LRUList:
    """Insertion-ordered pfn list (dict-backed); head = oldest."""

    __slots__ = ("_pages",)

    def __init__(self):
        self._pages = {}

    def __len__(self):
        return len(self._pages)

    def __contains__(self, pfn):
        return pfn in self._pages

    def __iter__(self):
        return iter(self._pages)

    def add(self, pfn):
        if pfn in self._pages:
            raise KernelBug(f"pfn {pfn} already on this LRU list")
        self._pages[pfn] = None

    def discard(self, pfn):
        return self._pages.pop(pfn, False) is None

    def pop_oldest(self):
        pfn = next(iter(self._pages))
        del self._pages[pfn]
        return pfn


class ReclaimState:
    """Per-kernel reclaim state: the LRU lists, watermarks, and shrinker."""

    def __init__(self, kernel):
        self.kernel = kernel
        n_frames = kernel.allocator.n_frames
        self.wm_min = max(64, n_frames // 256)
        self.wm_low = self.wm_min * 2
        self.wm_high = self.wm_min * 3
        self.active = LRUList()
        self.inactive = LRUList()
        #: reentrancy guard: eviction's own bookkeeping must never
        #: recursively trigger another reclaim pass.
        self.running = False

    # -- LRU membership (driven by the rmap's 0 <-> mapped edges) --------

    def lru_add(self, pfn):
        self.active.add(pfn)

    def lru_remove(self, pfn):
        if not self.active.discard(pfn):
            self.inactive.discard(pfn)

    # -- aging -----------------------------------------------------------

    def _refill_inactive(self, n):
        """Move the ``n`` oldest active pages over, clearing accessed bits."""
        kernel = self.kernel
        for _ in range(min(n, len(self.active))):
            pfn = self.active.pop_oldest()
            test_and_clear_referenced(kernel, pfn)
            kernel.cost.charge_lru_scan()
            self.inactive.add(pfn)

    # -- shrinking -------------------------------------------------------

    @acquires("ptl")
    def shrink(self, nr_target, from_kswapd):
        """Reclaim up to ``nr_target`` frames from the LRU; returns freed."""
        kernel = self.kernel
        stats = kernel.stats
        start_ns = kernel.cost.clock.now_ns
        freed = 0
        scanned = 0
        max_scan = 2 * (len(self.active) + len(self.inactive)) + 8
        while freed < nr_target and scanned < max_scan:
            if not len(self.inactive):
                self._refill_inactive(max(nr_target, 32))
                if not len(self.inactive):
                    break
            pfn = self.inactive.pop_oldest()
            scanned += 1
            stats.pgscan += 1
            kernel.cost.charge_lru_scan()
            if test_and_clear_referenced(kernel, pfn):
                self.active.add(pfn)  # second chance
                continue
            if self._evict(pfn):
                freed += 1
                stats.pgsteal += 1
                if from_kswapd:
                    stats.pgsteal_kswapd += 1
                else:
                    stats.pgsteal_direct += 1
            else:
                # Pinned, or swap is full: rotate it out of the way.
                self.active.add(pfn)
        if points.enabled:
            points.tracepoint(
                "reclaim.shrink",
                dur_ns=kernel.cost.clock.now_ns - start_ns,
                target=nr_target, freed=freed, scanned=scanned,
                kswapd=from_kswapd)
        return freed

    def balance(self, nr_extra=0):
        """kswapd body: reclaim until free memory reaches the high mark.

        ``nr_extra`` raises the goal for a pending large (bulk or compound)
        allocation, the way Linux passes the failing order to kswapd.
        """
        kernel = self.kernel
        allocator = kernel.allocator
        target = self.wm_high + nr_extra
        total_freed = 0
        while allocator.free_frames < target:
            goal = target - allocator.free_frames
            freed = kernel.page_cache.reclaim_clean(goal)
            if allocator.free_frames < target:
                freed += self.shrink(target - allocator.free_frames,
                                     from_kswapd=True)
            total_freed += freed
            if freed == 0:
                break
        return total_freed

    # -- slot-at-a-time interface (the SMP kswapd flow) -------------------

    def pick_victim(self):
        """Pop the next eviction candidate off the inactive list.

        Second chance is applied here (referenced pages rotate back to
        the active list); returns a pfn that is temporarily on *neither*
        list — the caller must either evict it with
        :meth:`evict_candidate` or put it back — or ``None`` when both
        lists are drained.  This is the lock-friendly decomposition of
        :meth:`shrink` used by the SMP kswapd task, which takes the
        victim's page-table locks between pick and evict.
        """
        kernel = self.kernel
        while True:
            if not len(self.inactive):
                self._refill_inactive(32)
                if not len(self.inactive):
                    return None
            pfn = self.inactive.pop_oldest()
            kernel.stats.pgscan += 1
            kernel.cost.charge_lru_scan()
            if test_and_clear_referenced(kernel, pfn):
                self.active.add(pfn)  # second chance
                continue
            return pfn

    @must_hold("ptl")
    def evict_candidate(self, pfn, from_kswapd=True):
        """Evict one picked victim; rotates it back to active on failure."""
        stats = self.kernel.stats
        if self._evict(pfn):
            stats.pgsteal += 1
            if from_kswapd:
                stats.pgsteal_kswapd += 1
            else:
                stats.pgsteal_direct += 1
            return True
        self.active.add(pfn)
        return False

    # -- eviction --------------------------------------------------------

    @must_hold("ptl")
    def _evict(self, pfn):
        """Try to reclaim one frame; returns True when it was freed.

        Preconditions checked here, Linux-style: the page must be a
        mapped anonymous order-0 page whose only references are its
        mappings (plus its swap-cache entry, if any).  An extra
        reference — a snapshot's, or a transient pin taken by a COW
        path around an allocation — fails the check and the page is
        skipped.
        """
        kernel = self.kernel
        pages = kernel.pages
        n_mapped = kernel.rmap.mapcount(pfn)
        if n_mapped <= 0:
            return False
        cached_slot = kernel.swap_cache.slot_of(pfn)
        expected = n_mapped + (1 if cached_slot is not None else 0)
        if pages.get_ref(pfn) != expected:
            return False
        if cached_slot is None:
            if kernel.failpoints.fails("reclaim.swap_slot"):
                slot = None  # injected "swap full"
            else:
                slot = kernel.swap.alloc_slot()
            if slot is None:
                return False  # swap full
            if kernel.phys.is_materialized(pfn):
                kernel.swap.write(slot, kernel.phys.read(pfn, 0, PAGE_SIZE))
            else:
                kernel.swap.write(slot, None)  # never written: store "zero"
            kernel.stats.pswpout += 1
            kernel.cost.charge_swap_out()
        else:
            # Clean swap-cache page: slot content is still exact (cached
            # pages are mapped read-only), so reclaim costs no I/O.
            slot = cached_slot
        remaining = try_to_unmap(kernel, pfn, slot)
        if cached_slot is not None:
            if kernel.swap_cache.remove_slot(slot) != pfn:
                raise KernelBug("swap cache lost track of an evicted page")
            if pages.ref_dec(pfn) != 0:
                raise KernelBug("cached page still referenced after unmap")
            free_one_anon_frame(kernel, pfn)
        elif remaining != 0:
            raise KernelBug("swapped-out page still referenced after unmap")
        if points.enabled:
            points.tracepoint("reclaim.evict", pfn=pfn, slot=slot,
                              io=cached_slot is None)
        return True
