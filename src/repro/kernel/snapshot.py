"""In-place snapshot/restore: the fork-less alternative (paper §6.1).

Xu et al. (CCS '17) designed a snapshot/restore primitive for fuzzing that
*reuses the calling process* instead of forking: snapshot write-protects
the address space and records its state; restore rolls modified pages back
and re-arms the protection.  The paper discusses it as related work — it
avoids fork's page-table copies but "it is not clear whether it can be
safely applied to broader types of workloads" (kernel state outside memory
is not covered, and there is no concurrent parent/child execution).

The implementation here rides the same machinery On-demand-fork uses:

* ``create`` walks the leaf level once, write-protects private-COW entries
  (so subsequent writes COW instead of destroying the saved state), stores
  a copy of every leaf table's entries, and takes one page reference per
  present entry — the snapshot owns the saved pages like a table object
  would (the §3.6 ownership rule).
* Writes after the snapshot fault and COW normally: the old page survives
  because the snapshot holds a reference.
* ``restore`` diffs each live table against its saved entries, releases
  the pages written since the snapshot, and reinstates the saved
  (write-protected) entries — re-taking table-ownership references so the
  snapshot can be restored again and again.
* ``discard`` drops the snapshot's references.

Restrictions (documented): snapshots cover a single process; ``create``
unshares proactively, and ``restore`` copies any table an odfork shared
*after* the snapshot before editing it (the same COW-on-modify rule every
other table-modifying operation follows).  Operations that delete or move
the snapshotted leaf tables themselves — munmap/mremap/MADV_DONTNEED over
a whole slot — are not supported while a snapshot is live (khugepaged
collapse is refused for snapshotted address spaces for the same reason);
the fuzzing-reset workload this primitive exists for never does that.
"""

from __future__ import annotations
from ..sancheck.annotations import acquires, releases_refs

import numpy as np

from ..errors import InvalidArgumentError, KernelBug
from ..mem.page import PAGE_SIZE
from ..paging.entries import BIT_RW, entry_pfn, is_huge, is_present, present_mask
from ..paging.table import PMD_REGION_SIZE
from .fork import iter_parent_pmds
from .rmap import rmap_add_bulk, rmap_remove_bulk
from .tableops import (
    copy_shared_pte_table,
    count_file_pages,
    free_anon_frames,
    private_cow_mask,
)

#: Cost per saved/diffed leaf table: one pass over 512 entries, comparable
#: to the odfork share cost plus the protect write.
SNAPSHOT_PER_TABLE_NS = 380
RESTORE_PER_TABLE_NS = 520
#: Per-restored-entry work: refcount transfer + entry write + free batching.
RESTORE_PER_ENTRY_NS = 24


class Snapshot:
    """Saved leaf-level state of one address space."""

    def __init__(self, kernel, mm):
        self.kernel = kernel
        self.mm = mm
        # (pmd_table, pmd_index, slot_start) -> saved entries copy
        self.saved = {}
        self.live = True
        self.restores = 0

    # ---- creation --------------------------------------------------------

    @classmethod
    @acquires("mmap_lock", "ptl")
    def create(cls, kernel, task):
        """Snapshot ``task``'s address space; returns the Snapshot."""
        task.require_alive()
        mm = task.mm
        if mm.users != 1:
            raise InvalidArgumentError(
                "snapshot requires an unshared address space"
            )
        kernel.cost.charge_syscall()
        snapshot = cls(kernel, mm)
        drop_rw = np.uint64(~BIT_RW)
        try:
            for pmd_table, pmd_index, slot_start in list(iter_parent_pmds(mm)):
                entry = pmd_table.entries[pmd_index]
                if is_huge(entry):
                    raise InvalidArgumentError(
                        "snapshot over huge mappings is not supported"
                    )
                leaf = mm.resolve(int(entry_pfn(entry)))
                if kernel.pages.pt_ref(leaf.pfn) > 1:
                    # Unshare proactively: restore must own its tables.
                    leaf = copy_shared_pte_table(kernel, mm, pmd_table,
                                                 pmd_index, slot_start)
                cow = private_cow_mask(mm, slot_start)
                protect = cow & present_mask(leaf.entries)
                if protect.any():
                    leaf.entries[protect] &= drop_rw
                saved = leaf.entries.copy()
                snapshot.saved[(pmd_table, pmd_index, slot_start)] = saved
                pfns = entry_pfn(saved[present_mask(saved)]).astype(np.int64)
                if len(pfns):
                    kernel.pages.ref_inc_bulk(pfns)  # the snapshot's references
                # Saved swap entries pin their slots the same way.
                kernel.swap_dup_entries(saved)
                kernel.cost.charge("snapshot_save_table", SNAPSHOT_PER_TABLE_NS)
        except BaseException:
            # A mid-walk failure (an unsharing copy hitting OOM, or an
            # unsupported mapping) must not leak the page and slot
            # references already taken for the partial snapshot.
            snapshot.discard()
            raise
        # Snapshot save write-protects COW-able entries: stale writable
        # translations must go from every CPU running this mm.
        kernel.tlbs.shootdown_mm(mm)
        kernel.stats.snapshots_created += 1
        kernel.live_snapshots.append(snapshot)
        return snapshot

    # ---- helpers ------------------------------------------------------------

    def _require_live(self):
        if not self.live:
            raise InvalidArgumentError("snapshot was discarded")
        if self.mm.dead:
            raise InvalidArgumentError("snapshotted process has exited")

    def _current_leaf(self, pmd_table, pmd_index):
        entry = pmd_table.entries[pmd_index]
        if not is_present(entry) or is_huge(entry):
            raise KernelBug("snapshotted slot disappeared (unsupported op?)")
        return self.mm.resolve(int(entry_pfn(entry)))

    # ---- restore ---------------------------------------------------------------

    @acquires("mmap_lock", "ptl")
    def restore(self):
        """Roll every page written since the snapshot back to saved state."""
        self._require_live()
        kernel = self.kernel
        restored_entries = 0
        for (pmd_table, pmd_index, slot_start), saved in self.saved.items():
            leaf = self._current_leaf(pmd_table, pmd_index)
            if kernel.pages.pt_ref(leaf.pfn) > 1:
                # An odfork after the snapshot shared this table; editing
                # it in place would rewrite the other sharers' view, so
                # restore follows the same rule as any table-modifying
                # operation and takes a dedicated copy first.
                leaf = copy_shared_pte_table(kernel, self.mm, pmd_table,
                                             pmd_index, slot_start)
            kernel.cost.charge("snapshot_diff_table", RESTORE_PER_TABLE_NS)
            changed = leaf.entries != saved
            if not changed.any():
                continue
            positions = np.nonzero(changed)[0]
            current = leaf.entries[positions]
            current_present = present_mask(current)
            drop_pfns = entry_pfn(current[current_present]).astype(np.int64)
            drop_file = count_file_pages(kernel, drop_pfns)
            if len(drop_pfns):
                rmap_remove_bulk(kernel, drop_pfns, leaf.pfn)
                zeroed = kernel.pages.ref_dec_bulk(drop_pfns)
                free_anon_frames(kernel, zeroed)
            saved_slice = saved[positions]
            # Re-take the table's swap-slot references before dropping the
            # current ones, so a slot appearing on both sides never sees a
            # transient zero refcount (which would free it).
            kernel.swap_dup_entries(saved_slice)
            kernel.swap_put_entries(current)
            saved_present = present_mask(saved_slice)
            keep_pfns = entry_pfn(saved_slice[saved_present]).astype(np.int64)
            if len(keep_pfns):
                # Re-take the table-ownership references for the pages the
                # table is about to map again; the snapshot keeps its own.
                kernel.pages.ref_inc_bulk(keep_pfns)
            # Residency changes with the entry swap (a page demand-zeroed
            # after the snapshot rolls back to absent, a page swapped out
            # before it rolls back to resident): account the delta.
            keep_file = count_file_pages(kernel, keep_pfns)
            self.mm.add_rss(keep_file - drop_file, file_backed=True)
            self.mm.add_rss((len(keep_pfns) - keep_file)
                            - (len(drop_pfns) - drop_file))
            leaf.entries[positions] = saved_slice
            rmap_add_bulk(kernel, keep_pfns, leaf.pfn)
            restored_entries += len(positions)
            kernel.cost.charge("snapshot_restore_entries",
                               RESTORE_PER_ENTRY_NS * len(positions))
            kernel.tlbs.local_flush_range(self.mm, slot_start,
                                          slot_start + PMD_REGION_SIZE)
        self.restores += 1
        kernel.stats.snapshot_restores += 1
        kernel.cost.charge_tlb_flush()
        return restored_entries

    # ---- discard -----------------------------------------------------------------

    @releases_refs("page", "swap")
    def discard(self):
        """Release the snapshot's page references."""
        if not self.live:
            return
        kernel = self.kernel
        for (_pmd, _idx, _slot), saved in self.saved.items():
            pfns = entry_pfn(saved[present_mask(saved)]).astype(np.int64)
            if len(pfns):
                zeroed = kernel.pages.ref_dec_bulk(pfns)
                # sancheck: ignore[clock-charge] -- snapshot teardown is priced by the discard syscall / fork-unwind blanket costs
                free_anon_frames(kernel, zeroed)
            kernel.swap_put_entries(saved)
        self.saved.clear()
        self.live = False
        if self in kernel.live_snapshots:
            kernel.live_snapshots.remove(self)
