"""On-demand-fork's address-space duplication (the paper's contribution).

Instead of replicating the leaf level, the child *shares* every last-level
PTE table with the parent (§3.1):

* the upper three levels are copied (they are a ~1/512 fraction of the
  tree, §2.2 — which is why sharing stops here);
* each shared leaf table's reference counter is incremented;
* write permission is disabled **once per table** by clearing the RW bit in
  the PMD entries of both parent and child — the hierarchical-attribute
  override (§3.2) write-protects the whole 2 MiB region without touching a
  single leaf entry;
* no data-page refcount is touched: the skipped ``compound_head`` /
  ``page_ref_inc`` per-PTE loop is precisely the 65x-270x invocation-time
  win of Figure 7.

The deferred work happens later, in the fault handler, one table at a
time (:func:`~repro.kernel.tableops.copy_shared_pte_table`).

The implementation is vectorised at PMD-table granularity (one numpy pass
per 1 GiB of address space), both for host-speed and for fidelity: the
real implementation's cost is likewise dominated by one refcount increment
and one entry write per shared table, not by per-page work.

Huge (PMD-level) entries have no leaf table to share; by default they are
copied eagerly like classic fork, which matches the paper's implementation
("only supports 4 kB pages").  The generalisation sketched in §4 — sharing
2 MiB mappings with a single permission drop per entry — is available as
the ``share_huge`` ablation flag.
"""

from __future__ import annotations

import numpy as np

from ..mem.page import HUGE_PAGE_ORDER
from ..paging.entries import BIT_PS, BIT_RW, entry_pfn, is_huge, present_mask
from .fork import (
    ChildTreeBuilder,
    _slot_needs_cow,
    clone_vmas,
    iter_parent_pmd_tables,
)
from ..paging.table import LEVEL_PMD, LEVEL_SPAN
from .tableops import add_table_sharer, count_file_pages, table_present_pfns
from ..sancheck.annotations import acquires, must_hold, tlb_deferred
from ..trace import points

#: Deliberate-bug switch for the differential oracle's self-test: when
#: True, odfork skips writing the write-protected entries back into the
#: *parent's* PMD table, so parent writes bypass COW and leak into the
#: child.  Exists so ``tests/test_verify_oracle.py`` can prove the oracle
#: catches (and the shrinker minimizes) a real semantic divergence.
#: Never enable outside that test.
FAULT_INJECT_SKIP_PARENT_WP = False


@must_hold("mmap_lock")
def _apply_replica_share_policy(kernel, child_mm, leaf_pfns):
    """odfork x Mitosis: decide what sharing does to a table's replicas.

    The knob is ``NumaTopology.odfork_replica_policy``:

    * ``collapse`` frees the replicas on the spot (reason="share") —
      the table reverts to one primary until table-COW re-replicates;
    * ``share-all`` leaves them in place and entitles *every* sharer,
      so the child's shootdowns fan out to replica nodes too;
    * ``share-one`` (default) leaves them owned by the parent — nothing
      to do here; adoption happens at unshare/table-COW time.
    """
    mitosis = kernel.mitosis
    policy = mitosis.topology.odfork_replica_policy
    for leaf_pfn in leaf_pfns:
        if leaf_pfn not in mitosis.replicas:
            continue
        if policy == "collapse":
            mitosis.collapse_table(leaf_pfn, reason="share")
        elif policy == "share-all":
            child_mm.replicated = True


def _account_shared_table_rss(kernel, mm, child_mm, leaf_pfn):
    """Sharing a leaf table makes its present pages resident in the child.

    Accounted per table (not snapshot-copied at the end) so a concurrent
    reclaim that edits an already-shared table mid-odfork finds the
    child's RSS consistent with its mappings.
    """
    leaf = mm.resolve(leaf_pfn)
    _, pfns = table_present_pfns(leaf)
    if len(pfns):
        n_file = count_file_pages(kernel, pfns)
        child_mm.add_rss(n_file, file_backed=True)
        child_mm.add_rss(len(pfns) - n_file, file_backed=False)


def _account_shared_tables_rss_bulk(kernel, mm, child_mm, leaf_pfns):
    """Vectorised :func:`_account_shared_table_rss` over many leaf tables.

    RSS is pure addition, so summing across one packed gather of all the
    tables' rows lands on the same totals as the per-table loop.  Falls
    back to the loop when any table is store-less (unit-test setups).
    """
    tables = [mm.resolve(leaf_pfn) for leaf_pfn in leaf_pfns.tolist()]
    rows = np.fromiter((t.row for t in tables), dtype=np.int64,
                       count=len(tables))
    if np.any(rows < 0):
        for table in tables:
            _account_shared_table_rss(kernel, mm, child_mm, table.pfn)
        return
    matrix = kernel.entry_store.gather(rows)
    data_pfns = entry_pfn(matrix[present_mask(matrix)]).astype(np.int64)
    if len(data_pfns):
        n_file = count_file_pages(kernel, data_pfns)
        child_mm.add_rss(n_file, file_backed=True)
        child_mm.add_rss(len(data_pfns) - n_file, file_backed=False)


@must_hold("mmap_lock")
@acquires("ptl")
def copy_mm_odf(kernel, parent_mm, child_mm, share_huge=False):
    """Share ``parent_mm``'s leaf tables into ``child_mm`` (§3.1, §3.5)."""
    cost = kernel.cost
    builder = begin_odf_copy(kernel, parent_mm, child_mm)
    drop_rw = np.uint64(~BIT_RW)
    shared_tables = 0

    for parent_pmd, table_base in iter_parent_pmd_tables(parent_mm):
        entries = parent_pmd.entries
        present = present_mask(entries)
        if not present.any():
            continue
        kernel.failpoints.hit("odfork.share_table")
        child_pmd = builder.pmd_table_for(table_base)
        huge = (entries & BIT_PS) != np.uint64(0)
        leaf_positions = present & ~huge

        if leaf_positions.any():
            # Vectorised §3.5: one refcount increment per shared table and
            # one write-protected PMD entry on each side.
            pfns = entry_pfn(entries[leaf_positions]).astype(np.int64)
            kernel.pages.pt_refcount[pfns] += 1
            for leaf_pfn in pfns.tolist():
                kernel.pt_sharers[leaf_pfn].append(child_mm)
            _account_shared_tables_rss_bulk(kernel, parent_mm, child_mm, pfns)
            if kernel.mitosis is not None:
                _apply_replica_share_policy(kernel, child_mm, pfns.tolist())
            protected = entries[leaf_positions] & drop_rw
            if not FAULT_INJECT_SKIP_PARENT_WP:
                entries[leaf_positions] = protected
            child_pmd.entries[leaf_positions] = protected
            count = int(np.count_nonzero(leaf_positions))
            # The PMD write-protect edits the parent's (replicated) PMD
            # table, and populates the child's fresh one.
            kernel.note_table_write(parent_pmd, count)
            kernel.note_table_write(child_pmd, count)
            shared_tables += count
            child_mm.nr_pte_tables += count
            if points.enabled:
                points.tracepoint("odfork.share_table", table_base=table_base,
                                  n_shared=count,
                                  n_huge=int(np.count_nonzero(present & huge)))

        huge_positions = np.nonzero(present & huge)[0]
        for pmd_index in huge_positions.tolist():
            entry = entries[pmd_index]
            head = int(entry_pfn(entry))
            kernel.pages.ref_inc(head)
            slot_start = table_base + pmd_index * LEVEL_SPAN[LEVEL_PMD]
            if _slot_needs_cow(parent_mm, slot_start) or share_huge:
                entry &= drop_rw
                entries[pmd_index] = entry
            child_pmd.entries[pmd_index] = entry
            child_mm.add_rss(1 << HUGE_PAGE_ORDER, file_backed=False)
            if share_huge:
                # §4 generalisation: one permission-drop per 2 MiB entry,
                # charged like a table share instead of the eager copy.
                cost.charge_share_tables(1)
            else:
                cost.charge_copy_huge_entries(1)

    cost.charge_share_tables(shared_tables)
    finish_odf_copy(kernel, parent_mm, child_mm, builder, shared_tables)
    return shared_tables


@must_hold("mmap_lock")
def begin_odf_copy(kernel, parent_mm, child_mm):
    """Fixed-cost prologue of an on-demand-fork (task + VMAs + tree root)."""
    kernel.cost.charge_odfork_fixed(len(parent_mm.vmas))
    clone_vmas(parent_mm, child_mm)
    return ChildTreeBuilder(child_mm)


@must_hold("mmap_lock", "ptl")
@tlb_deferred("the PMD write-protect is batched; finish_odf_copy shoots the parent down once")
def share_one_slot(kernel, parent_mm, child_mm, builder, pmd, pmd_index,
                   slot_start, share_huge=False):
    """Share (or eagerly copy, for huge entries) one present PMD slot.

    Scalar counterpart of the vectorised loop in :func:`copy_mm_odf`,
    used by the SMP odfork flow so the scheduler can preempt between
    2 MiB slots.  Returns 1 when a leaf table was shared, else 0.
    """
    kernel.failpoints.hit("odfork.share_table")
    cost = kernel.cost
    drop_rw = np.uint64(~BIT_RW)
    entry = pmd.entries[pmd_index]
    child_pmd, child_index = builder.pmd_for(slot_start)

    if is_huge(entry):
        head = int(entry_pfn(entry))
        kernel.pages.ref_inc(head)
        if _slot_needs_cow(parent_mm, slot_start) or share_huge:
            entry &= drop_rw
            pmd.entries[pmd_index] = entry
        child_pmd.entries[child_index] = entry
        child_mm.add_rss(1 << HUGE_PAGE_ORDER, file_backed=False)
        if share_huge:
            cost.charge_share_tables(1)
        else:
            cost.charge_copy_huge_entries(1)
        return 0

    leaf_pfn = int(entry_pfn(entry))
    kernel.san_access("pt", leaf_pfn)
    kernel.pages.pt_refcount[leaf_pfn] += 1
    add_table_sharer(kernel, leaf_pfn, child_mm)
    _account_shared_table_rss(kernel, parent_mm, child_mm, leaf_pfn)
    if kernel.mitosis is not None:
        _apply_replica_share_policy(kernel, child_mm, [leaf_pfn])
    protected = entry & drop_rw
    if not FAULT_INJECT_SKIP_PARENT_WP:
        pmd.entries[pmd_index] = protected
    child_pmd.entries[child_index] = protected
    kernel.note_table_write(pmd)
    kernel.note_table_write(child_pmd)
    child_mm.nr_pte_tables += 1
    cost.charge_share_tables(1)
    if points.enabled:
        points.tracepoint("odfork.share_table", table_base=slot_start,
                          n_shared=1, n_huge=0)
    return 1


@must_hold("mmap_lock")
def finish_odf_copy(kernel, parent_mm, child_mm, builder, shared_tables):
    """Epilogue: upper-level copy, RSS/lineage, and the write-protect
    shootdown.

    The PMD write-protect just revoked write permission on the whole
    shared region, so stale *writable* translations must be invalidated
    in every TLB that may cache this address space — the caller's view
    and every remote vCPU running the same ``mm`` — or a cached-writable
    CPU would keep scribbling on frames the child now shares.
    """
    kernel.cost.charge_upper_copy(builder.upper_tables_created)
    parent_mm.odf_lineage = True
    child_mm.odf_lineage = True
    kernel.tlbs.shootdown_mm(parent_mm)
    kernel.stats.odforks += 1
    kernel.stats.tables_shared += shared_tables
    if points.enabled:
        points.tracepoint("odfork.share_done", shared_tables=shared_tables,
                          upper_tables=builder.upper_tables_created)
