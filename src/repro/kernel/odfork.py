"""On-demand-fork's address-space duplication (the paper's contribution).

Instead of replicating the leaf level, the child *shares* every last-level
PTE table with the parent (§3.1):

* the upper three levels are copied (they are a ~1/512 fraction of the
  tree, §2.2 — which is why sharing stops here);
* each shared leaf table's reference counter is incremented;
* write permission is disabled **once per table** by clearing the RW bit in
  the PMD entries of both parent and child — the hierarchical-attribute
  override (§3.2) write-protects the whole 2 MiB region without touching a
  single leaf entry;
* no data-page refcount is touched: the skipped ``compound_head`` /
  ``page_ref_inc`` per-PTE loop is precisely the 65x-270x invocation-time
  win of Figure 7.

The deferred work happens later, in the fault handler, one table at a
time (:func:`~repro.kernel.tableops.copy_shared_pte_table`).

The implementation is vectorised at PMD-table granularity (one numpy pass
per 1 GiB of address space), both for host-speed and for fidelity: the
real implementation's cost is likewise dominated by one refcount increment
and one entry write per shared table, not by per-page work.

Huge (PMD-level) entries have no leaf table to share; by default they are
copied eagerly like classic fork, which matches the paper's implementation
("only supports 4 kB pages").  The generalisation sketched in §4 — sharing
2 MiB mappings with a single permission drop per entry — is available as
the ``share_huge`` ablation flag.
"""

from __future__ import annotations

import numpy as np

from ..paging.entries import BIT_PS, BIT_RW, entry_pfn, present_mask
from .fork import (
    ChildTreeBuilder,
    _slot_needs_cow,
    clone_vmas,
    iter_parent_pmd_tables,
)
from ..paging.table import LEVEL_PMD, LEVEL_SPAN


def copy_mm_odf(kernel, parent_mm, child_mm, share_huge=False):
    """Share ``parent_mm``'s leaf tables into ``child_mm`` (§3.1, §3.5)."""
    cost = kernel.cost
    cost.charge_odfork_fixed(len(parent_mm.vmas))
    clone_vmas(parent_mm, child_mm)
    builder = ChildTreeBuilder(child_mm)
    drop_rw = np.uint64(~BIT_RW)
    shared_tables = 0

    for parent_pmd, table_base in iter_parent_pmd_tables(parent_mm):
        entries = parent_pmd.entries
        present = present_mask(entries)
        if not present.any():
            continue
        child_pmd = builder.pmd_table_for(table_base)
        huge = (entries & BIT_PS) != np.uint64(0)
        leaf_positions = present & ~huge

        if leaf_positions.any():
            # Vectorised §3.5: one refcount increment per shared table and
            # one write-protected PMD entry on each side.
            pfns = entry_pfn(entries[leaf_positions]).astype(np.int64)
            kernel.pages.pt_refcount[pfns] += 1
            if kernel.pt_sharers is not None:
                for leaf_pfn in pfns.tolist():
                    kernel.pt_sharers[leaf_pfn].append(child_mm)
            protected = entries[leaf_positions] & drop_rw
            entries[leaf_positions] = protected
            child_pmd.entries[leaf_positions] = protected
            count = int(np.count_nonzero(leaf_positions))
            shared_tables += count
            child_mm.nr_pte_tables += count

        huge_positions = np.nonzero(present & huge)[0]
        for pmd_index in huge_positions.tolist():
            entry = entries[pmd_index]
            head = int(entry_pfn(entry))
            kernel.pages.ref_inc(head)
            slot_start = table_base + pmd_index * LEVEL_SPAN[LEVEL_PMD]
            if _slot_needs_cow(parent_mm, slot_start) or share_huge:
                entry &= drop_rw
                entries[pmd_index] = entry
            child_pmd.entries[pmd_index] = entry
            if share_huge:
                # §4 generalisation: one permission-drop per 2 MiB entry,
                # charged like a table share instead of the eager copy.
                cost.charge_share_tables(1)
            else:
                cost.charge_copy_huge_entries(1)

    cost.charge_share_tables(shared_tables)
    cost.charge_upper_copy(builder.upper_tables_created)
    child_mm.rss_anon_pages = parent_mm.rss_anon_pages
    child_mm.rss_file_pages = parent_mm.rss_file_pages
    parent_mm.odf_lineage = True
    child_mm.odf_lineage = True
    parent_mm.tlb.flush_all()
    kernel.cost.charge_tlb_flush()
    kernel.stats.odforks += 1
    kernel.stats.tables_shared += shared_tables
    return shared_tables
