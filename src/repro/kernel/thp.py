"""Transparent Huge Pages: the khugepaged model (paper §2.3).

The paper's huge-page discussion is central to its motivation: THP makes
fork faster (512x fewer leaf entries) but hurts latency — khugepaged
scans burn CPU and cause pauses, and 2 MiB COW faults take ~200 us.  This
module models the mechanism so those trade-offs are measurable:

* VMAs opt in via ``madvise(MADV_HUGEPAGE)`` (the distribution-default
  policy the paper mentions) or globally via ``policy="always"``;
* :class:`Khugepaged` scans eligible address spaces and *promotes* fully
  populated, exclusively owned, 2 MiB-aligned regions: data is migrated
  into a fresh compound page, the 512 leaf entries and their table are
  freed, and the PMD entry maps the huge page directly;
* promotion is copy-based (as in Linux's collapse path), so its cost —
  charged to the virtual clock — is exactly the kind of background pause
  the paper's §2.3 complains about;
* a promoted region that is partially unmapped or write-protected is
  *split* back into 4 KiB pages (copy-based; see ``split_huge_entry``).

Shared PTE tables are never promoted: collapse would modify entries other
processes rely on — one more way THP and on-demand-fork make an awkward
pair (the paper evaluates them as alternatives, not companions).
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelBug, OutOfMemoryError
from ..mem.page import (
    HUGE_PAGE_ORDER,
    HUGE_PAGE_SIZE,
    PG_ANON,
    PG_FILE,
    PTRS_PER_TABLE,
)
from ..paging.entries import (
    BIT_ACCESSED,
    BIT_DIRTY,
    entry_pfn,
    is_huge,
    is_present,
    is_writable,
    make_entry,
    present_mask,
)
from ..paging.table import LEVEL_PTE, PMD_REGION_SIZE
from .rmap import rmap_add_bulk, rmap_remove_bulk
from .tableops import free_anon_frames, put_pte_table
from ..sancheck.annotations import acquires, must_hold

#: Cost of scanning one candidate region (read 512 entries + struct pages).
SCAN_COST_PER_REGION_NS = 2_500
#: Fixed promotion overhead beyond the 2 MiB data migration.
COLLAPSE_FIXED_NS = 12_000

POLICY_NEVER = "never"
POLICY_MADVISE = "madvise"
POLICY_ALWAYS = "always"


class Khugepaged:
    """The background promotion daemon, driven explicitly by callers."""

    def __init__(self, kernel, policy=POLICY_MADVISE):
        if policy not in (POLICY_NEVER, POLICY_MADVISE, POLICY_ALWAYS):
            raise KernelBug(f"unknown THP policy {policy!r}")
        self.kernel = kernel
        self.policy = policy
        self.promotions = 0
        self.regions_scanned = 0
        self.last_scan_ns = 0

    def _vma_eligible(self, vma):
        if self.policy == POLICY_NEVER:
            return False
        if not (vma.is_private and vma.is_anonymous and not vma.is_hugetlb):
            return False
        if self.policy == POLICY_ALWAYS:
            return not vma.thp_disabled
        return vma.thp_enabled

    def scan_mm(self, mm, max_promotions=None):
        """One khugepaged pass over an address space; returns promotions."""
        promoted = 0
        watch_start = self.kernel.clock.now_ns
        for vma in list(mm.vmas):
            if not self._vma_eligible(vma):
                continue
            start = (vma.start + PMD_REGION_SIZE - 1) & ~(PMD_REGION_SIZE - 1)
            slot = start
            while slot + PMD_REGION_SIZE <= vma.end:
                if max_promotions is not None and promoted >= max_promotions:
                    return promoted
                self.regions_scanned += 1
                self.kernel.cost.charge("khugepaged_scan",
                                        SCAN_COST_PER_REGION_NS)
                if self._try_collapse(mm, vma, slot):
                    promoted += 1
                slot += PMD_REGION_SIZE
        self.promotions += promoted
        self.last_scan_ns = self.kernel.clock.now_ns - watch_start
        return promoted

    @acquires("mmap_lock", "ptl")
    def _try_collapse(self, mm, vma, slot_start):
        """Promote one 2 MiB region if every precondition holds."""
        kernel = self.kernel
        if any(s.live and s.mm is mm for s in kernel.live_snapshots):
            # A live snapshot indexes this mm's leaf tables by identity;
            # collapsing one out from under it would break restore.
            return False
        walked = mm.walk_to_pmd(slot_start, alloc=False)
        if walked is None:
            return False
        pmd_table, pmd_index = walked
        entry = pmd_table.entries[pmd_index]
        if not is_present(entry) or is_huge(entry):
            return False
        leaf = mm.resolve(int(entry_pfn(entry)))
        if kernel.pages.pt_ref(leaf.pfn) != 1:
            return False  # shared with another process: never collapse
        entries = leaf.entries
        present = present_mask(entries)
        if not present.all():
            return False  # region not fully populated
        pfns = entry_pfn(entries).astype(np.int64)
        # Exclusivity is what matters: refcount-1 pages may still carry
        # RO entries left behind by an exited COW peer; collapse restores
        # the VMA's permission, exactly as a reuse fault would.
        if np.any(kernel.pages.refcount[pfns] != 1):
            return False  # pages shared (e.g. COW peers): skip
        if np.any(kernel.pages.flags[pfns] & np.uint16(PG_FILE)):
            return False  # anon-only collapse

        # Migrate: allocate the compound page, copy all 512 subpages.
        # A failed huge allocation is not an error for a background
        # promotion — the region simply stays 4 KiB-mapped, as in Linux.
        try:
            kernel.failpoints.hit("thp.collapse")
            # sancheck: ignore[clock-charge] -- a backed-out collapse returns the unused frame; khugepaged's failed scans are deliberately unpriced
            head = kernel.alloc_huge_frame(mm)
        except OutOfMemoryError:
            return False
        if kernel.swap is not None:
            # The huge allocation may have run reclaim, which can swap out
            # candidate pages behind our back; re-verify before committing.
            present = present_mask(entries)
            if (not present.all()
                    or np.any(kernel.pages.refcount[
                        entry_pfn(entries).astype(np.int64)] != 1)):
                kernel.allocator.free(head, HUGE_PAGE_ORDER)
                return False
            pfns = entry_pfn(entries).astype(np.int64)
        kernel.pages.on_alloc_compound(head, HUGE_PAGE_ORDER,
                                       PG_ANON)
        kernel.phys.copy_frames_bulk(
            pfns, np.arange(head, head + PTRS_PER_TABLE, dtype=np.int64))
        kernel.cost.charge("khugepaged_collapse", COLLAPSE_FIXED_NS)
        kernel.cost.charge_bulk_copy(HUGE_PAGE_SIZE)

        dirty = bool((entries & BIT_DIRTY).any())
        accessed = bool((entries & BIT_ACCESSED).any())
        # Free the old frames and the leaf table.
        rmap_remove_bulk(kernel, pfns, leaf.pfn)
        kernel.pages.on_free_bulk(pfns)
        kernel.phys.zero_bulk(pfns)
        kernel.allocator.free_bulk(pfns)
        leaf.entries[:] = 0
        pmd_table.clear(pmd_index)
        mm.nr_pte_tables -= 1
        put_pte_table(kernel, mm, leaf, account_rss=False)

        pmd_table.set(pmd_index, make_entry(
            head, writable=vma.writable, user=True, huge=True,
            dirty=dirty, accessed=accessed,
        ))
        # The collapse retargets 512 translations at once; every CPU
        # caching this mm must drop them (IPI round under SMP).
        kernel.tlbs.shootdown_mm(mm, slot_start,
                                 slot_start + PMD_REGION_SIZE)
        kernel.stats.thp_collapses += 1
        return True


@must_hold("mmap_lock", "ptl")
def split_huge_entry(kernel, mm, pmd_table, pmd_index, slot_start):
    """Split a THP-promoted entry back into 512 4 KiB pages.

    Copy-based: Linux remaps compound subpages in place, but the model's
    compound frames belong to one buddy block, so the split migrates data
    into fresh order-0 frames.  Costs are charged accordingly (a split is
    expensive — part of the paper's case against THP for latency).
    """
    entry = pmd_table.entries[pmd_index]
    if not is_huge(entry):
        raise KernelBug("splitting a non-huge entry")
    head = int(entry_pfn(entry))
    writable = bool(is_writable(entry))

    kernel.failpoints.hit("thp.split")
    new_pfns = kernel.alloc_data_frames_bulk(mm, PTRS_PER_TABLE)
    kernel.pages.on_alloc_bulk(new_pfns, PG_ANON)
    kernel.phys.copy_frames_bulk(
        np.arange(head, head + PTRS_PER_TABLE, dtype=np.int64), new_pfns)
    kernel.cost.charge_bulk_copy(HUGE_PAGE_SIZE)

    try:
        kernel.failpoints.hit("thp.split_table")
        leaf = mm.alloc_table(LEVEL_PTE)
    except OutOfMemoryError:
        # The split's new frames are not yet mapped anywhere; without
        # this unwind a table-allocation failure would leak all 512.
        zeroed = kernel.pages.ref_dec_bulk(new_pfns)
        free_anon_frames(kernel, zeroed)
        raise
    kernel.cost.charge_pte_table_alloc()
    from .bulkops import _entries_for
    leaf.entries[:] = _entries_for(new_pfns, writable=writable, dirty=False)
    rmap_add_bulk(kernel, new_pfns, leaf.pfn)

    if kernel.pages.ref_dec(head) == 0:
        kernel.free_huge_frame(head)
    pmd_table.set(pmd_index, make_entry(leaf.pfn, writable=True, user=True))
    # The split swaps the backing frames; shoot the region down everywhere.
    kernel.tlbs.shootdown_mm(mm, slot_start, slot_start + PMD_REGION_SIZE,
                             charge=False)
    kernel.stats.thp_splits += 1
    return leaf
