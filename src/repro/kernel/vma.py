"""Virtual memory areas (VMAs) and the per-process area list.

A VMA describes one contiguous mapping: its range, protection, whether it
is private (copy-on-write) or shared, anonymous or file-backed, and whether
it is backed by 2 MiB huge pages.  The list is kept sorted by start address
(the model's stand-in for the kernel's maple tree / rbtree) with binary
search for lookup.

VMA semantics drive every fork and fault decision:

* ``MAP_PRIVATE`` writable regions are the COW regions — both fork flavours
  must write-protect them; On-demand-fork does so via the PMD entry.
* ``MAP_SHARED`` regions never COW data pages; writes through a shared PTE
  table still fault once per 2 MiB (the PMD override applies to everything)
  but the fault handler only copies the *table*, never the data.
* ``MAP_HUGETLB`` regions are mapped by PMD-level huge entries.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from ..errors import InvalidArgumentError
from ..mem.page import HUGE_PAGE_SIZE, PAGE_SIZE

PROT_NONE = 0
PROT_READ = 1 << 0
PROT_WRITE = 1 << 1
PROT_EXEC = 1 << 2

MAP_PRIVATE = 1 << 0
MAP_SHARED = 1 << 1
MAP_ANONYMOUS = 1 << 2
MAP_HUGETLB = 1 << 3
MAP_POPULATE = 1 << 4
MAP_FIXED = 1 << 5


@dataclass
class VMA:
    """One virtual memory area; ``end`` is exclusive."""

    start: int
    end: int
    prot: int
    flags: int
    file: object = None          # SimFile for file-backed mappings
    file_offset: int = 0         # byte offset of `start` within the file
    name: str = field(default="")
    # THP advice (madvise MADV_HUGEPAGE / MADV_NOHUGEPAGE, §2.3).
    thp_enabled: bool = False
    thp_disabled: bool = False

    def __post_init__(self):
        granule = HUGE_PAGE_SIZE if self.is_hugetlb else PAGE_SIZE
        if self.start % granule or self.end % granule:
            raise InvalidArgumentError(
                f"VMA [{self.start:#x}, {self.end:#x}) not {granule}-aligned"
            )
        if self.end <= self.start:
            raise InvalidArgumentError("empty or inverted VMA")
        if self.is_shared == self.is_private:
            raise InvalidArgumentError("VMA must be exactly one of shared/private")
        if self.file is None and not self.flags & MAP_ANONYMOUS:
            raise InvalidArgumentError("non-anonymous VMA needs a file")

    # ---- classification ---------------------------------------------------

    @property
    def is_private(self):
        """MAP_PRIVATE mapping (copy-on-write on fork)."""
        return bool(self.flags & MAP_PRIVATE)

    @property
    def is_shared(self):
        """MAP_SHARED mapping (writes visible to all mappers)."""
        return bool(self.flags & MAP_SHARED)

    @property
    def is_anonymous(self):
        """Not backed by a file."""
        return self.file is None

    @property
    def is_file_backed(self):
        """Backed by a SimFile (page-cache pages)."""
        return self.file is not None

    @property
    def is_hugetlb(self):
        """Mapped by 2 MiB PMD-level entries."""
        return bool(self.flags & MAP_HUGETLB)

    @property
    def readable(self):
        """PROT_READ is set."""
        return bool(self.prot & PROT_READ)

    @property
    def writable(self):
        """PROT_WRITE is set."""
        return bool(self.prot & PROT_WRITE)

    @property
    def needs_cow(self):
        """True when writes to this area must copy data pages."""
        return self.is_private and self.writable

    @property
    def size(self):
        """Bytes covered by the VMA."""
        return self.end - self.start

    @property
    def n_pages(self):
        """4 KiB pages covered by the VMA."""
        return self.size // PAGE_SIZE

    def contains(self, addr):
        """Whether ``addr`` falls inside the VMA."""
        return self.start <= addr < self.end

    def overlaps(self, start, end):
        """Whether ``[start, end)`` intersects the VMA."""
        return self.start < end and start < self.end

    def file_offset_of(self, addr):
        """Byte offset within the backing file for virtual address ``addr``."""
        return self.file_offset + (addr - self.start)

    def clone(self, start=None, end=None):
        """Copy this VMA (optionally re-ranged), preserving backing state."""
        new_start = self.start if start is None else start
        new_end = self.end if end is None else end
        clone = VMA(
            start=new_start,
            end=new_end,
            prot=self.prot,
            flags=self.flags,
            file=self.file,
            file_offset=self.file_offset + (new_start - self.start),
            name=self.name,
        )
        clone.thp_enabled = self.thp_enabled
        clone.thp_disabled = self.thp_disabled
        return clone

    def __repr__(self):
        kind = "huge" if self.is_hugetlb else ("file" if self.is_file_backed else "anon")
        share = "shared" if self.is_shared else "private"
        return f"VMA[{self.start:#x}-{self.end:#x} {kind} {share} prot={self.prot}]"


class VMAList:
    """Sorted, non-overlapping collection of a process's VMAs."""

    def __init__(self):
        self._starts = []
        self._vmas = []

    def __len__(self):
        return len(self._vmas)

    def __iter__(self):
        return iter(self._vmas)

    def insert(self, vma):
        """Insert a VMA, rejecting overlaps."""
        index = bisect.bisect_left(self._starts, vma.start)
        prev_vma = self._vmas[index - 1] if index > 0 else None
        next_vma = self._vmas[index] if index < len(self._vmas) else None
        if prev_vma is not None and prev_vma.end > vma.start:
            raise InvalidArgumentError(f"{vma} overlaps {prev_vma}")
        if next_vma is not None and next_vma.start < vma.end:
            raise InvalidArgumentError(f"{vma} overlaps {next_vma}")
        self._starts.insert(index, vma.start)
        self._vmas.insert(index, vma)

    def remove(self, vma):
        """Remove exactly this VMA object."""
        index = bisect.bisect_left(self._starts, vma.start)
        if index >= len(self._vmas) or self._vmas[index] is not vma:
            raise InvalidArgumentError("VMA not present in list")
        del self._starts[index]
        del self._vmas[index]

    def find(self, addr):
        """Return the VMA containing ``addr``, or ``None``."""
        index = bisect.bisect_right(self._starts, addr) - 1
        if index < 0:
            return None
        vma = self._vmas[index]
        return vma if vma.contains(addr) else None

    def overlapping(self, start, end):
        """All VMAs intersecting ``[start, end)``, in address order."""
        index = bisect.bisect_right(self._starts, start) - 1
        if index < 0:
            index = 0
        result = []
        for vma in self._vmas[index:]:
            if vma.start >= end:
                break
            if vma.overlaps(start, end):
                result.append(vma)
        return result

    def any_overlap(self, start, end):
        """Whether anything overlaps ``[start, end)``."""
        index = bisect.bisect_right(self._starts, start) - 1
        if index < 0:
            index = 0
        for vma in self._vmas[index:]:
            if vma.start >= end:
                return False
            if vma.overlaps(start, end):
                return True
        return False

    def find_gap(self, size, floor, ceiling, align=PAGE_SIZE):
        """First-fit search for an ``align``-aligned free gap of ``size``."""

        def align_up(value):
            """Round up to the requested alignment."""
            return (value + align - 1) & ~(align - 1)

        candidate = align_up(floor)
        for vma in self._vmas:
            if vma.end <= candidate:
                continue
            if vma.start >= candidate + size:
                break
            candidate = align_up(vma.end)
        if candidate + size > ceiling:
            return None
        return candidate

    def total_mapped_bytes(self):
        """Sum of all VMA sizes (the VSZ)."""
        return sum(v.size for v in self._vmas)
