"""Shared PTE-table operations: the heart of On-demand-fork.

This module implements the paper's §3.4–§3.6 mechanism:

* **Ownership rule.**  Every :class:`PageTable` *object* owns one reference
  on each data page its present entries map, regardless of how many
  processes share the table (sharing is tracked separately by the table's
  own §3.5 refcount).  Classic fork creates new table objects, so it bumps
  page refcounts; odfork shares the object, so it does not — that skipped
  work is precisely the savings the paper measures.

* **Table COW** (:func:`copy_shared_pte_table`).  On the first write fault
  in a 2 MiB region mapped by a shared table, the faulting process gets a
  dedicated copy: entries are duplicated (accessed bits preserved, §3.2),
  write permission is dropped for private-COW ranges in *both* the copy and
  the original (see DESIGN.md §3 for why the original must be downgraded
  too), page refcounts are taken for the copy's references, and the shared
  table's refcount is decremented.

* **Table put** (:func:`put_pte_table`).  Drops one sharer's reference;
  on reaching zero the destructor releases the table's page references,
  frees pages that hit zero, and returns the table frame — the §3.6 rule
  that a page is freeable only when no table that could reach it survives.
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelBug
from ..mem.page import PAGE_SIZE, PG_FILE, PTRS_PER_TABLE
from ..paging.entries import (
    BIT_RW,
    entry_pfn,
    make_entry,
    present_mask,
)
from ..paging.table import LEVEL_PTE, PMD_REGION_SIZE
from ..sancheck.annotations import charge_deferred, must_hold
from ..trace import points


def add_table_sharer(kernel, leaf_pfn, mm):
    """Record ``mm`` as a sharer of a leaf table (odfork share)."""
    if kernel.pt_sharers is not None:
        kernel.pt_sharers[leaf_pfn].append(mm)


def drop_table_sharer(kernel, leaf_pfn, mm):
    """Remove ``mm`` from a leaf table's sharer list."""
    sharers = kernel.pt_sharers
    if sharers is None:
        return
    try:
        sharers[leaf_pfn].remove(mm)
    except (KeyError, ValueError):
        raise KernelBug(
            f"mm {mm.owner_pid} is not a registered sharer of table {leaf_pfn}"
        ) from None


def table_present_pfns(table, lo_index=0, hi_index=PTRS_PER_TABLE):
    """pfns of present entries in ``table.entries[lo_index:hi_index]``.

    Returns ``(indices, pfns)`` as int64 arrays; indices are absolute.
    """
    sub = table.entries[lo_index:hi_index]
    mask = present_mask(sub)
    indices = np.nonzero(mask)[0] + lo_index
    pfns = entry_pfn(table.entries[indices]).astype(np.int64)
    return indices, pfns


_ALL_COW = np.ones(PTRS_PER_TABLE, dtype=bool)
_NO_COW = np.zeros(PTRS_PER_TABLE, dtype=bool)


def private_cow_mask(mm, slot_start):
    """Boolean[512]: entries whose range falls in a private-COW VMA.

    Used when write permission must be dropped at PTE granularity: COW
    (private writable) ranges lose RW; shared mappings and read-only
    ranges keep their bits.

    Fast path: when a single VMA covers the whole slot (the common case in
    large mappings), returns a shared read-only constant mask — callers
    must not mutate the result.
    """
    slot_end = slot_start + PMD_REGION_SIZE
    vma = mm.vmas.find(slot_start)
    if vma is not None and vma.end >= slot_end:
        return _ALL_COW if vma.needs_cow else _NO_COW
    mask = np.zeros(PTRS_PER_TABLE, dtype=bool)
    for lo, hi, vma in mm.vma_ranges_in_slot(slot_start, slot_end):
        if vma.needs_cow:
            first = (lo - slot_start) // PAGE_SIZE
            last = (hi - slot_start) // PAGE_SIZE
            mask[first:last] = True
    return mask


def count_file_pages(kernel, pfns):
    """How many of ``pfns`` are page-cache pages (for RSS bookkeeping)."""
    if len(pfns) == 0:
        return 0
    return int(np.count_nonzero(kernel.pages.flags[pfns] & PG_FILE))


@charge_deferred("callers charge charge_zap_entries for the batch")
def free_anon_frames(kernel, pfns):
    """Free anonymous frames whose refcount reached zero."""
    if len(pfns) == 0:
        return
    flags = kernel.pages.flags[pfns]
    if np.any(flags & PG_FILE):
        raise KernelBug("file page refcount dropped to zero outside the cache")
    kernel.pages.on_free_bulk(pfns)
    kernel.phys.zero_bulk(pfns)
    kernel.allocator.free_bulk(pfns)


@must_hold("mmap_lock")
def release_table_references(kernel, mm, table, charge=True):
    """Destructor body: drop the table's page references, free the frame."""
    from .rmap import rmap_remove_bulk
    indices, pfns = table_present_pfns(table)
    if len(pfns):
        rmap_remove_bulk(kernel, pfns, table.pfn)
        zeroed = kernel.pages.ref_dec_bulk(pfns)
        free_anon_frames(kernel, zeroed)
        if charge:
            kernel.cost.charge_zap_entries(len(pfns))
    kernel.swap_put_entries(table.entries)
    if charge:
        kernel.cost.charge_table_free()
    # sancheck: ignore[clock-charge] -- the charge=False arm is the exit fast path, priced by its caller's blanket teardown cost
    mm.free_table_frame(table)


@must_hold("mmap_lock")
def put_pte_table(kernel, mm, table, account_rss=True, charge=True):
    """Drop one sharer's reference on a leaf table (§3.5 lifecycle).

    ``mm`` is the process releasing its reference; its RSS shrinks by the
    pages the table currently maps whether or not the table survives,
    because those pages are no longer reachable from this address space.
    Returns the new refcount.
    """
    if account_rss:
        _, pfns = table_present_pfns(table)
        n_file = count_file_pages(kernel, pfns)
        mm.sub_rss(n_file, file_backed=True)
        mm.sub_rss(len(pfns) - n_file, file_backed=False)
    if charge:
        kernel.cost.charge_table_put()
    drop_table_sharer(kernel, table.pfn, mm)
    new_count = kernel.pages.pt_ref_dec(table.pfn)
    if new_count == 0:
        release_table_references(kernel, mm, table, charge=charge)
    return new_count


@must_hold("mmap_lock", "ptl")
def copy_shared_pte_table(kernel, mm, pmd_table, pmd_index, slot_start):
    """COW a shared PTE table for ``mm`` (paper §3.4).

    Allocates a dedicated table, copies all 512 entries (preserving
    accessed bits), write-protects private-COW entries in both copies,
    takes page references for the new table, points the PMD entry at the
    copy with write permission restored, and releases one reference on the
    shared table.  Returns the new dedicated table.
    """
    old_table = mm.resolve(pmd_table.child_pfn(pmd_index))
    if kernel.pages.pt_ref(old_table.pfn) <= 1:
        raise KernelBug("copy_shared_pte_table on a dedicated table")

    kernel.failpoints.hit("tableops.table_cow")
    new_table = mm.alloc_table(LEVEL_PTE)
    new_table.copy_entries_from(old_table)
    # Mitosis: populating the fresh (auto-replicated) copy and editing
    # the original are both full-table coherence events.
    kernel.note_table_write(new_table, PTRS_PER_TABLE)

    cow_mask = private_cow_mask(mm, slot_start)
    if cow_mask.any():
        drop = np.uint64(~BIT_RW)
        # Both copies: the new table so this process's writes still COW at
        # page granularity, and the original so a later sole owner cannot
        # silently regain write access to still-shared pages.
        new_table.entries[cow_mask] &= drop
        old_table.entries[cow_mask] &= drop
        kernel.note_table_write(old_table, int(np.count_nonzero(cow_mask)))

    indices, pfns = table_present_pfns(new_table)
    if len(pfns):
        kernel.pages.ref_inc_bulk(pfns)
    if kernel.swap is not None:
        # The copy carries swap entries too: each takes its own slot
        # reference, and present anon pages gain a mapping in the copy.
        kernel.swap_dup_entries(new_table.entries)
        from .rmap import rmap_add_bulk
        rmap_add_bulk(kernel, pfns, new_table.pfn)
    drop_table_sharer(kernel, old_table.pfn, mm)

    kernel.cost.charge_table_cow_copy(len(pfns))
    pmd_table.set(pmd_index, make_entry(new_table.pfn, writable=True, user=True))
    kernel.note_table_write(pmd_table)

    # One fewer sharer of the old table.  RSS does not change: this mm
    # still maps the same pages, now through its own copy — and its PMD
    # entry count is likewise unchanged (alloc_table counted the copy, so
    # un-count the table the entry no longer points to).
    mm.nr_pte_tables -= 1
    remaining = kernel.pages.pt_ref_dec(old_table.pfn)
    if remaining == 0:
        raise KernelBug("shared table refcount hit zero during COW copy")
    if remaining == 1 and kernel.mitosis is not None:
        # Under share-one the last sharer left holding the table becomes
        # entitled to its replicas (the paper-crossing adoption rule).
        survivors = kernel.pt_sharers.get(old_table.pfn)
        if survivors:
            kernel.mitosis.adopt_owner(old_table.pfn, survivors[0])
    kernel.stats.table_cow_copies += 1
    if points.enabled:
        points.tracepoint("table.cow_copy", slot_start=slot_start,
                          n_present=len(pfns), remaining_sharers=remaining)
    # Local flush is sufficient: the copy maps the same pfns, and any
    # other CPU's cached entries for this range are read-only (the PMD
    # write-protect shootdown at share time already purged writable ones).
    kernel.tlbs.local_flush_range(mm, slot_start, slot_start + PMD_REGION_SIZE)
    return new_table


@must_hold("mmap_lock", "ptl")
def unshare_sole_owner(kernel, mm, pmd_table, pmd_index):
    """§3.4: the last sharer flips its PMD write bit back on.

    When every other sharer has copied the table away, the remaining
    process's writes still fault (PMD RW=0).  The handler recognises the
    refcount of one and re-enables the PMD write bit; leaf entries keep
    whatever protection the COW protocol left them, so data-page COW
    still triggers where needed.
    """
    entry = pmd_table.entries[pmd_index]
    pmd_table.entries[pmd_index] = entry | BIT_RW
    kernel.note_table_write(pmd_table)
    if kernel.mitosis is not None:
        kernel.mitosis.adopt_owner(int(entry_pfn(entry)), mm)
    kernel.cost.charge_pt_unshare_flip()
    kernel.stats.table_unshares += 1
    if points.enabled:
        points.tracepoint("table.unshare", table_pfn=int(entry_pfn(entry)))
