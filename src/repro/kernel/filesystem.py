"""A tiny in-memory filesystem.

File-backed mappings matter to the reproduction because §3.7 of the paper
requires On-demand-fork to support them (executables are file-backed, and
applications mmap files for I/O).  The simulator keeps files fully in
memory — the paper's own evaluation avoids disk I/O as a confounding factor
— and exposes just enough of a VFS for the page cache and mmap paths:
create, resolve, read, write, truncate.

Shared anonymous memory (``MAP_SHARED | MAP_ANONYMOUS``) is implemented the
same way Linux does: each such mapping gets a private shmem file, so parent
and child naturally observe each other's writes through the page cache.
"""

from __future__ import annotations

import itertools

from ..errors import InvalidArgumentError
from ..mem.page import PAGE_SIZE


class SimFile:
    """An in-memory file: a name, a size, and sparse page contents.

    Contents live in the page cache once mapped or accessed; the file
    itself only stores pages that were written *before* caching (initial
    contents) plus its logical size.  ``initial_page`` hands the cache the
    starting bytes for a page.
    """

    _ids = itertools.count(1)

    def __init__(self, name, size=0):
        if size < 0:
            raise InvalidArgumentError("negative file size")
        self.inode = next(SimFile._ids)
        self.name = name
        self.size = int(size)
        self._initial = {}  # page index -> bytes(PAGE_SIZE)

    def n_pages(self):
        """Pages the file spans at its current size."""
        return (self.size + PAGE_SIZE - 1) // PAGE_SIZE

    def set_initial_contents(self, data, offset=0):
        """Write initial bytes (pre-caching), growing the file if needed."""
        if offset < 0:
            raise InvalidArgumentError("negative offset")
        end = offset + len(data)
        self.size = max(self.size, end)
        pos = 0
        while pos < len(data):
            page_index = (offset + pos) // PAGE_SIZE
            page_off = (offset + pos) % PAGE_SIZE
            take = min(PAGE_SIZE - page_off, len(data) - pos)
            page = bytearray(self._initial.get(page_index, bytes(PAGE_SIZE)))
            page[page_off:page_off + take] = data[pos:pos + take]
            self._initial[page_index] = bytes(page)
            pos += take

    def initial_page(self, page_index):
        """The starting contents of page ``page_index`` (zeros if sparse)."""
        return self._initial.get(page_index, bytes(PAGE_SIZE))

    def truncate(self, new_size):
        """Change the file size, dropping truncated contents."""
        if new_size < 0:
            raise InvalidArgumentError("negative size")
        if new_size < self.size:
            first_dead = (new_size + PAGE_SIZE - 1) // PAGE_SIZE
            for index in [i for i in self._initial if i >= first_dead]:
                del self._initial[index]
        self.size = int(new_size)

    def __repr__(self):
        return f"SimFile({self.name!r}, inode={self.inode}, size={self.size})"


class SimFS:
    """Flat-namespace file store."""

    def __init__(self):
        self._files = {}

    def create(self, name, size=0):
        """Create a new file; rejects duplicates."""
        if name in self._files:
            raise InvalidArgumentError(f"file exists: {name}")
        f = SimFile(name, size)
        self._files[name] = f
        return f

    def open(self, name):
        """Look up an existing file by name."""
        try:
            return self._files[name]
        except KeyError:
            raise InvalidArgumentError(f"no such file: {name}") from None

    def exists(self, name):
        """Whether a file with this name exists."""
        return name in self._files

    def unlink(self, name):
        """Remove a file from the namespace."""
        if name not in self._files:
            raise InvalidArgumentError(f"no such file: {name}")
        del self._files[name]

    def make_shmem(self, size):
        """Anonymous shared-memory object (``MAP_SHARED|MAP_ANONYMOUS``)."""
        f = SimFile(f"shmem:{next(SimFile._ids)}", size)
        return f
