"""Vectorised range access: the simulator's fast path for big memory.

Python cannot take thirteen million individual page faults, so workloads
that sweep gigabytes (the Figure 1 benchmark, the Figure 8 access mixes,
application heaps) use :func:`access_range`, which performs *exactly* the
same state transitions as the byte-path fault handler — demand-zero fills,
data-page COW, shared-table COW, write-notify — but whole PTE tables at a
time with numpy, charging the same per-event costs the one-at-a-time path
would.  Equivalence between the two paths is pinned down by property tests
(``tests/test_bulk_vs_bytewise.py``).
"""

from __future__ import annotations

import numpy as np

from ..errors import OutOfMemoryError, SegmentationFault
from ..mem.page import HUGE_PAGE_ORDER, HUGE_PAGE_SIZE, PAGE_SIZE, PG_ANON, PG_DIRTY, PG_FILE
from ..paging.entries import (
    BIT_ACCESSED,
    BIT_DIRTY,
    BIT_PRESENT,
    BIT_PS,
    BIT_RW,
    BIT_USER,
    PFN_SHIFT,
    entry_pfn,
    is_huge,
    is_present,
    is_writable,
    present_mask,
    swap_mask,
    writable_mask,
)
from ..paging.table import LEVEL_PTE, page_align_down, page_align_up
from .fault import swap_in_entry
from .rmap import rmap_add_bulk, rmap_remove_bulk
from ..sancheck.annotations import acquires, must_hold
from .tableops import (
    copy_shared_pte_table,
    count_file_pages,
    free_anon_frames,
    unshare_sole_owner,
)

_BASE_BITS = BIT_PRESENT | BIT_USER | BIT_ACCESSED


def _entries_for(pfns, writable, dirty):
    bits = _BASE_BITS | (BIT_RW if writable else np.uint64(0)) | (
        BIT_DIRTY if dirty else np.uint64(0)
    )
    return (pfns.astype(np.uint64) << PFN_SHIFT) | bits


def _check_coverage(mm, start, end, is_write):
    """Validate that VMAs cover the range with adequate permissions."""
    cursor = start
    for vma in mm.vmas.overlapping(start, end):
        if vma.start > cursor:
            raise SegmentationFault(cursor, is_write, "gap in range")
        if is_write and not vma.writable:
            raise SegmentationFault(max(vma.start, start), True, "read-only VMA")
        if not vma.readable:
            raise SegmentationFault(max(vma.start, start), is_write, "PROT_NONE VMA")
        cursor = vma.end
        if cursor >= end:
            return
    raise SegmentationFault(cursor, is_write, "gap in range")


@acquires("mmap_lock", "ptl")
def access_range(kernel, task, start, length, is_write, charge_memcpy=True):
    """Touch ``[start, start+length)`` for read or write, in bulk.

    Semantically identical to a sequential sweep of byte accesses: every
    page becomes present, writes trigger (and charge) COW and shared-table
    copies, permissions are enforced.  Returns a dict of event counts so
    benchmarks can report what the sweep did.
    """
    if length <= 0:
        return {}
    task.require_alive()
    mm = task.mm
    first = page_align_down(start)
    last = page_align_up(start + length)
    _check_coverage(mm, first, last, is_write)
    if charge_memcpy:
        kernel.cost.charge_memcpy(length, is_write)

    events = {
        "demand_zero": 0, "cow_pages": 0, "table_copies": 0,
        "write_notify": 0, "huge_faults": 0, "huge_cow": 0,
        "swap_ins": 0,
    }
    for pmd_table, pmd_index, slot_start, lo, hi in mm.pmd_slots(first, last, alloc=True):
        for plo, phi, vma in mm.vma_ranges_in_slot(lo, hi):
            if vma.is_hugetlb:
                _access_huge_slot(kernel, mm, vma, pmd_table, pmd_index,
                                  slot_start, is_write, events)
            else:
                _access_leaf_piece(kernel, mm, vma, pmd_table, pmd_index,
                                   slot_start, plo, phi, is_write, events)
    # Bulk COW may have switched backing frames across the whole range;
    # purge it from every CPU caching this mm (no extra charge: matches
    # the per-fault flushes this batch replaces).
    kernel.tlbs.shootdown_mm(mm, first, last, charge=False)
    kernel.stats.page_faults += (
        events["demand_zero"] + events["cow_pages"] + events["write_notify"]
        + events["huge_faults"] + events["huge_cow"] + events["swap_ins"]
    )
    kernel.stats.demand_zero_faults += events["demand_zero"]
    kernel.stats.cow_faults += events["cow_pages"]
    kernel.stats.huge_faults += events["huge_faults"]
    kernel.stats.huge_cow_faults += events["huge_cow"]
    return events


def populate_range(kernel, task, start, length):
    """MAP_POPULATE-style pre-fault of a fresh mapping (no memcpy charge)."""
    return access_range(kernel, task, start, length, is_write=False,
                        charge_memcpy=False)


# --------------------------------------------------------------------- #

@must_hold("mmap_lock", "ptl")
def _access_leaf_piece(kernel, mm, vma, pmd_table, pmd_index, slot_start,
                       lo, hi, is_write, events):
    cost = kernel.cost
    entry = pmd_table.entries[pmd_index]
    if is_present(entry) and is_huge(entry):
        # THP-promoted slot inside a normal VMA: PMD-granular access.
        _access_huge_slot(kernel, mm, vma, pmd_table, pmd_index,
                          slot_start, is_write, events)
        return
    if not is_present(entry):
        kernel.failpoints.hit("bulkops.leaf_table")
        leaf = mm.alloc_table(LEVEL_PTE)
        cost.charge_pte_table_alloc()
        pmd_table.entries[pmd_index] = _entries_for(
            np.uint64(leaf.pfn), writable=True, dirty=False)
        kernel.note_table_write(pmd_table)
    else:
        leaf = mm.resolve(int(entry_pfn(entry)))

    lo_index = (lo - slot_start) // PAGE_SIZE
    hi_index = (hi - slot_start) // PAGE_SIZE
    sub = leaf.entries[lo_index:hi_index]
    present = present_mask(sub)
    swapped = swap_mask(sub) if kernel.swap is not None else None
    has_swap = swapped is not None and bool(swapped.any())
    if has_swap:
        need_fill = int(np.count_nonzero(~present & ~swapped))
    else:
        need_fill = int(np.count_nonzero(~present))

    shared = kernel.pages.pt_ref(leaf.pfn) > 1
    if shared and (is_write or need_fill or has_swap):
        leaf = copy_shared_pte_table(kernel, mm, pmd_table, pmd_index, slot_start)
        events["table_copies"] += 1
        sub = leaf.entries[lo_index:hi_index]
        present = present_mask(sub)
    elif is_write and not shared and not is_writable(pmd_table.entries[pmd_index]):
        unshare_sole_owner(kernel, mm, pmd_table, pmd_index)

    if has_swap:
        # Swap entries fault back in one by one (each is a real swap-in
        # or a swap-cache hit); the table is dedicated by this point.
        for pos in np.nonzero(swapped)[0].tolist():
            swap_in_entry(kernel, mm, vma, leaf, lo_index + pos, is_write)
        events["swap_ins"] += int(np.count_nonzero(swapped))
        present = present_mask(sub)

    if need_fill:
        # Recompute absence: a reclaim pass triggered by the swap-ins'
        # allocations may have turned present entries into swap entries,
        # which must not be treated as demand-zero holes.
        absent = ~present
        if kernel.swap is not None:
            absent &= ~swap_mask(sub)
        _fill_absent(kernel, mm, vma, leaf, slot_start, lo_index, hi_index,
                     sub, absent, is_write, events)
        present = present_mask(sub)

    if not is_write:
        sub[present] |= BIT_ACCESSED
        return

    writable = writable_mask(sub)
    ro = present & ~writable
    if ro.any():
        if vma.needs_cow:
            _bulk_cow(kernel, mm, leaf, lo_index, sub, ro, events)
        elif vma.is_shared and vma.writable:
            # Write-notify: restore permission in place, dirty the pages.
            sub[ro] |= BIT_RW | BIT_DIRTY
            cost.charge_fault_spurious()
            kernel.note_table_write(leaf, int(np.count_nonzero(ro)))
            events["write_notify"] += int(np.count_nonzero(ro))
    sub[present & writable_mask(sub)] |= BIT_DIRTY | BIT_ACCESSED


@must_hold("mmap_lock", "ptl")
def _fill_absent(kernel, mm, vma, leaf, slot_start, lo_index, hi_index,
                 sub, absent, is_write, events):
    cost = kernel.cost
    n = int(np.count_nonzero(absent))
    params = cost.params
    if vma.is_file_backed:
        # File pages come from the cache one index at a time; file-backed
        # regions in the workloads are small (binaries, shmem segments).
        # RSS and stats are charged per page, not after the loop: a cache
        # fill can fail under OOM mid-loop, and the entries already
        # installed must already be accounted for.
        absent_positions = np.nonzero(absent)[0]
        writable_now = vma.writable and vma.is_shared
        for pos in absent_positions.tolist():
            vaddr = slot_start + (lo_index + pos) * PAGE_SIZE
            page_index = vma.file_offset_of(vaddr) // PAGE_SIZE
            kernel.failpoints.hit("bulkops.file_fill")
            pfn = kernel.page_cache.get_page(vma.file, page_index)
            kernel.pages.ref_inc(pfn)
            sub[pos] = _entries_for(np.uint64(pfn), writable_now,
                                    dirty=is_write and writable_now)
            kernel.note_table_write(leaf)
            mm.add_rss(1, file_backed=True)
            kernel.stats.file_faults += 1
            cost.charge_page_cache_lookup()
            cost.charge_fault_base()
        return
    kernel.failpoints.hit("bulkops.fill_absent")
    pfns = kernel.alloc_data_frames_bulk(mm, n)
    kernel.pages.on_alloc_bulk(pfns, PG_ANON | (PG_DIRTY if is_write else 0))
    sub[absent] = _entries_for(pfns, vma.writable, dirty=is_write)
    kernel.note_table_write(leaf, n)
    rmap_add_bulk(kernel, pfns, leaf.pfn)
    mm.add_rss(n, file_backed=False)
    cost.charge(
        "bulk_demand_zero",
        n * (params.fault_base + params.page_alloc + params.page_zero_4k),
    )
    events["demand_zero"] += n


@must_hold("mmap_lock", "ptl")
def _bulk_cow(kernel, mm, leaf, lo_index, sub, ro_mask, events):
    """COW every read-only private page in the mask, vectorised."""
    cost = kernel.cost
    params = cost.params
    positions = np.nonzero(ro_mask)[0]
    old_pfns = entry_pfn(sub[positions]).astype(np.int64)

    # The refcount-1 reuse fast path, applied per page like do_wp_page.
    refs = kernel.pages.refcount[old_pfns]
    file_flags = (kernel.pages.flags[old_pfns] & np.uint16(PG_FILE)) != 0
    reusable = (refs == 1) & ~file_flags
    if reusable.any():
        reuse_positions = positions[reusable]
        sub[reuse_positions] |= BIT_RW | BIT_DIRTY
        kernel.note_table_write(leaf, int(np.count_nonzero(reusable)))
        kernel.stats.cow_reuse += int(np.count_nonzero(reusable))
        cost.charge("bulk_cow_reuse",
                    int(np.count_nonzero(reusable)) * params.fault_spurious)

    copy_mask = ~reusable
    n = int(np.count_nonzero(copy_mask))
    if n == 0:
        return
    copy_positions = positions[copy_mask]
    src = old_pfns[copy_mask]
    if kernel.rmap is not None:
        # Pin the sources: the allocation below may run direct reclaim,
        # which must not pick the very pages we are about to copy from.
        kernel.pages.ref_inc_bulk(src)
    try:
        kernel.failpoints.hit("bulkops.bulk_cow")
        dst = kernel.alloc_data_frames_bulk(mm, n)
    except OutOfMemoryError:
        if kernel.rmap is not None:
            kernel.pages.ref_dec_bulk(src)  # pins must not outlive the try
        raise
    kernel.pages.on_alloc_bulk(dst, PG_ANON | PG_DIRTY)
    kernel.phys.copy_frames_bulk(src, dst)
    n_file = count_file_pages(kernel, src)
    if kernel.rmap is not None:
        kernel.pages.ref_dec_bulk(src)  # the pins; refs stay >= 1 here
        rmap_remove_bulk(kernel, src, leaf.pfn)
    zeroed = kernel.pages.ref_dec_bulk(src)
    free_anon_frames(kernel, zeroed)
    sub[copy_positions] = _entries_for(dst, writable=True, dirty=True)
    kernel.note_table_write(leaf, n)
    rmap_add_bulk(kernel, dst, leaf.pfn)
    if n_file:
        mm.sub_rss(n_file, file_backed=True)
        mm.add_rss(n_file, file_backed=False)
    warmth = params.odf_cow_warmth if mm.odf_lineage else 1.0
    cost.charge(
        "bulk_cow_copy",
        n * (params.fault_base + params.page_alloc + params.page_copy_4k * warmth),
    )
    events["cow_pages"] += n


@must_hold("mmap_lock", "ptl")
def _access_huge_slot(kernel, mm, vma, pmd_table, pmd_index, slot_start,
                      is_write, events):
    cost = kernel.cost
    params = cost.params
    entry = pmd_table.entries[pmd_index]
    if not is_present(entry):
        kernel.failpoints.hit("bulkops.huge_alloc")
        head = kernel.alloc_huge_frame(mm)
        kernel.pages.on_alloc_compound(head, HUGE_PAGE_ORDER, PG_ANON)
        pmd_table.entries[pmd_index] = _entries_for(
            np.uint64(head), vma.writable, dirty=is_write) | BIT_PS
        kernel.note_table_write(pmd_table)
        mm.add_rss(1 << HUGE_PAGE_ORDER, file_backed=False)
        cost.charge_fault_base()
        cost.charge_bulk_copy(HUGE_PAGE_SIZE)
        events["huge_faults"] += 1
        return
    if is_write and not is_writable(entry):
        head = int(entry_pfn(entry))
        if kernel.pages.get_ref(head) == 1:
            pmd_table.entries[pmd_index] = entry | BIT_RW | BIT_DIRTY
            kernel.note_table_write(pmd_table)
            kernel.stats.cow_reuse += 1
            cost.charge_fault_spurious()
            return
        kernel.failpoints.hit("bulkops.huge_cow")
        new_head = kernel.alloc_huge_frame(mm)
        kernel.pages.on_alloc_compound(new_head, HUGE_PAGE_ORDER, PG_ANON | PG_DIRTY)
        for sub_pfn in range(1 << HUGE_PAGE_ORDER):
            if kernel.phys.is_materialized(head + sub_pfn):
                kernel.phys.copy_frame(head + sub_pfn, new_head + sub_pfn)
        if kernel.pages.ref_dec(head) == 0:
            kernel.free_huge_frame(head)
        pmd_table.entries[pmd_index] = _entries_for(
            np.uint64(new_head), writable=True, dirty=True) | BIT_PS
        kernel.note_table_write(pmd_table)
        cost.charge_fault_base()
        cost.charge_bulk_copy(HUGE_PAGE_SIZE)
        events["huge_cow"] += 1
        return
    if is_write:
        # sancheck: ignore[clock-charge] -- accessed/dirty bits on a huge-entry hit are hardware writes, free of kernel-clock cost
        pmd_table.entries[pmd_index] = entry | BIT_DIRTY | BIT_ACCESSED
    else:
        pmd_table.entries[pmd_index] = entry | BIT_ACCESSED
