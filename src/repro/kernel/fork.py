"""Classic fork's address-space duplication (``copy_page_range``).

This is the baseline the paper measures against: at fork time the parent's
entire paging tree is replicated.  Upper levels are cheap (few nodes, §2.2);
the cost is the leaf loop — for every present PTE the kernel resolves the
``struct page`` (``vm_normal_page`` + ``compound_head``), bumps the page
refcount atomically, and write-protects private-COW entries in both parent
and child.  The loop here is vectorised per table, but charges exactly that
per-entry machinery to the clock, split across the Figure 3 hot spots, with
the struct-page portion scaled by the contention model when several forks
run at once.
"""

from __future__ import annotations

import numpy as np

from ..mem.page import HUGE_PAGE_ORDER, PTRS_PER_TABLE
from ..paging.entries import BIT_RW, entry_pfn, is_huge, make_entry
from ..paging.table import (
    LEVEL_PGD,
    LEVEL_PMD,
    LEVEL_PTE,
    LEVEL_PUD,
    LEVEL_SPAN,
)
from .tableops import count_file_pages, private_cow_mask, table_present_pfns
from ..sancheck.annotations import (
    acquires,
    charge_deferred,
    must_hold,
    tlb_deferred,
)
from ..trace import points


def iter_parent_pmd_tables(mm):
    """Yield ``(pmd_table, table_base_vaddr)`` for every PMD table in ``mm``.

    Each PMD table covers 1 GiB of address space; odfork processes entries
    a whole table at a time with vectorised operations.
    """
    pgd = mm.pgd
    for pgd_index in pgd.present_indices().tolist():
        pud = mm.resolve(pgd.child_pfn(pgd_index))
        for pud_index in pud.present_indices().tolist():
            pmd = mm.resolve(pud.child_pfn(pud_index))
            base = (
                pgd_index * LEVEL_SPAN[LEVEL_PGD]
                + pud_index * LEVEL_SPAN[LEVEL_PUD]
            )
            yield pmd, base


def iter_parent_pmds(mm):
    """Yield ``(pmd_table, pmd_index, slot_start)`` for every present PMD
    entry in ``mm``, in address order."""
    for pmd, base in iter_parent_pmd_tables(mm):
        for pmd_index in pmd.present_indices().tolist():
            yield pmd, pmd_index, base + pmd_index * LEVEL_SPAN[LEVEL_PMD]


class ChildTreeBuilder:
    """Creates the child's upper paging levels lazily during a fork walk."""

    def __init__(self, child_mm):
        self.child_mm = child_mm
        self._pud_cache = {}
        self._pmd_cache = {}
        self.upper_tables_created = 0

    @must_hold("mmap_lock")
    @charge_deferred("the fork copy loops charge per-table costs; "
                     "upper-table construction is in the fork fixed cost")
    def pmd_for(self, slot_start):
        """The child PMD table and index covering ``slot_start``."""
        pmd_key = slot_start // LEVEL_SPAN[LEVEL_PUD]
        pmd = self._pmd_cache.get(pmd_key)
        if pmd is None:
            pud_key = slot_start // LEVEL_SPAN[LEVEL_PGD]
            pud = self._pud_cache.get(pud_key)
            child = self.child_mm
            # Covers both table allocations below; an OOM at either point
            # unwinds through _abort_fork, which tears the partial child
            # tree down like an exiting task's.
            child.kernel.failpoints.hit("fork.upper_table")
            if pud is None:
                pud = child.alloc_table(LEVEL_PUD)
                self.upper_tables_created += 1
                pgd_index = pud_key % PTRS_PER_TABLE
                child.pgd.set(pgd_index, make_entry(pud.pfn, writable=True, user=True))
                self._pud_cache[pud_key] = pud
            pmd = child.alloc_table(LEVEL_PMD)
            self.upper_tables_created += 1
            pud_index = pmd_key % PTRS_PER_TABLE
            pud.set(pud_index, make_entry(pmd.pfn, writable=True, user=True))
            self._pmd_cache[pmd_key] = pmd
        pmd_index = (slot_start // LEVEL_SPAN[LEVEL_PMD]) % PTRS_PER_TABLE
        return pmd, pmd_index

    @must_hold("mmap_lock")
    @charge_deferred("thin wrapper over pmd_for; same caller obligation")
    def pmd_table_for(self, table_base):
        """The child PMD table mirroring the parent table at ``table_base``."""
        return self.pmd_for(table_base)[0]


def clone_vmas(parent_mm, child_mm):
    """Copy the parent's VMA list into the child."""
    for vma in parent_mm.vmas:
        child_mm.add_vma(vma.clone())


class ClassicCopyState:
    """Walk state threaded through a slot-at-a-time classic copy.

    ``copy_mm_classic`` drives the whole walk in one call; the SMP fork
    flow drives the same three phases (begin, one call per 2 MiB slot,
    finish) as a generator so the scheduler can interleave other vCPUs
    at every slot boundary.
    """

    __slots__ = ("builder", "n_leaf_tables", "n_huge_entries")

    def __init__(self, builder):
        self.builder = builder
        self.n_leaf_tables = 0
        self.n_huge_entries = 0


@must_hold("mmap_lock")
def begin_classic_copy(kernel, parent_mm, child_mm):
    """Fixed-cost prologue: task/VMA duplication and the child tree root."""
    kernel.cost.charge_fork_fixed(len(parent_mm.vmas))
    clone_vmas(parent_mm, child_mm)
    return ClassicCopyState(ChildTreeBuilder(child_mm))


@must_hold("mmap_lock", "ptl")
@tlb_deferred("write-protects parent COW entries; finish_classic_copy shoots the parent down once for the whole copy")
def classic_copy_slot(kernel, parent_mm, child_mm, state, pmd, pmd_index,
                      slot_start):
    """Copy one present PMD slot (2 MiB) from parent to child.

    Failure-atomic at slot granularity: the only fallible operations are
    the table allocations at the top, so an OOM here leaves the child
    with complete slots only (plus possibly empty upper tables), which
    ``Kernel._abort_fork`` tears down like a normal exit.
    """
    kernel.failpoints.hit("fork.copy_slot")
    cost = kernel.cost
    drop_rw = np.uint64(~BIT_RW)
    entry = pmd.entries[pmd_index]
    child_pmd, child_index = state.builder.pmd_for(slot_start)

    if is_huge(entry):
        head = int(entry_pfn(entry))
        kernel.pages.ref_inc(head)
        if _slot_needs_cow(parent_mm, slot_start):
            entry &= drop_rw
            pmd.entries[pmd_index] = entry
        child_pmd.entries[child_index] = entry
        child_mm.add_rss(1 << HUGE_PAGE_ORDER, file_backed=False)
        cost.charge_copy_huge_entries(1)
        state.n_huge_entries += 1
        if points.enabled:
            points.tracepoint("fork.copy_slot", slot_start=slot_start,
                              huge=True, n_present=1)
        return

    parent_leaf = parent_mm.resolve(int(entry_pfn(entry)))
    kernel.san_access("pt", int(entry_pfn(entry)))
    child_leaf = child_mm.alloc_table(LEVEL_PTE)
    child_leaf.copy_entries_from(parent_leaf)

    cow_mask = private_cow_mask(parent_mm, slot_start)
    if cow_mask.any():
        child_leaf.entries[cow_mask] &= drop_rw
        if kernel.pages.pt_ref(parent_leaf.pfn) == 1:
            # Dedicated parent table: write-protect it too, exactly as
            # copy_one_pte does.  A shared parent table is left alone —
            # its PMD entry already has RW=0, which protects every
            # sharer, and the table-COW protocol owns its entry bits.
            parent_leaf.entries[cow_mask] &= drop_rw
            kernel.note_table_write(parent_leaf,
                                    int(np.count_nonzero(cow_mask)))
    # Populating the fresh (auto-replicated) child table is a coherence
    # event under Mitosis; the copy itself reads the parent's frame.
    kernel.note_table_write(child_leaf, PTRS_PER_TABLE)
    kernel.charge_numa_copy(parent_leaf.pfn)

    _, pfns = table_present_pfns(child_leaf)
    if len(pfns):
        kernel.pages.ref_inc_bulk(pfns)
        # RSS is accounted per slot, not snapshot-copied at the end: under
        # SMP a concurrent reclaim may unmap pages from already-copied
        # child tables before the walk finishes.
        n_file = count_file_pages(kernel, pfns)
        child_mm.add_rss(n_file, file_backed=True)
        child_mm.add_rss(len(pfns) - n_file, file_backed=False)
    if kernel.swap is not None:
        # Copied swap entries reference their slots too, and the copy's
        # present anon pages gain a reverse mapping.
        kernel.swap_dup_entries(child_leaf.entries)
        from .rmap import rmap_add_bulk
        rmap_add_bulk(kernel, pfns, child_leaf.pfn)
    cost.charge_pte_table_alloc()
    cost.charge_copy_pte_entries(len(pfns))
    child_pmd.set(child_index, make_entry(child_leaf.pfn, writable=True, user=True))
    state.n_leaf_tables += 1
    if points.enabled:
        points.tracepoint("fork.copy_slot", slot_start=slot_start,
                          huge=False, n_present=len(pfns))


@must_hold("mmap_lock")
def finish_classic_copy(kernel, parent_mm, child_mm, state):
    """Epilogue: warm-up/fixed charges, RSS copy, and the parent shootdown."""
    cost = kernel.cost
    if state.n_leaf_tables:
        # First-touch misses on struct page and allocator state; huge-only
        # address spaces skip this, which is most of Figure 4's advantage.
        cost.charge_fork_warmup()
    elif state.n_huge_entries:
        cost.charge_huge_fork_fixed()
    cost.charge_upper_copy(state.builder.upper_tables_created)
    child_mm.odf_lineage = parent_mm.odf_lineage
    # Write-protecting private-COW entries invalidates writable
    # translations on every CPU running the parent's address space.
    kernel.tlbs.shootdown_mm(parent_mm)
    kernel.stats.forks += 1
    if points.enabled:
        points.tracepoint("fork.copy_done",
                          leaf_tables=state.n_leaf_tables,
                          huge_entries=state.n_huge_entries,
                          upper_tables=state.builder.upper_tables_created)


@must_hold("mmap_lock")
@acquires("ptl")
def copy_mm_classic(kernel, parent_mm, child_mm):
    """Duplicate ``parent_mm`` into ``child_mm`` the traditional way."""
    state = begin_classic_copy(kernel, parent_mm, child_mm)
    for pmd, pmd_index, slot_start in iter_parent_pmds(parent_mm):
        classic_copy_slot(kernel, parent_mm, child_mm, state, pmd,
                          pmd_index, slot_start)
    finish_classic_copy(kernel, parent_mm, child_mm, state)


def _slot_needs_cow(mm, slot_start):
    """Whether the (single) hugetlb VMA over this slot is private-COW."""
    vma = mm.vmas.find(slot_start)
    return vma is not None and vma.needs_cow
